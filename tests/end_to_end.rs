//! Integration test: the full production pipeline a downstream user
//! would run — generate, persist, reload, allocate, build the program,
//! simulate, and compare algorithms.

use dbcast::alloc::DrpCds;
use dbcast::baselines::{Gopt, GoptConfig};
use dbcast::model::{average_waiting_time, BroadcastProgram, ChannelAllocator};
use dbcast::sim::Simulation;
use dbcast::workload::{
    load_database, save_database, SizeDistribution, TraceBuilder, WorkloadBuilder,
};

#[test]
fn generate_persist_reload_allocate_simulate() {
    // 1. Generate a workload.
    let db = WorkloadBuilder::new(80)
        .skewness(1.0)
        .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
        .seed(5)
        .build()
        .unwrap();

    // 2. Persist and reload — bit-exact.
    let dir = std::env::temp_dir().join("dbcast-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("workload.json");
    save_database(&db, &path).unwrap();
    let reloaded = load_database(&path).unwrap();
    assert_eq!(db, reloaded);
    std::fs::remove_file(&path).ok();

    // 3. Allocate with the paper pipeline.
    let alloc = DrpCds::new().allocate(&reloaded, 6).unwrap();
    alloc.validate(&reloaded).unwrap();

    // 4. Build the concrete program and simulate a client population.
    let program = BroadcastProgram::new(&reloaded, &alloc, 10.0).unwrap();
    let trace = TraceBuilder::new(&reloaded)
        .requests(5_000)
        .arrival_rate(20.0)
        .seed(6)
        .build()
        .unwrap();
    let report = Simulation::new(&program, &trace).run().unwrap();
    assert_eq!(report.completed(), 5_000);

    // 5. The empirical mean should be in the analytical ballpark.
    let analytical = average_waiting_time(&reloaded, &alloc, 10.0).unwrap().total();
    let rel = (report.waiting().mean() - analytical).abs() / analytical;
    assert!(rel < 0.1, "relative deviation {rel}");
}

#[test]
fn library_surface_supports_dyn_dispatch() {
    // A downstream scheduler holding algorithms behind trait objects.
    let db = WorkloadBuilder::new(30).seed(9).build().unwrap();
    let algos: Vec<Box<dyn ChannelAllocator>> = vec![
        Box::new(DrpCds::new()),
        Box::new(Gopt::new(GoptConfig {
            population: 30,
            max_generations: 40,
            ..GoptConfig::default()
        })),
    ];
    let mut costs = Vec::new();
    for algo in &algos {
        let alloc = algo.allocate(&db, 4).unwrap();
        costs.push((algo.name().to_string(), alloc.total_cost()));
    }
    assert_eq!(costs.len(), 2);
    assert!(costs.iter().all(|(_, c)| *c > 0.0));
}

#[test]
fn bandwidth_scales_waiting_time_linearly() {
    // Doubling bandwidth must halve W_b — a sanity property a
    // deployment would rely on when provisioning channels.
    let db = WorkloadBuilder::new(50).seed(12).build().unwrap();
    let alloc = DrpCds::new().allocate(&db, 5).unwrap();
    let w10 = average_waiting_time(&db, &alloc, 10.0).unwrap().total();
    let w20 = average_waiting_time(&db, &alloc, 20.0).unwrap().total();
    assert!((w10 / w20 - 2.0).abs() < 1e-9);
}

#[test]
fn allocation_serializes_for_external_tooling() {
    // Operations teams export programs as JSON; the allocation type is
    // a stable serde surface.
    let db = WorkloadBuilder::new(20).seed(14).build().unwrap();
    let alloc = DrpCds::new().allocate(&db, 3).unwrap();
    let json = serde_json::to_string(&alloc).unwrap();
    let back: dbcast::model::Allocation = serde_json::from_str(&json).unwrap();
    assert_eq!(alloc, back);
}
