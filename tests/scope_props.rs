//! Property tests for the scope time-series layer:
//!
//! * tiered bins bound their raw samples (min ≤ mean ≤ max, and both
//!   extremes lie inside the global raw range — a spike can never be
//!   manufactured or lost by decimation),
//! * per-bin means are conserved: a completed mid bin's mean equals
//!   the arithmetic mean of exactly the raw samples it covers,
//! * derived counter rates are always non-negative and finite, even
//!   across counter resets,
//! * any store built from randomized snapshots renders a document that
//!   round-trips the strict `/series` validator.

use proptest::prelude::*;

use dbcast_scope::{
    render_store, validate, Sample, ScopeConfig, Series, SeriesKind, SeriesStore,
};

fn gauge_series(values: &[f64]) -> Series {
    let mut series = Series::new(SeriesKind::Gauge, 4096, 4096);
    for (i, &v) in values.iter().enumerate() {
        series.push(Sample { tick: i as u64, wall_ms: i as u64 * 100, value: v });
    }
    series
}

proptest! {
    #[test]
    fn tier_bins_bound_the_raw_window(
        values in prop::collection::vec(-1.0e6f64..1.0e6, 10..200)
    ) {
        let series = gauge_series(&values);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let eps = 1e-9 * hi.abs().max(lo.abs()).max(1.0);
        for bin in series.mid().iter().chain(series.coarse().iter()) {
            prop_assert!(bin.min >= lo - eps, "bin min {} below raw min {lo}", bin.min);
            prop_assert!(bin.max <= hi + eps, "bin max {} above raw max {hi}", bin.max);
            prop_assert!(bin.min <= bin.mean() + eps && bin.mean() <= bin.max + eps,
                "bin mean {} outside [{}, {}]", bin.mean(), bin.min, bin.max);
        }
    }

    #[test]
    fn mid_bin_means_are_conserved(
        values in prop::collection::vec(-1.0e3f64..1.0e3, 10..200)
    ) {
        let series = gauge_series(&values);
        for bin in series.mid().iter() {
            let chunk = &values[bin.start_tick as usize..=bin.end_tick as usize];
            prop_assert_eq!(chunk.len() as u64, bin.count);
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            let eps = 1e-9 * mean.abs().max(1.0);
            prop_assert!((bin.mean() - mean).abs() <= eps,
                "bin mean {} != chunk mean {mean}", bin.mean());
        }
    }

    #[test]
    fn counter_rates_are_non_negative_even_across_resets(
        steps in prop::collection::vec((0u64..500, 0u8..10), 2..100)
    ) {
        // A counter that mostly increments but occasionally (flag 0,
        // ~10% of samples) resets to a small value (process restart),
        // sampled every 100 ms.
        let mut series = Series::new(SeriesKind::Counter, 4096, 4096);
        let mut total = 0u64;
        for (i, &(delta, flag)) in steps.iter().enumerate() {
            total = if flag == 0 { delta } else { total.saturating_add(delta) };
            series.push(Sample {
                tick: i as u64,
                wall_ms: i as u64 * 100,
                value: total as f64,
            });
        }
        let rates = series.rates();
        prop_assert_eq!(rates.len(), steps.len().saturating_sub(1));
        for r in &rates {
            prop_assert!(r.value.is_finite() && r.value >= 0.0,
                "derived rate {} at tick {} is invalid", r.value, r.tick);
        }
    }

    #[test]
    fn randomized_stores_export_valid_documents(
        scrapes in prop::collection::vec(
            (0u64..10_000, -1.0e6f64..1.0e6, 0u64..100_000), 1..60)
    ) {
        let store = SeriesStore::new(ScopeConfig {
            raw_capacity: 16,
            tier_capacity: 8,
            hist_capacity: 8,
            render_raw: 12,
            ..ScopeConfig::default()
        });
        let mut counter = 0u64;
        let mut wall = 0u64;
        // A cumulative histogram built by hand (the scrape path only
        // reads count/sum/buckets from a snapshot).
        let mut bucket_counts = std::collections::BTreeMap::new();
        let (mut hcount, mut hsum) = (0u64, 0u64);
        for (i, &(delta, gauge, obs)) in scrapes.iter().enumerate() {
            counter += delta;
            wall += 100 + delta % 50;
            hcount += 1;
            hsum += obs;
            *bucket_counts.entry(dbcast_obs::metrics::bucket_index(obs)).or_insert(0u64) +=
                1;
            let hist = dbcast_obs::metrics::HistogramSnapshot {
                count: hcount,
                sum: hsum,
                mean: hsum as f64 / hcount as f64,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p95: 0,
                p99: 0,
                buckets: bucket_counts
                    .iter()
                    .map(|(&b, &c)| (dbcast_obs::metrics::bucket_upper_bound(b), c))
                    .collect(),
            };
            let snap = dbcast_obs::snapshot::Snapshot {
                counters: vec![
                    ("serve.ticks".to_string(), i as u64),
                    ("prop.count".to_string(), counter),
                ],
                gauges: vec![("prop.level".to_string(), gauge)],
                histograms: vec![("prop.dist".to_string(), hist)],
                traces: Vec::new(),
            };
            store.append_snapshot(&snap, wall);
        }
        let text = render_store(&store);
        let doc = validate(&text).expect("randomized export validates");
        prop_assert_eq!(doc.tick, scrapes.len() as u64 - 1);
        prop_assert!(doc.series("prop.count").is_some());
    }
}
