//! Integration test: the discrete-event simulator agrees with the
//! analytical model across allocations, parameters and algorithms.

use dbcast::alloc::DrpCds;
use dbcast::baselines::{Flat, Vfk};
use dbcast::model::ChannelAllocator;
use dbcast::sim::validate_against_model;
use dbcast::workload::{SizeDistribution, TraceBuilder, WorkloadBuilder};

fn check(n: usize, k: usize, phi: f64, theta: f64, algo: &dyn ChannelAllocator) {
    let db = WorkloadBuilder::new(n)
        .skewness(theta)
        .sizes(SizeDistribution::Diversity { phi_max: phi })
        .seed(21)
        .build()
        .unwrap();
    let alloc = algo.allocate(&db, k).unwrap();
    let trace = TraceBuilder::new(&db).requests(40_000).seed(22).build().unwrap();
    let report = validate_against_model(&db, &alloc, &trace, 10.0).unwrap();
    assert!(
        report.relative_error() < 0.05,
        "{} at (N={n}, K={k}, phi={phi}, theta={theta}): \
         analytical {:.4} vs empirical {:.4} (err {:.4})",
        algo.name(),
        report.analytical,
        report.empirical,
        report.relative_error()
    );
}

#[test]
fn model_and_simulator_agree_for_drpcds() {
    check(60, 4, 1.0, 0.8, &DrpCds::new());
    check(120, 6, 2.0, 0.8, &DrpCds::new());
}

#[test]
fn model_and_simulator_agree_for_baselines() {
    check(80, 5, 2.0, 0.8, &Flat::new());
    check(80, 5, 2.0, 0.8, &Vfk::new());
}

#[test]
fn model_and_simulator_agree_at_extreme_parameters() {
    check(60, 4, 0.0, 0.4, &DrpCds::new()); // conventional, near-uniform
    check(60, 4, 3.0, 1.6, &DrpCds::new()); // extreme diversity + skew
}

#[test]
fn empirical_ranking_matches_analytical_ranking() {
    // The simulator must reproduce the paper's algorithm ordering, not
    // just each algorithm's own mean.
    let db = WorkloadBuilder::new(100)
        .skewness(0.8)
        .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
        .seed(31)
        .build()
        .unwrap();
    let trace = TraceBuilder::new(&db).requests(40_000).seed(32).build().unwrap();
    let flat_alloc = Flat::new().allocate(&db, 6).unwrap();
    let smart_alloc = DrpCds::new().allocate(&db, 6).unwrap();
    let flat = validate_against_model(&db, &flat_alloc, &trace, 10.0).unwrap();
    let smart = validate_against_model(&db, &smart_alloc, &trace, 10.0).unwrap();
    assert!(smart.empirical < flat.empirical);
    assert!(smart.analytical < flat.analytical);
}
