//! End-to-end telemetry check: with `--features obs`, running the
//! paper's algorithms populates the global registry with DRP split
//! timers, CDS iteration counters and convergence traces, and GOPT
//! generation counts (the ISSUE acceptance criterion).

#![cfg(feature = "obs")]

use dbcast_alloc::DrpCds;
use dbcast_baselines::{Gopt, GoptConfig};
use dbcast_model::ChannelAllocator;
use dbcast_workload::{SizeDistribution, WorkloadBuilder};

#[test]
fn snapshot_captures_drp_cds_and_gopt_telemetry() {
    dbcast_obs::set_enabled(true);
    dbcast_obs::registry().reset();

    let db = WorkloadBuilder::new(30)
        .skewness(0.8)
        .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
        .seed(0)
        .build()
        .expect("valid workload parameters");

    DrpCds::new().allocate(&db, 4).expect("feasible instance");
    Gopt::new(GoptConfig {
        max_generations: 10,
        population: 12,
        seed: 7,
        ..GoptConfig::default()
    })
    .allocate(&db, 4)
    .expect("feasible instance");

    let snap = dbcast_obs::registry().snapshot();

    // DRP: splitting 1 group into 4 takes 3 splits, each under the
    // split-scan span timer.
    let split_scan =
        snap.histogram("alloc.drp.split_scan").expect("span histogram present");
    assert!(split_scan.count >= 3, "expected >= 3 split scans, got {}", split_scan.count);
    assert_eq!(snap.counter("alloc.drp.splits"), Some(3));
    let drp_trace = snap.trace("alloc.drp").expect("DRP trace present");
    assert_eq!(drp_trace.len(), 3);

    // CDS: the refine span always runs. Both DrpCds and GOPT's final
    // polish invoke CDS, so the iteration counter equals the total
    // events across every recorded "alloc.cds" trace, and each trace
    // individually is monotone non-increasing.
    assert!(snap.histogram("alloc.cds.refine").is_some());
    let cds_traces: Vec<_> = snap.traces.iter().filter(|t| t.name == "alloc.cds").collect();
    assert!(!cds_traces.is_empty(), "at least one CDS trace recorded");
    let cds_events: usize = cds_traces.iter().map(|t| t.len()).sum();
    assert_eq!(snap.counter("alloc.cds.iterations"), Some(cds_events as u64));
    for t in &cds_traces {
        assert!(t.is_monotone_non_increasing(1e-9), "CDS trace not monotone: {t:?}");
    }

    // GOPT: one run, its generations counted, best-cost history traced
    // and non-increasing (elitist selection).
    assert_eq!(snap.counter("baselines.gopt.runs"), Some(1));
    assert!(snap.counter("baselines.gopt.generations").unwrap_or(0) >= 1);
    let gopt_trace = snap.trace("baselines.gopt").expect("GOPT trace present");
    assert!(gopt_trace.len() >= 2);
    assert!(gopt_trace.is_monotone_non_increasing(1e-9));

    // The JSON export carries everything above.
    let json = snap.to_json();
    for needle in
        ["alloc.drp.split_scan", "alloc.cds.iterations", "baselines.gopt", "\"version\": 2"]
    {
        assert!(json.contains(needle), "snapshot JSON missing {needle}");
    }
}
