//! Integration test: replay the paper's complete worked example
//! (Tables 2–4) through the public API, end to end.

use dbcast::alloc::{Cds, Drp, DrpCds};
use dbcast::model::ChannelAllocator;
use dbcast::workload::paper;

#[test]
fn table2_profile_loads_with_published_values() {
    let db = paper::table2_profile();
    assert_eq!(db.len(), 15);
    let stats = db.stats();
    assert!((stats.total_frequency - 1.0).abs() < 1e-6);
    assert!((stats.total_size - 135.60).abs() < 0.01);
    // Spot-check two published entries.
    assert_eq!(db.items()[0].frequency(), 0.2374); // d1
    assert_eq!(db.items()[10].size(), 30.62); // d11
}

#[test]
fn table3_full_drp_trace() {
    let db = paper::table2_profile();
    let outcome = Drp::new().allocate_traced(&db, 5).unwrap();

    // Table 3(a): the single initial group, cost 135.60.
    let it0 = &outcome.iterations[0];
    assert_eq!(it0.groups.len(), 1);
    assert!((it0.groups[0].cost - 135.60).abs() < 0.01);
    let order: Vec<usize> = it0.groups[0].members.iter().map(|m| m.index() + 1).collect();
    assert_eq!(order, vec![9, 2, 3, 6, 5, 15, 1, 12, 10, 13, 4, 8, 14, 7, 11]);

    // Table 3(b): first split -> 29.04 / 28.62.
    let it1 = &outcome.iterations[1];
    let costs: Vec<f64> = it1.groups.iter().map(|g| g.cost).collect();
    assert!((costs[0] - 29.04).abs() < 0.01);
    assert!((costs[1] - 28.62).abs() < 0.01);

    // Table 3(c): second split -> 7.02 / 6.82 / 28.62.
    let it2 = &outcome.iterations[2];
    let costs: Vec<f64> = it2.groups.iter().map(|g| g.cost).collect();
    assert!((costs[0] - 7.02).abs() < 0.01);
    assert!((costs[1] - 6.82).abs() < 0.01);
    assert!((costs[2] - 28.62).abs() < 0.01);

    // Table 3(d): final grouping, published member lists and costs.
    let it4 = &outcome.iterations[4];
    let expected: [(&[usize], f64); 5] = [
        (&[9, 2, 3], 2.59),
        (&[6, 5, 15], 1.07),
        (&[1, 12], 6.82),
        (&[10, 13, 4, 8], 7.26),
        (&[14, 7, 11], 6.35),
    ];
    assert_eq!(it4.groups.len(), 5);
    for (group, (members, cost)) in it4.groups.iter().zip(expected) {
        let labels: Vec<usize> = group.members.iter().map(|m| m.index() + 1).collect();
        assert_eq!(labels, members.to_vec());
        assert!((group.cost - cost).abs() < 0.01, "{} vs {cost}", group.cost);
    }
}

#[test]
fn table4_full_cds_trace() {
    let db = paper::table2_profile();
    let rough = Drp::new().allocate(&db, 5).unwrap();
    let outcome = Cds::new().refine(&db, rough).unwrap();

    // Initial cost: paper prints 24.09 (sum of rounded group costs);
    // the exact value is ~24.082.
    assert!((outcome.initial_cost - 24.08).abs() < 0.01);

    // Table 4(b): move d10 from group 4 to group 2, Δc = 0.95.
    let s0 = &outcome.steps[0];
    assert_eq!(s0.mv.item.index() + 1, 10);
    assert_eq!(s0.mv.from.index() + 1, 4);
    assert_eq!(s0.mv.to.index() + 1, 2);
    assert!((s0.reduction - 0.95).abs() < 0.01);

    // Table 4(c): move d12 from group 3 to group 2, Δc = 0.45.
    let s1 = &outcome.steps[1];
    assert_eq!(s1.mv.item.index() + 1, 12);
    assert_eq!(s1.mv.from.index() + 1, 3);
    assert_eq!(s1.mv.to.index() + 1, 2);
    assert!((s1.reduction - 0.45).abs() < 0.01);

    // Table 4(d): local optimum at cost 22.29.
    assert!(outcome.converged);
    assert!((outcome.final_cost() - 22.29).abs() < 0.01);
}

#[test]
fn table4_final_grouping_matches_paper() {
    // Table 4(d): {d9 d2 d3 d6} {d5 d15 d10 d12 d14} {d1} {d13 d4 d8}
    // {d7 d11}.
    let db = paper::table2_profile();
    let outcome = DrpCds::new().allocate_traced(&db, 5).unwrap();
    let final_alloc = outcome.allocation();
    let groups = final_alloc.groups();
    let as_labels = |g: &[dbcast::model::ItemId]| {
        let mut v: Vec<usize> = g.iter().map(|i| i.index() + 1).collect();
        v.sort_unstable();
        v
    };
    let expected: [&[usize]; 5] =
        [&[2, 3, 6, 9], &[5, 10, 12, 14, 15], &[1], &[4, 8, 13], &[7, 11]];
    for (group, want) in groups.iter().zip(expected) {
        assert_eq!(as_labels(group), want.to_vec());
    }
}

#[test]
fn worked_example_waiting_time_is_consistent() {
    // With b = 10, W_b = cost/(2b) + Σfz/b; cross-check the pipeline's
    // cost against the analytical waiting time.
    let db = paper::table2_profile();
    let alloc = DrpCds::new().allocate(&db, 5).unwrap();
    let w = dbcast::model::average_waiting_time(&db, &alloc, 10.0).unwrap();
    let download: f64 = db.iter().map(|d| d.frequency() * d.size()).sum::<f64>() / 10.0;
    assert!((w.probe - 22.29 / 20.0).abs() < 0.001);
    assert!((w.download - download).abs() < 1e-12);
}
