//! Telemetry robustness under concurrency: snapshots taken while
//! writer threads are mid-flight must be internally consistent and
//! JSON-parseable, and `Registry::reset` must leave a clean registry
//! even when racing recorders.
//!
//! Uses `force_add`/`force_record` so the test is meaningful in both
//! feature configurations (the runtime switch is bypassed).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Both tests reset the global registry; hold this across each test
/// body so the harness's parallel threads cannot interleave them.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn snapshots_under_concurrent_recording_are_consistent_and_parse() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let reg = dbcast_obs::registry();
    reg.reset();

    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let ctr = dbcast_obs::registry().counter("concurrency.test.events");
                let hist = dbcast_obs::registry().histogram("concurrency.test.latency");
                let mut v = 1u64 + t;
                while !stop.load(Ordering::Relaxed) {
                    ctr.force_add(1);
                    hist.force_record(v);
                    v = v.wrapping_mul(6364136223846793005).wrapping_add(1) % 10_000 + 1;
                }
            })
        })
        .collect();

    // Consecutive snapshots observe a monotone counter, and every one
    // of them serializes to JSON that the (vendored) parser accepts.
    let mut last = 0u64;
    for _ in 0..20 {
        let snap = reg.snapshot();
        let count = snap.counter("concurrency.test.events").unwrap_or(0);
        assert!(count >= last, "counter went backwards: {count} < {last}");
        last = count;
        if let Some(h) = snap.histogram("concurrency.test.latency") {
            assert!(h.count >= 1);
            // The snapshot reads buckets before the total count (and
            // clamps count up to the bucket sum), so racing writers can
            // only make the count run ahead of the bucket sum — never
            // behind. The exporters rely on this: cumulative bucket
            // lines must never exceed the `+Inf`/`_count` value.
            let bucket_total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
            assert!(h.count >= bucket_total, "count {} < buckets {bucket_total}", h.count);
        }
        let json = snap.to_json();
        let parsed: serde_json::Value =
            serde_json::from_str(&json).expect("snapshot JSON parses");
        assert_eq!(parsed.get("version").and_then(|v| v.as_u64()), Some(2));
    }

    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().expect("writer thread exits cleanly");
    }

    // JSON round-trip: the final quiescent snapshot re-parses with the
    // recorded values intact.
    let snap = reg.snapshot();
    let total = snap.counter("concurrency.test.events").expect("counter present");
    let parsed: serde_json::Value =
        serde_json::from_str(&snap.to_json()).expect("final snapshot parses");
    let counters = parsed.get("counters").expect("counters section");
    assert_eq!(
        counters.get("concurrency.test.events").and_then(|v| v.as_u64()),
        Some(total)
    );

    // Reset with no writers racing leaves everything zeroed...
    reg.reset();
    let snap = reg.snapshot();
    assert_eq!(snap.counter("concurrency.test.events"), Some(0));
    assert_eq!(snap.histogram("concurrency.test.latency").map(|h| h.count), Some(0));

    // ...and a reset racing live recorders never corrupts a snapshot:
    // whatever interleaving happens, the registry still snapshots and
    // serializes cleanly afterwards.
    let stop = Arc::new(AtomicBool::new(false));
    let racer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let ctr = dbcast_obs::registry().counter("concurrency.test.events");
            while !stop.load(Ordering::Relaxed) {
                ctr.force_add(1);
            }
        })
    };
    for _ in 0..10 {
        reg.reset();
        let snap = reg.snapshot();
        serde_json::from_str::<serde_json::Value>(&snap.to_json())
            .expect("snapshot during reset race parses");
    }
    stop.store(true, Ordering::Relaxed);
    racer.join().expect("racer exits cleanly");
    reg.reset();
}

#[test]
fn trace_recording_races_snapshots_and_resets() {
    use dbcast_obs::trace::{ConvergenceTrace, TraceEvent};

    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // record_trace honours the runtime switch; flip it on so the test
    // exercises the real append path when the feature is compiled in
    // (feature-off builds degrade to checking nothing crashes).
    dbcast_obs::set_enabled(true);
    let live = dbcast_obs::enabled();
    let reg = dbcast_obs::registry();
    reg.reset();

    // Bounded writers (a free-running producer would grow the trace
    // list — and the cost of cloning it per snapshot — without limit).
    const PER_WRITER: u64 = 2_000;
    let writers: Vec<_> = (0..3u64)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    let mut trace =
                        ConvergenceTrace::new(format!("concurrency.test.trace{t}"));
                    trace.push(TraceEvent::GoptGeneration {
                        generation: i as usize,
                        best_cost: i as f64,
                    });
                    dbcast_obs::registry().record_trace(trace);
                }
            })
        })
        .collect();

    // Snapshots racing appends (and a couple of resets thrown in) must
    // always clone a consistent trace list and serialize to parseable
    // JSON.
    let mut resets = 0u64;
    for i in 0..30 {
        if i % 10 == 9 {
            reg.reset();
            resets += 1;
        }
        let snap = reg.snapshot();
        for t in &snap.traces {
            assert!(t.name.starts_with("concurrency.test.trace"), "{}", t.name);
            assert_eq!(t.len(), 1);
        }
        serde_json::from_str::<serde_json::Value>(&snap.to_json())
            .expect("snapshot with traces parses");
    }

    for w in writers {
        w.join().expect("writer exits cleanly");
    }
    let snap = reg.snapshot();
    if live {
        // Every append either survived to the final snapshot or was
        // discarded by one of the interleaved resets — never corrupted.
        assert!(
            snap.traces.len() as u64 <= 3 * PER_WRITER,
            "{} traces from {} appends",
            snap.traces.len(),
            3 * PER_WRITER
        );
        assert!(resets > 0);
    } else {
        assert!(snap.traces.is_empty(), "feature-off build recorded traces");
    }
    reg.reset();
    assert!(reg.snapshot().traces.is_empty());
}
