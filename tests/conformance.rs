//! Workspace-level conformance: degenerate workloads across every
//! allocator, corpus replay, and a seeded end-to-end harness run.

use dbcast::conformance::{
    load_corpus, standard_subjects, CheckConfig, Harness, HarnessConfig, Instance,
    ItemFeatures,
};
use dbcast::model::AllocError;

/// The degenerate shapes from the issue checklist, as explicit
/// hand-written instances (the generator also draws them randomly; this
/// pins each one unconditionally).
fn degenerate_instances() -> Vec<(&'static str, Instance)> {
    let f = |frequency, size| ItemFeatures { frequency, size };
    vec![
        ("n-less-than-k", Instance::manual(vec![f(0.6, 3.0), f(0.4, 7.0)], 5)),
        (
            "all-equal-frequencies",
            Instance::manual((0..8).map(|i| f(1.0, 1.0 + i as f64)).collect(), 3),
        ),
        (
            "single-dominant-item",
            Instance::manual(
                std::iter::once(f(0.97, 50.0))
                    .chain((0..6).map(|_| f(0.005, 2.0)))
                    .collect(),
                3,
            ),
        ),
        (
            "zero-cost-channels",
            // More channels than high-cost items: optimal layouts leave
            // channels holding only floor-sized (near-zero-cost) items.
            Instance::manual(
                vec![f(0.5, 10.0), f(0.3, 1e-9), f(0.1, 1e-9), f(0.1, 1e-9)],
                4,
            ),
        ),
        ("single-item", Instance::manual(vec![f(1.0, 5.0)], 2)),
    ]
}

/// Every degenerate shape runs the full invariant suite over the whole
/// registry: no panics, and per the model contract each allocator
/// either returns exactly `K` (possibly empty-tail) groups or the typed
/// `Infeasible` rejection.
#[test]
fn degenerate_workloads_conform_across_all_allocators() {
    let subjects = standard_subjects(7);
    for (label, instance) in degenerate_instances() {
        let violations = dbcast::conformance::check_instance(
            &instance,
            &subjects,
            &CheckConfig::default(),
        );
        assert!(violations.is_empty(), "{label}: {violations:?}");
    }
}

/// The `K` > `N` split, asserted directly (not just through the
/// harness): partition-style allocators reject with `Infeasible`, the
/// rest succeed with exactly `K` groups and `K - N` of them empty.
#[test]
fn k_greater_than_n_is_typed_per_allocator() {
    let instance = Instance::manual(
        vec![
            ItemFeatures { frequency: 0.6, size: 3.0 },
            ItemFeatures { frequency: 0.4, size: 7.0 },
        ],
        5,
    );
    let db = instance.database().unwrap();
    for subject in standard_subjects(7) {
        let outcome = subject.allocator.allocate(&db, instance.channels);
        if subject.requires_k_le_n {
            assert!(
                matches!(outcome, Err(AllocError::Infeasible { .. })),
                "{} must reject K > N with Infeasible, got {outcome:?}",
                subject.name()
            );
        } else {
            let alloc = outcome.unwrap_or_else(|e| {
                panic!("{} must accept K > N, got {e}", subject.name())
            });
            assert_eq!(alloc.channels(), 5, "{}", subject.name());
            assert_eq!(alloc.empty_channels(), 3, "{}", subject.name());
        }
    }
}

/// The committed regression corpus replays clean against the standard
/// registry; stale `ignore` flags are reported as failures too, so the
/// corpus cannot silently rot.
#[test]
fn regression_corpus_replays_clean() {
    let corpus = load_corpus(&dbcast::conformance::corpus::default_dir())
        .expect("corpus directory must parse");
    assert!(!corpus.is_empty(), "the committed corpus disappeared");
    let harness = Harness::new(HarnessConfig { shrink: false, ..Default::default() });
    let (regressions, fixed) = harness.replay(&corpus);
    assert!(regressions.is_empty(), "corpus regressions: {regressions:?}");
    assert!(fixed.is_empty(), "entries {fixed:?} no longer fail; remove their ignore flag");
}

/// The issue's acceptance run, scaled down for the test suite: a seeded
/// end-to-end fuzzing pass over the full registry must be clean. The CI
/// conformance job runs the full `--seed 42 --cases 500` via the CLI.
#[test]
fn seeded_harness_run_is_clean() {
    let report = Harness::new(HarnessConfig {
        seed: 42,
        cases: 60,
        sim_stride: 30,
        ..Default::default()
    })
    .run();
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.oracle_cases > 0);
    assert!(report.sim_cases > 0);
}
