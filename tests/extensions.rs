//! Integration tests for the extension crates (heterogeneous
//! bandwidths, replication, dynamic maintenance) working together with
//! the core pipeline and the simulator.

use dbcast::alloc::{DrpCds, DynamicBroadcast};
use dbcast::hetero::{hetero_waiting_time, Bandwidths, HeteroDrpCds};
use dbcast::model::{Allocation, BroadcastProgram, ChannelAllocator};
use dbcast::replication::{approx_waiting_time, GreedyReplicator, ReplicatedAllocation};
use dbcast::sim::Simulation;
use dbcast::workload::{SizeDistribution, TraceBuilder, WorkloadBuilder};

#[test]
fn hetero_pipeline_dominates_oblivious_as_spread_grows() {
    let db = WorkloadBuilder::new(80).seed(41).build().unwrap();
    let mut last_improvement = -1.0;
    for spread in [1.0f64, 4.0, 16.0] {
        let k = 4;
        let ratio = spread.powf(1.0 / 3.0);
        let mut raw: Vec<f64> = (0..k).map(|i| ratio.powi(i as i32)).collect();
        let mean: f64 = raw.iter().sum::<f64>() / k as f64;
        for b in &mut raw {
            *b *= 10.0 / mean;
        }
        let bw = Bandwidths::try_new(raw).unwrap();
        let oblivious = DrpCds::new().allocate(&db, k).unwrap();
        let w_obl = hetero_waiting_time(&db, &oblivious, &bw).unwrap();
        let aware = HeteroDrpCds::new(bw.clone()).allocate(&db).unwrap();
        let w_aware = hetero_waiting_time(&db, &aware, &bw).unwrap();
        assert!(w_aware <= w_obl + 1e-9, "spread {spread}");
        let improvement = (w_obl - w_aware) / w_obl;
        assert!(
            improvement >= last_improvement - 0.02,
            "improvement should grow with spread: {improvement} after {last_improvement}"
        );
        last_improvement = improvement;
    }
}

#[test]
fn hetero_waiting_time_matches_simulation_via_scaled_programs() {
    // The simulator assumes one shared bandwidth, so validate the
    // heterogeneous analytical model channel by channel: each channel
    // of the heterogeneous system behaves exactly like a single-channel
    // homogeneous system at its own bandwidth.
    let db = WorkloadBuilder::new(30).seed(42).build().unwrap();
    let bw = Bandwidths::try_new(vec![25.0, 10.0, 5.0]).unwrap();
    let alloc = HeteroDrpCds::new(bw.clone()).allocate(&db).unwrap();
    let w_model = hetero_waiting_time(&db, &alloc, &bw).unwrap();

    // Reconstruct W_b from per-channel homogeneous models.
    let mut reconstructed = 0.0;
    for (ch, stats) in alloc.all_channel_stats().iter().enumerate() {
        if stats.items == 0 {
            continue;
        }
        let b = bw.get(ch);
        let mut weighted_download = 0.0;
        for (item, &c) in alloc.assignment().iter().enumerate() {
            if c == ch {
                let d = &db.items()[item];
                weighted_download += d.frequency() * d.size();
            }
        }
        reconstructed += stats.frequency * stats.size / (2.0 * b) + weighted_download / b;
    }
    assert!((w_model - reconstructed).abs() < 1e-9);
}

#[test]
fn replication_recovers_much_of_the_reallocation_gain() {
    let db = WorkloadBuilder::new(60)
        .skewness(1.2)
        .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
        .seed(43)
        .build()
        .unwrap();
    let trace = TraceBuilder::new(&db).requests(25_000).seed(44).build().unwrap();
    let k = 5;
    let legacy =
        Allocation::from_assignment(&db, k, (0..60).map(|i| i % k).collect()).unwrap();
    let ideal = DrpCds::new().allocate(&db, k).unwrap();
    let replicated = GreedyReplicator::new().replicate(&db, legacy.clone(), 10.0).unwrap();

    let sim =
        |p: &BroadcastProgram| Simulation::new(p, &trace).run().unwrap().waiting().mean();
    let w_legacy = sim(&BroadcastProgram::new(&db, &legacy, 10.0).unwrap());
    let w_ideal = sim(&BroadcastProgram::new(&db, &ideal, 10.0).unwrap());
    let w_repl = sim(&replicated.allocation.to_program(&db, 10.0).unwrap());

    assert!(w_ideal < w_repl && w_repl < w_legacy);
    let recovered = (w_legacy - w_repl) / (w_legacy - w_ideal);
    assert!(
        recovered > 0.3,
        "replication should recover a sizable fraction: {recovered:.2}"
    );
}

#[test]
fn replication_approximation_is_exact_without_replicas_everywhere() {
    for seed in [45u64, 46, 47] {
        let db = WorkloadBuilder::new(40).seed(seed).build().unwrap();
        let alloc = DrpCds::new().allocate(&db, 4).unwrap();
        let plain = ReplicatedAllocation::new(alloc.clone());
        let approx = approx_waiting_time(&db, &plain, 10.0).unwrap();
        let exact = dbcast::model::average_waiting_time(&db, &alloc, 10.0).unwrap().total();
        assert!((approx - exact).abs() < 1e-6);
    }
}

#[test]
fn dynamic_catalogue_tracks_offline_quality_through_churn() {
    // Start from an offline optimum, then churn: remove items, insert
    // items, spike weights. The maintained cost must stay within 15% of
    // a from-scratch DRP-CDS on the final snapshot.
    let db = WorkloadBuilder::new(50).seed(48).build().unwrap();
    let offline = DrpCds::new().allocate(&db, 4).unwrap();
    let (mut live, handles) = DynamicBroadcast::from_allocation(&db, &offline).unwrap();
    let live = {
        live = live.with_repair_budget(12);
        // Remove a third of the catalogue.
        for h in handles.iter().step_by(3) {
            live.remove(*h).unwrap();
        }
        // Insert fresh items.
        for i in 0..15 {
            live.insert(0.01 + 0.002 * i as f64, 1.0 + (i * 7 % 40) as f64).unwrap();
        }
        // Popularity spike on a survivor.
        let survivor = handles[1];
        live.update_weight(survivor, 0.5).unwrap();
        live
    };
    let (snap_db, snap_alloc) = live.snapshot().unwrap();
    let fresh = DrpCds::new().allocate(&snap_db, 4).unwrap();
    let maintained = snap_alloc.total_cost();
    let recomputed = fresh.total_cost();
    assert!(
        maintained <= recomputed * 1.15,
        "maintained {maintained} vs recomputed {recomputed}"
    );
}

#[test]
fn dynamic_reoptimize_closes_the_gap() {
    let mut live = DynamicBroadcast::new(4).with_repair_budget(1);
    let mut state = 77u64;
    for _ in 0..60 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let w = ((state >> 33) % 1000 + 1) as f64;
        let z = ((state >> 13) % 200 + 1) as f64;
        live.insert(w, z).unwrap();
    }
    let before = live.cost();
    let gain = live.reoptimize().unwrap();
    assert!(gain >= 0.0);
    assert!(live.cost() <= before);
    // After reoptimize + full repair, another repair finds nothing.
    let mut live = live.with_repair_budget(64);
    live.repair();
    let outcome = live.repair();
    assert!(outcome.converged());
    assert_eq!(outcome.stats().moves, 0);
}

#[test]
fn replicated_programs_simulate_with_all_engine_invariants() {
    // Cross-cutting: the event engine handles overlapping programs
    // (3 events per request, monotone clock, all requests complete).
    let db = WorkloadBuilder::new(30).skewness(1.0).seed(49).build().unwrap();
    let base =
        Allocation::from_assignment(&db, 3, (0..30).map(|i| i % 3).collect()).unwrap();
    let out = GreedyReplicator::new().replicate(&db, base, 10.0).unwrap();
    let program = out.allocation.to_program(&db, 10.0).unwrap();
    let trace = TraceBuilder::new(&db).requests(5_000).seed(50).build().unwrap();
    let report = Simulation::new(&program, &trace).run().unwrap();
    assert_eq!(report.completed(), 5_000);
    assert_eq!(report.events_processed(), 15_000);
    for r in report.records() {
        assert!(r.probe_time() >= -1e-12);
        assert!(r.download_time() > 0.0);
    }
}
