//! Property-based tests over the core data structures and algorithms.

use dbcast::alloc::{best_split, Cds, Drp, DrpCds};
use dbcast::baselines::{ContiguousDp, Flat, Greedy, Vfk};
use dbcast::model::{
    allocation_cost, Allocation, ChannelAllocator, ChannelId, Database, ItemId, ItemSpec,
    Move,
};
use proptest::prelude::*;

/// Strategy: a database of 1..=40 items with positive finite features.
fn db_strategy() -> impl Strategy<Value = Database> {
    prop::collection::vec((0.01f64..10.0, 0.1f64..1000.0), 1..40).prop_map(|pairs| {
        Database::try_from_specs(pairs.into_iter().map(|(f, z)| ItemSpec::new(f, z)))
            .expect("strategy produces valid specs")
    })
}

/// Strategy: database plus a feasible channel count `1..=N`.
fn db_and_channels() -> impl Strategy<Value = (Database, usize)> {
    db_strategy().prop_flat_map(|db| {
        let n = db.len();
        (Just(db), 1..=n)
    })
}

proptest! {
    #[test]
    fn frequencies_always_normalized(db in db_strategy()) {
        let sum: f64 = db.iter().map(|d| d.frequency()).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn every_allocator_produces_a_valid_partition((db, k) in db_and_channels()) {
        let algos: Vec<Box<dyn ChannelAllocator>> = vec![
            Box::new(Flat::new()),
            Box::new(Vfk::new()),
            Box::new(Greedy::new()),
            Box::new(Drp::new()),
            Box::new(DrpCds::new()),
            Box::new(ContiguousDp::new()),
        ];
        for algo in &algos {
            let alloc = algo.allocate(&db, k).unwrap();
            prop_assert_eq!(alloc.channels(), k);
            prop_assert_eq!(alloc.items(), db.len());
            alloc.validate(&db).unwrap();
        }
    }

    #[test]
    fn incremental_cost_matches_reference((db, k) in db_and_channels()) {
        let alloc = Drp::new().allocate(&db, k).unwrap();
        let reference = allocation_cost(&db, k, alloc.assignment()).unwrap();
        prop_assert!((alloc.total_cost() - reference).abs() < 1e-9);
    }

    #[test]
    fn eq4_delta_matches_recomputed_cost(
        (db, k) in db_and_channels(),
        item_sel in 0usize..1000,
        to_sel in 0usize..1000,
    ) {
        prop_assume!(k >= 2);
        let mut alloc = Flat::new().allocate(&db, k).unwrap();
        let item = ItemId::new(item_sel % db.len());
        let from = alloc.channel_of(item).unwrap();
        let to = ChannelId::new(to_sel % k);
        prop_assume!(from != to);
        let mv = Move { item, from, to };
        let predicted = alloc.move_reduction(mv).unwrap();
        let before = alloc.total_cost();
        alloc.apply_move(mv).unwrap();
        let realized = before - alloc.total_cost();
        prop_assert!((predicted - realized).abs() < 1e-9);
        alloc.validate(&db).unwrap();
    }

    #[test]
    fn cds_never_increases_cost_and_reaches_local_optimum((db, k) in db_and_channels()) {
        let rough = Drp::new().allocate(&db, k).unwrap();
        let before = rough.total_cost();
        let outcome = Cds::new().refine(&db, rough).unwrap();
        prop_assert!(outcome.final_cost() <= before + 1e-9);
        prop_assert!(outcome.converged);
        // Local optimum: every possible single move is non-improving.
        let alloc = &outcome.allocation;
        for item in 0..db.len() {
            let id = ItemId::new(item);
            let from = alloc.channel_of(id).unwrap();
            for ch in 0..k {
                let to = ChannelId::new(ch);
                if to == from { continue; }
                let delta = alloc.move_reduction(Move { item: id, from, to }).unwrap();
                prop_assert!(delta <= 1e-9, "improving move left: {delta}");
            }
        }
    }

    #[test]
    fn best_split_beats_every_other_split(
        pairs in prop::collection::vec((0.01f64..5.0, 0.1f64..100.0), 2..30)
    ) {
        let n = pairs.len();
        let mut pf = vec![0.0]; let mut pz = vec![0.0];
        for &(f, z) in &pairs {
            pf.push(pf.last().unwrap() + f);
            pz.push(pz.last().unwrap() + z);
        }
        let split = best_split(&pf, &pz, 0..n).unwrap();
        for p in 1..n {
            let left = (pf[p] - pf[0]) * (pz[p] - pz[0]);
            let right = (pf[n] - pf[p]) * (pz[n] - pz[p]);
            prop_assert!(split.total_cost() <= left + right + 1e-9);
        }
    }

    #[test]
    fn splitting_never_increases_cost((db, k) in db_and_channels()) {
        // Superadditivity of F·Z: DRP's cost trace is non-increasing,
        // so the K-channel cost is at most the 1-channel cost.
        let one = Drp::new().allocate(&db, 1).unwrap().total_cost();
        let many = Drp::new().allocate(&db, k).unwrap().total_cost();
        prop_assert!(many <= one + 1e-9);
    }

    #[test]
    fn waiting_time_decomposition_is_exact((db, k) in db_and_channels()) {
        let alloc = DrpCds::new().allocate(&db, k).unwrap();
        let w = dbcast::model::average_waiting_time(&db, &alloc, 10.0).unwrap();
        prop_assert!((w.probe - alloc.total_cost() / 20.0).abs() < 1e-9);
        let download: f64 = db.iter().map(|d| d.frequency() * d.size()).sum::<f64>() / 10.0;
        prop_assert!((w.download - download).abs() < 1e-9);
        prop_assert!((w.total() - w.probe - w.download).abs() < 1e-12);
    }

    #[test]
    fn groups_roundtrip_through_allocation((db, k) in db_and_channels()) {
        let alloc = Greedy::new().allocate(&db, k).unwrap();
        let rebuilt = Allocation::from_groups(&db, &alloc.groups()).unwrap();
        prop_assert_eq!(alloc.assignment(), rebuilt.assignment());
    }

    #[test]
    fn program_response_times_respect_eq1_bounds((db, k) in db_and_channels()) {
        // For any request time, response <= cycle + size/b and >= size/b.
        let alloc = Drp::new().allocate(&db, k).unwrap();
        let program = dbcast::model::BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        for item in db.iter().take(5) {
            let (schedule, slot) = program.locate(item.id()).unwrap();
            for t in [0.0, 0.37, 1.91, 12.3] {
                let r = program.response_time(item.id(), t).unwrap();
                let download = slot.size / 10.0;
                let cycle = schedule.cycle_size() / 10.0;
                prop_assert!(r >= download - 1e-9);
                prop_assert!(r <= cycle + download + 1e-9);
            }
        }
    }
}
