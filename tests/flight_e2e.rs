//! End-to-end flight recorder / exposition / SLO acceptance tests:
//!
//! * a live `/metrics` scrape taken while a paced, threaded serve run
//!   is in flight parses as OpenMetrics and shows monotone serve
//!   counters across scrapes,
//! * an injected panic produces a postmortem JSON carrying a deep
//!   flight-event history including the drift and swap events that
//!   preceded the fault,
//! * the online SLO tracker's observed mean for a stationary workload
//!   lands within tolerance of the Eq. 2 prediction `W_b`,
//! * `docs/METRICS.md` is exactly the generated catalogue, and every
//!   metric the runtime records is catalogued.
//!
//! The flight ring, postmortem machinery and SLO tracker are always-on;
//! only the *content* of metric scrapes needs the `obs` feature, so
//! those assertions are gated on `dbcast_obs::enabled()`.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Mutex;

use dbcast_serve::{
    poisson_trace, shifted_trace, shifted_workload, DriftDetector, EstimatorConfig,
    RepairMode, ServeConfig, ServeRuntime, SloConfig, WorkerMode,
};

/// The global registry and flight ring are process-wide; serialize the
/// tests that assert on their contents.
static GLOBAL_STATE_LOCK: Mutex<()> = Mutex::new(());

fn db() -> dbcast_model::Database {
    dbcast_workload::WorkloadBuilder::new(80)
        .skewness(0.8)
        .sizes(dbcast_workload::SizeDistribution::Diversity { phi_max: 2.0 })
        .seed(3)
        .build()
        .expect("workload builds")
}

fn base_config() -> ServeConfig {
    ServeConfig {
        channels: 5,
        bandwidth: 10.0,
        estimator: EstimatorConfig::default(),
        detector: DriftDetector { threshold: 0.25, min_observations: 200 },
        repair: RepairMode::Full,
        worker: WorkerMode::Deterministic,
        max_ticks: None,
        slo: None,
        pace_ms: 0,
        inject_panic_at_tick: None,
        audit: dbcast_serve::AuditConfig::default(),
        inject_slow_channel: None,
        inject_slow_factor: 1.0,
    }
}

/// Minimal HTTP GET against the exposition server: one `write_all`,
/// read to EOF, return the body after the header terminator.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to exposition server");
    let request =
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    assert!(head.starts_with("HTTP/1.1 200"), "non-200 for {path}: {head}");
    body.to_string()
}

#[test]
fn live_scrape_during_threaded_run_parses_and_counters_are_monotone() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dbcast_obs::set_enabled(true);
    let live = dbcast_obs::enabled();
    dbcast_obs::registry().reset();

    let db = db();
    let post = shifted_workload(&db, 1.2, db.len() / 2).expect("shifted workload");
    let trace = shifted_trace(&db, &post, 2000, 2000, 10.0, 5).expect("trace builds");
    let config = ServeConfig {
        worker: WorkerMode::Threaded,
        pace_ms: 10,
        slo: Some(SloConfig { tolerance: 0.5, ..SloConfig::default() }),
        ..base_config()
    };

    let server = dbcast_flight::ExpositionServer::bind(
        "127.0.0.1:0",
        Box::new(|| String::from("{\"command\": \"flight-e2e\"}")),
    )
    .expect("bind exposition server");
    let addr = server.addr();

    let runtime = ServeRuntime::new(&db, config).expect("runtime builds");
    let run = std::thread::spawn(move || runtime.run(&trace));

    // Scrape while the paced run is in flight; every scrape must parse,
    // and the tick counter must never go backwards.
    let mut ticks_seen: Vec<f64> = Vec::new();
    let mut scrapes = 0usize;
    while !run.is_finished() {
        let body = http_get(addr, "/metrics");
        let families = dbcast_obs::openmetrics::parse(&body)
            .expect("mid-run scrape is valid OpenMetrics");
        if let Some(t) =
            dbcast_obs::openmetrics::sample_value(&families, "serve_ticks_total")
        {
            ticks_seen.push(t);
        }
        scrapes += 1;
        std::thread::sleep(std::time::Duration::from_millis(15));
    }
    let report = run.join().expect("run thread").expect("run succeeds");
    assert!(scrapes > 0, "run finished before a single scrape");

    // Two post-run scrapes guarantee at least two data points even on a
    // machine that raced through the paced loop.
    for _ in 0..2 {
        let body = http_get(addr, "/metrics");
        let families =
            dbcast_obs::openmetrics::parse(&body).expect("post-run scrape parses");
        if live {
            let t = dbcast_obs::openmetrics::sample_value(&families, "serve_ticks_total")
                .expect("serve_ticks_total exposed");
            ticks_seen.push(t);
            let served =
                dbcast_obs::openmetrics::sample_value(&families, "serve_requests_total")
                    .expect("serve_requests_total exposed");
            assert_eq!(served as u64, report.requests);
        }
    }
    if live {
        assert!(ticks_seen.len() >= 2);
        assert!(
            ticks_seen.windows(2).all(|w| w[1] >= w[0]),
            "serve_ticks_total went backwards: {ticks_seen:?}"
        );
        assert_eq!(*ticks_seen.last().unwrap() as u64, report.ticks);
    }

    // The other two endpoints serve consistent JSON.
    let status = http_get(addr, "/status");
    assert!(status.contains("flight-e2e"), "status body: {status}");
    let flight = http_get(addr, "/flight");
    assert!(flight.contains("\"events\""), "flight body: {flight}");

    assert!(report.swaps >= 1, "shifted workload should hot-swap");
    drop(server); // Drop shuts the listener down.
    assert!(TcpStream::connect(addr).is_err(), "server still listening after drop");
}

#[test]
fn injected_panic_dumps_a_postmortem_with_deep_history() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join("dbcast_flight_e2e_postmortem");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create postmortem dir");
    dbcast_flight::postmortem::set_dir(Some(dir.clone()));
    dbcast_flight::postmortem::install_panic_hook();

    let db = db();
    let post = shifted_workload(&db, 1.2, db.len() / 2).expect("shifted workload");
    // Shift early so drift fires and a swap publishes well before the
    // injected fault at tick 30.
    let trace = shifted_trace(&db, &post, 1200, 2800, 10.0, 9).expect("trace builds");
    let config = ServeConfig { inject_panic_at_tick: Some(30), ..base_config() };
    let runtime = ServeRuntime::new(&db, config).expect("runtime builds");
    let result = std::thread::spawn(move || runtime.run(&trace)).join();
    assert!(result.is_err(), "injected fault must panic the run");

    // Disarm before asserting so a failure below cannot re-dump.
    dbcast_flight::postmortem::set_dir(None);

    let dump = std::fs::read_dir(&dir)
        .expect("read postmortem dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("postmortem-") && n.ends_with(".json"))
        })
        .expect("panic hook wrote a postmortem dump");
    let body = std::fs::read_to_string(&dump).expect("read dump");
    let doc: serde_json::Value = serde_json::from_str(&body).expect("dump is JSON");

    let reason = doc.get("reason").and_then(|v| v.as_str()).expect("reason");
    assert!(reason.contains("injected fault at tick 30"), "reason: {reason}");

    let events = doc.get("events").and_then(|v| v.as_seq()).expect("events");
    assert!(events.len() >= 64, "only {} events in the dump", events.len());
    let kinds: Vec<&str> =
        events.iter().filter_map(|e| e.get("kind").and_then(|k| k.as_str())).collect();
    for expected in ["tick", "request_served", "drift_score", "swap_publish", "fault"] {
        assert!(kinds.contains(&expected), "no {expected} event before the fault");
    }
    assert_eq!(kinds.last(), Some(&"fault"), "fault must be the final event");

    // The metrics snapshot rode along (contents need the obs feature).
    assert!(doc.get("metrics").is_some(), "no metrics snapshot in the dump");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stationary_slo_observed_mean_matches_eq2_prediction() {
    // This run records into the process-global registry when obs is
    // enabled, so it must not overlap the live-scrape test's counters.
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let db = db();
    // Stationary Poisson arrivals drawn from the db's own frequencies:
    // the workload the initial allocation was optimized for, so the
    // measured mean wait should track the analytical W_b of Eq. 2.
    let trace = poisson_trace(&db, 10.0, 6000, 17).expect("trace builds");
    let tolerance = 0.25;
    let config = ServeConfig {
        // No drift machinery in the way: one generation end to end.
        detector: DriftDetector { threshold: 10.0, min_observations: u64::MAX },
        slo: Some(SloConfig { tolerance, ..SloConfig::default() }),
        ..base_config()
    };
    let runtime = ServeRuntime::new(&db, config).expect("runtime builds");
    let report = runtime.run(&trace).expect("run succeeds");

    assert_eq!(report.swaps, 0);
    let slo = report.generations[0].slo.as_ref().expect("SLO report finalized");
    assert!(slo.target_wait > 0.0);
    assert_eq!(slo.requests, report.requests);
    let rel = (slo.observed_mean - slo.target_wait).abs() / slo.target_wait;
    assert!(
        slo.within_tolerance && rel <= tolerance,
        "observed mean {:.4} vs Eq.2 target {:.4} (relative error {rel:.3} > {tolerance})",
        slo.observed_mean,
        slo.target_wait
    );
}

#[test]
fn metrics_docs_match_the_generated_catalogue() {
    let generated = dbcast_obs::catalog::markdown();
    let committed =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/METRICS.md"))
            .expect("docs/METRICS.md exists (regenerate: dbcast flight catalog)");
    assert_eq!(
        committed, generated,
        "docs/METRICS.md is stale; regenerate with `dbcast flight catalog > docs/METRICS.md`"
    );
}

#[test]
fn every_recorded_metric_is_catalogued() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dbcast_obs::set_enabled(true);

    // Drive a representative run so the registry holds the serve-layer
    // names (interning happens at runtime construction).
    let db = db();
    let trace = poisson_trace(&db, 10.0, 500, 1).expect("trace builds");
    let runtime = ServeRuntime::new(
        &db,
        ServeConfig { slo: Some(SloConfig::default()), ..base_config() },
    )
    .expect("runtime builds");
    runtime.run(&trace).expect("run succeeds");

    let snap = dbcast_obs::registry().snapshot();
    let names = snap
        .counters
        .iter()
        .map(|(n, _)| n)
        .chain(snap.gauges.iter().map(|(n, _)| n))
        .chain(snap.histograms.iter().map(|(n, _)| n));
    for name in names {
        if name.contains(".test.") {
            continue; // Synthetic names minted by tests.
        }
        assert!(
            dbcast_obs::catalog::describe(name).is_some(),
            "metric {name:?} is not in dbcast_obs::catalog::CATALOG"
        );
    }

    // The audit tracer's metrics are part of the catalogue contract:
    // they must actually be recorded by a serve run (not just described)
    // so `dbcast top` and the CI drills can rely on them.
    let counter_names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
    for required in
        ["serve.audit.sampled", "serve.audit.tail_sampled", "serve.audit.straddled"]
    {
        assert!(
            counter_names.contains(&required),
            "audit counter {required:?} was not recorded by the serve run"
        );
        assert!(dbcast_obs::catalog::describe(required).is_some());
    }
    assert!(
        snap.gauges.iter().any(|(n, _)| n.starts_with("serve.audit.residual.")),
        "no serve.audit.residual.<i> gauge was recorded by the serve run"
    );
    assert!(dbcast_obs::catalog::describe("serve.audit.residual.0").is_some());
}
