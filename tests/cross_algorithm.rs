//! Integration test: the quality ordering between algorithms the
//! paper's evaluation relies on, checked across many seeded workloads.

use dbcast::alloc::{Drp, DrpCds};
use dbcast::baselines::{ContiguousDp, ExactBnB, Flat, Gopt, GoptConfig, Greedy, Vfk};
use dbcast::model::{ChannelAllocator, Database};
use dbcast::workload::{SizeDistribution, WorkloadBuilder};

fn workloads(n: usize, phi: f64, theta: f64, seeds: std::ops::Range<u64>) -> Vec<Database> {
    seeds
        .map(|s| {
            WorkloadBuilder::new(n)
                .skewness(theta)
                .sizes(SizeDistribution::Diversity { phi_max: phi })
                .seed(s)
                .build()
                .unwrap()
        })
        .collect()
}

fn mean_cost(algo: &dyn ChannelAllocator, dbs: &[Database], k: usize) -> f64 {
    dbs.iter().map(|db| algo.allocate(db, k).unwrap().total_cost()).sum::<f64>()
        / dbs.len() as f64
}

#[test]
fn exact_lower_bounds_every_heuristic_on_small_instances() {
    let exact = ExactBnB::new();
    let heuristics: Vec<Box<dyn ChannelAllocator>> = vec![
        Box::new(Flat::new()),
        Box::new(Vfk::new()),
        Box::new(Greedy::new()),
        Box::new(Drp::new()),
        Box::new(DrpCds::new()),
        Box::new(ContiguousDp::new()),
    ];
    for seed in 0..8 {
        let db = WorkloadBuilder::new(11).seed(seed).build().unwrap();
        let optimum = exact.allocate(&db, 3).unwrap().total_cost();
        for algo in &heuristics {
            let cost = algo.allocate(&db, 3).unwrap().total_cost();
            assert!(
                cost >= optimum - 1e-9,
                "{} beat the exact optimum on seed {seed}: {cost} < {optimum}",
                algo.name()
            );
        }
    }
}

#[test]
fn drpcds_is_close_to_exact_optimum() {
    // The paper reports ~3% error vs the (near-)global optimum.
    let mut total_gap = 0.0;
    let trials = 8;
    for seed in 0..trials {
        let db = WorkloadBuilder::new(12).seed(seed).build().unwrap();
        let optimum = ExactBnB::new().allocate(&db, 4).unwrap().total_cost();
        let heuristic = DrpCds::new().allocate(&db, 4).unwrap().total_cost();
        total_gap += heuristic / optimum - 1.0;
    }
    let mean_gap = total_gap / trials as f64;
    assert!(mean_gap < 0.05, "mean DRP-CDS optimality gap {mean_gap:.4} exceeds 5%");
}

#[test]
fn paper_ordering_holds_in_the_diverse_environment() {
    // Figure 2/4 ordering at Φ = 2: FLAT ≥ VF^K ≥ DRP ≥ DRP-CDS.
    let dbs = workloads(80, 2.0, 0.8, 0..10);
    let k = 6;
    let flat = mean_cost(&Flat::new(), &dbs, k);
    let vfk = mean_cost(&Vfk::new(), &dbs, k);
    let drp = mean_cost(&Drp::new(), &dbs, k);
    let drpcds = mean_cost(&DrpCds::new(), &dbs, k);
    assert!(flat > vfk, "FLAT {flat} should exceed VF^K {vfk}");
    assert!(vfk > drp, "VF^K {vfk} should exceed DRP {drp}");
    assert!(drp >= drpcds - 1e-9, "DRP {drp} should not beat DRP-CDS {drpcds}");
}

#[test]
fn vfk_matches_drpcds_in_the_conventional_environment() {
    // Figure 4 at Φ = 0: size-blind VF^K is near-optimal.
    let dbs = workloads(80, 0.0, 0.8, 0..10);
    let vfk = mean_cost(&Vfk::new(), &dbs, 6);
    let drpcds = mean_cost(&DrpCds::new(), &dbs, 6);
    assert!(
        (vfk - drpcds).abs() / drpcds < 0.05,
        "at Phi = 0, VF^K {vfk} and DRP-CDS {drpcds} should be within 5%"
    );
}

#[test]
fn gopt_tracks_the_best_heuristic() {
    let gopt = Gopt::new(GoptConfig {
        population: 60,
        max_generations: 150,
        stagnation_limit: 40,
        ..GoptConfig::default()
    });
    let dbs = workloads(40, 2.0, 0.8, 0..5);
    let g = mean_cost(&gopt, &dbs, 4);
    let d = mean_cost(&DrpCds::new(), &dbs, 4);
    assert!(
        g <= d * 1.01,
        "GOPT {g} should be at least as good as DRP-CDS {d} (within 1%)"
    );
}

#[test]
fn increasing_channels_reduces_cost_for_every_algorithm() {
    // Figure 2's x-axis effect.
    let db = WorkloadBuilder::new(90).seed(3).build().unwrap();
    let algos: Vec<Box<dyn ChannelAllocator>> =
        vec![Box::new(Vfk::new()), Box::new(Drp::new()), Box::new(DrpCds::new())];
    for algo in &algos {
        let mut prev = f64::INFINITY;
        for k in [4, 6, 8, 10] {
            let cost = algo.allocate(&db, k).unwrap().total_cost();
            assert!(
                cost <= prev + 1e-9,
                "{} cost should not grow with K (K = {k})",
                algo.name()
            );
            prev = cost;
        }
    }
}

#[test]
fn skewness_reduces_waiting_time() {
    // Figure 5's x-axis effect: more skew, less expected waiting.
    let k = 6;
    let mut prev = f64::INFINITY;
    for theta in [0.4, 0.8, 1.2, 1.6] {
        let dbs = workloads(100, 2.0, theta, 0..10);
        let cost = mean_cost(&DrpCds::new(), &dbs, k);
        assert!(
            cost < prev,
            "cost should fall as skewness rises (theta = {theta}): {cost} vs {prev}"
        );
        prev = cost;
    }
}

#[test]
fn diversity_increases_waiting_time() {
    // Figure 4's x-axis effect: more diversity, more waiting.
    let k = 6;
    let mut prev = 0.0;
    for phi in [0.0, 1.0, 2.0, 3.0] {
        let dbs = workloads(100, phi, 0.8, 0..10);
        let cost = mean_cost(&DrpCds::new(), &dbs, k);
        assert!(
            cost > prev,
            "cost should rise with diversity (phi = {phi}): {cost} vs {prev}"
        );
        prev = cost;
    }
}

#[test]
fn drp_alone_is_strong_at_power_of_two_channels() {
    // The paper's K = 2^n observation: DRP ≈ DRP-CDS at K = 4, 8.
    let dbs = workloads(96, 2.0, 0.8, 0..10);
    for k in [4usize, 8] {
        let drp = mean_cost(&Drp::new(), &dbs, k);
        let refined = mean_cost(&DrpCds::new(), &dbs, k);
        let gap = drp / refined - 1.0;
        assert!(
            gap < 0.12,
            "at K = {k}, DRP should already be close to DRP-CDS (gap {gap:.3})"
        );
    }
}
