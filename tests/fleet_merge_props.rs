//! Property battery for the mergeable observability primitives behind
//! fleet aggregation: `HistogramCells` merge forms a commutative
//! monoid (associative, commutative, `empty()` as identity), and a
//! histogram assembled by merging per-client digests is
//! indistinguishable — counts, sum, min/max, mean and every percentile
//! estimate — from one that pooled all the observations directly.

use dbcast_obs::metrics::{Histogram, HistogramCells};
use proptest::prelude::*;

fn cells_from(values: &[u64]) -> HistogramCells {
    let mut cells = HistogramCells::empty();
    for &v in values {
        cells.record(v);
    }
    cells
}

fn merged(a: &HistogramCells, b: &HistogramCells) -> HistogramCells {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..u64::MAX, 0..64),
        b in prop::collection::vec(0u64..u64::MAX, 0..64),
        c in prop::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let (a, b, c) = (cells_from(&a), cells_from(&b), cells_from(&c));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(0u64..u64::MAX, 0..64),
        b in prop::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let (a, b) = (cells_from(&a), cells_from(&b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn empty_is_the_merge_identity(
        a in prop::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let a = cells_from(&a);
        prop_assert_eq!(merged(&a, &HistogramCells::empty()), a.clone());
        prop_assert_eq!(merged(&HistogramCells::empty(), &a), a);
    }

    /// Splitting a sample population across per-client digests and
    /// merging them back is exact: the merged histogram reports the
    /// same count/sum/min/max/mean and the same percentile estimates
    /// (point, bounds and midpoint at every quantile) as a single
    /// histogram that recorded the pooled values directly.
    #[test]
    fn merged_digests_match_pooled_recording(
        shards in prop::collection::vec(
            prop::collection::vec(0u64..1_000_000_000, 0..48),
            1..8,
        ),
        quantiles in prop::collection::vec(0.0f64..100.0, 1..8),
    ) {
        let pooled = Histogram::detached();
        let rebuilt = Histogram::detached();
        for shard in &shards {
            let mut digest = HistogramCells::empty();
            for &v in shard {
                digest.record(v);
                pooled.force_record(v);
            }
            rebuilt.force_merge_cells(&digest);
        }
        prop_assert_eq!(rebuilt.count(), pooled.count());
        prop_assert_eq!(rebuilt.sum(), pooled.sum());
        prop_assert_eq!(rebuilt.min(), pooled.min());
        prop_assert_eq!(rebuilt.max(), pooled.max());
        prop_assert_eq!(rebuilt.mean(), pooled.mean());
        prop_assert_eq!(rebuilt.bucket_counts(), pooled.bucket_counts());
        for q in quantiles.into_iter().chain([50.0, 90.0, 95.0, 99.0, 100.0]) {
            prop_assert_eq!(rebuilt.percentile(q), pooled.percentile(q));
            prop_assert_eq!(rebuilt.percentile_bounds(q), pooled.percentile_bounds(q));
            prop_assert_eq!(rebuilt.percentile_midpoint(q), pooled.percentile_midpoint(q));
        }
        // And the percentile estimate brackets the true order statistic
        // of the pooled values whenever there are observations.
        let mut sorted: Vec<u64> = shards.into_iter().flatten().collect();
        sorted.sort_unstable();
        if !sorted.is_empty() {
            let idx = ((0.90 * sorted.len() as f64).ceil() as usize)
                .saturating_sub(1)
                .min(sorted.len() - 1);
            let exact = sorted[idx];
            let (lo, hi) = rebuilt.percentile_bounds(90.0).expect("non-empty");
            prop_assert!(
                lo <= exact && exact <= hi,
                "p90 bounds [{lo}, {hi}] miss exact order statistic {exact}"
            );
        }
    }
}
