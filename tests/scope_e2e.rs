//! End-to-end scope acceptance tests:
//!
//! * a live `/series` scrape taken while a paced, threaded serve run is
//!   in flight round-trips the strict validator, and the final document
//!   renders a `dbcast top` frame with req/s, drift and the per-channel
//!   Eq. 2 table,
//! * a watchdog drill (sustained SLO-burn breach fed through the
//!   store) latches a firing, records a `watchdog` flight event and
//!   produces a postmortem dump,
//! * the background sampler stays consistent under concurrent metric
//!   writers (the `tests/obs_concurrency.rs` posture, applied to the
//!   scrape path).
//!
//! The series store, validator and watchdog are always-on; only the
//! *content* of registry scrapes needs the `obs` feature, so those
//! assertions are gated on `dbcast_obs::enabled()`.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dbcast_scope::{
    parse_rules, render_store, render_top, validate, Sampler, ScopeConfig, SeriesStore,
    TopOptions, Watchdog,
};
use dbcast_serve::{
    poisson_trace, DriftDetector, EstimatorConfig, RepairMode, ServeConfig, ServeRuntime,
    SloConfig, WorkerMode,
};

/// The global registry and flight ring are process-wide; serialize the
/// tests that assert on their contents.
static GLOBAL_STATE_LOCK: Mutex<()> = Mutex::new(());

fn db() -> dbcast_model::Database {
    dbcast_workload::WorkloadBuilder::new(80)
        .skewness(0.8)
        .sizes(dbcast_workload::SizeDistribution::Diversity { phi_max: 2.0 })
        .seed(3)
        .build()
        .expect("workload builds")
}

fn base_config() -> ServeConfig {
    ServeConfig {
        channels: 5,
        bandwidth: 10.0,
        estimator: EstimatorConfig::default(),
        detector: DriftDetector { threshold: 0.25, min_observations: 200 },
        repair: RepairMode::Full,
        worker: WorkerMode::Deterministic,
        max_ticks: None,
        slo: None,
        pace_ms: 0,
        inject_panic_at_tick: None,
        audit: Default::default(),
        inject_slow_channel: None,
        inject_slow_factor: 1.0,
    }
}

/// Minimal HTTP GET against the exposition server.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to exposition server");
    let request =
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    assert!(head.starts_with("HTTP/1.1 200"), "non-200 for {path}: {head}");
    body.to_string()
}

#[test]
fn live_series_scrape_mid_run_validates_and_top_renders() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dbcast_obs::set_enabled(true);
    let live = dbcast_obs::enabled();
    dbcast_obs::registry().reset();

    let db = db();
    let trace = poisson_trace(&db, 10.0, 3000, 7).expect("trace builds");
    let config = ServeConfig {
        worker: WorkerMode::Threaded,
        pace_ms: 10,
        slo: Some(SloConfig { tolerance: 0.5, ..SloConfig::default() }),
        ..base_config()
    };

    let store = Arc::new(SeriesStore::default());
    let sampler = Sampler::start(
        Arc::clone(&store),
        Watchdog::new(parse_rules("").expect("empty rule list parses")),
        Duration::from_millis(5),
    )
    .expect("sampler starts");
    let route_store = Arc::clone(&store);
    let server = dbcast_flight::ExpositionServer::bind_with_routes(
        "127.0.0.1:0",
        Box::new(|| String::from("{\"command\": \"scope-e2e\"}")),
        vec![dbcast_flight::Route::json("/series", move || render_store(&route_store))],
    )
    .expect("bind exposition server");
    let addr = server.addr();

    let runtime = ServeRuntime::new(&db, config).expect("runtime builds");
    let run = std::thread::spawn(move || runtime.run(&trace));

    // Every mid-run scrape must round-trip the strict validator, and
    // the document's tick stamp must never go backwards.
    let mut scrapes = 0usize;
    let mut last_tick = 0u64;
    while !run.is_finished() {
        let body = http_get(addr, "/series");
        let doc = validate(&body).expect("mid-run /series validates");
        assert!(doc.tick >= last_tick, "tick went backwards: {} < {last_tick}", doc.tick);
        last_tick = doc.tick;
        scrapes += 1;
        std::thread::sleep(Duration::from_millis(15));
    }
    run.join().expect("run thread").expect("run succeeds");
    assert!(scrapes > 0, "run finished before a single scrape");
    let firings = sampler.stop();
    assert!(firings.is_empty(), "no watchdog rules were armed: {firings:?}");

    let doc = validate(&render_store(&store)).expect("final export validates");
    if live {
        assert!(doc.tick > 0, "sampler never saw a tick");
        let req = doc.series("serve.requests").expect("request counter series");
        assert!(req.last().unwrap_or(0.0) > 0.0, "no requests recorded");
        assert_eq!(
            doc.series_with_prefix("serve.channel.expected_wait.").count(),
            5,
            "one Eq. 2 gauge per channel"
        );
        let frame = render_top(&doc, &TopOptions::default());
        for needle in ["req/s", "drift L1", "SLO burn", "channels (Eq. 2", "ch0"] {
            assert!(frame.contains(needle), "missing {needle}:\n{frame}");
        }
        assert!(
            frame.chars().any(|c| ('\u{2581}'..='\u{2588}').contains(&c)),
            "no sparkline glyphs in frame:\n{frame}"
        );
    }
}

#[test]
fn watchdog_drill_fires_flight_event_and_postmortem() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dbcast_obs::set_enabled(true);
    dbcast_obs::registry().reset();
    let dir = std::env::temp_dir().join("dbcast_scope_e2e_watchdog");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create postmortem dir");
    dbcast_flight::postmortem::set_dir(Some(dir.clone()));

    let store = SeriesStore::default();
    let mut watchdog = Watchdog::new(
        parse_rules("scope.test.drill_burn > 1 for 300ms").expect("rule parses"),
    );
    let mut fired = Vec::new();
    for i in 0..5u64 {
        let snap = dbcast_obs::snapshot::Snapshot {
            counters: vec![("serve.ticks".to_string(), i)],
            gauges: vec![("scope.test.drill_burn".to_string(), 2.5)],
            histograms: Vec::new(),
            traces: Vec::new(),
        };
        store.append_snapshot(&snap, i * 200);
        fired.extend(watchdog.check_at(&store, i, i * 200));
    }
    dbcast_flight::postmortem::set_dir(None);

    assert_eq!(fired.len(), 1, "sustained breach fires exactly once: {fired:?}");
    let firing = &fired[0];
    assert!(firing.rule.contains("scope.test.drill_burn"), "{firing:?}");
    assert!((firing.observed - 2.5).abs() < 1e-9, "{firing:?}");
    let dump = firing.postmortem.as_ref().expect("armed drill dumps a postmortem");
    let body = std::fs::read_to_string(dump).expect("postmortem readable");
    assert!(body.contains("watchdog"), "dump lacks the firing reason:\n{body}");

    let events = dbcast_flight::recorder().snapshot();
    let watchdog_events: Vec<_> =
        events.iter().filter(|e| e.kind == dbcast_flight::EventKind::Watchdog).collect();
    assert!(!watchdog_events.is_empty(), "no watchdog flight event recorded");
    assert!(
        watchdog_events.iter().any(|e| (e.value - 2.5).abs() < 1e-9),
        "flight event should carry the observed value: {watchdog_events:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sampler_stays_consistent_under_concurrent_writers() {
    // force_* writers bypass the runtime switch, so this exercises the
    // scrape path in feature-off builds too. No registry reset: this
    // test only asserts on its own `.test.` metrics.
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let r = dbcast_obs::registry();
                let requests = r.counter("scope.test.conc_requests");
                let drift = r.gauge("scope.test.conc_drift");
                let wait = r.histogram("scope.test.conc_wait");
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    requests.force_add(1);
                    drift.force_set((i % 100) as f64 / 100.0);
                    wait.force_record(w * 1000 + i % 1000);
                    i += 1;
                    if i.is_multiple_of(64) {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    let store = Arc::new(SeriesStore::new(ScopeConfig {
        tick_counter: "scope.test.conc_requests".to_string(),
        ..ScopeConfig::default()
    }));
    let sampler = Sampler::start(
        Arc::clone(&store),
        Watchdog::new(Vec::new()),
        Duration::from_millis(2),
    )
    .expect("sampler starts");
    std::thread::sleep(Duration::from_millis(250));
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().expect("writer thread");
    }
    let firings = sampler.stop();
    assert!(firings.is_empty());

    // Whatever interleaving happened, the export must round-trip the
    // strict validator (counters non-negative, rates non-negative,
    // bins ordered) and the counter series must be non-decreasing.
    let doc = validate(&render_store(&store)).expect("concurrent export validates");
    let req = doc.series("scope.test.conc_requests").expect("counter series present");
    assert!(!req.raw.is_empty(), "sampler never scraped");
    for pair in req.raw.windows(2) {
        assert!(
            pair[1].value >= pair[0].value,
            "counter series regressed: {} -> {}",
            pair[0].value,
            pair[1].value
        );
    }
    assert!(store.series_count() >= 3, "writer metrics missing from the store");
}
