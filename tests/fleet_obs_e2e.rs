//! End-to-end acceptance test for the distributed observability plane:
//! 8 clients measure a seeded program over real TCP through a mid-run
//! hot swap while pushing telemetry digests over a real uplink socket
//! into a `FleetAggregator` exposed at `/fleet`.
//!
//! Acceptance criteria pinned here:
//! * a mid-run `/fleet` scrape (uplink + exposition still live) passes
//!   the strict schema-v1 validator and shows per-generation fleet
//!   access time within 10% of the Eq. 2 expectation;
//! * live aggregates for fully-covered generations reconcile with the
//!   final post-hoc `FleetReport` within 1e-6;
//! * the same seed produces bit-identical per-client digest streams.

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dbcast::alloc::DrpCds;
use dbcast::model::{BroadcastProgram, ChannelAllocator, Database};
use dbcast::net::{
    digest_from_frame, encode_telemetry_frame_into, run_fleet_inline_with, CacheKind,
    DigestSink, EgressConfig, FleetConfig, FleetReport, NetConfig, OverflowPolicy,
    ScriptedSource, SourceGeneration, TelemetryFrame, UplinkConfig, UplinkServer,
    WorkloadPattern,
};
use dbcast::serve::{validate_fleet, FleetAggregator, FleetDoc};

use dbcast::workload::{SizeDistribution, WorkloadBuilder};

const BANDWIDTH: f64 = 1.0;
const CLIENTS: usize = 8;

fn seeded_db() -> Database {
    WorkloadBuilder::new(24)
        .skewness(0.8)
        .sizes(SizeDistribution::Diversity { phi_max: 1.0 })
        .seed(11)
        .build()
        .expect("workload builds")
}

/// Two generations over the same database: the swap changes the channel
/// count (3 → 4), so every channel's cycle — and Eq. 2 — changes.
fn scripted_stages(db: &Database, swap_at_window: u64) -> Vec<(u64, SourceGeneration)> {
    let frequencies: Vec<f64> = db.iter().map(|d| d.frequency()).collect();
    let mut stages = Vec::new();
    for (generation, channels) in [(0u64, 3usize), (1, 4)] {
        let alloc = DrpCds::new().allocate(db, channels).expect("allocates");
        let program = BroadcastProgram::new(db, &alloc, BANDWIDTH).expect("program builds");
        stages.push((
            if generation == 0 { 0 } else { swap_at_window },
            SourceGeneration { generation, program, frequencies: frequencies.clone() },
        ));
    }
    stages
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        clients: CLIENTS,
        seed: 2024,
        requests: 220,
        rate: 1.0,
        cache: CacheKind::None,
        cache_budget: 0.0,
        pattern: WorkloadPattern::Single,
        patterns: 8,
        max_size: 4,
    }
}

/// Swap mid-arrival-span and budget enough windows that the last
/// request plus a full slow cycle always fits before the horizon
/// (same sizing logic as the transport e2e test).
fn swap_and_windows(db: &Database, config: &FleetConfig) -> (u64, u64) {
    let stages = scripted_stages(db, 1);
    let mut gen0_window = f64::INFINITY;
    let mut min_window = f64::INFINITY;
    let mut max_cycle = 0.0f64;
    for (i, (_, stage)) in stages.iter().enumerate() {
        for schedule in stage.program.channels() {
            if schedule.is_empty() {
                continue;
            }
            let cycle = schedule.cycle_size() / BANDWIDTH;
            if i == 0 {
                gen0_window = gen0_window.min(cycle);
            }
            min_window = min_window.min(cycle);
            max_cycle = max_cycle.max(cycle);
        }
    }
    let arrival_span = config.requests as f64 / config.rate;
    let swap_at = ((arrival_span * 0.45) / gen0_window).ceil().max(1.0) as u64;
    let horizon_needed = arrival_span * 1.6 + 4.0 * max_cycle;
    let max_windows = swap_at + (horizon_needed / min_window).ceil() as u64 + 4;
    (swap_at, max_windows)
}

fn net_config() -> NetConfig {
    NetConfig {
        queue_capacity: 1 << 15,
        overflow: OverflowPolicy::Block,
        write_timeout: Some(Duration::from_secs(30)),
    }
}

/// Folds every digest into the aggregator *and* re-encodes it into a
/// per-client byte stream — TCP keeps each client's frames in order,
/// and the encoding is canonical, so the recorded bytes are exactly
/// what the client sent.
struct RecordingSink {
    aggregator: Arc<FleetAggregator>,
    streams: Mutex<BTreeMap<u32, Vec<u8>>>,
}

impl DigestSink for RecordingSink {
    fn on_digest(&self, frame: &TelemetryFrame) {
        let mut streams = self.streams.lock().unwrap_or_else(|e| e.into_inner());
        encode_telemetry_frame_into(streams.entry(frame.client).or_default(), frame);
        self.aggregator.ingest(&digest_from_frame(frame));
    }
}

/// Minimal HTTP GET against the exposition server.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to exposition server");
    let request =
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    assert!(head.starts_with("HTTP/1.1 200"), "non-200 for {path}: {head}");
    body.to_string()
}

/// One full run: broadcast + uplink + exposition live together, the
/// `/fleet` scrape happens over real HTTP while both servers are still
/// up, and only then does the stack shut down.
fn run_once() -> (FleetReport, FleetDoc, BTreeMap<u32, Vec<u8>>) {
    let db = seeded_db();
    let config = fleet_config();
    let (swap_at, max_windows) = swap_and_windows(&db, &config);
    let source = ScriptedSource::new(scripted_stages(&db, swap_at));
    let egress = EgressConfig { index: None, max_windows: Some(max_windows), pace: None };

    let aggregator = Arc::new(FleetAggregator::new());
    let sink = Arc::new(RecordingSink {
        aggregator: Arc::clone(&aggregator),
        streams: Mutex::new(BTreeMap::new()),
    });
    let uplink =
        UplinkServer::bind("127.0.0.1:0", Arc::clone(&sink) as Arc<dyn DigestSink>)
            .expect("bind uplink server");
    let fleet_route = Arc::clone(&aggregator);
    let mut exposition = dbcast_flight::ExpositionServer::bind_with_routes(
        "127.0.0.1:0",
        Box::new(|| String::from("{\"command\": \"fleet-obs-e2e\"}")),
        vec![dbcast_flight::Route::json("/fleet", move || fleet_route.fleet_json())],
    )
    .expect("bind exposition server");

    let uplink_config = UplinkConfig { addr: uplink.addr().to_string(), straggle_ms: 0 };
    let (report, egress_report) = run_fleet_inline_with(
        &source,
        &egress,
        net_config(),
        &config,
        Some(&uplink_config),
    )
    .expect("fleet runs");
    assert_eq!(egress_report.generations, 2, "both generations aired");
    aggregator.set_published(1);

    // The clients have flushed their sockets; wait for the uplink
    // readers to drain. Slices are each connection's final frames, so
    // full reporter coverage on both generations implies every earlier
    // ack landed too.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let doc = aggregator.doc();
        let covered = doc.generations.len() == 2
            && doc.generations.iter().all(|g| g.reporters == CLIENTS as u64);
        if covered {
            break;
        }
        assert!(Instant::now() < deadline, "uplink digests never drained: {doc:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The mid-run scrape: broadcast measurement is complete but the
    // whole observability stack is still live.
    let body = http_get(exposition.addr(), "/fleet");
    let doc = validate_fleet(&body).expect("mid-run /fleet scrape validates strictly");

    let streams = {
        let mut guard = sink.streams.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *guard)
    };
    exposition.shutdown();
    drop(uplink);
    (report, doc, streams)
}

#[test]
fn fleet_uplink_tracks_eq2_through_a_hot_swap() {
    let (report, doc, streams) = run_once();
    report.validate().expect("post-hoc report validates");

    assert_eq!(doc.schema, dbcast::serve::FLEET_OBS_SCHEMA);
    assert_eq!(doc.published, 1);
    assert_eq!(doc.clients, CLIENTS as u64);
    assert_eq!(doc.stragglers, 0, "nobody straggles without pacing: {:?}", doc.lagging);
    assert_eq!(doc.generations.len(), 2);
    assert_eq!(streams.len(), CLIENTS, "every client recorded a digest stream");

    for g in &doc.generations {
        // Live fleet-level Eq. 2 tracking: the sample-weighted observed
        // mean access time stays within 10% of the prediction.
        assert!(g.samples > 0, "generation {} aggregated no samples", g.generation);
        assert!(
            g.gap <= 0.10,
            "generation {}: fleet access {:.4} vs Eq.2 {:.4} ({:.1}% off)",
            g.generation,
            g.mean_access,
            g.predicted_access,
            g.gap * 100.0
        );

        // Reconciliation: the live aggregate folded from uplink digests
        // must equal the post-hoc report's sample-weighted mean.
        let mut weighted = 0.0;
        let mut samples = 0.0;
        for client in &report.clients {
            for slice in &client.generations {
                if slice.generation == g.generation {
                    weighted += slice.requests as f64 * slice.mean_access;
                    samples += slice.requests as f64;
                }
            }
        }
        let posthoc = weighted / samples;
        assert_eq!(g.samples as f64, samples, "sample counts reconcile");
        assert!(
            (g.mean_access - posthoc).abs() <= 1e-6,
            "generation {}: live {:.9} vs post-hoc {:.9}",
            g.generation,
            g.mean_access,
            posthoc
        );

        // Counters fold exactly: requests arrive at most once per slice.
        assert!(g.completed <= g.requests);
        assert!(!g.coverage.is_empty(), "coverage rows aggregated");
    }
}

#[test]
fn same_seed_produces_bit_identical_digest_streams() {
    let (_, first_doc, first) = run_once();
    let (_, second_doc, second) = run_once();
    assert_eq!(
        first.keys().collect::<Vec<_>>(),
        second.keys().collect::<Vec<_>>(),
        "same client census"
    );
    for (client, bytes) in &first {
        assert_eq!(
            Some(bytes),
            second.get(client),
            "client {client}: digest streams diverged between same-seed runs"
        );
    }
    // And the documents built from those streams agree too.
    assert_eq!(
        serde_json::to_string(&first_doc).unwrap(),
        serde_json::to_string(&second_doc).unwrap()
    );
}
