//! End-to-end transport test: a seeded program streamed over real TCP
//! through a mid-run hot swap, measured by a fleet of concurrent
//! clients.
//!
//! Acceptance criteria pinned here:
//! * ≥ 8 clients complete **all** their requests with zero dropped and
//!   zero torn frames;
//! * per client, per generation, measured mean access time is within
//!   10% of the Eq. 2 expectation for that generation's program;
//! * with (1,m) index frames on the air, tuning time is strictly below
//!   the full-listening time;
//! * the same seed produces a bit-identical fleet report.

use dbcast::alloc::DrpCds;
use dbcast::model::{BroadcastProgram, ChannelAllocator, Database};
use dbcast::net::{
    run_fleet_inline, CacheKind, EgressConfig, FleetConfig, IndexParams, NetConfig,
    OverflowPolicy, ScriptedSource, SourceGeneration, WorkloadPattern,
};
use dbcast::workload::{SizeDistribution, WorkloadBuilder};

const BANDWIDTH: f64 = 1.0;

fn seeded_db() -> Database {
    WorkloadBuilder::new(24)
        .skewness(0.8)
        .sizes(SizeDistribution::Diversity { phi_max: 1.0 })
        .seed(11)
        .build()
        .expect("workload builds")
}

/// Two generations over the same database: the swap changes the channel
/// count (3 → 4), so every channel's cycle — and Eq. 2 — changes.
fn scripted_stages(db: &Database, swap_at_window: u64) -> Vec<(u64, SourceGeneration)> {
    let frequencies: Vec<f64> = db.iter().map(|d| d.frequency()).collect();
    let mut stages = Vec::new();
    for (generation, channels) in [(0u64, 3usize), (1, 4)] {
        let alloc = DrpCds::new().allocate(db, channels).expect("allocates");
        let program = BroadcastProgram::new(db, &alloc, BANDWIDTH).expect("program builds");
        stages.push((
            if generation == 0 { 0 } else { swap_at_window },
            SourceGeneration { generation, program, frequencies: frequencies.clone() },
        ));
    }
    stages
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        clients: 8,
        seed: 2024,
        requests: 220,
        rate: 1.0,
        cache: CacheKind::None,
        cache_budget: 0.0,
        pattern: WorkloadPattern::Single,
        patterns: 8,
        max_size: 4,
    }
}

/// Per-generation cycle-time extremes of the scripted scenario:
/// `(gen0 window, min window, max cycle)` in virtual seconds. The
/// egress window is one cycle of the fastest non-empty channel.
fn cycle_bounds(db: &Database) -> (f64, f64, f64) {
    let stages = scripted_stages(db, 1);
    let mut gen0_window = f64::INFINITY;
    let mut min_window = f64::INFINITY;
    let mut max_cycle = 0.0f64;
    for (i, (_, stage)) in stages.iter().enumerate() {
        for schedule in stage.program.channels() {
            if schedule.is_empty() {
                continue;
            }
            let cycle = schedule.cycle_size() / BANDWIDTH;
            if i == 0 {
                gen0_window = gen0_window.min(cycle);
            }
            min_window = min_window.min(cycle);
            max_cycle = max_cycle.max(cycle);
        }
    }
    (gen0_window, min_window, max_cycle)
}

/// Swap mid-arrival-span (so both generations serve plenty of
/// requests) and budget enough windows that the last request plus a
/// full slow cycle always fits before the horizon.
fn swap_and_windows(db: &Database, config: &FleetConfig) -> (u64, u64) {
    let (gen0_window, min_window, max_cycle) = cycle_bounds(db);
    let arrival_span = config.requests as f64 / config.rate;
    let swap_at = ((arrival_span * 0.45) / gen0_window).ceil().max(1.0) as u64;
    let horizon_needed = arrival_span * 1.6 + 4.0 * max_cycle;
    let max_windows = swap_at + (horizon_needed / min_window).ceil() as u64 + 4;
    (swap_at, max_windows)
}

fn net_config() -> NetConfig {
    NetConfig {
        queue_capacity: 1 << 15,
        // The e2e contract is *zero* dropped frames: block rather than
        // shed if a client thread is briefly scheduled out.
        overflow: OverflowPolicy::Block,
        write_timeout: Some(std::time::Duration::from_secs(30)),
    }
}

#[test]
fn fleet_measures_eq2_across_a_hot_swap() {
    let db = seeded_db();
    let config = fleet_config();
    let (swap_at, max_windows) = swap_and_windows(&db, &config);
    let source = ScriptedSource::new(scripted_stages(&db, swap_at));
    let egress = EgressConfig { index: None, max_windows: Some(max_windows), pace: None };
    let (report, egress_report) =
        run_fleet_inline(&source, &egress, net_config(), &config).expect("fleet runs");

    report.validate().expect("report validates");
    assert_eq!(egress_report.generations, 2, "both generations aired");
    assert_eq!(report.totals.dropped_frames, Some(0), "zero dropped frames");
    assert_eq!(report.totals.torn_frames, 0, "zero torn frames");
    assert_eq!(report.clients.len(), 8);

    for client in &report.clients {
        assert_eq!(
            client.completed, client.requests,
            "client {} completed all requests",
            client.id
        );
        assert_eq!(
            client.generations.len(),
            2,
            "client {} saw the swap on the wire",
            client.id
        );
        for slice in &client.generations {
            assert!(
                slice.requests >= 20,
                "client {} generation {} has too few clean samples ({})",
                client.id,
                slice.generation,
                slice.requests
            );
            let relative =
                (slice.mean_access - slice.predicted_access).abs() / slice.predicted_access;
            assert!(
                relative <= 0.10,
                "client {} generation {}: measured {:.4} vs Eq.2 {:.4} ({:.1}% off)",
                client.id,
                slice.generation,
                slice.mean_access,
                slice.predicted_access,
                relative * 100.0
            );
        }
    }
}

#[test]
fn indexed_stream_tunes_below_full_listening() {
    let db = seeded_db();
    let config = fleet_config();
    let (swap_at, max_windows) = swap_and_windows(&db, &config);
    let source = ScriptedSource::new(scripted_stages(&db, swap_at));
    let egress = EgressConfig {
        index: Some(IndexParams { index_size: 0.5, header_size: 0.05 }),
        max_windows: Some(max_windows),
        pace: None,
    };
    let (report, _) =
        run_fleet_inline(&source, &egress, net_config(), &config).expect("fleet runs");
    report.validate().expect("report validates");
    assert!(report.indexed);
    assert_eq!(report.totals.torn_frames, 0);
    for client in &report.clients {
        assert_eq!(client.completed, client.requests);
        assert!(
            client.tuning.mean < client.access.mean,
            "client {}: tuning {:.4} must be strictly below access {:.4}",
            client.id,
            client.tuning.mean,
            client.access.mean
        );
        // Selective tuning is a big win, not a rounding artifact.
        assert!(client.tuning.mean < 0.8 * client.access.mean);
    }
}

#[test]
fn same_seed_produces_bit_identical_reports() {
    let db = seeded_db();
    let config = fleet_config();
    let (swap_at, max_windows) = swap_and_windows(&db, &config);
    let egress = EgressConfig { index: None, max_windows: Some(max_windows), pace: None };
    let run = || {
        let source = ScriptedSource::new(scripted_stages(&db, swap_at));
        let (report, _) =
            run_fleet_inline(&source, &egress, net_config(), &config).expect("fleet runs");
        serde_json::to_string(&report).expect("report serializes")
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed must give a bit-identical report");
}

#[test]
fn frequent_pattern_fleet_exercises_cache_and_conflicts() {
    let db = seeded_db();
    let mut config = fleet_config();
    config.pattern = WorkloadPattern::Frequent;
    config.patterns = 6;
    config.max_size = 4;
    config.cache = CacheKind::Lru;
    config.cache_budget = 6.0;
    config.requests = 120;
    let (swap_at, max_windows) = swap_and_windows(&db, &config);
    let source = ScriptedSource::new(scripted_stages(&db, swap_at));
    let egress = EgressConfig { index: None, max_windows: Some(max_windows), pace: None };
    let (report, _) =
        run_fleet_inline(&source, &egress, net_config(), &config).expect("fleet runs");
    report.validate().expect("report validates");
    assert!(
        report.totals.cache_hits > 0,
        "correlated patterns through an LRU cache must hit"
    );
    assert!(
        report.totals.conflicts > 0,
        "multi-item requests over one tuner must see conflicts"
    );
    for client in &report.clients {
        assert_eq!(client.completed, client.requests);
    }
}
