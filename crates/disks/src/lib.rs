//! **Broadcast-disk scheduling** — non-uniform appearance frequencies
//! *within* one channel (the paper's reference \[1\], Acharya et al.,
//! "Broadcast Disks", SIGMOD 1995).
//!
//! The ICDCS 2005 paper keeps each channel's cycle *flat* (every item
//! once per cycle) and differentiates service through the channel
//! *grouping*. Broadcast disks are the orthogonal lever: within a
//! channel, popular items can appear several times per cycle. The
//! classical theory (Ammar & Wong 1985; Vaidya & Hameed 1999) says the
//! optimal spacing between consecutive appearances of item `i` is
//! proportional to `sqrt(z_i / f_i)`, giving the mean-wait lower bound
//!
//! ```text
//! W_probe ≥ ( Σ_i sqrt(f_i z_i) )² / (2 b)
//! ```
//!
//! which, by Cauchy–Schwarz, never exceeds the flat-cycle probe time
//! `(Σ f_i)(Σ z_i) / (2b)` — with equality iff all benefit ratios are
//! equal. Note the connection to the paper: DRP groups items of
//! *similar benefit ratio* onto a channel, which is exactly the regime
//! where a flat cycle is near-optimal; the comparison experiment
//! quantifies how much intra-channel scheduling adds after DRP-CDS has
//! done its job.
//!
//! Provided here:
//!
//! * [`sqrt_rule_probe_bound`] / [`flat_probe_time`] — the analytics,
//! * [`OnlineScheduler`] — a square-root-rule spacing scheduler
//!   (closed-form spacings dispatched earliest-due-first),
//! * [`DiskSchedule`] — a generated schedule with exact per-request
//!   waiting-time evaluation.
//!
//! # Example
//!
//! ```
//! use dbcast_disks::{flat_probe_time, sqrt_rule_probe_bound, OnlineScheduler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let db = dbcast_workload::WorkloadBuilder::new(20).skewness(1.2).seed(1).build()?;
//! let items: Vec<(f64, f64)> =
//!     db.iter().map(|d| (d.frequency(), d.size())).collect();
//! // Non-uniform scheduling provably beats the flat cycle on skewed demand.
//! assert!(sqrt_rule_probe_bound(&items, 10.0) <= flat_probe_time(&items, 10.0));
//! let schedule = OnlineScheduler::new(&items, 10.0)?.generate(500.0);
//! assert!(!schedule.entries().is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod schedule;
mod theory;

pub use schedule::{DiskSchedule, OnlineScheduler, ScheduleEntry};
pub use theory::{flat_probe_time, sqrt_rule_probe_bound};
