//! The square-root rule analytics.

/// Flat-cycle expected probe time `(Σf)(Σz) / (2b)` for one channel
/// broadcasting each item exactly once per cycle — the per-channel term
/// of the ICDCS 2005 cost model.
///
/// # Panics
///
/// Panics on a non-positive bandwidth or an empty item list.
pub fn flat_probe_time(items: &[(f64, f64)], bandwidth: f64) -> f64 {
    validate(items, bandwidth);
    let f: f64 = items.iter().map(|i| i.0).sum();
    let z: f64 = items.iter().map(|i| i.1).sum();
    f * z / (2.0 * bandwidth)
}

/// The Ammar–Wong lower bound on expected probe time over *all*
/// schedules of one channel: `(Σ sqrt(f_i z_i))² / (2b)`, achieved when
/// item `i` recurs with spacing proportional to `sqrt(z_i / f_i)`.
///
/// Never exceeds [`flat_probe_time`] (Cauchy–Schwarz), with equality
/// iff all items share one benefit ratio.
///
/// # Panics
///
/// Panics on a non-positive bandwidth or an empty item list.
pub fn sqrt_rule_probe_bound(items: &[(f64, f64)], bandwidth: f64) -> f64 {
    validate(items, bandwidth);
    let s: f64 = items.iter().map(|&(f, z)| (f * z).sqrt()).sum();
    s * s / (2.0 * bandwidth)
}

fn validate(items: &[(f64, f64)], bandwidth: f64) {
    assert!(!items.is_empty(), "at least one item required");
    assert!(bandwidth.is_finite() && bandwidth > 0.0, "bandwidth must be positive");
    assert!(
        items.iter().all(|&(f, z)| f > 0.0 && z > 0.0),
        "item features must be positive"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_never_exceeds_flat() {
        let cases = [
            vec![(0.5, 1.0), (0.5, 1.0)],
            vec![(0.9, 1.0), (0.1, 100.0)],
            vec![(0.3, 2.0), (0.3, 7.0), (0.4, 0.5)],
        ];
        for items in cases {
            assert!(
                sqrt_rule_probe_bound(&items, 10.0)
                    <= flat_probe_time(&items, 10.0) + 1e-12
            );
        }
    }

    #[test]
    fn equality_iff_equal_benefit_ratio() {
        // All br equal: f/z constant.
        let equal = vec![(0.2, 2.0), (0.3, 3.0), (0.5, 5.0)];
        let lb = sqrt_rule_probe_bound(&equal, 10.0);
        let flat = flat_probe_time(&equal, 10.0);
        assert!((lb - flat).abs() < 1e-12, "{lb} vs {flat}");

        let skewed = vec![(0.9, 1.0), (0.1, 10.0)];
        assert!(
            sqrt_rule_probe_bound(&skewed, 10.0) < flat_probe_time(&skewed, 10.0) - 1e-6
        );
    }

    #[test]
    fn single_item_degenerates_to_half_cycle() {
        let items = vec![(1.0, 8.0)];
        assert!((flat_probe_time(&items, 10.0) - 0.4).abs() < 1e-12);
        assert!((sqrt_rule_probe_bound(&items, 10.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = flat_probe_time(&[(1.0, 1.0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_items_panic() {
        let _ = sqrt_rule_probe_bound(&[], 10.0);
    }
}
