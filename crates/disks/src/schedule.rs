//! The online broadcast-disk scheduler and generated-schedule
//! evaluation.

use dbcast_model::{ItemId, ModelError};
use serde::{Deserialize, Serialize};

/// One broadcast slot in a generated schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// The item broadcast in this slot.
    pub item: ItemId,
    /// Slot start (seconds).
    pub start: f64,
    /// Slot end = start + size / bandwidth (seconds).
    pub end: f64,
}

/// A generated (aperiodic) broadcast schedule over a finite horizon,
/// with exact per-request waiting-time evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskSchedule {
    entries: Vec<ScheduleEntry>,
    /// Per-item start indices into `entries`, for O(log) lookup.
    per_item: Vec<Vec<usize>>,
    horizon: f64,
}

impl DiskSchedule {
    /// The slots in broadcast order.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// The generation horizon (seconds).
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Appearance count of an item.
    pub fn appearances(&self, item: ItemId) -> usize {
        self.per_item.get(item.index()).map_or(0, Vec::len)
    }

    /// Waiting time (probe + download) for a request of `item` at `now`,
    /// or `None` when the horizon ends before the item's next slot
    /// (callers should keep requests well inside the horizon).
    pub fn waiting_time(&self, item: ItemId, now: f64) -> Option<f64> {
        let starts = self.per_item.get(item.index())?;
        // First slot of this item with start >= now.
        let pos = starts.partition_point(|&e| self.entries[e].start < now);
        let entry = self.entries[*starts.get(pos)?];
        Some(entry.end - now)
    }

    /// Exact time-averaged waiting time for a request instant uniform
    /// in `[0, limit]`, weighted by item frequencies.
    ///
    /// Computed by closed-form piecewise integration of each item's
    /// waiting-time sawtooth (no sampling, no aliasing): for request
    /// time `u` between consecutive starts `t_{j-1} < u <= t_j` of the
    /// item, the wait is `end_j − u`, whose integral over the interval
    /// is elementary.
    ///
    /// `limit` should leave slack before the horizon so every request
    /// completes; the tail beyond the item's last start is excluded
    /// from its average rather than biasing it.
    pub fn mean_waiting_time(&self, items: &[(f64, f64)], limit: f64) -> f64 {
        let mut weighted = 0.0;
        let mut mass = 0.0;
        for (i, &(f, _)) in items.iter().enumerate() {
            let Some(starts) = self.per_item.get(i) else { continue };
            let mut integral = 0.0;
            let mut covered = 0.0;
            let mut prev = 0.0f64;
            for &e in starts {
                let entry = self.entries[e];
                if prev >= limit {
                    break;
                }
                // Requests in (prev, min(t_j, limit)] are served by this
                // occurrence and wait end_j − u.
                let hi = entry.start.min(limit);
                if hi > prev {
                    let a = entry.end - prev; // wait at the interval's left edge
                    let b = entry.end - hi; // wait at the right edge
                    integral += (a * a - b * b) / 2.0;
                    covered += hi - prev;
                }
                prev = entry.start;
            }
            if covered > 0.0 {
                weighted += f * integral / covered;
                mass += f;
            }
        }
        weighted / mass
    }
}

/// The square-root-rule spacing scheduler.
///
/// Target spacings are computed in closed form —
/// `s_i = C · sqrt(z_i / f_i)` with `C` chosen so the airtime exactly
/// fills the channel (`Σ (z_i / b) / s_i = 1`) — and slots are then
/// dispatched *earliest-due-first*: the item whose next appearance is
/// most overdue broadcasts next. This realizes the Ammar–Wong optimal
/// spacings directly and sidesteps the known instability of myopic
/// score rules (which can lock into alternation for two-item
/// catalogues).
///
/// # Example
///
/// ```
/// use dbcast_disks::OnlineScheduler;
/// # fn main() -> Result<(), dbcast_model::ModelError> {
/// let items = [(0.8, 1.0), (0.2, 4.0)];
/// let schedule = OnlineScheduler::new(&items, 10.0)?.generate(100.0);
/// // The popular small item appears far more often.
/// assert!(schedule.appearances(0.into()) > schedule.appearances(1.into()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineScheduler {
    /// `(frequency, size)` per item.
    items: Vec<(f64, f64)>,
    bandwidth: f64,
}

impl OnlineScheduler {
    /// Creates a scheduler for one channel.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyDatabase`] for no items,
    /// [`ModelError::InvalidFrequency`] / [`ModelError::InvalidSize`] /
    /// [`ModelError::InvalidBandwidth`] for bad values.
    pub fn new(items: &[(f64, f64)], bandwidth: f64) -> Result<Self, ModelError> {
        if items.is_empty() {
            return Err(ModelError::EmptyDatabase);
        }
        for (index, &(f, z)) in items.iter().enumerate() {
            if !f.is_finite() || f <= 0.0 {
                return Err(ModelError::InvalidFrequency { index, value: f });
            }
            if !z.is_finite() || z <= 0.0 {
                return Err(ModelError::InvalidSize { index, value: z });
            }
        }
        if !bandwidth.is_finite() || bandwidth <= 0.0 {
            return Err(ModelError::InvalidBandwidth { value: bandwidth });
        }
        Ok(OnlineScheduler { items: items.to_vec(), bandwidth })
    }

    /// Generates a schedule covering `[0, horizon]` seconds.
    ///
    /// Every item is treated as last broadcast at `t = 0⁻`, so early
    /// slots cycle through the catalogue before the steady-state
    /// spacings emerge.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite horizon.
    pub fn generate(&self, horizon: f64) -> DiskSchedule {
        assert!(horizon.is_finite() && horizon > 0.0, "horizon must be positive");
        let n = self.items.len();
        // Optimal spacings: s_i = C sqrt(z_i / f_i), with C filling the
        // channel: Σ (z_i / b) / s_i = 1.
        let raw: Vec<f64> = self.items.iter().map(|&(f, z)| (z / f).sqrt()).collect();
        let c: f64 =
            self.items.iter().zip(&raw).map(|(&(_, z), &s)| z / (self.bandwidth * s)).sum();
        let spacing: Vec<f64> = raw.iter().map(|&s| s * c).collect();

        // Earliest-due-first dispatch, staggered initial phases so the
        // first cycle is already interleaved.
        let mut due: Vec<f64> =
            spacing.iter().enumerate().map(|(i, &s)| s * i as f64 / n as f64).collect();
        let mut entries = Vec::new();
        let mut per_item = vec![Vec::new(); n];
        let mut t = 0.0;
        while t < horizon {
            let best = (0..n)
                .min_by(|&a, &b| due[a].total_cmp(&due[b]).then(a.cmp(&b)))
                .expect("items non-empty");
            let (_, z) = self.items[best];
            let end = t + z / self.bandwidth;
            per_item[best].push(entries.len());
            entries.push(ScheduleEntry { item: ItemId::new(best), start: t, end });
            due[best] = due[best].max(t) + spacing[best];
            t = end;
        }
        DiskSchedule { entries, per_item, horizon: t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::{flat_probe_time, sqrt_rule_probe_bound};

    #[test]
    fn validation_errors() {
        assert!(OnlineScheduler::new(&[], 10.0).is_err());
        assert!(OnlineScheduler::new(&[(0.0, 1.0)], 10.0).is_err());
        assert!(OnlineScheduler::new(&[(1.0, -1.0)], 10.0).is_err());
        assert!(OnlineScheduler::new(&[(1.0, 1.0)], 0.0).is_err());
    }

    #[test]
    fn schedule_is_gapless_and_within_horizon() {
        let items = [(0.5, 2.0), (0.3, 1.0), (0.2, 5.0)];
        let s = OnlineScheduler::new(&items, 10.0).unwrap().generate(50.0);
        let mut prev_end = 0.0;
        for e in s.entries() {
            assert!((e.start - prev_end).abs() < 1e-9, "gap in schedule");
            assert!(e.end > e.start);
            prev_end = e.end;
        }
        assert!(prev_end >= 50.0);
    }

    #[test]
    fn equal_items_get_equal_airtime() {
        let items = [(0.25, 1.0); 4];
        let s = OnlineScheduler::new(&items, 10.0).unwrap().generate(100.0);
        let counts: Vec<usize> = (0..4).map(|i| s.appearances(ItemId::new(i))).collect();
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "{counts:?}");
    }

    #[test]
    fn appearance_ratio_follows_square_root_rule() {
        // Spacing s_i ∝ sqrt(z_i / f_i) means appearance *rate*
        // ∝ sqrt(f_i / z_i). Items (0.8, 1.0) vs (0.2, 4.0):
        // rate ratio = sqrt(0.8/1)/sqrt(0.2/4) = sqrt(16) = 4.
        let items = [(0.8, 1.0), (0.2, 4.0)];
        let s = OnlineScheduler::new(&items, 10.0).unwrap().generate(2_000.0);
        let r = s.appearances(ItemId::new(0)) as f64 / s.appearances(ItemId::new(1)) as f64;
        assert!((r - 4.0).abs() < 0.5, "appearance ratio {r}, expected ~4");
    }

    #[test]
    fn online_scheduler_approaches_the_lower_bound() {
        let db = dbcast_workload::WorkloadBuilder::new(25)
            .skewness(1.2)
            .seed(3)
            .build()
            .unwrap();
        let items: Vec<(f64, f64)> = db.iter().map(|d| (d.frequency(), d.size())).collect();
        let b = 10.0;
        let horizon = 4_000.0;
        let s = OnlineScheduler::new(&items, b).unwrap().generate(horizon);
        let measured = s.mean_waiting_time(&items, horizon * 0.8);
        // Compare probe component: measured includes download; bound
        // plus mean download should bracket it within ~15%.
        let download: f64 = items.iter().map(|&(f, z)| f * z / b).sum();
        let lb = sqrt_rule_probe_bound(&items, b) + download;
        let flat = flat_probe_time(&items, b) + download;
        assert!(measured >= lb * 0.95, "measured {measured} below bound {lb}");
        assert!(
            measured <= lb * 1.20,
            "measured {measured} should be within 20% of bound {lb}"
        );
        // And strictly better than the flat cycle on skewed demand.
        assert!(measured < flat, "measured {measured} vs flat {flat}");
    }

    #[test]
    fn waiting_time_lookup_is_exact() {
        let items = [(0.5, 2.0), (0.5, 3.0)];
        let s = OnlineScheduler::new(&items, 10.0).unwrap().generate(10.0);
        // Request item of the first entry exactly at schedule start.
        let first = s.entries()[0];
        let w = s.waiting_time(first.item, 0.0).unwrap();
        assert!((w - (first.end - 0.0)).abs() < 1e-12);
        // Past the horizon, None.
        assert!(s.waiting_time(ItemId::new(0), 1e9).is_none());
    }
}
