//! Property-based tests of broadcast-disk scheduling.

use dbcast_disks::{flat_probe_time, sqrt_rule_probe_bound, OnlineScheduler};
use dbcast_model::ItemId;
use proptest::prelude::*;

fn items_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.01f64..1.0, 0.1f64..20.0), 1..15).prop_map(|mut v| {
        // Normalize frequencies like a real demand profile.
        let total: f64 = v.iter().map(|i| i.0).sum();
        for i in &mut v {
            i.0 /= total;
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sqrt_bound_never_exceeds_flat(items in items_strategy(), b in 1.0f64..100.0) {
        prop_assert!(sqrt_rule_probe_bound(&items, b) <= flat_probe_time(&items, b) + 1e-9);
    }

    #[test]
    fn schedule_is_gapless_and_complete(items in items_strategy(), seedish in 10.0f64..60.0) {
        let s = OnlineScheduler::new(&items, 10.0).unwrap().generate(seedish * 4.0);
        let mut prev = 0.0;
        for e in s.entries() {
            prop_assert!((e.start - prev).abs() < 1e-9, "gap at {}", e.start);
            prop_assert!(e.end > e.start);
            prev = e.end;
        }
        // Every item appears at least once on a long enough horizon.
        let max_spacing_items = items.len() as f64 * 20.0; // generous
        if seedish * 4.0 > max_spacing_items {
            for i in 0..items.len() {
                prop_assert!(s.appearances(ItemId::new(i)) > 0, "item {i} never aired");
            }
        }
    }

    #[test]
    fn measured_wait_is_bounded_by_theory(items in items_strategy()) {
        let b = 10.0;
        // Size the horizon to the *largest* optimal spacing, so the
        // sampling window never truncates the rare items' waits (the
        // finite-horizon lookup skips requests whose item does not
        // reappear, which would otherwise bias the mean downward).
        let c: f64 = items.iter().map(|&(f, z)| z / (b * (z / f).sqrt())).sum();
        let max_spacing = items
            .iter()
            .map(|&(f, z)| c * (z / f).sqrt())
            .fold(0.0, f64::max);
        let horizon = (max_spacing * 60.0).max(200.0);
        let s = OnlineScheduler::new(&items, b).unwrap().generate(horizon);
        let download: f64 = items.iter().map(|&(f, z)| f * z / b).sum();
        let measured =
            s.mean_waiting_time(&items, horizon - 2.0 * max_spacing) - download;
        let lb = sqrt_rule_probe_bound(&items, b);
        // The realized schedule cannot beat the bound beyond sampling
        // noise, and a sane scheduler stays within 2x of it.
        prop_assert!(measured >= lb * 0.85, "measured {measured} below bound {lb}");
        prop_assert!(measured <= lb * 2.0 + 0.5, "measured {measured} far above bound {lb}");
    }

    #[test]
    fn appearance_rates_track_sqrt_of_benefit(items in items_strategy()) {
        prop_assume!(items.len() >= 2);
        let b = 10.0;
        let horizon = 2_000.0;
        let s = OnlineScheduler::new(&items, b).unwrap().generate(horizon);
        // Compare the two extreme items' appearance ratio with theory.
        let rate = |i: usize| (items[i].0 / items[i].1).sqrt();
        let mut idx: Vec<usize> = (0..items.len()).collect();
        idx.sort_by(|&a, &c| rate(c).total_cmp(&rate(a)));
        let (hot, cold) = (idx[0], *idx.last().unwrap());
        let expected = rate(hot) / rate(cold);
        prop_assume!(expected > 2.0); // only meaningful with real skew
        let got = s.appearances(ItemId::new(hot)) as f64
            / s.appearances(ItemId::new(cold)).max(1) as f64;
        prop_assert!(
            got > expected * 0.5 && got < expected * 2.0,
            "appearance ratio {got} vs theoretical {expected}"
        );
    }
}
