//! The pinned macro-benchmark suite.
//!
//! Every benchmark closes over a seed-pinned workload built once up
//! front, so iterations measure the algorithm alone and the same
//! suite re-measures bit-identical work on every machine and commit —
//! the precondition for exact allocation-count comparison.

use std::cell::OnceCell;
use std::hint::black_box;
use std::rc::Rc;

use dbcast_alloc::{BestMoveEngine, Cds, Drp, DrpCds};
use dbcast_baselines::{Gopt, GoptConfig, Vfk};
use dbcast_conformance::{GeneratorConfig, InstanceGenerator};
use dbcast_model::{Allocation, BroadcastProgram, ChannelAllocator, Database};
use dbcast_net::{EgressConfig, FleetConfig, NetConfig, ScriptedSource, SourceGeneration};
use dbcast_serve::{DriftDetector, ServeConfig, ServeRuntime, WorkerMode};
use dbcast_sim::Simulation;
use dbcast_workload::{SizeDistribution, TraceBuilder, WorkloadBuilder};

/// One named, repeatable unit of work.
pub struct Benchmark {
    name: String,
    run: Box<dyn FnMut()>,
}

impl Benchmark {
    /// Wraps a closure as a benchmark.
    pub fn new(name: impl Into<String>, run: impl FnMut() + 'static) -> Self {
        Benchmark { name: name.into(), run: Box::new(run) }
    }

    /// The benchmark's stable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Executes one iteration.
    pub fn run_once(&mut self) {
        (self.run)();
    }
}

/// The paper-scale workload every allocator benchmark shares:
/// `N = 120`, Zipf `θ = 0.8`, diversity `Φ = 2`, seed 42.
fn paper_db() -> Database {
    WorkloadBuilder::new(120)
        .skewness(0.8)
        .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
        .seed(42)
        .build()
        .expect("pinned workload parameters are valid")
}

/// Builds the standard suite. Names are stable keys — renaming one
/// orphans its baseline entry and trips the gate's missing-benchmark
/// check, which is intentional.
pub fn standard_suite() -> Vec<Benchmark> {
    let mut suite = Vec::new();

    let db = paper_db();
    suite.push(Benchmark::new("drp", {
        let db = db.clone();
        move || {
            let alloc = Drp::new().allocate(&db, 6).expect("feasible");
            black_box(&alloc);
        }
    }));

    // CDS in isolation: refine the same rough DRP allocation each
    // iteration (the clone is part of the measured cost and is
    // identical every time).
    let rough = Drp::new().allocate(&db, 6).expect("feasible");
    suite.push(Benchmark::new("cds", {
        let db = db.clone();
        move || {
            let out = Cds::new().refine(&db, rough.clone()).expect("refine cannot fail");
            black_box(&out);
        }
    }));

    suite.push(Benchmark::new("drp_cds", {
        let db = db.clone();
        move || {
            let alloc = DrpCds::new().allocate(&db, 6).expect("feasible");
            black_box(&alloc);
        }
    }));

    // Production-scale instance for the incremental engine: N = 100 000
    // items over K = 256 channels, same distribution family as the
    // paper workload. Setup (workload synthesis + DRP rough cut,
    // ~0.5 s) is shared between the two large benchmarks and runs
    // lazily inside the first warmup iteration, so filtered runs and
    // suite-shape tests never pay for it.
    let large: Rc<OnceCell<(Database, Allocation)>> = Rc::new(OnceCell::new());
    fn build_large() -> (Database, Allocation) {
        let db = WorkloadBuilder::new(100_000)
            .skewness(0.8)
            .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
            .seed(42)
            .build()
            .expect("pinned workload parameters are valid");
        let rough = Drp::new().allocate(&db, 256).expect("feasible");
        (db, rough)
    }

    // One steepest-descent move on a warm incremental engine — the
    // unit of work a budgeted repair pays per move at production
    // scale. The engine persists across iterations, so successive
    // iterations walk successive moves of the same deterministic
    // descent (the O(NK) engine init lands in the warmup discard).
    suite.push(Benchmark::new("cds_large", {
        let large = Rc::clone(&large);
        let mut engine: Option<BestMoveEngine> = None;
        move || {
            let engine = engine.get_or_insert_with(|| {
                let (db, rough) = large.get_or_init(build_large);
                let f: Vec<f64> = db.iter().map(|d| d.frequency()).collect();
                let z: Vec<f64> = db.iter().map(|d| d.size()).collect();
                let assign: Vec<u32> =
                    rough.assignment().iter().map(|&c| c as u32).collect();
                let stats = rough.all_channel_stats();
                let freq: Vec<f64> = stats.iter().map(|s| s.frequency).collect();
                let size: Vec<f64> = stats.iter().map(|s| s.size).collect();
                BestMoveEngine::new(256, 1e-9, f, z, assign, freq, size)
            });
            black_box(engine.apply_best());
        }
    }));

    // The full pipeline at the same scale, descent capped at 16 moves:
    // DRP plus the engine's O(NK) init dominate, keeping an iteration
    // around a second while still exercising the incremental repair.
    suite.push(Benchmark::new("drp_cds_large", {
        let large = Rc::clone(&large);
        move || {
            let (db, _) = large.get_or_init(build_large);
            let alloc = DrpCds::new()
                .with_cds(Cds::new().max_iterations(16))
                .allocate(db, 256)
                .expect("feasible");
            black_box(&alloc);
        }
    }));

    suite.push(Benchmark::new("vfk", {
        let db = db.clone();
        move || {
            let alloc = Vfk::new().allocate(&db, 6).expect("feasible");
            black_box(&alloc);
        }
    }));

    // GOPT on a deliberately small instance: the genetic search is the
    // paper's slow baseline, and the gate needs iterations in
    // milliseconds, not minutes.
    let small_db = WorkloadBuilder::new(30)
        .skewness(0.8)
        .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
        .seed(42)
        .build()
        .expect("pinned workload parameters are valid");
    suite.push(Benchmark::new("gopt_small", {
        let db = small_db;
        move || {
            let gopt = Gopt::new(GoptConfig {
                population: 24,
                max_generations: 25,
                seed: 7,
                ..GoptConfig::default()
            });
            let alloc = gopt.allocate(&db, 4).expect("feasible");
            black_box(&alloc);
        }
    }));

    // The discrete-event engine on a DRP-CDS program, 2000 requests.
    let alloc = DrpCds::new().allocate(&db, 6).expect("feasible");
    let program = BroadcastProgram::new(&db, &alloc, 10.0).expect("consistent program");
    let trace = TraceBuilder::new(&db)
        .requests(2000)
        .arrival_rate(10.0)
        .seed(43)
        .build()
        .expect("valid trace parameters");
    suite.push(Benchmark::new("sim_engine", move || {
        let report = Simulation::new(&program, &trace).run().expect("program covers trace");
        black_box(&report);
    }));

    // The conformance generator: 64 seed-replayable cases.
    suite.push(Benchmark::new("conformance_gen", || {
        let generator = InstanceGenerator::new(GeneratorConfig::default());
        for case in 0..64 {
            black_box(generator.instance(case));
        }
    }));

    // The serving runtime's steady state: 4000 requests through the
    // closed loop with a drift threshold high enough that no swap
    // fires — measures estimator + drift-check + analytical serving
    // throughput (requests per second of wall time).
    let serve_trace =
        dbcast_serve::poisson_trace(&db, 50.0, 4_000, 44).expect("valid trace parameters");
    suite.push(Benchmark::new("serve_loop", {
        let db = db.clone();
        let trace = serve_trace.clone();
        move || {
            let config = ServeConfig {
                detector: DriftDetector { threshold: 10.0, min_observations: u64::MAX },
                worker: WorkerMode::Deterministic,
                ..ServeConfig::default()
            };
            let runtime = ServeRuntime::new(&db, config).expect("feasible");
            black_box(runtime.run(&trace).expect("trace is servable"));
        }
    }));

    // Hot-swap latency: a mid-stream Zipf shift forces drift-triggered
    // full re-allocations and program swaps; the dominant cost is the
    // DRP-CDS re-run plus program rebuild per swap.
    let post = dbcast_serve::shifted_workload(&db, 1.2, 60).expect("valid shift");
    let swap_trace = dbcast_serve::shifted_trace(&db, &post, 1_500, 2_500, 50.0, 44)
        .expect("valid trace parameters");
    suite.push(Benchmark::new("serve_swap", {
        let db = db.clone();
        move || {
            let config = ServeConfig {
                detector: DriftDetector { threshold: 0.25, min_observations: 200 },
                worker: WorkerMode::Deterministic,
                ..ServeConfig::default()
            };
            let runtime = ServeRuntime::new(&db, config).expect("feasible");
            let report = runtime.run(&swap_trace).expect("trace is servable");
            assert!(report.swaps >= 1, "swap benchmark must actually swap");
            black_box(report);
        }
    }));

    // One sampler scrape over a registry populated with the serving
    // runtime's metric families (per-channel gauges, SLO gauges, a
    // warm wait histogram): snapshot + bounded per-metric append +
    // watchdog evaluation. This is the always-on telemetry tax, so
    // its median is pinned to ≤2% of the serve-loop median by the
    // contract test below.
    {
        let r = dbcast_obs::registry();
        for i in 0..6 {
            r.gauge(&format!("serve.channel.load.{i}")).force_set(1.0 + i as f64);
            r.gauge(&format!("serve.channel.expected_wait.{i}")).force_set(0.3 * i as f64);
        }
        r.gauge("serve.drift_distance").force_set(0.1);
        r.gauge("serve.slo.burn_rate").force_set(0.2);
        let wait = r.histogram("serve.wait_time");
        for i in 0..512u64 {
            wait.force_record(i * 37);
        }
    }
    let scope_store = dbcast_scope::SeriesStore::default();
    let scope_watchdog = std::sync::Mutex::new(dbcast_scope::Watchdog::new(
        dbcast_scope::parse_rules("rate(serve.requests) > 1000000000 for 60s")
            .expect("pinned watchdog rule is valid"),
    ));
    suite.push(Benchmark::new("scope_sampler", move || {
        let r = dbcast_obs::registry();
        r.counter("serve.ticks").force_add(1);
        r.counter("serve.requests").force_add(50);
        dbcast_scope::sample_once(&scope_store, &scope_watchdog);
        black_box(scope_store.latest_tick());
    }));

    // The per-request audit tax in isolation, at the default sample
    // rate: the same request count the serve-loop benchmark pushes
    // through its closed loop (4000), here paying only the audit path
    // — seeded sampling decision, residual accounting, tail check and
    // (for sampled requests) a seqlock ring record. The synthetic
    // stream is precomputed so the measured loop is audit work alone.
    // Pinned to ≤2% of the serve-loop median by the contract test
    // below.
    let audit_tracer = dbcast_audit::AuditTracer::new(
        dbcast_audit::AuditConfig { seed: 42, ..dbcast_audit::AuditConfig::default() },
        6,
    );
    let audit_stream: Vec<(u32, u32, f64, f64)> = (0..4_000u32)
        .map(|id| {
            let channel = id % 6;
            let predicted = 0.3 + f64::from(channel) * 0.01;
            // A 1-in-499 slow outlier keeps the tail stage exercised.
            let slow_spike = if id % 499 == 0 { 3.0 } else { 1.0 };
            let wait = (predicted + f64::from(id % 13) * 0.005) * slow_spike;
            (id, channel, wait, predicted)
        })
        .collect();
    suite.push(Benchmark::new("audit_sampler", move || {
        for &(id, channel, wait, predicted) in &audit_stream {
            let residual = audit_tracer.observe_wait(channel as usize, wait, predicted);
            let seeded = audit_tracer.should_sample(u64::from(id));
            let tail = audit_tracer.tail_slow(wait, 0.35);
            if seeded || tail {
                // Only sampled requests (~2% at the default rate) pay
                // for a full lifecycle record.
                audit_tracer.record(&dbcast_audit::TraceRecord {
                    request_id: u64::from(id),
                    item: u64::from(id % 120),
                    arrival_tick: u64::from(id / 50),
                    satisfied_tick: u64::from(id / 50 + 1),
                    generation: 0,
                    channel: u64::from(channel),
                    queue_position: u64::from(id % 7),
                    arrival: f64::from(id) * 0.02,
                    wait,
                    predicted,
                    straddle_penalty: 0.0,
                    flags: (u64::from(seeded) * dbcast_audit::FLAG_SEEDED)
                        | (u64::from(tail) * dbcast_audit::FLAG_TAIL),
                });
            }
            black_box(residual);
        }
        black_box(audit_tracer.sampled());
    }));

    // The framed broadcast transport end to end: a loopback server, a
    // scripted single-generation egress and 16 concurrent
    // record-then-measure clients, all over real TCP sockets. Every
    // iteration pays the full lifecycle — bind, connect, frame
    // encode/decode, analytical measurement, report fold — on a small
    // pinned program, so this is the wall-time contract for `dbcast
    // fleet` itself. Virtual-time framing keeps the work seed-exact
    // across machines.
    let fleet_db = WorkloadBuilder::new(24)
        .skewness(0.8)
        .sizes(SizeDistribution::Diversity { phi_max: 1.0 })
        .seed(42)
        .build()
        .expect("pinned workload parameters are valid");
    let fleet_alloc = DrpCds::new().allocate(&fleet_db, 2).expect("feasible");
    let fleet_program =
        BroadcastProgram::new(&fleet_db, &fleet_alloc, 10.0).expect("consistent program");
    let fleet_stage = SourceGeneration {
        generation: 0,
        program: fleet_program,
        frequencies: fleet_db.iter().map(|d| d.frequency()).collect(),
    };
    suite.push(Benchmark::new("fleet_e2e", move || {
        let source = ScriptedSource::new(vec![(0, fleet_stage.clone())]);
        let egress = EgressConfig { index: None, max_windows: Some(24), pace: None };
        let config = FleetConfig {
            clients: 16,
            seed: 42,
            requests: 12,
            rate: 2.0,
            ..FleetConfig::default()
        };
        let (report, egress_report) =
            dbcast_net::run_fleet_inline(&source, &egress, NetConfig::default(), &config)
                .expect("loopback fleet runs");
        assert_eq!(
            report.totals.torn_frames, 0,
            "fleet benchmark must measure a clean stream"
        );
        black_box((report, egress_report));
    }));

    // The telemetry uplink's server-side tax: decode a pinned wire
    // stream of fleet digests (4 clients × acks + measurement slices,
    // encoded once up front) and fold every frame into a fresh
    // aggregator. This is the entire per-digest cost the serve process
    // pays beyond the socket read, so its median is pinned to ≤2% of
    // the serve-loop median by the contract test below.
    let uplink_wire = {
        let mut wire = Vec::new();
        for client in 0..4u32 {
            for generation in 0..2u64 {
                let mut ack = dbcast_net::TelemetryFrame::empty();
                ack.client = client;
                ack.seq = generation as u32 * 2;
                ack.last_generation = generation;
                dbcast_net::encode_telemetry_frame_into(&mut wire, &ack);

                let mut slice = dbcast_net::TelemetryFrame::empty();
                slice.client = client;
                slice.seq = generation as u32 * 2 + 1;
                slice.flags = dbcast_net::TELEMETRY_FLAG_SLICE;
                slice.last_generation = 1;
                slice.generation = generation;
                slice.origin = generation as f64 * 12.5;
                slice.samples = 6;
                slice.mean_access = 0.42 + f64::from(client) * 0.003;
                slice.mean_tuning = 0.03;
                slice.predicted_access = 0.40;
                slice.requests = 8;
                slice.completed = 6;
                slice.cache_hits = 1;
                slice.conflicts = 2;
                slice.retunes = 3;
                slice.torn = 0;
                for k in 0..6u64 {
                    slice.access.record(400_000 + k * 17_000 + u64::from(client));
                    slice.tuning.record(30_000 + k * 500);
                }
                slice.coverage = vec![(0, 120), (1, 96), (2, 80)];
                dbcast_net::encode_telemetry_frame_into(&mut wire, &slice);
            }
        }
        wire
    };
    suite.push(Benchmark::new("fleet_uplink", move || {
        let aggregator = dbcast_serve::FleetAggregator::new();
        aggregator.set_published(1);
        let mut decoder = dbcast_net::FrameDecoder::new();
        decoder.push(&uplink_wire);
        let mut digests = 0u64;
        while let Ok(Some(frame)) = decoder.next_frame() {
            if let dbcast_net::Frame::Telemetry(t) = frame {
                aggregator.ingest(&dbcast_net::digest_from_frame(&t));
                digests += 1;
            }
        }
        assert_eq!(digests, 16, "pinned uplink stream must decode in full");
        black_box(aggregator.doc());
    }));

    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_are_unique_and_stable() {
        let suite = standard_suite();
        let names: Vec<&str> = suite.iter().map(Benchmark::name).collect();
        assert_eq!(
            names,
            [
                "drp",
                "cds",
                "drp_cds",
                "cds_large",
                "drp_cds_large",
                "vfk",
                "gopt_small",
                "sim_engine",
                "conformance_gen",
                "serve_loop",
                "serve_swap",
                "scope_sampler",
                "audit_sampler",
                "fleet_e2e",
                "fleet_uplink"
            ]
        );
    }

    #[test]
    fn sampler_overhead_is_pinned_in_the_bench_contract() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
        let baseline = crate::BenchReport::load(std::path::Path::new(path))
            .expect("committed baseline loads");
        let sampler = baseline
            .benchmark("scope_sampler")
            .expect("baseline carries the sampler benchmark");
        let serve = baseline
            .benchmark("serve_loop")
            .expect("baseline carries the serve-loop benchmark");
        assert!(
            sampler.median_ns <= 0.02 * serve.median_ns,
            "sampler scrape ({} ns) exceeds 2% of the serve-loop median ({} ns)",
            sampler.median_ns,
            serve.median_ns,
        );
    }

    #[test]
    fn audit_overhead_is_pinned_in_the_bench_contract() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
        let baseline = crate::BenchReport::load(std::path::Path::new(path))
            .expect("committed baseline loads");
        let audit = baseline
            .benchmark("audit_sampler")
            .expect("baseline carries the audit-sampler benchmark");
        let serve = baseline
            .benchmark("serve_loop")
            .expect("baseline carries the serve-loop benchmark");
        assert!(
            audit.median_ns <= 0.02 * serve.median_ns,
            "per-request audit tax ({} ns for the 4000-request sweep) exceeds 2% \
             of the serve-loop median ({} ns)",
            audit.median_ns,
            serve.median_ns,
        );
    }

    #[test]
    fn uplink_overhead_is_pinned_in_the_bench_contract() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
        let baseline = crate::BenchReport::load(std::path::Path::new(path))
            .expect("committed baseline loads");
        let uplink = baseline
            .benchmark("fleet_uplink")
            .expect("baseline carries the fleet-uplink benchmark");
        let serve = baseline
            .benchmark("serve_loop")
            .expect("baseline carries the serve-loop benchmark");
        assert!(
            uplink.median_ns <= 0.02 * serve.median_ns,
            "uplink decode + aggregation ({} ns for the 16-digest stream) exceeds \
             2% of the serve-loop median ({} ns)",
            uplink.median_ns,
            serve.median_ns,
        );
    }

    #[test]
    fn every_benchmark_runs() {
        for mut b in standard_suite() {
            b.run_once();
        }
    }
}
