//! Executes a benchmark suite: warmup, timed iterations, allocation
//! deltas and span-depth watermarks, folded into a [`BenchReport`].

use std::time::Instant;

use dbcast_sim::SummaryStats;

use crate::alloc_count::allocation_counts;
use crate::report::{BenchRecord, BenchReport, SCHEMA_VERSION};
use crate::suite::Benchmark;

/// How a suite run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Recorded iterations per benchmark.
    pub iterations: usize,
    /// Discarded warmup iterations per benchmark (absorbs cold caches,
    /// metric-registry interning, allocator warm-up).
    pub warmup: usize,
    /// Collect span trees during the run (needs the `obs` feature to
    /// record anything; harmless without it).
    pub profile: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { iterations: 10, warmup: 2, profile: true }
    }
}

/// Runs every benchmark and assembles the report.
///
/// Per iteration, the wall clock and allocation counters are read
/// immediately around the benchmark closure — the harness's own
/// bookkeeping (stats vectors, span flushing) stays outside the
/// window. Span trees accumulate in the global `dbcast_obs::tree`
/// collector for the caller to export; only the per-benchmark peak
/// depth is folded into the report here.
///
/// # Panics
///
/// Panics if `options.iterations` is zero.
pub fn run_suite(suite: &mut [Benchmark], options: &RunOptions) -> BenchReport {
    assert!(options.iterations > 0, "need at least one recorded iteration");
    if options.profile {
        dbcast_obs::tree::set_profiling(true);
    }
    let mut benchmarks = Vec::with_capacity(suite.len());
    for bench in suite.iter_mut() {
        for _ in 0..options.warmup {
            bench.run_once();
        }
        dbcast_obs::tree::reset_peak_depth();
        let mut wall = SummaryStats::new();
        let mut alloc_deltas: Vec<(u64, u64)> = Vec::with_capacity(options.iterations);
        for _ in 0..options.iterations {
            let (a0, b0) = allocation_counts();
            let start = Instant::now();
            bench.run_once();
            let elapsed = start.elapsed();
            let (a1, b1) = allocation_counts();
            alloc_deltas.push((a1 - a0, b1 - b0));
            wall.record(elapsed.as_nanos() as f64);
        }
        let allocs_available = crate::alloc_count::counting_active();
        let (allocs, alloc_bytes) = *alloc_deltas.last().expect("iterations > 0");
        let alloc_stable =
            allocs_available && alloc_deltas.iter().all(|&(a, _)| a == allocs);
        benchmarks.push(BenchRecord {
            name: bench.name().to_string(),
            iterations: options.iterations,
            mean_ns: wall.mean(),
            median_ns: wall.percentile(50.0).expect("iterations > 0"),
            p95_ns: wall.percentile(95.0).expect("iterations > 0"),
            min_ns: wall.min().expect("iterations > 0"),
            max_ns: wall.max().expect("iterations > 0"),
            allocs,
            alloc_bytes,
            alloc_stable,
            allocs_available,
            peak_span_depth: dbcast_obs::tree::peak_depth(),
        });
    }
    BenchReport {
        schema_version: SCHEMA_VERSION,
        git_sha: crate::report::git_short_sha().unwrap_or_else(|| "unknown".to_string()),
        obs_enabled: dbcast_obs::enabled(),
        warmup: options.warmup,
        benchmarks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Benchmark;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn warmup_iterations_run_but_are_not_recorded() {
        let calls = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&calls);
        let mut suite = vec![Benchmark::new("count_calls", move || {
            counter.fetch_add(1, Ordering::Relaxed);
        })];
        let report =
            run_suite(&mut suite, &RunOptions { iterations: 4, warmup: 3, profile: false });
        assert_eq!(calls.load(Ordering::Relaxed), 7);
        let rec = report.benchmark("count_calls").unwrap();
        assert_eq!(rec.iterations, 4);
        assert!(rec.median_ns >= 0.0 && rec.p95_ns >= rec.median_ns - 1e-9);
        assert_eq!(report.schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn measured_sleep_dominates_the_median() {
        let mut suite = vec![Benchmark::new("sleepy", || {
            std::thread::sleep(std::time::Duration::from_millis(2));
        })];
        let report =
            run_suite(&mut suite, &RunOptions { iterations: 3, warmup: 0, profile: false });
        let rec = report.benchmark("sleepy").unwrap();
        assert!(rec.median_ns >= 2e6, "sleep under-measured: {} ns", rec.median_ns);
    }

    #[test]
    #[should_panic(expected = "at least one recorded iteration")]
    fn zero_iterations_panics() {
        let mut suite = vec![Benchmark::new("noop", || {})];
        run_suite(&mut suite, &RunOptions { iterations: 0, warmup: 0, profile: false });
    }
}
