//! A counting global allocator: [`System`] plus two relaxed atomic
//! counters, so benchmarks can report exact allocation totals.
//!
//! The counter only ticks when the allocator is actually installed:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: dbcast_perf::CountingAllocator = dbcast_perf::CountingAllocator;
//! ```
//!
//! The `dbcast` binary installs it unconditionally — the overhead is
//! two relaxed `fetch_add`s per allocation, far below `malloc` itself.
//! When it is *not* installed (e.g. a downstream library user), the
//! counters stay at zero and [`crate::runner`] marks allocation data
//! as unavailable rather than reporting misleading zeros.

#![allow(unsafe_code)] // GlobalAlloc is an unsafe trait; the wrapper adds only atomics.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Pass-through [`System`] allocator that counts allocations and
/// bytes. Zero-sized and const-constructible so it can be a
/// `#[global_allocator]` static.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is new work for the allocator; count it like a fresh
        // allocation of the grown size.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Cumulative `(allocations, bytes)` since process start. Both are
/// zero when [`CountingAllocator`] is not installed as the global
/// allocator.
pub fn allocation_counts() -> (u64, u64) {
    (ALLOCATIONS.load(Ordering::Relaxed), ALLOCATED_BYTES.load(Ordering::Relaxed))
}

/// Whether the counting allocator is live (i.e. any allocation has
/// been observed). Called after at least one heap allocation has
/// certainly happened, a `false` means the allocator is not installed.
pub fn counting_active() -> bool {
    ALLOCATIONS.load(Ordering::Relaxed) > 0
}
