//! `dbcast-perf`: the deterministic performance-baseline harness.
//!
//! The paper's headline empirical claim (Figures 6–7) is a *runtime*
//! claim — DRP+CDS reaches near-GOPT cost at a tiny fraction of
//! GOPT's execution time — so this workspace treats performance as a
//! tested contract, not a hope:
//!
//! 1. [`suite::standard_suite`] pins a set of macro-benchmarks (DRP,
//!    CDS, DRP+CDS, VF^K, small GOPT, the simulation engine, the
//!    conformance generator) to seed-replayable workloads.
//! 2. [`runner::run_suite`] measures wall time (mean/median/p95 over
//!    iterations, after a warmup discard), per-iteration heap
//!    allocation counts via the [`CountingAllocator`], and the peak
//!    span-tree depth from `dbcast_obs::tree`.
//! 3. [`report::BenchReport`] serializes the run as a schema-versioned
//!    `BENCH_<gitsha>.json`; `BENCH_baseline.json` at the repo root is
//!    the committed contract.
//! 4. [`compare::compare`] diffs a fresh run against the baseline with
//!    per-metric tolerances (±20% wall time by default, exact
//!    allocation counts where both runs observed stable counts) —
//!    `dbcast perf --check` exits non-zero on any regression, and CI
//!    runs it with relaxed (±35%) tolerances.
//!
//! Refreshing the baseline is always an explicit act
//! (`dbcast perf --update-baseline`), so a slow commit cannot quietly
//! ratchet the contract.

#![deny(unsafe_code)] // the counting allocator is the one audited exception
#![warn(missing_docs)]

mod alloc_count;
pub mod compare;
pub mod report;
pub mod runner;
pub mod suite;

pub use alloc_count::{allocation_counts, counting_active, CountingAllocator};
pub use compare::{compare, Comparison, Finding, FindingKind, Tolerances};
pub use report::{git_short_sha, BenchRecord, BenchReport, SCHEMA_VERSION};
pub use runner::{run_suite, RunOptions};
pub use suite::{standard_suite, Benchmark};
