//! The regression gate: diffs a fresh [`BenchReport`] against the
//! committed baseline with per-metric tolerances.

use std::fmt;

use crate::report::BenchReport;

/// Gate tolerances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Allowed wall-time growth over baseline, percent of the baseline
    /// median (default ±20%; CI uses a relaxed 35%).
    pub wall_pct: f64,
    /// Allowed allocation-count growth when counts are not exactly
    /// comparable (default 10%).
    pub alloc_pct: f64,
    /// Require exact allocation counts when both reports observed
    /// per-iteration-stable counts. CI disables this across toolchain
    /// differences by supplying an explicit allocation tolerance.
    pub exact_when_stable: bool,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances { wall_pct: 20.0, alloc_pct: 10.0, exact_when_stable: true }
    }
}

/// What a single comparison line is about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// Median wall time grew beyond tolerance.
    WallTime,
    /// Allocation count grew beyond tolerance (or differs where exact
    /// equality is required).
    Allocations,
    /// The baseline has a benchmark the current run lacks.
    MissingBenchmark,
    /// The current run has a benchmark the baseline lacks.
    NewBenchmark,
    /// Reports are not comparable (schema version or `obs` feature
    /// mismatch).
    Incomparable,
    /// A change worth noting that does not fail the gate (e.g. a big
    /// improvement suggesting a baseline refresh).
    Note,
}

/// One comparison outcome for one benchmark (or the report pair).
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The benchmark name, or `"*"` for report-level findings.
    pub bench: String,
    /// What kind of finding this is.
    pub kind: FindingKind,
    /// Whether it fails the gate.
    pub regression: bool,
    /// Human-readable explanation with the numbers.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.regression { "REGRESSION" } else { "ok" };
        write!(f, "[{tag:>10}] {:<16} {}", self.bench, self.message)
    }
}

/// The full gate verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Every per-benchmark outcome, suite order, regressions first
    /// within a benchmark.
    pub findings: Vec<Finding>,
    /// Number of findings that fail the gate.
    pub regressions: usize,
}

impl Comparison {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions == 0
    }

    /// Renders every finding, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "gate: {} finding(s), {} regression(s) — {}\n",
            self.findings.len(),
            self.regressions,
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

fn pct_change(current: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        if current == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (current - baseline) / baseline * 100.0
    }
}

/// Diffs `current` against `baseline`.
///
/// Per baseline benchmark: the median wall time must not exceed the
/// baseline median by more than `wall_pct`; allocation counts must
/// match exactly when both runs observed stable counts (and
/// `exact_when_stable` is set), else must not grow by more than
/// `alloc_pct`. A benchmark missing from `current` is a regression
/// (coverage loss); a new benchmark is a note. Schema-version or
/// `obs`-feature mismatches make the whole pair incomparable, which
/// fails the gate rather than passing vacuously.
pub fn compare(
    current: &BenchReport,
    baseline: &BenchReport,
    tol: &Tolerances,
) -> Comparison {
    let mut findings = Vec::new();

    if current.schema_version != baseline.schema_version {
        findings.push(Finding {
            bench: "*".into(),
            kind: FindingKind::Incomparable,
            regression: true,
            message: format!(
                "schema version mismatch: current {} vs baseline {} — refresh the baseline",
                current.schema_version, baseline.schema_version
            ),
        });
        let regressions = findings.len();
        return Comparison { findings, regressions };
    }
    let obs_mismatch = current.obs_enabled != baseline.obs_enabled;
    if obs_mismatch {
        findings.push(Finding {
            bench: "*".into(),
            kind: FindingKind::Note,
            regression: false,
            message: format!(
                "obs feature mismatch (current {}, baseline {}): wall times compare \
                 loosely, allocation checks skipped",
                current.obs_enabled, baseline.obs_enabled
            ),
        });
    }

    for base in &baseline.benchmarks {
        let Some(cur) = current.benchmark(&base.name) else {
            findings.push(Finding {
                bench: base.name.clone(),
                kind: FindingKind::MissingBenchmark,
                regression: true,
                message: "benchmark present in baseline but not in this run".into(),
            });
            continue;
        };

        let change = pct_change(cur.median_ns, base.median_ns);
        if change > tol.wall_pct {
            findings.push(Finding {
                bench: base.name.clone(),
                kind: FindingKind::WallTime,
                regression: true,
                message: format!(
                    "median {:.3} ms vs baseline {:.3} ms ({:+.1}% > +{:.0}% tolerance)",
                    cur.median_ns / 1e6,
                    base.median_ns / 1e6,
                    change,
                    tol.wall_pct
                ),
            });
        } else if change < -tol.wall_pct {
            findings.push(Finding {
                bench: base.name.clone(),
                kind: FindingKind::Note,
                regression: false,
                message: format!(
                    "median {:.3} ms vs baseline {:.3} ms ({:+.1}%) — consider \
                     refreshing the baseline to lock in the improvement",
                    cur.median_ns / 1e6,
                    base.median_ns / 1e6,
                    change
                ),
            });
        } else {
            findings.push(Finding {
                bench: base.name.clone(),
                kind: FindingKind::WallTime,
                regression: false,
                message: format!(
                    "median {:.3} ms vs baseline {:.3} ms ({:+.1}%)",
                    cur.median_ns / 1e6,
                    base.median_ns / 1e6,
                    change
                ),
            });
        }

        let counts_comparable =
            !obs_mismatch && cur.allocs_available && base.allocs_available;
        if counts_comparable {
            let exact = tol.exact_when_stable && cur.alloc_stable && base.alloc_stable;
            if exact && cur.allocs != base.allocs {
                let regression = cur.allocs > base.allocs;
                findings.push(Finding {
                    bench: base.name.clone(),
                    kind: if regression {
                        FindingKind::Allocations
                    } else {
                        FindingKind::Note
                    },
                    regression,
                    message: format!(
                        "allocations {} vs baseline {} (exact match required: both \
                         runs were per-iteration stable){}",
                        cur.allocs,
                        base.allocs,
                        if regression { "" } else { " — improvement; refresh baseline" }
                    ),
                });
            } else if !exact {
                let change = pct_change(cur.allocs as f64, base.allocs as f64);
                if change > tol.alloc_pct {
                    findings.push(Finding {
                        bench: base.name.clone(),
                        kind: FindingKind::Allocations,
                        regression: true,
                        message: format!(
                            "allocations {} vs baseline {} ({:+.1}% > +{:.0}% tolerance)",
                            cur.allocs, base.allocs, change, tol.alloc_pct
                        ),
                    });
                }
            }
        }
    }

    for cur in &current.benchmarks {
        if baseline.benchmark(&cur.name).is_none() {
            findings.push(Finding {
                bench: cur.name.clone(),
                kind: FindingKind::NewBenchmark,
                regression: false,
                message: "new benchmark (not in baseline) — refresh the baseline to \
                          gate it"
                    .into(),
            });
        }
    }

    let regressions = findings.iter().filter(|f| f.regression).count();
    Comparison { findings, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchRecord, SCHEMA_VERSION};

    fn record(name: &str, median_ns: f64, allocs: u64, stable: bool) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            iterations: 5,
            mean_ns: median_ns,
            median_ns,
            p95_ns: median_ns * 1.1,
            min_ns: median_ns * 0.9,
            max_ns: median_ns * 1.2,
            allocs,
            alloc_bytes: allocs * 64,
            alloc_stable: stable,
            allocs_available: true,
            peak_span_depth: 2,
        }
    }

    fn report(benchmarks: Vec<BenchRecord>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            git_sha: "test".into(),
            obs_enabled: true,
            warmup: 1,
            benchmarks,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let base = report(vec![record("drp", 1e6, 100, true)]);
        let cmp = compare(&base, &base, &Tolerances::default());
        assert!(cmp.passed(), "{}", cmp.render());
    }

    #[test]
    fn slowdown_beyond_tolerance_fails() {
        let base = report(vec![record("drp", 1e6, 100, true)]);
        let cur = report(vec![record("drp", 1.5e6, 100, true)]);
        let cmp = compare(&cur, &base, &Tolerances::default());
        assert_eq!(cmp.regressions, 1);
        assert!(cmp
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::WallTime && f.regression));
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let base = report(vec![record("drp", 1e6, 100, true)]);
        let cur = report(vec![record("drp", 1.15e6, 100, true)]);
        assert!(compare(&cur, &base, &Tolerances::default()).passed());
    }

    #[test]
    fn big_improvement_is_a_note_not_a_failure() {
        let base = report(vec![record("drp", 2e6, 100, true)]);
        let cur = report(vec![record("drp", 1e6, 100, true)]);
        let cmp = compare(&cur, &base, &Tolerances::default());
        assert!(cmp.passed());
        assert!(cmp.findings.iter().any(|f| f.kind == FindingKind::Note));
    }

    #[test]
    fn stable_alloc_counts_must_match_exactly() {
        let base = report(vec![record("drp", 1e6, 100, true)]);
        let cur = report(vec![record("drp", 1e6, 101, true)]);
        let cmp = compare(&cur, &base, &Tolerances::default());
        assert_eq!(cmp.regressions, 1);
        // A *decrease* is an improvement note, not a regression.
        let fewer = report(vec![record("drp", 1e6, 99, true)]);
        assert!(compare(&fewer, &base, &Tolerances::default()).passed());
    }

    #[test]
    fn unstable_alloc_counts_use_the_tolerance() {
        let base = report(vec![record("drp", 1e6, 100, false)]);
        let within = report(vec![record("drp", 1e6, 105, false)]);
        assert!(compare(&within, &base, &Tolerances::default()).passed());
        let beyond = report(vec![record("drp", 1e6, 150, false)]);
        assert_eq!(compare(&beyond, &base, &Tolerances::default()).regressions, 1);
    }

    #[test]
    fn relaxed_tolerances_disable_exactness() {
        let base = report(vec![record("drp", 1e6, 100, true)]);
        let cur = report(vec![record("drp", 1e6, 101, true)]);
        let tol = Tolerances { exact_when_stable: false, ..Tolerances::default() };
        assert!(compare(&cur, &base, &tol).passed());
    }

    #[test]
    fn missing_benchmark_is_a_regression_new_one_is_not() {
        let base =
            report(vec![record("drp", 1e6, 100, true), record("vfk", 1e6, 50, true)]);
        let cur = report(vec![record("drp", 1e6, 100, true), record("cds", 1e6, 10, true)]);
        let cmp = compare(&cur, &base, &Tolerances::default());
        assert_eq!(cmp.regressions, 1);
        assert!(cmp
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::MissingBenchmark && f.bench == "vfk"));
        assert!(cmp.findings.iter().any(|f| f.kind == FindingKind::NewBenchmark
            && f.bench == "cds"
            && !f.regression));
    }

    #[test]
    fn schema_mismatch_fails_closed() {
        let base = BenchReport { schema_version: 99, ..report(vec![]) };
        let cur = report(vec![]);
        let cmp = compare(&cur, &base, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(cmp.findings.iter().any(|f| f.kind == FindingKind::Incomparable));
    }

    #[test]
    fn obs_mismatch_skips_alloc_checks() {
        let base = report(vec![record("drp", 1e6, 100, true)]);
        let mut cur = report(vec![record("drp", 1e6, 500, true)]);
        cur.obs_enabled = false;
        let cmp = compare(&cur, &base, &Tolerances::default());
        assert!(cmp.passed(), "{}", cmp.render());
    }
}
