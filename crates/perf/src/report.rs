//! The schema-versioned `BENCH_*.json` report: what a benchmark run
//! measured, serializable for committing as `BENCH_baseline.json` and
//! for diffing by [`crate::compare`].

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// Version of the `BENCH_*.json` schema this build writes. Comparing
/// reports across schema versions is refused by the gate.
pub const SCHEMA_VERSION: u32 = 1;

/// Measurements of one benchmark over all recorded iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark name (stable key for baseline diffs).
    pub name: String,
    /// Recorded iterations (after warmup discard).
    pub iterations: usize,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Median wall time, nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile wall time, nanoseconds.
    pub p95_ns: f64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// Slowest iteration, nanoseconds.
    pub max_ns: f64,
    /// Heap allocations per iteration (0 when unavailable).
    pub allocs: u64,
    /// Heap bytes allocated per iteration (0 when unavailable).
    pub alloc_bytes: u64,
    /// Whether every recorded iteration performed exactly `allocs`
    /// allocations — when true in both reports, the gate compares the
    /// counts exactly instead of by tolerance.
    pub alloc_stable: bool,
    /// Whether the counting allocator was installed; false means the
    /// `allocs`/`alloc_bytes` fields carry no information.
    pub allocs_available: bool,
    /// Deepest span nesting observed during the benchmark (0 when the
    /// build has no `obs` feature or profiling was off).
    pub peak_span_depth: usize,
}

/// A full benchmark run: suite results plus provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// [`SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// `git rev-parse --short HEAD` at run time, or `"unknown"`.
    pub git_sha: String,
    /// Whether telemetry (`obs` feature) was compiled in — wall times
    /// and allocation counts are only comparable between runs with the
    /// same setting.
    pub obs_enabled: bool,
    /// Warmup iterations discarded per benchmark.
    pub warmup: usize,
    /// Per-benchmark measurements, in suite order.
    pub benchmarks: Vec<BenchRecord>,
}

impl BenchReport {
    /// Looks up a benchmark by name.
    pub fn benchmark(&self, name: &str) -> Option<&BenchRecord> {
        self.benchmarks.iter().find(|b| b.name == name)
    }

    /// The conventional file name for this report: `BENCH_<sha>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.git_sha)
    }

    /// Serializes as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns an I/O error describing the parse failure.
    pub fn from_json(s: &str) -> io::Result<Self> {
        serde_json::from_str(s).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad BENCH json: {e}"))
        })
    }

    /// Loads a report from `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and parse failures.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// Writes the report to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

/// The current commit's short hash via `git rev-parse`, if available.
pub fn git_short_sha() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let sha = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!sha.is_empty()).then_some(sha)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_record(name: &str, median_ns: f64, allocs: u64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            iterations: 5,
            mean_ns: median_ns,
            median_ns,
            p95_ns: median_ns * 1.1,
            min_ns: median_ns * 0.9,
            max_ns: median_ns * 1.2,
            allocs,
            alloc_bytes: allocs * 64,
            alloc_stable: true,
            allocs_available: true,
            peak_span_depth: 2,
        }
    }

    #[test]
    fn json_round_trip() {
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            git_sha: "abc1234".into(),
            obs_enabled: true,
            warmup: 2,
            benchmarks: vec![sample_record("drp", 1e6, 120)],
        };
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(parsed.benchmark("drp").unwrap().allocs, 120);
        assert_eq!(parsed.file_name(), "BENCH_abc1234.json");
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(BenchReport::from_json("{not json").is_err());
    }

    #[test]
    fn write_and_load() {
        let dir = std::env::temp_dir().join("dbcast_perf_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("BENCH_test.json");
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            git_sha: "test".into(),
            obs_enabled: false,
            warmup: 1,
            benchmarks: vec![],
        };
        report.write(&path).unwrap();
        assert_eq!(BenchReport::load(&path).unwrap(), report);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
