//! Allocation discipline of the broadcast egress hot path: the
//! counting allocator is installed for this test binary, so the delta
//! below is real heap traffic, not an estimate.
//!
//! The contract from the transport design: appending a data frame's
//! wire encoding to a warm (pre-sized) buffer performs zero heap
//! allocations. The egress loop encodes every slot of every window
//! through this path, so a single allocation here would turn into
//! per-frame heap churn on the server.

use std::sync::Mutex;

use dbcast_net::{encode_data_frame_into, DataFrame};
use dbcast_perf::{allocation_counts, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The allocation counters are process-wide, so a test's measured
/// window sees every thread's heap traffic — the tests below must not
/// overlap.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn frame(i: u32) -> DataFrame {
    DataFrame {
        channel: i % 6,
        item: i % 120,
        generation: u64::from(i % 3),
        start: f64::from(i) * 0.25,
        duration: 0.5 + f64::from(i % 7) * 0.125,
    }
}

#[test]
fn steady_state_frame_encode_is_allocation_free() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Warm the buffer outside the measured window: the first encode may
    // grow it once, after which clear() keeps the capacity.
    let mut buf = Vec::with_capacity(256);
    encode_data_frame_into(&mut buf, &frame(0));

    let (before, _) = allocation_counts();
    for i in 1..10_000u32 {
        buf.clear();
        encode_data_frame_into(&mut buf, &frame(i));
        assert!(!buf.is_empty());
    }
    let (after, _) = allocation_counts();
    // The counters are process-wide, so the harness thread printing a
    // sibling test's result can leak a couple of allocations into the
    // window; any per-frame allocation would show up as >= 9999.
    assert!(
        after - before < 16,
        "frame encode allocated {} time(s) over 9999 frames",
        after - before
    );
}
