//! Allocation discipline of the broadcast egress hot path: the
//! counting allocator is installed for this test binary, so the delta
//! below is real heap traffic, not an estimate.
//!
//! The contract from the transport design: appending a data frame's
//! wire encoding to a warm (pre-sized) buffer performs zero heap
//! allocations. The egress loop encodes every slot of every window
//! through this path, so a single allocation here would turn into
//! per-frame heap churn on the server.

use std::sync::Mutex;

use dbcast_net::{
    decode_telemetry_payload, encode_data_frame_into, encode_telemetry_frame_into,
    DataFrame, TelemetryFrame, HEADER_LEN, TRAILER_LEN,
};
use dbcast_perf::{allocation_counts, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The allocation counters are process-wide, so a test's measured
/// window sees every thread's heap traffic — the tests below must not
/// overlap.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn frame(i: u32) -> DataFrame {
    DataFrame {
        channel: i % 6,
        item: i % 120,
        generation: u64::from(i % 3),
        start: f64::from(i) * 0.25,
        duration: 0.5 + f64::from(i % 7) * 0.125,
    }
}

#[test]
fn steady_state_frame_encode_is_allocation_free() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Warm the buffer outside the measured window: the first encode may
    // grow it once, after which clear() keeps the capacity.
    let mut buf = Vec::with_capacity(256);
    encode_data_frame_into(&mut buf, &frame(0));

    let (before, _) = allocation_counts();
    for i in 1..10_000u32 {
        buf.clear();
        encode_data_frame_into(&mut buf, &frame(i));
        assert!(!buf.is_empty());
    }
    let (after, _) = allocation_counts();
    // The counters are process-wide, so the harness thread printing a
    // sibling test's result can leak a couple of allocations into the
    // window; any per-frame allocation would show up as >= 9999.
    assert!(
        after - before < 16,
        "frame encode allocated {} time(s) over 9999 frames",
        after - before
    );
}

/// A representative measurement-slice digest: populated histogram
/// cells and a few coverage rows, like a real client's per-generation
/// upload.
fn telemetry(i: u32) -> TelemetryFrame {
    let mut t = TelemetryFrame::empty();
    t.client = i % 8;
    t.seq = i;
    t.flags = dbcast_net::TELEMETRY_FLAG_SLICE;
    t.last_generation = 1;
    t.generation = u64::from(i % 2);
    t.origin = f64::from(i % 2) * 12.5;
    t.samples = 6;
    t.mean_access = 0.42 + f64::from(i % 5) * 0.01;
    t.mean_tuning = 0.03;
    t.predicted_access = 0.40;
    t.requests = 8;
    t.completed = 6;
    t.cache_hits = 1;
    t.conflicts = 2;
    t.retunes = 3;
    t.torn = 0;
    for k in 0..6u64 {
        t.access.record(400_000 + k * 17_000 + u64::from(i % 3));
        t.tuning.record(30_000 + k * 500);
    }
    t.coverage = vec![(0, 120 + u64::from(i % 4)), (1, 96), (2, 80)];
    t
}

#[test]
fn steady_state_telemetry_encode_and_decode_are_allocation_free() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Warm every buffer outside the measured window: the scratch wire
    // buffer grows once, and the decode target's coverage vector keeps
    // its capacity across `clear()`.
    let mut wire = Vec::with_capacity(1024);
    encode_telemetry_frame_into(&mut wire, &telemetry(0));
    let mut decoded = telemetry(0);
    decode_telemetry_payload(&wire[HEADER_LEN..wire.len() - TRAILER_LEN], &mut decoded)
        .expect("warm-up digest decodes");
    let mut digest = telemetry(0);

    let (before, _) = allocation_counts();
    for i in 1..10_000u32 {
        // Mutate the warm digest in place — a client reuses one frame
        // per slice the same way.
        digest.seq = i;
        digest.generation = u64::from(i % 2);
        wire.clear();
        encode_telemetry_frame_into(&mut wire, &digest);
        decode_telemetry_payload(&wire[HEADER_LEN..wire.len() - TRAILER_LEN], &mut decoded)
            .expect("clean digest decodes");
        assert_eq!(decoded.seq, i);
    }
    let (after, _) = allocation_counts();
    assert!(
        after - before < 16,
        "telemetry encode+decode allocated {} time(s) over 9999 digests",
        after - before
    );
}
