//! Allocation discipline of the always-on observability hot paths: the
//! counting allocator is installed for this test binary, so the deltas
//! below are real heap traffic, not estimates.
//!
//! Two contracts from the flight-recorder design:
//!
//! 1. recording a flight event is allocation-free (pure atomics), and
//! 2. the serve loop performs zero per-tick heap allocations — total
//!    allocations for a run depend on the request count, never on how
//!    many scheduling ticks the same stream is chopped into.

use std::sync::Mutex;

use dbcast_flight::{EventKind, FlightEvent};
use dbcast_perf::{allocation_counts, CountingAllocator};
use dbcast_serve::{
    poisson_trace, DriftDetector, EstimatorConfig, RepairMode, ServeConfig, ServeRuntime,
    WorkerMode,
};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The allocation counters are process-wide, so a test's measured
/// window sees every thread's heap traffic — the tests below must not
/// overlap.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn event(i: u64) -> FlightEvent {
    FlightEvent::new(EventKind::RequestServed, i, 0, i as f64 * 0.25)
        .value(i as f64)
        .extra(i)
}

#[test]
fn flight_record_is_allocation_free() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // First record initializes the global ring (one-time slot table
    // allocation); do it outside the measured window.
    dbcast_flight::record(event(0));

    let (before, _) = allocation_counts();
    for i in 1..10_000u64 {
        dbcast_flight::record(event(i));
    }
    let (after, _) = allocation_counts();
    // The counters are process-wide, so the harness thread printing a
    // sibling test's result can leak a couple of allocations into the
    // window; any per-event allocation would show up as >= 9999.
    assert!(
        after - before < 16,
        "flight record allocated {} time(s) over 9999 events",
        after - before
    );
}

/// Runs one quiet serve loop (no drift, no swaps, deterministic) and
/// returns its total allocation count.
fn run_allocs(rate: f64) -> u64 {
    let db = dbcast_workload::WorkloadBuilder::new(60)
        .skewness(0.8)
        .sizes(dbcast_workload::SizeDistribution::Diversity { phi_max: 2.0 })
        .seed(7)
        .build()
        .expect("workload builds");
    // Same request count at a lower arrival rate = the same stream
    // stretched over more virtual time = strictly more ticks.
    let trace = poisson_trace(&db, rate, 1500, 11).expect("trace builds");
    let config = ServeConfig {
        channels: 4,
        bandwidth: 10.0,
        estimator: EstimatorConfig::default(),
        detector: DriftDetector { threshold: 10.0, min_observations: u64::MAX },
        repair: RepairMode::Full,
        worker: WorkerMode::Deterministic,
        max_ticks: None,
        slo: None,
        pace_ms: 0,
        inject_panic_at_tick: None,
        audit: Default::default(),
        inject_slow_channel: None,
        inject_slow_factor: 1.0,
    };
    let runtime = ServeRuntime::new(&db, config).expect("runtime builds");
    let (before, _) = allocation_counts();
    let report = runtime.run(&trace).expect("run succeeds");
    let (after, _) = allocation_counts();
    assert_eq!(report.requests + report.dropped + report.unserved, 1500);
    assert_eq!(report.swaps, 0, "quiet run must not swap");
    after - before
}

#[test]
fn serve_loop_heap_traffic_is_independent_of_tick_count() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Warm up global state (obs registry interning, flight ring, lazy
    // statics) so neither measured run pays one-time costs.
    let _ = run_allocs(10.0);

    let fast = run_allocs(10.0); // ~150 virtual seconds
    let slow = run_allocs(1.0); // ~1500 virtual seconds, ~10x the ticks
    let delta = fast.abs_diff(slow);
    assert!(
        delta <= 8,
        "per-tick allocations detected: {fast} allocs at rate 10 vs {slow} at rate 1 \
         (delta {delta}); the tick path must not touch the heap"
    );
}
