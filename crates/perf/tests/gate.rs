//! End-to-end gate tests: the counting allocator is installed for this
//! test binary, so allocation deltas are real, and a deliberately
//! injected slowdown must make the gate fail.

use dbcast_perf::{
    compare, run_suite, standard_suite, Benchmark, CountingAllocator, RunOptions,
    Tolerances,
};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The allocation counters are process-wide, so parallel test threads
/// would bleed allocations into each other's exact-delta windows.
static COUNTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn options(iterations: usize) -> RunOptions {
    RunOptions { iterations, warmup: 1, profile: false }
}

#[test]
fn deliberate_slowdown_trips_the_gate() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let work = || {
        // Deterministic busywork, microseconds per iteration.
        let v: Vec<u64> = (0..512).collect();
        std::hint::black_box(v.iter().sum::<u64>());
    };
    let mut fast = vec![Benchmark::new("injected", work)];
    let baseline = run_suite(&mut fast, &options(5));

    // The same benchmark with a sleep injected inside a benchmarked
    // span — the regression the gate exists to catch.
    let mut slow = vec![Benchmark::new("injected", move || {
        let _span = dbcast_obs::span!("perf.test.injected_sleep");
        std::thread::sleep(std::time::Duration::from_millis(5));
        work();
    })];
    let current = run_suite(&mut slow, &options(5));

    let verdict = compare(&current, &baseline, &Tolerances::default());
    assert!(!verdict.passed(), "gate missed the slowdown:\n{}", verdict.render());
    assert!(verdict.render().contains("REGRESSION"));

    // And without the sleep the same suite passes against itself.
    let mut fast_again = vec![Benchmark::new("injected", work)];
    let rerun = run_suite(&mut fast_again, &options(5));
    // Tiny fixed workloads jitter; the point here is shape, not timing,
    // so give the self-comparison a generous wall tolerance.
    let loose = Tolerances { wall_pct: 500.0, ..Tolerances::default() };
    let verdict = compare(&rerun, &baseline, &loose);
    assert!(verdict.passed(), "self-comparison failed:\n{}", verdict.render());
}

#[test]
fn allocation_deltas_are_counted_and_stable() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut suite = vec![Benchmark::new("fixed_alloc", || {
        let v: Vec<u8> = Vec::with_capacity(4096);
        std::hint::black_box(&v);
    })];
    let report = run_suite(&mut suite, &options(6));
    let rec = report.benchmark("fixed_alloc").unwrap();
    assert!(rec.allocs_available, "counting allocator is installed in this binary");
    assert!(rec.allocs >= 1, "the Vec allocation was not observed");
    assert!(rec.alloc_stable, "identical iterations must allocate identically");

    // Exactness: one extra allocation per iteration is a regression.
    let mut bigger = vec![Benchmark::new("fixed_alloc", || {
        let v: Vec<u8> = Vec::with_capacity(4096);
        let w: Vec<u8> = Vec::with_capacity(64);
        std::hint::black_box((&v, &w));
    })];
    let current = run_suite(&mut bigger, &options(6));
    let cur = current.benchmark("fixed_alloc").unwrap();
    assert!(cur.alloc_stable && cur.allocs > rec.allocs);
    let loose_wall = Tolerances { wall_pct: 1e6, ..Tolerances::default() };
    let verdict = compare(&current, &report, &loose_wall);
    assert!(
        !verdict.passed(),
        "extra allocation escaped the exact check:\n{}",
        verdict.render()
    );
}

#[test]
fn standard_suite_measures_every_benchmark() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut suite = standard_suite();
    let report =
        run_suite(&mut suite, &RunOptions { iterations: 1, warmup: 0, profile: true });
    assert_eq!(report.benchmarks.len(), 14);
    for rec in &report.benchmarks {
        assert!(rec.median_ns > 0.0, "{} measured zero time", rec.name);
        assert!(rec.allocs_available);
        if rec.name == "audit_sampler" {
            // The audit decision path is contractually allocation-free:
            // sampling hash, residual accounting and ring records are
            // pure atomics into preallocated slots.
            assert_eq!(rec.allocs, 0, "audit_sampler allocated");
        } else {
            assert!(rec.allocs > 0, "{} reported no allocations", rec.name);
        }
    }
    // With the obs feature the profiled spans give every allocator
    // benchmark a non-trivial tree depth (e.g. drp run -> split scan).
    if dbcast_obs::enabled() {
        let drp = report.benchmark("drp").unwrap();
        assert!(drp.peak_span_depth >= 1, "no span tree recorded for drp");
    }
}
