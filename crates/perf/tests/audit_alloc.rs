//! Allocation discipline of the per-request audit hot path: the
//! counting allocator is installed for this test binary, so the deltas
//! below are real heap traffic, not estimates.
//!
//! Two contracts from the audit design:
//!
//! 1. the per-request decision path — seeded sampling hash, residual
//!    accounting and the tail check — is allocation-free, and
//! 2. recording a sampled request into the seqlock trace ring is also
//!    allocation-free (pure atomics into preallocated slots).

use std::sync::Mutex;

use dbcast_audit::{AuditConfig, AuditTracer, TraceRecord, FLAG_SEEDED};
use dbcast_perf::{allocation_counts, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The allocation counters are process-wide, so a test's measured
/// window sees every thread's heap traffic — the tests below must not
/// overlap.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn audit_decision_path_is_allocation_free() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Tracer construction (ring slot table, ledger cells) happens once,
    // outside the measured window.
    let tracer = AuditTracer::new(AuditConfig { seed: 42, ..AuditConfig::default() }, 6);

    let (before, _) = allocation_counts();
    let mut sampled = 0u64;
    for id in 0..10_000u64 {
        let channel = (id % 6) as usize;
        let predicted = 0.3 + channel as f64 * 0.01;
        let wait = predicted + (id % 13) as f64 * 0.005;
        std::hint::black_box(tracer.observe_wait(channel, wait, predicted));
        sampled += u64::from(tracer.should_sample(id));
        std::hint::black_box(tracer.tail_slow(wait, 0.35));
    }
    let (after, _) = allocation_counts();
    std::hint::black_box(sampled);
    // The counters are process-wide, so the harness thread printing a
    // sibling test's result can leak a couple of allocations into the
    // window; any per-request allocation would show up as >= 9999.
    assert!(
        after - before < 16,
        "audit decision path allocated {} time(s) over 10000 requests",
        after - before
    );
}

#[test]
fn trace_ring_record_is_allocation_free() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let tracer = AuditTracer::new(AuditConfig { seed: 42, ..AuditConfig::default() }, 6);

    let (before, _) = allocation_counts();
    for id in 0..10_000u64 {
        tracer.record(&TraceRecord {
            request_id: id,
            item: id % 120,
            arrival_tick: id / 50,
            satisfied_tick: id / 50 + 1,
            generation: 0,
            channel: id % 6,
            queue_position: id % 7,
            arrival: id as f64 * 0.02,
            wait: 0.4,
            predicted: 0.3,
            straddle_penalty: 0.0,
            flags: FLAG_SEEDED,
        });
    }
    let (after, _) = allocation_counts();
    assert_eq!(tracer.sampled(), 10_000);
    assert!(
        after - before < 16,
        "trace ring record allocated {} time(s) over 10000 records",
        after - before
    );
}
