//! Property-based tests of multi-item query retrieval.

use dbcast_model::{Allocation, BroadcastProgram, Database, ItemId, ItemSpec};
use dbcast_query::{retrieve, Query, QueryRetrieval};
use proptest::prelude::*;

fn instance() -> impl Strategy<Value = (Database, BroadcastProgram, Query, f64)> {
    (
        prop::collection::vec((0.01f64..10.0, 0.1f64..50.0), 1..25),
        1usize..4,
        prop::collection::vec(0usize..25, 1..6),
        0.0f64..50.0,
    )
        .prop_map(|(pairs, k, raw_items, arrival)| {
            let db = Database::try_from_specs(
                pairs.into_iter().map(|(f, z)| ItemSpec::new(f, z)),
            )
            .unwrap();
            let n = db.len();
            let alloc =
                Allocation::from_assignment(&db, k, (0..n).map(|i| i % k).collect())
                    .unwrap();
            let program = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
            let items: Vec<ItemId> =
                raw_items.into_iter().map(|i| ItemId::new(i % n)).collect();
            (db, program, Query::new(items), arrival)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn retrieval_downloads_each_item_exactly_once((db, program, query, arrival) in instance()) {
        let r = retrieve(&program, &query, arrival).unwrap();
        prop_assert_eq!(r.steps.len(), query.len());
        let mut got: Vec<ItemId> = r.steps.iter().map(|s| s.item).collect();
        got.sort_unstable();
        prop_assert_eq!(got.as_slice(), query.items());
        let _ = db;
    }

    #[test]
    fn steps_are_causally_ordered((db, program, query, arrival) in instance()) {
        let r = retrieve(&program, &query, arrival).unwrap();
        let mut now = arrival;
        for s in &r.steps {
            prop_assert!(s.start >= now - 1e-9, "download began before tuner was free");
            prop_assert!(s.completion > s.start);
            // Download duration equals item size / bandwidth.
            let z = db.items()[s.item.index()].size();
            prop_assert!((s.completion - s.start - z / 10.0).abs() < 1e-9);
            now = s.completion;
        }
    }

    #[test]
    fn latency_respects_bounds((db, program, query, arrival) in instance()) {
        let r = retrieve(&program, &query, arrival).unwrap();
        let lb = QueryRetrieval::lower_bound(&program, &query, arrival);
        let wc = QueryRetrieval::worst_case_bound(&program, &query);
        prop_assert!(r.latency() >= lb - 1e-9);
        prop_assert!(r.latency() <= wc + 1e-9);
        let _ = db;
    }

    #[test]
    fn retrieval_is_deterministic((db, program, query, arrival) in instance()) {
        let a = retrieve(&program, &query, arrival).unwrap();
        let b = retrieve(&program, &query, arrival).unwrap();
        prop_assert_eq!(a, b);
        let _ = db;
    }
}
