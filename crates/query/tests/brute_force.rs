//! Greedy retrieval versus the brute-force permutation minimum.
//!
//! Any work-conserving single-tuner retrieval downloads the query's
//! items in *some* order, so the minimum latency over all fixed orders
//! (evaluated exhaustively) is a true optimum for this strategy class.
//! The fleet's measurement loop reimplements the same greedy rule over
//! the wire directory, so pinning greedy between the single-item lower
//! bound and the exhaustive optimum here certifies both.

use dbcast_alloc::DrpCds;
use dbcast_model::{BroadcastProgram, ChannelAllocator, Database, ItemId, ItemSpec};
use dbcast_query::{retrieve, Query, QueryRetrieval};
use dbcast_workload::{SizeDistribution, WorkloadBuilder};

/// Latency of downloading `order` strictly in that order, each fetch
/// planned at the previous completion (earliest occurrence across all
/// carrying channels via `best_start`).
fn fixed_order_latency(program: &BroadcastProgram, order: &[ItemId], arrival: f64) -> f64 {
    let bandwidth = program.bandwidth();
    let mut now = arrival;
    for &item in order {
        let (_, start, size) = program.best_start(item, now).expect("item broadcast");
        now = start + size / bandwidth;
    }
    now - arrival
}

/// Minimum latency over every permutation of the query's items.
fn brute_force_optimum(program: &BroadcastProgram, query: &Query, arrival: f64) -> f64 {
    let mut items: Vec<ItemId> = query.items().to_vec();
    let mut best = f64::INFINITY;
    permute(&mut items, 0, &mut |order| {
        best = best.min(fixed_order_latency(program, order, arrival));
    });
    best
}

fn permute(items: &mut [ItemId], k: usize, visit: &mut impl FnMut(&[ItemId])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

fn small_program() -> BroadcastProgram {
    let db = Database::try_from_specs(vec![
        ItemSpec::new(0.30, 2.0),
        ItemSpec::new(0.25, 3.0),
        ItemSpec::new(0.20, 5.0),
        ItemSpec::new(0.15, 1.0),
        ItemSpec::new(0.10, 4.0),
    ])
    .expect("database builds");
    let alloc = DrpCds::new().allocate(&db, 2).expect("allocates");
    BroadcastProgram::new(&db, &alloc, 10.0).expect("program builds")
}

#[test]
fn greedy_sits_between_lower_bound_and_permutation_optimum() {
    let program = small_program();
    let queries = [vec![0, 1, 2], vec![0, 3, 4], vec![1, 2, 3, 4], vec![0, 1, 2, 3, 4]];
    for raw in &queries {
        let query = Query::new(raw.iter().map(|&i| ItemId::new(i)).collect());
        for step in 0..12 {
            let arrival = step as f64 * 0.217;
            let greedy = retrieve(&program, &query, arrival).expect("retrieves").latency();
            let optimum = brute_force_optimum(&program, &query, arrival);
            let lb = QueryRetrieval::lower_bound(&program, &query, arrival);
            let wc = QueryRetrieval::worst_case_bound(&program, &query);
            assert!(
                lb <= optimum + 1e-9,
                "lower bound {lb} must not exceed optimum {optimum}"
            );
            assert!(
                optimum <= greedy + 1e-9,
                "query {raw:?} at {arrival}: optimum {optimum} must not \
                 exceed greedy {greedy}"
            );
            assert!(
                greedy <= wc + 1e-9,
                "greedy {greedy} must respect the worst-case bound {wc}"
            );
        }
    }
}

#[test]
fn greedy_matches_optimum_often_on_random_programs() {
    // Greedy is a heuristic, not optimal — but on realistic programs it
    // should recover the exhaustive optimum for a solid majority of
    // random 3-item queries, and never undercut it.
    let db = WorkloadBuilder::new(18)
        .skewness(0.8)
        .sizes(SizeDistribution::Diversity { phi_max: 1.0 })
        .seed(17)
        .build()
        .expect("workload builds");
    let alloc = DrpCds::new().allocate(&db, 3).expect("allocates");
    let program = BroadcastProgram::new(&db, &alloc, 10.0).expect("program builds");
    let mut state = 99u64;
    let mut draws = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as usize % 18
    };
    let trials = 60;
    let mut exact = 0;
    for trial in 0..trials {
        let raw = [draws(), draws(), draws()];
        let query = Query::new(raw.iter().map(|&i| ItemId::new(i)).collect());
        let arrival = trial as f64 * 0.311;
        let greedy = retrieve(&program, &query, arrival).expect("retrieves").latency();
        let optimum = brute_force_optimum(&program, &query, arrival);
        assert!(greedy >= optimum - 1e-9, "greedy can never beat the optimum");
        if greedy <= optimum + 1e-9 {
            exact += 1;
        }
    }
    assert!(
        exact * 2 > trials,
        "greedy matched the optimum on only {exact}/{trials} queries"
    );
}
