//! Multi-item query workloads.

use dbcast_model::{Database, ItemId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A multi-item query: a set of distinct items a client needs, all of
/// them, before it is done.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    items: Vec<ItemId>,
}

impl Query {
    /// Creates a query, deduplicating and sorting the item set.
    ///
    /// # Panics
    ///
    /// Panics on an empty item list.
    pub fn new(mut items: Vec<ItemId>) -> Self {
        assert!(!items.is_empty(), "a query needs at least one item");
        items.sort_unstable();
        items.dedup();
        Query { items }
    }

    /// The items, sorted by id.
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Number of distinct items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Always false (constructor rejects empty queries).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A weighted collection of queries plus arrival times for evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// `(query, weight)` pairs; weights sum to 1.
    queries: Vec<(Query, f64)>,
    /// Evaluation arrival instants (seconds), strictly increasing.
    arrivals: Vec<(usize, f64)>,
}

impl QueryWorkload {
    /// The weighted query population.
    pub fn queries(&self) -> &[(Query, f64)] {
        &self.queries
    }

    /// Evaluation arrivals: `(query index, time)`.
    pub fn arrivals(&self) -> &[(usize, f64)] {
        &self.arrivals
    }
}

/// Builds query workloads: query sizes uniform in `1..=max_size`, items
/// drawn without replacement proportionally to their access
/// frequencies, query weights Zipf over query rank.
///
/// # Example
///
/// ```
/// use dbcast_query::QueryWorkloadBuilder;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = dbcast_workload::WorkloadBuilder::new(30).seed(1).build()?;
/// let qw = QueryWorkloadBuilder::new(&db)
///     .queries(50)
///     .max_size(4)
///     .arrivals(200, 2.0)
///     .seed(9)
///     .build();
/// assert_eq!(qw.queries().len(), 50);
/// assert_eq!(qw.arrivals().len(), 200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct QueryWorkloadBuilder<'a> {
    db: &'a Database,
    queries: usize,
    max_size: usize,
    arrivals: usize,
    arrival_rate: f64,
    seed: u64,
}

impl<'a> QueryWorkloadBuilder<'a> {
    /// Starts a builder over `db` (50 queries, max size 3, 500 arrivals
    /// at 1/s, seed 0).
    pub fn new(db: &'a Database) -> Self {
        QueryWorkloadBuilder {
            db,
            queries: 50,
            max_size: 3,
            arrivals: 500,
            arrival_rate: 1.0,
            seed: 0,
        }
    }

    /// Sets the number of distinct queries in the population.
    pub fn queries(mut self, count: usize) -> Self {
        self.queries = count;
        self
    }

    /// Sets the maximum items per query (sizes are uniform `1..=max`).
    pub fn max_size(mut self, max: usize) -> Self {
        self.max_size = max.max(1);
        self
    }

    /// Sets the evaluation arrival count and Poisson rate.
    pub fn arrivals(mut self, count: usize, rate: f64) -> Self {
        self.arrivals = count;
        self.arrival_rate = rate;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the workload.
    ///
    /// # Panics
    ///
    /// Panics when `queries == 0` or the arrival rate is not positive.
    pub fn build(&self) -> QueryWorkload {
        assert!(self.queries > 0, "need at least one query");
        assert!(
            self.arrival_rate.is_finite() && self.arrival_rate > 0.0,
            "arrival rate must be positive"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let n = self.db.len();

        // Item CDF by frequency for weighted draws.
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for d in self.db.iter() {
            acc += d.frequency();
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        let draw_item = |rng: &mut ChaCha8Rng| -> ItemId {
            let u: f64 = rng.gen();
            ItemId::new(cdf.partition_point(|&c| c <= u).min(n - 1))
        };

        let mut queries = Vec::with_capacity(self.queries);
        for _ in 0..self.queries {
            let size = rng.gen_range(1..=self.max_size.min(n));
            let mut items = Vec::with_capacity(size);
            // Rejection-sample distinct items (cheap for size << n).
            let mut guard = 0;
            while items.len() < size && guard < 10_000 {
                let candidate = draw_item(&mut rng);
                if !items.contains(&candidate) {
                    items.push(candidate);
                }
                guard += 1;
            }
            queries.push(Query::new(items));
        }

        // Zipf(1) weights over query rank.
        let weights: Vec<f64> = (1..=self.queries).map(|r| 1.0 / r as f64).collect();
        let total: f64 = weights.iter().sum();
        let weighted: Vec<(Query, f64)> =
            queries.into_iter().zip(weights).map(|(q, w)| (q, w / total)).collect();

        // Arrivals: Poisson instants, query index by weight.
        let mut qcdf = Vec::with_capacity(self.queries);
        let mut qacc = 0.0;
        for (_, w) in &weighted {
            qacc += w;
            qcdf.push(qacc);
        }
        if let Some(last) = qcdf.last_mut() {
            *last = 1.0;
        }
        let mut arrivals = Vec::with_capacity(self.arrivals);
        let mut t = 0.0;
        for _ in 0..self.arrivals {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            t += -u.ln() / self.arrival_rate;
            let v: f64 = rng.gen();
            let qi = qcdf.partition_point(|&c| c <= v).min(self.queries - 1);
            arrivals.push((qi, t));
        }
        QueryWorkload { queries: weighted, arrivals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_workload::WorkloadBuilder;

    #[test]
    fn query_deduplicates_and_sorts() {
        let q = Query::new(vec![ItemId::new(3), ItemId::new(1), ItemId::new(3)]);
        assert_eq!(q.items(), &[ItemId::new(1), ItemId::new(3)]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_query_panics() {
        let _ = Query::new(vec![]);
    }

    #[test]
    fn workload_shape_and_normalization() {
        let db = WorkloadBuilder::new(25).seed(2).build().unwrap();
        let qw = QueryWorkloadBuilder::new(&db)
            .queries(30)
            .max_size(5)
            .arrivals(100, 3.0)
            .seed(4)
            .build();
        assert_eq!(qw.queries().len(), 30);
        let wsum: f64 = qw.queries().iter().map(|(_, w)| w).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
        for (q, _) in qw.queries() {
            assert!((1..=5).contains(&q.len()));
            assert!(q.items().iter().all(|i| i.index() < 25));
        }
        let mut prev = 0.0;
        for &(qi, t) in qw.arrivals() {
            assert!(t > prev);
            prev = t;
            assert!(qi < 30);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let db = WorkloadBuilder::new(20).seed(1).build().unwrap();
        let a = QueryWorkloadBuilder::new(&db).seed(7).build();
        let b = QueryWorkloadBuilder::new(&db).seed(7).build();
        assert_eq!(a, b);
    }

    #[test]
    fn max_size_is_capped_by_database() {
        let db = WorkloadBuilder::new(3).seed(1).build().unwrap();
        let qw = QueryWorkloadBuilder::new(&db).max_size(10).queries(20).build();
        for (q, _) in qw.queries() {
            assert!(q.len() <= 3);
        }
    }
}
