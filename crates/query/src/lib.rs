//! **Multi-item queries** over broadcast programs.
//!
//! The ICDCS 2005 paper optimizes per-item waiting time; its related
//! work (\[9\]\[10\], Huang & Chen) studies clients whose requests span
//! *several* dependent items — "weather + traffic + headlines". A
//! single-tuner client must retrieve the items sequentially: while it
//! downloads one item, occurrences of the others may slip by, so query
//! latency depends on both the channel allocation *and* the order of
//! items within each channel's cycle.
//!
//! This crate provides:
//!
//! * [`Query`] / [`QueryWorkloadBuilder`] — weighted multi-item query
//!   workloads (query sizes and item choice both configurable),
//! * [`retrieve`] — the greedy *nearest-completion-first* single-tuner
//!   retrieval strategy, evaluated exactly against a
//!   [`BroadcastProgram`](dbcast_model::BroadcastProgram),
//! * latency [`bounds`](QueryRetrieval::lower_bound) — any retrieval
//!   is at least the slowest single item and at most the sequential
//!   sum,
//! * [`affinity_order`] — co-access-aware intra-channel ordering that
//!   places frequently co-queried items consecutively in the cycle, so
//!   one pass picks them all up,
//! * [`evaluate`] — mean query latency of a program under a workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ordering;
mod retrieval;
mod workload;

pub use ordering::{affinity_order, CoAccessMatrix};
pub use retrieval::{evaluate, retrieve, QueryEvaluation, QueryRetrieval, RetrievalStep};
pub use workload::{Query, QueryWorkload, QueryWorkloadBuilder};
