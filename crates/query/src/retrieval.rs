//! Single-tuner greedy retrieval of multi-item queries.

use dbcast_model::{BroadcastProgram, ChannelId, ItemId, ModelError};
use serde::{Deserialize, Serialize};

use crate::workload::{Query, QueryWorkload};

/// One downloaded item within a query retrieval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrievalStep {
    /// The item downloaded in this step.
    pub item: ItemId,
    /// The serving channel.
    pub channel: ChannelId,
    /// When the download started (slot start), seconds.
    pub start: f64,
    /// When the download completed, seconds.
    pub completion: f64,
}

/// The full retrieval of one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRetrieval {
    /// The query arrival instant.
    pub arrival: f64,
    /// Steps in download order.
    pub steps: Vec<RetrievalStep>,
}

impl QueryRetrieval {
    /// Total query latency: arrival until the last item completes.
    pub fn latency(&self) -> f64 {
        self.steps.last().map_or(0.0, |s| s.completion - self.arrival)
    }

    /// Lower bound: no retrieval can beat the slowest *single* item
    /// fetched in isolation.
    pub fn lower_bound(program: &BroadcastProgram, query: &Query, arrival: f64) -> f64 {
        query
            .items()
            .iter()
            .filter_map(|&i| program.response_time(i, arrival))
            .fold(0.0, f64::max)
    }

    /// Reference strategy: fetch the items in id order, each only after
    /// the previous completes. Greedy usually (not provably always)
    /// beats this; it is the natural baseline for evaluating retrieval
    /// strategies.
    pub fn sequential_reference(
        program: &BroadcastProgram,
        query: &Query,
        arrival: f64,
    ) -> f64 {
        let mut now = arrival;
        for &item in query.items() {
            if let Some(r) = program.response_time(item, now) {
                now += r;
            }
        }
        now - arrival
    }

    /// A true worst-case bound on *any* work-conserving single-tuner
    /// strategy: each item costs at most one full cycle of its channel
    /// plus its download, regardless of when the fetch starts.
    pub fn worst_case_bound(program: &BroadcastProgram, query: &Query) -> f64 {
        let b = program.bandwidth();
        query
            .items()
            .iter()
            .filter_map(|&i| {
                program
                    .locate(i)
                    .map(|(schedule, slot)| (schedule.cycle_size() + slot.size) / b)
            })
            .sum()
    }
}

/// Retrieves `query` with a single tuner using the greedy
/// *nearest-completion-first* strategy: at every decision point,
/// download whichever outstanding item completes earliest.
///
/// # Errors
///
/// [`ModelError::ItemOutOfRange`] if the program does not broadcast
/// some query item.
pub fn retrieve(
    program: &BroadcastProgram,
    query: &Query,
    arrival: f64,
) -> Result<QueryRetrieval, ModelError> {
    let mut outstanding: Vec<ItemId> = query.items().to_vec();
    let mut steps = Vec::with_capacity(outstanding.len());
    let mut now = arrival;
    let bandwidth = program.bandwidth();
    while !outstanding.is_empty() {
        let mut best: Option<(usize, ChannelId, f64, f64)> = None;
        for (pos, &item) in outstanding.iter().enumerate() {
            let (channel, start, size) =
                program.best_start(item, now).ok_or(ModelError::ItemOutOfRange {
                    item: item.index(),
                    items: usize::MAX,
                })?;
            let completion = start + size / bandwidth;
            if best.is_none_or(|(_, _, _, c)| completion < c) {
                best = Some((pos, channel, start, completion));
            }
        }
        let (pos, channel, start, completion) = best.expect("outstanding non-empty");
        let item = outstanding.swap_remove(pos);
        steps.push(RetrievalStep { item, channel, start, completion });
        now = completion;
    }
    Ok(QueryRetrieval { arrival, steps })
}

/// Aggregate result of evaluating a workload against a program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryEvaluation {
    /// Arrivals evaluated.
    pub queries: usize,
    /// Mean query latency (seconds).
    pub mean_latency: f64,
    /// Mean per-query slack over the single-item lower bound.
    pub mean_excess_over_bound: f64,
}

/// Evaluates every arrival of `workload` against `program`.
///
/// # Errors
///
/// [`ModelError::ItemOutOfRange`] for unbroadcast query items.
pub fn evaluate(
    program: &BroadcastProgram,
    workload: &QueryWorkload,
) -> Result<QueryEvaluation, ModelError> {
    let mut total = 0.0;
    let mut excess = 0.0;
    for &(qi, t) in workload.arrivals() {
        let (query, _) = &workload.queries()[qi];
        let r = retrieve(program, query, t)?;
        let lb = QueryRetrieval::lower_bound(program, query, t);
        total += r.latency();
        excess += r.latency() - lb;
    }
    let n = workload.arrivals().len().max(1) as f64;
    Ok(QueryEvaluation {
        queries: workload.arrivals().len(),
        mean_latency: total / n,
        mean_excess_over_bound: excess / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_alloc::DrpCds;
    use dbcast_model::{Allocation, ChannelAllocator, Database, ItemSpec};
    use dbcast_workload::WorkloadBuilder;

    fn program() -> (Database, BroadcastProgram) {
        let db = Database::try_from_specs(vec![
            ItemSpec::new(0.4, 2.0), // d0 -> c0
            ItemSpec::new(0.3, 3.0), // d1 -> c0
            ItemSpec::new(0.2, 5.0), // d2 -> c1
            ItemSpec::new(0.1, 1.0), // d3 -> c1
        ])
        .unwrap();
        let alloc = Allocation::from_assignment(&db, 2, vec![0, 0, 1, 1]).unwrap();
        let p = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        (db, p)
    }

    #[test]
    fn single_item_query_matches_response_time() {
        let (_, p) = program();
        for t in [0.0, 0.17, 0.9] {
            for item in 0..4 {
                let q = Query::new(vec![ItemId::new(item)]);
                let r = retrieve(&p, &q, t).unwrap();
                assert_eq!(r.steps.len(), 1);
                let expected = p.response_time(ItemId::new(item), t).unwrap();
                assert!((r.latency() - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn retrieval_respects_single_tuner_sequencing() {
        let (_, p) = program();
        let q = Query::new(vec![ItemId::new(0), ItemId::new(1), ItemId::new(2)]);
        let r = retrieve(&p, &q, 0.05).unwrap();
        assert_eq!(r.steps.len(), 3);
        for w in r.steps.windows(2) {
            // Next download starts only after the previous completes.
            assert!(w[1].start >= w[0].completion - 1e-12);
        }
    }

    #[test]
    fn latency_is_within_bounds() {
        let db = WorkloadBuilder::new(40).seed(3).build().unwrap();
        let alloc = DrpCds::new().allocate(&db, 4).unwrap();
        let p = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        let mut state = 11u64;
        for trial in 0..50 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 33) as usize % 40;
            let b = (state >> 17) as usize % 40;
            let c = (state >> 5) as usize % 40;
            let q =
                Query::new([a, b, c].iter().map(|&i| ItemId::new(i)).collect::<Vec<_>>());
            let t = trial as f64 * 0.31;
            let r = retrieve(&p, &q, t).unwrap();
            let lb = QueryRetrieval::lower_bound(&p, &q, t);
            let wc = QueryRetrieval::worst_case_bound(&p, &q);
            assert!(r.latency() >= lb - 1e-9, "below lower bound");
            assert!(r.latency() <= wc + 1e-9, "above worst-case bound");
        }
    }

    #[test]
    fn greedy_beats_id_order_on_average() {
        let db = WorkloadBuilder::new(30).seed(5).build().unwrap();
        let alloc = DrpCds::new().allocate(&db, 3).unwrap();
        let p = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        let q = Query::new(vec![ItemId::new(2), ItemId::new(11), ItemId::new(27)]);
        let trials = 200;
        let mut greedy_total = 0.0;
        let mut sequential_total = 0.0;
        for i in 0..trials {
            let t = i as f64 * 0.173;
            greedy_total += retrieve(&p, &q, t).unwrap().latency();
            sequential_total += QueryRetrieval::sequential_reference(&p, &q, t);
        }
        assert!(
            greedy_total < sequential_total,
            "greedy {greedy_total} should beat id-order {sequential_total} on average"
        );
    }

    #[test]
    fn evaluation_aggregates_arrivals() {
        let db = WorkloadBuilder::new(25).seed(6).build().unwrap();
        let alloc = DrpCds::new().allocate(&db, 3).unwrap();
        let p = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        let qw = crate::QueryWorkloadBuilder::new(&db)
            .queries(20)
            .max_size(4)
            .arrivals(200, 5.0)
            .seed(7)
            .build();
        let eval = evaluate(&p, &qw).unwrap();
        assert_eq!(eval.queries, 200);
        assert!(eval.mean_latency > 0.0);
        assert!(eval.mean_excess_over_bound >= -1e-9);
    }
}
