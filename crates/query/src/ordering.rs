//! Co-access-aware intra-channel ordering.
//!
//! The allocation fixes *which* channel carries each item; the cycle
//! *order* within a channel is a free choice that single-item waiting
//! time (Eq. 1) cannot see — but multi-item queries can: when two
//! co-queried items sit adjacently in a cycle, one pass picks up both,
//! instead of burning most of a cycle between them.

use dbcast_model::{Allocation, ItemId};
use serde::{Deserialize, Serialize};

use crate::workload::QueryWorkload;

/// A symmetric co-access weight matrix over items: entry `(i, j)` sums
/// the weights of queries containing both items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoAccessMatrix {
    n: usize,
    /// Upper-triangular storage, row-major: entry for `i < j` at
    /// `i * n + j`.
    weights: Vec<f64>,
}

impl CoAccessMatrix {
    /// Accumulates pair weights from a query workload over `n` items.
    pub fn from_workload(n: usize, workload: &QueryWorkload) -> Self {
        let mut m = CoAccessMatrix { n, weights: vec![0.0; n * n] };
        for (q, w) in workload.queries() {
            let items = q.items();
            for (a, &i) in items.iter().enumerate() {
                for &j in &items[a + 1..] {
                    m.add(i, j, *w);
                }
            }
        }
        m
    }

    fn add(&mut self, i: ItemId, j: ItemId, w: f64) {
        let (a, b) = order(i.index(), j.index());
        self.weights[a * self.n + b] += w;
    }

    /// The co-access weight between two items (0 for `i == j`).
    pub fn get(&self, i: ItemId, j: ItemId) -> f64 {
        if i == j {
            return 0.0;
        }
        let (a, b) = order(i.index(), j.index());
        self.weights[a * self.n + b]
    }
}

fn order(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Orders each channel's items by greedy affinity chaining: start from
/// the item with the highest total in-channel affinity, then repeatedly
/// append the unplaced item most co-accessed with the chain's tail.
/// Items with no affinity keep id order at the end.
///
/// Returns per-channel ordered groups, suitable for
/// [`BroadcastProgram::from_overlapping_groups`](dbcast_model::BroadcastProgram::from_overlapping_groups).
pub fn affinity_order(alloc: &Allocation, matrix: &CoAccessMatrix) -> Vec<Vec<ItemId>> {
    alloc.groups().into_iter().map(|group| chain_group(group, matrix)).collect()
}

fn chain_group(group: Vec<ItemId>, matrix: &CoAccessMatrix) -> Vec<ItemId> {
    if group.len() <= 2 {
        return group;
    }
    let total_affinity = |i: ItemId, pool: &[ItemId]| -> f64 {
        pool.iter().map(|&j| matrix.get(i, j)).sum()
    };
    let mut remaining = group;
    // Seed: the most-connected item.
    let seed_pos = (0..remaining.len())
        .max_by(|&a, &b| {
            total_affinity(remaining[a], &remaining)
                .total_cmp(&total_affinity(remaining[b], &remaining))
                .then(remaining[b].cmp(&remaining[a]))
        })
        .expect("group non-empty");
    let mut chain = vec![remaining.swap_remove(seed_pos)];
    while !remaining.is_empty() {
        let tail = *chain.last().expect("chain started");
        let next_pos = (0..remaining.len())
            .max_by(|&a, &b| {
                matrix
                    .get(tail, remaining[a])
                    .total_cmp(&matrix.get(tail, remaining[b]))
                    .then(remaining[b].cmp(&remaining[a]))
            })
            .expect("remaining non-empty");
        chain.push(remaining.swap_remove(next_pos));
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Query, QueryWorkloadBuilder};
    use dbcast_model::{Allocation, BroadcastProgram, Database, ItemSpec};

    fn db(n: usize) -> Database {
        Database::try_from_specs((0..n).map(|_| ItemSpec::new(1.0, 2.0))).unwrap()
    }

    #[test]
    fn matrix_accumulates_pair_weights() {
        let db = db(6);
        let qw =
            QueryWorkloadBuilder::new(&db).queries(1).max_size(1).arrivals(0, 1.0).build();
        // Hand-build a workload through serde to control pairs precisely?
        // Simpler: exercise from_workload on the generated one and check
        // symmetry + non-negativity.
        let m = CoAccessMatrix::from_workload(6, &qw);
        for i in 0..6 {
            for j in 0..6 {
                let a = m.get(ItemId::new(i), ItemId::new(j));
                let b = m.get(ItemId::new(j), ItemId::new(i));
                assert_eq!(a, b);
                assert!(a >= 0.0);
            }
            assert_eq!(m.get(ItemId::new(i), ItemId::new(i)), 0.0);
        }
    }

    #[test]
    fn chaining_keeps_group_membership() {
        let db = db(9);
        let alloc =
            Allocation::from_assignment(&db, 3, (0..9).map(|i| i % 3).collect()).unwrap();
        let qw = QueryWorkloadBuilder::new(&db).queries(20).max_size(3).seed(3).build();
        let m = CoAccessMatrix::from_workload(9, &qw);
        let ordered = affinity_order(&alloc, &m);
        assert_eq!(ordered.len(), 3);
        for (ch, group) in ordered.iter().enumerate() {
            let mut sorted: Vec<usize> = group.iter().map(|i| i.index()).collect();
            sorted.sort_unstable();
            let expected: Vec<usize> = (0..9).filter(|i| i % 3 == ch).collect();
            assert_eq!(sorted, expected);
        }
        // The ordered groups build a valid program.
        let program =
            BroadcastProgram::from_overlapping_groups(&db, &ordered, 10.0).unwrap();
        assert_eq!(program.channels().len(), 3);
    }

    #[test]
    fn co_queried_items_end_up_adjacent() {
        // Force a strong pair: items 0 and 2 always queried together on
        // one channel holding {0, 1, 2, 3}.
        let db = db(4);
        let alloc = Allocation::from_assignment(&db, 1, vec![0; 4]).unwrap();
        let strong = Query::new(vec![ItemId::new(0), ItemId::new(2)]);
        // Hand-roll a workload with one dominant query by building and
        // patching is not possible (private fields); instead rely on
        // from_workload over a crafted single-query generator: use a
        // 2-item db trick. Simplest: construct the matrix directly.
        let mut m = CoAccessMatrix { n: 4, weights: vec![0.0; 16] };
        m.add(ItemId::new(0), ItemId::new(2), 1.0);
        let _ = strong;
        let ordered = affinity_order(&alloc, &m);
        let chain = &ordered[0];
        let pos0 = chain.iter().position(|&i| i == ItemId::new(0)).unwrap();
        let pos2 = chain.iter().position(|&i| i == ItemId::new(2)).unwrap();
        assert_eq!(pos0.abs_diff(pos2), 1, "strongly co-accessed items must be adjacent");
    }

    #[test]
    fn adjacency_reduces_query_latency_on_average() {
        // One channel, four equal items; queries always ask {0, 2}.
        // With id order [0,1,2,3] the pair straddles item 1; with
        // affinity order they are adjacent, so the average retrieval
        // over a cycle of arrival times is faster.
        let db = db(4);
        let alloc = Allocation::from_assignment(&db, 1, vec![0; 4]).unwrap();
        let mut m = CoAccessMatrix { n: 4, weights: vec![0.0; 16] };
        m.add(ItemId::new(0), ItemId::new(2), 1.0);
        let ordered = affinity_order(&alloc, &m);
        let affinity_program =
            BroadcastProgram::from_overlapping_groups(&db, &ordered, 10.0).unwrap();
        let id_program = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();

        let q = Query::new(vec![ItemId::new(0), ItemId::new(2)]);
        let mean = |p: &BroadcastProgram| {
            let cycle = 8.0 / 10.0;
            let steps = 400;
            (0..steps)
                .map(|i| {
                    let t = cycle * (i as f64 + 0.5) / steps as f64;
                    crate::retrieve(p, &q, t).unwrap().latency()
                })
                .sum::<f64>()
                / steps as f64
        };
        let m_affinity = mean(&affinity_program);
        let m_id = mean(&id_program);
        assert!(
            m_affinity < m_id,
            "affinity order {m_affinity} should beat id order {m_id}"
        );
    }
}
