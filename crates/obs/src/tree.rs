//! Hierarchical span trees with self-time attribution and Chrome
//! trace-event export.
//!
//! The flat [`crate::span!`] histograms answer "how long does
//! `alloc.drp.split_scan` take in aggregate"; this module answers
//! "*where inside* a DRP run did the time go". When profiling is on
//! ([`set_profiling`]), every [`crate::span::SpanGuard`] additionally
//! records a node in a per-thread span tree: its parent (the span open
//! directly above it on the same thread), its depth, its start offset
//! from the process-wide profile epoch, and its duration. Closing a
//! root span flushes the finished tree into a global collector, from
//! which [`take_spans`] drains and [`chrome_trace_json`] renders a
//! `chrome://tracing` / Perfetto-loadable trace-event file.
//!
//! Self time is attributed on the fly: a closing child adds its
//! duration to its parent's `child_ns`, so
//! [`SpanRecord::self_ns`] = `dur_ns - child_ns` without a second
//! pass.
//!
//! Profiling is off by default even with the `enabled` feature — span
//! trees allocate (one node per span), which the flat histograms never
//! do. The collector is bounded ([`set_capacity`]); spans beyond the
//! cap are counted in [`dropped`] rather than growing without limit.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span in a flushed tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span name (same key as the flat histogram).
    pub name: &'static str,
    /// Dense per-process thread index (0, 1, …) in first-span order.
    pub thread: u64,
    /// Index of the parent span *within the same batch slice*, or
    /// `None` for a root span.
    pub parent: Option<usize>,
    /// Nesting depth: 0 for roots, parent depth + 1 otherwise.
    pub depth: usize,
    /// Start offset in nanoseconds since the profile epoch (the first
    /// profiled span of the process).
    pub start_ns: u64,
    /// Total wall-clock duration.
    pub dur_ns: u64,
    /// Summed durations of direct children.
    pub child_ns: u64,
}

impl SpanRecord {
    /// Time spent in this span excluding its children.
    pub fn self_ns(&self) -> u64 {
        self.dur_ns.saturating_sub(self.child_ns)
    }
}

static PROFILING: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(1 << 19);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static PEAK_DEPTH: AtomicUsize = AtomicUsize::new(0);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

fn collected() -> &'static Mutex<Vec<SpanRecord>> {
    static COLLECTED: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    COLLECTED.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static LOCAL: RefCell<LocalTree> = const {
        RefCell::new(LocalTree { nodes: Vec::new(), open: Vec::new() })
    };
}

struct LocalTree {
    /// Arena of this thread's spans since the last flush.
    nodes: Vec<SpanRecord>,
    /// Stack of open span indices into `nodes`.
    open: Vec<usize>,
}

/// Turns span-tree collection on or off. Requires recording to be on
/// too ([`crate::enabled`]); without the `enabled` cargo feature this
/// has no effect.
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Whether span trees are being collected right now.
#[inline]
pub fn profiling() -> bool {
    crate::enabled() && PROFILING.load(Ordering::Relaxed)
}

/// Caps the number of spans the global collector retains; further
/// spans are dropped (and counted in [`dropped`]). Default `2^19`.
pub fn set_capacity(cap: usize) {
    CAPACITY.store(cap, Ordering::Relaxed);
}

/// Spans dropped because the collector was at capacity.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// The deepest nesting observed since the last [`reset_peak_depth`]
/// (1 = a lone root span; 0 = nothing profiled).
pub fn peak_depth() -> usize {
    PEAK_DEPTH.load(Ordering::Relaxed)
}

/// Zeroes the [`peak_depth`] watermark.
pub fn reset_peak_depth() {
    PEAK_DEPTH.store(0, Ordering::Relaxed);
}

/// Opens a tree node for a span. Returns `None` when profiling is off
/// (the common case — [`crate::span::SpanGuard`] then skips
/// [`close_span`] entirely).
pub(crate) fn open_span(name: &'static str) -> Option<usize> {
    if !profiling() {
        return None;
    }
    let thread = THREAD_ID.with(|t| *t);
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let parent = l.open.last().copied();
        let depth = l.open.len();
        PEAK_DEPTH.fetch_max(depth + 1, Ordering::Relaxed);
        let idx = l.nodes.len();
        l.nodes.push(SpanRecord {
            name,
            thread,
            parent,
            depth,
            start_ns: now_ns(),
            dur_ns: 0,
            child_ns: 0,
        });
        l.open.push(idx);
        Some(idx)
    })
}

/// Closes the node opened as `idx`; when it was a root, flushes the
/// finished tree to the global collector. Safe against a profiling
/// toggle mid-span: the node was allocated at open time, so the close
/// always balances.
pub(crate) fn close_span(idx: usize) {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let end = now_ns();
        let dur = end.saturating_sub(l.nodes[idx].start_ns);
        l.nodes[idx].dur_ns = dur;
        // RAII guards close in LIFO order, so `idx` is the top.
        debug_assert_eq!(l.open.last().copied(), Some(idx));
        l.open.pop();
        if let Some(parent) = l.nodes[idx].parent {
            l.nodes[parent].child_ns += dur;
        }
        if l.open.is_empty() {
            let batch = std::mem::take(&mut l.nodes);
            flush(batch);
        }
    });
}

fn flush(batch: Vec<SpanRecord>) {
    let mut global = collected().lock().expect("span collector poisoned");
    let cap = CAPACITY.load(Ordering::Relaxed);
    if global.len() + batch.len() > cap {
        DROPPED.fetch_add(batch.len() as u64, Ordering::Relaxed);
        return;
    }
    let offset = global.len();
    global.extend(batch.into_iter().map(|mut s| {
        s.parent = s.parent.map(|p| p + offset);
        s
    }));
}

/// Drains every collected span (completed trees only; spans still open
/// on some thread are not included until their root closes).
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *collected().lock().expect("span collector poisoned"))
}

/// Copies the collected spans without draining them.
pub fn spans_snapshot() -> Vec<SpanRecord> {
    collected().lock().expect("span collector poisoned").clone()
}

/// Number of spans currently held by the collector.
pub fn collected_len() -> usize {
    collected().lock().expect("span collector poisoned").len()
}

/// Aggregate statistics for one root-to-span path (names joined by
/// `>`), produced by [`aggregate_paths`].
#[derive(Debug, Clone, PartialEq)]
pub struct PathStat {
    /// `root>child>…>span`.
    pub path: String,
    /// Number of spans on this path.
    pub count: u64,
    /// Summed durations.
    pub total_ns: u64,
    /// Summed self times (durations minus children).
    pub self_ns: u64,
    /// Deepest nesting of any span on this path (0-based).
    pub max_depth: usize,
}

/// Folds a span batch into per-path totals, sorted by descending self
/// time (ties broken by path for determinism).
pub fn aggregate_paths(spans: &[SpanRecord]) -> Vec<PathStat> {
    let mut paths: Vec<String> = Vec::with_capacity(spans.len());
    for (i, s) in spans.iter().enumerate() {
        let path = match s.parent {
            // Parents always precede children within a batch, so the
            // parent's path is already built.
            Some(p) if p < i => format!("{}>{}", paths[p], s.name),
            _ => s.name.to_string(),
        };
        paths.push(path);
    }
    let mut stats: Vec<PathStat> = Vec::new();
    for (s, path) in spans.iter().zip(&paths) {
        match stats.iter_mut().find(|st| st.path == *path) {
            Some(st) => {
                st.count += 1;
                st.total_ns += s.dur_ns;
                st.self_ns += s.self_ns();
                st.max_depth = st.max_depth.max(s.depth);
            }
            None => stats.push(PathStat {
                path: path.clone(),
                count: 1,
                total_ns: s.dur_ns,
                self_ns: s.self_ns(),
                max_depth: s.depth,
            }),
        }
    }
    stats.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
    stats
}

/// Renders spans as Chrome trace-event JSON (the `{"traceEvents":
/// [...]}` object form), loadable in `chrome://tracing` and Perfetto.
/// Each span becomes a complete (`"ph": "X"`) event with microsecond
/// `ts`/`dur` and its self time and depth in `args`.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(spans.len() + 4);
    let mut threads: Vec<u64> = spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        events.push(format!(
            "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {t}, \
             \"args\": {{\"name\": \"dbcast thread {t}\"}}}}"
        ));
    }
    for s in spans {
        let mut e = String::new();
        let _ = write!(
            e,
            "  {{\"name\": {}, \"cat\": \"dbcast\", \"ph\": \"X\", \"pid\": 1, \
             \"tid\": {}, \"ts\": {}, \"dur\": {}, \
             \"args\": {{\"self_us\": {}, \"depth\": {}}}}}",
            crate::snapshot::json_string(s.name),
            s.thread,
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            s.self_ns() as f64 / 1e3,
            s.depth,
        );
        events.push(e);
    }
    format!(
        "{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n{}\n]}}\n",
        events.join(",\n")
    )
}

/// Writes [`chrome_trace_json`] to `path`, creating parent
/// directories.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_chrome_trace(path: &Path, spans: &[SpanRecord]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, chrome_trace_json(spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> Vec<SpanRecord> {
        // root (10ns..90ns) with two children; self = 80 - (30 + 20).
        vec![
            SpanRecord {
                name: "root",
                thread: 0,
                parent: None,
                depth: 0,
                start_ns: 10,
                dur_ns: 80,
                child_ns: 50,
            },
            SpanRecord {
                name: "child",
                thread: 0,
                parent: Some(0),
                depth: 1,
                start_ns: 20,
                dur_ns: 30,
                child_ns: 0,
            },
            SpanRecord {
                name: "child",
                thread: 0,
                parent: Some(0),
                depth: 1,
                start_ns: 60,
                dur_ns: 20,
                child_ns: 0,
            },
        ]
    }

    #[test]
    fn self_time_subtracts_children() {
        let spans = sample_batch();
        assert_eq!(spans[0].self_ns(), 30);
        assert_eq!(spans[1].self_ns(), 30);
    }

    #[test]
    fn aggregate_groups_by_path() {
        let stats = aggregate_paths(&sample_batch());
        assert_eq!(stats.len(), 2);
        let root = stats.iter().find(|s| s.path == "root").unwrap();
        assert_eq!((root.count, root.total_ns, root.self_ns), (1, 80, 30));
        let child = stats.iter().find(|s| s.path == "root>child").unwrap();
        assert_eq!((child.count, child.total_ns, child.self_ns), (2, 50, 50));
        assert_eq!(child.max_depth, 1);
    }

    #[test]
    fn chrome_trace_shape() {
        let json = chrome_trace_json(&sample_batch());
        for needle in [
            "\"traceEvents\"",
            "\"ph\": \"X\"",
            "\"name\": \"root\"",
            "\"self_us\": 0.03",
            "\"depth\": 1",
            "\"thread_name\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("\"traceEvents\": ["));
        assert!(!json.contains("\"ph\": \"X\""));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn guards_build_a_tree_and_flush_on_root_close() {
        let _lock = crate::TEST_SWITCH_LOCK.lock().unwrap();
        crate::set_enabled(true);
        set_profiling(true);
        reset_peak_depth();
        let _ = take_spans();
        {
            let _root = crate::span!("tree.test.root");
            {
                let _inner = crate::span!("tree.test.inner");
                let _leaf = crate::span!("tree.test.leaf");
            }
            // Nothing flushes until the root closes.
            assert!(spans_snapshot().iter().all(|s| !s.name.starts_with("tree.test")));
        }
        set_profiling(false);
        let spans: Vec<SpanRecord> =
            take_spans().into_iter().filter(|s| s.name.starts_with("tree.test")).collect();
        assert_eq!(spans.len(), 3);
        let root = spans.iter().position(|s| s.name == "tree.test.root").unwrap();
        let inner = spans.iter().position(|s| s.name == "tree.test.inner").unwrap();
        let leaf = spans.iter().position(|s| s.name == "tree.test.leaf").unwrap();
        assert_eq!(spans[root].parent, None);
        assert_eq!((spans[inner].depth, spans[leaf].depth), (1, 2));
        assert!(spans[root].dur_ns >= spans[inner].dur_ns);
        // One batch flushes contiguously in open order (root, inner,
        // leaf), parents remapped by the batch offset: the leaf's
        // parent is one past the inner's (= the inner itself).
        let batch_offset = spans[inner].parent.expect("inner is nested");
        assert_eq!(spans[leaf].parent, Some(batch_offset + 1));
        assert!(peak_depth() >= 3);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn capacity_drops_excess_batches() {
        let _lock = crate::TEST_SWITCH_LOCK.lock().unwrap();
        crate::set_enabled(true);
        set_profiling(true);
        let _ = take_spans();
        let before_dropped = dropped();
        set_capacity(0);
        {
            let _g = crate::span!("tree.test.capacity");
        }
        set_capacity(1 << 19);
        set_profiling(false);
        assert!(dropped() > before_dropped);
        assert!(spans_snapshot().iter().all(|s| s.name != "tree.test.capacity"));
    }
}
