//! `dbcast-obs`: a zero-dependency telemetry layer for the dbcast
//! workspace — monotonic counters, gauges, log-scale histograms with
//! lock-free recording, RAII span timers, hierarchical span trees
//! with self-time attribution and Chrome trace-event export
//! ([`tree`]), structured convergence traces, a leveled logger and a
//! JSON snapshot exporter.
//!
//! # Enabling
//!
//! Recording is compiled in only with the `enabled` cargo feature
//! (consumer crates re-export it as their `obs` feature). Without it,
//! [`enabled()`] is `const false`, every `record`/`inc` body folds
//! away, and [`span!`] never reads the clock. With the feature on, a
//! runtime switch ([`set_enabled`]) can still silence recording.
//!
//! # Naming
//!
//! Metric names follow `<crate>.<algo>.<event>`, e.g.
//! `alloc.drp.split_scan` or `sim.engine.events`. Dots are separators
//! only by convention; names are opaque keys to the registry.
//!
//! # Hot path
//!
//! `counter!` / `gauge!` / `histogram!` resolve their registry entry
//! once per call site through a static [`std::sync::OnceLock`], after
//! which recording is a single atomic RMW — no locking, no allocation.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod log;
pub mod metrics;
pub mod openmetrics;
pub mod snapshot;
pub mod span;
pub mod trace;
pub mod tree;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use metrics::{Counter, Gauge, Histogram};
use trace::ConvergenceTrace;

static RUNTIME_ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether recording is active: requires the `enabled` cargo feature
/// AND the runtime switch. With the feature off this is a compile-time
/// `false`, so callers' recording branches disappear entirely.
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "enabled") && RUNTIME_ENABLED.load(Ordering::Relaxed)
}

/// Flips the runtime recording switch (a no-op without the `enabled`
/// cargo feature, where recording cannot happen regardless).
pub fn set_enabled(on: bool) {
    RUNTIME_ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide metric registry. Metrics are indexed by name in a
/// `BTreeMap`, so lookup is `O(log n)` instead of a linear scan and
/// snapshots enumerate in sorted-name order (deterministic output for
/// JSON and OpenMetrics exports alike).
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
    traces: Mutex<Vec<ConvergenceTrace>>,
}

impl Registry {
    fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            traces: Mutex::new(Vec::new()),
        }
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use. The reference is `'static`: metrics live for the
    /// whole process so call sites can cache them.
    pub fn counter(&self, name: &str) -> &'static Counter {
        Self::intern(&self.counters, name, Counter::new)
    }

    /// Returns the gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        Self::intern(&self.gauges, name, Gauge::new)
    }

    /// Returns the histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        Self::intern(&self.histograms, name, Histogram::new)
    }

    fn intern<T: 'static>(
        table: &Mutex<BTreeMap<String, &'static T>>,
        name: &str,
        make: fn() -> T,
    ) -> &'static T {
        let mut table = table.lock().expect("registry poisoned");
        if let Some(&m) = table.get(name) {
            return m;
        }
        let leaked: &'static T = Box::leak(Box::new(make()));
        table.insert(name.to_string(), leaked);
        leaked
    }

    /// Appends a completed convergence trace (honouring [`enabled()`]).
    pub fn record_trace(&self, trace: ConvergenceTrace) {
        if !enabled() {
            return;
        }
        self.traces.lock().expect("registry poisoned").push(trace);
    }

    /// Takes a point-in-time copy of every metric and trace.
    pub fn snapshot(&self) -> snapshot::Snapshot {
        let mut snap = self.metrics_snapshot();
        snap.traces = self.traces.lock().expect("registry poisoned").clone();
        snap
    }

    /// Like [`snapshot`](Self::snapshot) but with `traces` left
    /// empty. Convergence traces grow without bound over a run, so a
    /// periodic scraper that only reads scalar metrics (the scope
    /// sampler) would otherwise pay a clone whose cost scales with
    /// run length on every cadence tick.
    pub fn metrics_snapshot(&self) -> snapshot::Snapshot {
        snapshot::Snapshot {
            counters: self
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
            traces: Vec::new(),
        }
    }

    /// The current value of the counter registered under `name`,
    /// without interning a new one when absent.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.lock().expect("registry poisoned").get(name).map(|c| c.get())
    }

    /// Visits every counter as `(name, value)` in sorted-name order
    /// without building a snapshot. The registry's counter table is
    /// locked for the duration, so `f` must not intern new counters.
    pub fn for_each_counter(&self, mut f: impl FnMut(&str, u64)) {
        for (n, c) in self.counters.lock().expect("registry poisoned").iter() {
            f(n, c.get());
        }
    }

    /// Visits every gauge; same locking caveat as
    /// [`for_each_counter`](Self::for_each_counter).
    pub fn for_each_gauge(&self, mut f: impl FnMut(&str, f64)) {
        for (n, g) in self.gauges.lock().expect("registry poisoned").iter() {
            f(n, g.get());
        }
    }

    /// Visits every histogram; same locking caveat as
    /// [`for_each_counter`](Self::for_each_counter).
    pub fn for_each_histogram(&self, mut f: impl FnMut(&str, &Histogram)) {
        for (n, h) in self.histograms.lock().expect("registry poisoned").iter() {
            f(n, h);
        }
    }

    /// Zeroes every metric and discards traces. Registrations (and the
    /// `'static` references handed out) stay valid.
    pub fn reset(&self) {
        for (_, c) in self.counters.lock().expect("registry poisoned").iter() {
            c.reset();
        }
        for (_, g) in self.gauges.lock().expect("registry poisoned").iter() {
            g.reset();
        }
        for (_, h) in self.histograms.lock().expect("registry poisoned").iter() {
            h.reset();
        }
        self.traces.lock().expect("registry poisoned").clear();
    }
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Resolves (once per call site) and returns the named counter.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *__SLOT.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Resolves (once per call site) and returns the named gauge.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *__SLOT.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Resolves (once per call site) and returns the named histogram.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *__SLOT.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// Opens an RAII span timer: elapsed nanoseconds are recorded into the
/// histogram of the same name when the guard drops.
///
/// ```
/// let _g = dbcast_obs::span!("alloc.drp.split_scan");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name, $crate::histogram!($name))
    };
}

/// Serializes tests that flip the global runtime switch so parallel
/// test threads cannot observe each other's toggles.
#[cfg(test)]
pub(crate) static TEST_SWITCH_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_interns_by_name() {
        let a = registry().counter("lib.test.intern");
        let b = registry().counter("lib.test.intern");
        assert!(std::ptr::eq(a, b));
        let c = registry().counter("lib.test.other");
        assert!(!std::ptr::eq(a, c));
    }

    #[test]
    fn macros_cache_per_call_site() {
        let a = counter!("lib.test.macro");
        let b = counter!("lib.test.macro");
        assert!(std::ptr::eq(a, b));
        let _ = gauge!("lib.test.gauge");
        let _ = histogram!("lib.test.hist");
    }

    #[test]
    fn enabled_tracks_feature_and_switch() {
        let _guard = TEST_SWITCH_LOCK.lock().unwrap();
        if cfg!(feature = "enabled") {
            set_enabled(true);
            assert!(enabled());
            set_enabled(false);
            assert!(!enabled());
            set_enabled(true);
        } else {
            set_enabled(true);
            assert!(!enabled());
        }
    }
}
