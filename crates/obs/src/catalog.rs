//! The metric catalogue: every production metric the workspace
//! records, with its type, unit and help text.
//!
//! The catalogue serves three purposes:
//!
//! 1. the OpenMetrics exporter ([`crate::openmetrics`]) emits each
//!    family's `# HELP` line from here,
//! 2. `docs/METRICS.md` is generated from [`markdown`] and a test
//!    compares the committed file against it, so a new metric cannot
//!    ship undocumented, and
//! 3. an end-to-end test snapshots the registry after driving every
//!    subsystem and asserts each recorded name appears here.
//!
//! Span timers record into a histogram of the same name, so they are
//! catalogued as histograms with unit `ns`.

/// What a metric is, for exposition purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing event count.
    Counter,
    /// Last-write-wins level.
    Gauge,
    /// Log2-bucketed distribution (span timers record nanoseconds).
    Histogram,
}

impl MetricKind {
    /// The OpenMetrics type keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One catalogued metric.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Registry name (`<crate>.<algo>.<event>`).
    pub name: &'static str,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// Unit of the recorded value (`1` for dimensionless counts).
    pub unit: &'static str,
    /// One-line description.
    pub help: &'static str,
}

/// Every production metric, sorted by name. Keep sorted — a unit test
/// enforces order and uniqueness so lookups can binary-search.
pub const CATALOG: &[MetricDef] = &[
    MetricDef {
        name: "alloc.cds.best_move",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one CDS best-move scan over all item/channel pairs",
    },
    MetricDef {
        name: "alloc.cds.iterations",
        kind: MetricKind::Counter,
        unit: "1",
        help: "CDS hill-climbing iterations (accepted moves) across all runs",
    },
    MetricDef {
        name: "alloc.cds.refine",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one full CDS refinement to local optimality",
    },
    MetricDef {
        name: "alloc.drp.run",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one full DRP recursive partition",
    },
    MetricDef {
        name: "alloc.drp.split_scan",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one DRP scan for the best split index",
    },
    MetricDef {
        name: "alloc.drp.splits",
        kind: MetricKind::Counter,
        unit: "1",
        help: "DRP split decisions taken across all runs",
    },
    MetricDef {
        name: "alloc.dynamic.budget_exhausted",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Budgeted repairs that stopped with gain still available",
    },
    MetricDef {
        name: "alloc.dynamic.inserts",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Items inserted into a live DynamicBroadcast allocation",
    },
    MetricDef {
        name: "alloc.dynamic.removes",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Items removed from a live DynamicBroadcast allocation",
    },
    MetricDef {
        name: "alloc.dynamic.repair",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one DynamicBroadcast steepest-descent repair",
    },
    MetricDef {
        name: "alloc.dynamic.repair_moves",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Steepest-descent moves applied by DynamicBroadcast repairs",
    },
    MetricDef {
        name: "alloc.dynamic.weight_updates",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Frequency re-weightings applied to a live allocation",
    },
    MetricDef {
        name: "alloc.pipeline.cds",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: CDS stage of the DRP-CDS pipeline",
    },
    MetricDef {
        name: "alloc.pipeline.drp",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: DRP stage of the DRP-CDS pipeline",
    },
    MetricDef {
        name: "alloc.pipeline.runs",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Complete DRP-CDS pipeline executions",
    },
    MetricDef {
        name: "baselines.exact.nodes",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Branch-and-bound nodes expanded by the exact baseline",
    },
    MetricDef {
        name: "baselines.exact.prunes",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Branch-and-bound subtrees pruned by the lower bound",
    },
    MetricDef {
        name: "baselines.exact.search",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one exact branch-and-bound search",
    },
    MetricDef {
        name: "baselines.gopt.evolve",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one full GOPT genetic search",
    },
    MetricDef {
        name: "baselines.gopt.generation",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one GOPT generation (selection, crossover, mutation)",
    },
    MetricDef {
        name: "baselines.gopt.generations",
        kind: MetricKind::Counter,
        unit: "1",
        help: "GOPT generations evolved across all runs",
    },
    MetricDef {
        name: "baselines.gopt.runs",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Complete GOPT searches",
    },
    MetricDef {
        name: "baselines.vfk.dp",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one VF^K frequency-balancing dynamic program",
    },
    MetricDef {
        name: "baselines.vfk.runs",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Complete VF^K allocations",
    },
    MetricDef {
        name: "bench.sweep.cells",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Sweep grid cells evaluated by the bench runner",
    },
    MetricDef {
        name: "bench.sweep.worker",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one parallel sweep worker's share of the grid",
    },
    MetricDef {
        name: "conformance.cases",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Conformance cases executed (fuzzed plus corpus replays)",
    },
    MetricDef {
        name: "conformance.corpus.replayed",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Regression-corpus entries replayed",
    },
    MetricDef {
        name: "conformance.generate_case",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: generating one seeded conformance instance",
    },
    MetricDef {
        name: "conformance.last_run.violations",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "Violations found by the most recent conformance run",
    },
    MetricDef {
        name: "conformance.run",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one full conformance harness run",
    },
    MetricDef {
        name: "conformance.shrink",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: ddmin-shrinking one failing conformance case",
    },
    MetricDef {
        name: "conformance.violations",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Invariant violations found across all conformance runs",
    },
    MetricDef {
        name: "fleet.access",
        kind: MetricKind::Histogram,
        unit: "us",
        help: "Per-request access time measured by fleet clients (virtual microseconds)",
    },
    MetricDef {
        name: "fleet.cache_hits",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Requested items answered from fleet client caches",
    },
    MetricDef {
        name: "fleet.clients",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "Distinct clients heard on the telemetry uplink",
    },
    MetricDef {
        name: "fleet.conflicts",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Wanted-item occurrences that aired while a fleet client's tuner was busy",
    },
    MetricDef {
        name: "fleet.generation.access",
        kind: MetricKind::Gauge,
        unit: "s",
        help: "Fleet-observed mean access time per generation (virtual seconds); indexed as .<generation>",
    },
    MetricDef {
        name: "fleet.generation.gap",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "Relative observed-vs-Eq. 2 access-time gap per generation; indexed as .<generation>",
    },
    MetricDef {
        name: "fleet.generation.predicted",
        kind: MetricKind::Gauge,
        unit: "s",
        help: "Eq. 2 expected access time per generation, conditioned on fleet draws; indexed as .<generation>",
    },
    MetricDef {
        name: "fleet.requests",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Requests measured across all fleet clients",
    },
    MetricDef {
        name: "fleet.retunes",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Fleet client downloads abandoned at a hot-swap boundary",
    },
    MetricDef {
        name: "fleet.stragglers",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "Uplink clients whose acked generation trails the published one",
    },
    MetricDef {
        name: "fleet.torn_frames",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Planned fleet downloads the recorded air could not corroborate",
    },
    MetricDef {
        name: "fleet.tuning",
        kind: MetricKind::Histogram,
        unit: "us",
        help: "Per-request tuning time measured by fleet clients (virtual microseconds)",
    },
    MetricDef {
        name: "fleet.uplink.access",
        kind: MetricKind::Histogram,
        unit: "us",
        help: "Fleet access-time rollup merged from client digest histogram cells",
    },
    MetricDef {
        name: "fleet.uplink.digests",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Client telemetry digests folded into the fleet aggregator",
    },
    MetricDef {
        name: "fleet.uplink.tuning",
        kind: MetricKind::Histogram,
        unit: "us",
        help: "Fleet tuning-time rollup merged from client digest histogram cells",
    },
    MetricDef {
        name: "net.bytes_sent",
        kind: MetricKind::Counter,
        unit: "By",
        help: "Frame bytes enqueued to broadcast subscribers",
    },
    MetricDef {
        name: "net.decode_errors",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Wire frames a client failed to decode (bad magic, checksum, payload)",
    },
    MetricDef {
        name: "net.dropped_frames",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Frames dropped by the slow-client policy (subscriber queue full)",
    },
    MetricDef {
        name: "net.frames_sent",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Frames enqueued to broadcast subscribers (fan-out counted per subscriber)",
    },
    MetricDef {
        name: "net.subscriber.queue_depth",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "Deepest live subscriber frame queue at the last broadcast (back-pressure building)",
    },
    MetricDef {
        name: "net.subscriber.queue_peak",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "High-watermark of any subscriber's frame queue depth since startup",
    },
    MetricDef {
        name: "net.subscribers",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "Live broadcast subscriber connections",
    },
    MetricDef {
        name: "net.uplink.bytes",
        kind: MetricKind::Counter,
        unit: "By",
        help: "Bytes read off telemetry uplink connections",
    },
    MetricDef {
        name: "net.uplink.clients",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "Live telemetry uplink connections",
    },
    MetricDef {
        name: "net.uplink.decode_errors",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Uplink frames that failed to decode or carried a non-telemetry type",
    },
    MetricDef {
        name: "net.uplink.frames",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Telemetry frames decoded off the uplink",
    },
    MetricDef {
        name: "scope.sampler.scrape",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one scope sampler scrape (registry snapshot + series append)",
    },
    MetricDef {
        name: "scope.sampler.scrapes",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Registry scrapes taken by the scope time-series sampler",
    },
    MetricDef {
        name: "scope.watchdog.firings",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Scope watchdog rules that fired (sustained threshold or stall)",
    },
    MetricDef {
        name: "serve.audit.residual",
        kind: MetricKind::Gauge,
        unit: "s",
        help: "Per-channel observed-mean wait minus Eq. 2 predicted mean for the \
               serving generation; indexed as .<channel>",
    },
    MetricDef {
        name: "serve.audit.sampled",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Requests captured by the audit tracer's deterministic seeded stage",
    },
    MetricDef {
        name: "serve.audit.straddled",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Sampled requests whose service straddled an EpochCell program swap",
    },
    MetricDef {
        name: "serve.audit.tail_sampled",
        kind: MetricKind::Counter,
        unit: "1",
        help: "SLO-slow requests captured by the audit tracer's tail-biased stage",
    },
    MetricDef {
        name: "serve.channel.expected_wait",
        kind: MetricKind::Gauge,
        unit: "s",
        help: "Per-channel Eq. 2 wait contribution F_i*Z_i/(2b); indexed as .<channel>",
    },
    MetricDef {
        name: "serve.channel.load",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "Per-channel share of access probability F_i; indexed as .<channel>",
    },
    MetricDef {
        name: "serve.drift_distance",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "Latest L1 distance between estimated and serving frequencies",
    },
    MetricDef {
        name: "serve.drift_events",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Drift detections that dispatched a re-allocation",
    },
    MetricDef {
        name: "serve.dropped",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Requests for items no channel broadcasts (should stay 0)",
    },
    MetricDef {
        name: "serve.generation",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "Program generation currently being served",
    },
    MetricDef {
        name: "serve.generation_cost",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "Eq. 3 cost of the serving generation under its build profile",
    },
    MetricDef {
        name: "serve.repair",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one drift-triggered re-allocation (full or budgeted)",
    },
    MetricDef {
        name: "serve.repair_budget_exhausted",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Budgeted serve repairs that ran out of moves with gain left",
    },
    MetricDef {
        name: "serve.requests",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Requests admitted and served by the runtime",
    },
    MetricDef {
        name: "serve.runtime.run",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one complete ServeRuntime::run over a trace",
    },
    MetricDef {
        name: "serve.slo.breaches",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Requests whose wait exceeded the per-request SLO threshold",
    },
    MetricDef {
        name: "serve.slo.burn_rate",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "Error-budget burn rate of the serving generation (1.0 = budget spent)",
    },
    MetricDef {
        name: "serve.slo.target_wait",
        kind: MetricKind::Gauge,
        unit: "s",
        help: "Eq. 2 expected wait W_b of the serving generation (the SLO target)",
    },
    MetricDef {
        name: "serve.slo.trigger_events",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Re-allocations dispatched by SLO burn rather than L1 drift",
    },
    MetricDef {
        name: "serve.swap_latency",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Wall-clock duration of drift-triggered re-allocations",
    },
    MetricDef {
        name: "serve.swaps",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Hot program swaps published through the EpochCell",
    },
    MetricDef {
        name: "serve.ticks",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Virtual-time ticks the serving runtime advanced through",
    },
    MetricDef {
        name: "serve.wait",
        kind: MetricKind::Histogram,
        unit: "us",
        help: "Per-request waiting time in virtual microseconds",
    },
    MetricDef {
        name: "sim.engine.event_loop",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: the simulator's event-dispatch loop",
    },
    MetricDef {
        name: "sim.engine.events",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Discrete events processed by the simulator",
    },
    MetricDef {
        name: "sim.engine.mean_download",
        kind: MetricKind::Gauge,
        unit: "s",
        help: "Mean download time of the last simulation run",
    },
    MetricDef {
        name: "sim.engine.mean_probe",
        kind: MetricKind::Gauge,
        unit: "s",
        help: "Mean probe time of the last simulation run",
    },
    MetricDef {
        name: "sim.engine.mean_waiting",
        kind: MetricKind::Gauge,
        unit: "s",
        help: "Mean total waiting time of the last simulation run",
    },
    MetricDef {
        name: "sim.engine.queue_depth",
        kind: MetricKind::Histogram,
        unit: "1",
        help: "Pending-event queue depth sampled per dispatched event",
    },
    MetricDef {
        name: "sim.engine.requests",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Requests completed by the simulator",
    },
    MetricDef {
        name: "sim.engine.run",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: one complete simulation run",
    },
    MetricDef {
        name: "sim.engine.schedule",
        kind: MetricKind::Histogram,
        unit: "ns",
        help: "Span: building the simulator's broadcast schedule",
    },
];

/// Looks up a metric's definition by registry name (binary search —
/// the catalogue is sorted).
///
/// Indexed families record under `<family>.<index>` (for example the
/// per-channel gauges `serve.channel.load.3`); a name whose last
/// segment is all digits falls back to its family's entry, so indexed
/// members stay catalogued without one row per index.
pub fn describe(name: &str) -> Option<&'static MetricDef> {
    let exact = CATALOG.binary_search_by(|d| d.name.cmp(name)).ok().map(|i| &CATALOG[i]);
    exact.or_else(|| {
        let (family, index) = name.rsplit_once('.')?;
        if index.is_empty() || !index.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        CATALOG.binary_search_by(|d| d.name.cmp(family)).ok().map(|i| &CATALOG[i])
    })
}

/// Renders the catalogue as the body of `docs/METRICS.md`. A test
/// compares the committed file against this string, so regenerating
/// after adding a metric is mandatory:
///
/// ```sh
/// dbcast flight catalog > docs/METRICS.md
/// ```
pub fn markdown() -> String {
    let mut out = String::new();
    out.push_str("# Metrics catalogue\n\n");
    out.push_str(
        "Generated from `dbcast_obs::catalog::CATALOG` by `dbcast flight catalog`; \
         do not edit by hand.\nA test (`tests/flight_e2e.rs`) fails if this file \
         is stale or if a recorded metric is missing from the catalogue.\n\n",
    );
    out.push_str("| Name | Type | Unit | Help |\n|---|---|---|---|\n");
    for d in CATALOG {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            d.name,
            d.kind.as_str(),
            d.unit,
            d.help
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_and_unique() {
        for w in CATALOG.windows(2) {
            assert!(
                w[0].name < w[1].name,
                "catalogue out of order or duplicated: {} vs {}",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    fn describe_finds_every_entry() {
        for d in CATALOG {
            let found = describe(d.name).expect("binary search finds its own entry");
            assert_eq!(found.name, d.name);
        }
        assert!(describe("no.such.metric").is_none());
    }

    #[test]
    fn describe_resolves_indexed_family_members() {
        let def = describe("serve.channel.load.7").expect("indexed member resolves");
        assert_eq!(def.name, "serve.channel.load");
        let def = describe("serve.channel.expected_wait.0").unwrap();
        assert_eq!(def.name, "serve.channel.expected_wait");
        // The fallback only strips an all-digit final segment.
        assert!(describe("serve.channel.load.x1").is_none());
        assert!(describe("serve.channel.nope.3").is_none());
    }

    #[test]
    fn fleet_observability_names_are_catalogued() {
        // The distributed-observability plane's required names: every
        // metric the uplink server, fleet aggregator, and subscriber
        // back-pressure gauges record must resolve in the catalogue.
        for name in [
            "fleet.clients",
            "fleet.stragglers",
            "fleet.uplink.access",
            "fleet.uplink.digests",
            "fleet.uplink.tuning",
            "net.subscriber.queue_depth",
            "net.subscriber.queue_peak",
            "net.uplink.bytes",
            "net.uplink.clients",
            "net.uplink.decode_errors",
            "net.uplink.frames",
        ] {
            assert!(describe(name).is_some(), "missing catalogue entry: {name}");
        }
        for family in [
            "fleet.generation.access",
            "fleet.generation.gap",
            "fleet.generation.predicted",
        ] {
            let def = describe(&format!("{family}.3"))
                .unwrap_or_else(|| panic!("missing indexed family: {family}"));
            assert_eq!(def.name, family);
        }
    }

    #[test]
    fn markdown_has_one_row_per_entry() {
        let md = markdown();
        for d in CATALOG {
            assert!(md.contains(&format!("| `{}` |", d.name)), "missing row: {}", d.name);
        }
    }
}
