//! RAII span timers: `let _g = obs::span!("alloc.drp.split_scan")`
//! records elapsed nanoseconds into the histogram of the same name
//! when the guard drops, and maintains a thread-local stack of open
//! span names for diagnostic context.

use std::cell::RefCell;
use std::time::Instant;

use crate::metrics::Histogram;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The names of the spans currently open on this thread, outermost
/// first. Empty when recording is disabled.
pub fn current_stack() -> Vec<&'static str> {
    SPAN_STACK.with(|s| s.borrow().clone())
}

/// Guard returned by [`crate::span!`]; records on drop.
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard {
    active: Option<(&'static Histogram, Instant)>,
    /// Tree-node handle when span-tree profiling is on
    /// ([`crate::tree::set_profiling`]); `None` in the common
    /// histogram-only case.
    node: Option<usize>,
}

impl SpanGuard {
    /// Opens a span. When recording is disabled (feature off or
    /// runtime switch off) the guard is inert and never reads the
    /// clock.
    pub fn enter(name: &'static str, histogram: &'static Histogram) -> Self {
        if !crate::enabled() {
            return SpanGuard { active: None, node: None };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        let node = crate::tree::open_span(name);
        SpanGuard { active: Some((histogram, Instant::now())), node }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((histogram, start)) = self.active.take() {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            // force_record: the span was live when opened; a mid-span
            // toggle must not unbalance the stack or lose the sample.
            histogram.force_record(nanos);
            if let Some(idx) = self.node.take() {
                crate::tree::close_span(idx);
            }
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_when_disabled() {
        if cfg!(feature = "enabled") {
            return; // covered by the integration test instead
        }
        let h = crate::registry().histogram("span.test.disabled");
        {
            let _g = SpanGuard::enter("span.test.disabled", h);
            assert!(current_stack().is_empty());
        }
        assert_eq!(h.count(), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn records_and_nests_when_enabled() {
        let _guard = crate::TEST_SWITCH_LOCK.lock().unwrap();
        crate::set_enabled(true);
        let outer = crate::registry().histogram("span.test.outer");
        let inner = crate::registry().histogram("span.test.inner");
        {
            let _a = SpanGuard::enter("span.test.outer", outer);
            assert_eq!(current_stack(), vec!["span.test.outer"]);
            {
                let _b = SpanGuard::enter("span.test.inner", inner);
                assert_eq!(current_stack(), vec!["span.test.outer", "span.test.inner"]);
            }
            assert_eq!(current_stack(), vec!["span.test.outer"]);
        }
        assert!(current_stack().is_empty());
        assert_eq!(outer.count(), 1);
        assert_eq!(inner.count(), 1);
    }
}
