//! Point-in-time snapshots of the registry, exportable as JSON.
//!
//! The writer is self-contained (the telemetry layer carries no
//! dependencies, not even the workspace serde shim). Schema, version 2
//! (v2 changed the histogram `p50`/`p90`/`p95`/`p99` fields from
//! bucket upper bounds — pessimistic by up to 2× — to bucket
//! midpoints; see `Histogram::percentile_bounds`):
//!
//! ```json
//! {
//!   "version": 2,
//!   "counters": { "<name>": <u64>, ... },
//!   "gauges": { "<name>": <f64>, ... },
//!   "histograms": {
//!     "<name>": {
//!       "count": <u64>, "sum": <u64>, "mean": <f64>,
//!       "min": <u64>, "max": <u64>,
//!       "p50": <u64>, "p90": <u64>, "p95": <u64>, "p99": <u64>,
//!       "buckets": [ { "le": <u64>, "count": <u64> }, ... ]
//!     }, ...
//!   },
//!   "traces": [
//!     { "name": "<crate>.<algo>",
//!       "events": [ { "kind": "...", ...fields... }, ... ] }, ...
//!   ]
//! }
//! ```

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::metrics::HistogramSnapshot;
use crate::trace::{ConvergenceTrace, TraceEvent};

/// Plain-data copy of the registry at one instant.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
    pub traces: Vec<ConvergenceTrace>,
}

impl Snapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Looks up a convergence trace by name (first match).
    pub fn trace(&self, name: &str) -> Option<&ConvergenceTrace> {
        self.traces.iter().find(|t| t.name == name)
    }

    /// Folds `other` into this snapshot element-wise, so per-process
    /// (or per-client) snapshots roll up into one fleet view:
    ///
    /// * counters with the same name are **summed**;
    /// * gauges are last-write-wins — `other`'s value replaces ours
    ///   (a gauge is a level, not a flow; summing levels across
    ///   processes would fabricate a quantity nobody observed);
    /// * histograms merge bucket-wise, with count/sum summed, min/max
    ///   folded, and mean/percentiles recomputed from the merged
    ///   buckets — identical to having recorded both streams into one
    ///   histogram;
    /// * traces are concatenated.
    ///
    /// Names present only in `other` are appended; both sides' name
    /// lists are assumed sorted (registry snapshots are) and the
    /// result stays sorted.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            match self.counters.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.gauges[i].1 = *v,
                Err(i) => self.gauges.insert(i, (name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => {
                    let merged = merge_histogram_snapshots(&self.histograms[i].1, h);
                    self.histograms[i].1 = merged;
                }
                Err(i) => self.histograms.insert(i, (name.clone(), h.clone())),
            }
        }
        self.traces.extend(other.traces.iter().cloned());
    }

    /// Renders the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 2,\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {v}", json_string(name));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json_string(name), json_f64(*v));
        }
        out.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"mean\": {}, \
                 \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \
                 \"p95\": {}, \"p99\": {}, \"buckets\": [",
                json_string(name),
                h.count,
                h.sum,
                json_f64(h.mean),
                h.min,
                h.max,
                h.p50,
                h.p90,
                h.p95,
                h.p99,
            );
            for (j, &(le, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"le\": {le}, \"count\": {count}}}");
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"traces\": [");
        for (i, trace) in self.traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"events\": [",
                json_string(&trace.name)
            );
            for (j, event) in trace.events.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&event_json(event));
            }
            out.push_str("]}");
        }
        out.push_str(if self.traces.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
        out
    }

    /// Writes the JSON snapshot to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

/// Bucket-wise merge of two histogram snapshots, recomputing mean and
/// percentile midpoints from the merged buckets with the same walk
/// [`crate::metrics::Histogram::percentile_bounds`] uses — the result
/// equals a snapshot of one histogram that recorded both streams.
fn merge_histogram_snapshots(
    a: &HistogramSnapshot,
    b: &HistogramSnapshot,
) -> HistogramSnapshot {
    use crate::metrics::{bucket_index, bucket_lower_bound};
    if a.count == 0 {
        return b.clone();
    }
    if b.count == 0 {
        return a.clone();
    }
    let mut buckets: Vec<(u64, u64)> = a.buckets.clone();
    for &(le, c) in &b.buckets {
        match buckets.binary_search_by(|&(l, _)| l.cmp(&le)) {
            Ok(i) => buckets[i].1 += c,
            Err(i) => buckets.insert(i, (le, c)),
        }
    }
    let count = a.count + b.count;
    let sum = a.sum.wrapping_add(b.sum);
    let min = a.min.min(b.min);
    let max = a.max.max(b.max);
    let percentile_midpoint = |q: f64| -> u64 {
        let target = ((q / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for &(le, c) in &buckets {
            cumulative += c;
            if cumulative >= target {
                let i = bucket_index(le);
                let lo = bucket_lower_bound(i).clamp(min, max);
                let hi = le.clamp(min, max);
                return lo + (hi - lo) / 2;
            }
        }
        max
    };
    HistogramSnapshot {
        count,
        sum,
        mean: sum as f64 / count as f64,
        min,
        max,
        p50: percentile_midpoint(50.0),
        p90: percentile_midpoint(90.0),
        p95: percentile_midpoint(95.0),
        p99: percentile_midpoint(99.0),
        buckets,
    }
}

fn event_json(event: &TraceEvent) -> String {
    match *event {
        TraceEvent::CdsIteration { iteration, item, from, to, reduction, cost_after } => {
            format!(
                "{{\"kind\": \"cds_iteration\", \"iteration\": {iteration}, \
                 \"item\": {item}, \"from\": {from}, \"to\": {to}, \
                 \"reduction\": {}, \"cost_after\": {}}}",
                json_f64(reduction),
                json_f64(cost_after)
            )
        }
        TraceEvent::DrpSplit { split, chosen_index, prefix_cost, suffix_cost } => {
            format!(
                "{{\"kind\": \"drp_split\", \"split\": {split}, \
                 \"chosen_index\": {chosen_index}, \"prefix_cost\": {}, \
                 \"suffix_cost\": {}}}",
                json_f64(prefix_cost),
                json_f64(suffix_cost)
            )
        }
        TraceEvent::GoptGeneration { generation, best_cost } => {
            format!(
                "{{\"kind\": \"gopt_generation\", \"generation\": {generation}, \
                 \"best_cost\": {}}}",
                json_f64(best_cost)
            )
        }
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_string()
    }
}

/// Escapes `s` as a JSON string literal (shared by the flight
/// recorder's self-contained postmortem writer).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Convenience: snapshot the global registry and write it to `path`.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_global(path: &Path) -> io::Result<()> {
    crate::registry().snapshot().write_json(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![("a.b.c".into(), 3)],
            gauges: vec![("g".into(), 1.5)],
            histograms: vec![(
                "h".into(),
                HistogramSnapshot {
                    count: 2,
                    sum: 6,
                    mean: 3.0,
                    min: 2,
                    max: 4,
                    p50: 3,
                    p90: 4,
                    p95: 4,
                    p99: 4,
                    buckets: vec![(3, 1), (7, 1)],
                },
            )],
            traces: vec![ConvergenceTrace {
                name: "alloc.cds".into(),
                events: vec![TraceEvent::GoptGeneration { generation: 0, best_cost: 9.5 }],
            }],
        }
    }

    #[test]
    fn merge_folds_counters_gauges_and_histograms() {
        use crate::metrics::Histogram;
        let (ha, hb, pooled) =
            (Histogram::detached(), Histogram::detached(), Histogram::detached());
        for v in [3u64, 17, 900] {
            ha.force_record(v);
            pooled.force_record(v);
        }
        for v in [0u64, 17, 40_000] {
            hb.force_record(v);
            pooled.force_record(v);
        }
        let mut a = Snapshot {
            counters: vec![("c.only_a".into(), 2), ("c.shared".into(), 5)],
            gauges: vec![("g.level".into(), 1.0)],
            histograms: vec![("h".into(), ha.snapshot())],
            traces: vec![],
        };
        let b = Snapshot {
            counters: vec![("c.only_b".into(), 7), ("c.shared".into(), 11)],
            gauges: vec![("g.level".into(), 4.5), ("g.new".into(), 2.0)],
            histograms: vec![("h".into(), hb.snapshot()), ("h2".into(), ha.snapshot())],
            traces: vec![],
        };
        a.merge(&b);
        assert_eq!(a.counter("c.shared"), Some(16));
        assert_eq!(a.counter("c.only_a"), Some(2));
        assert_eq!(a.counter("c.only_b"), Some(7));
        assert_eq!(a.gauge("g.level"), Some(4.5), "gauges are last-write-wins");
        assert_eq!(a.gauge("g.new"), Some(2.0));
        // The merged histogram equals pooled single-histogram recording.
        assert_eq!(a.histogram("h"), Some(&pooled.snapshot()));
        assert_eq!(a.histogram("h2"), Some(&ha.snapshot()));
        // Name lists stay sorted so later merges keep binary-searching.
        assert!(a.counters.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(a.gauges.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn merge_with_an_empty_snapshot_is_identity() {
        let mut a = sample();
        let empty = Snapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            traces: vec![],
        };
        let before = a.to_json();
        a.merge(&empty);
        assert_eq!(a.to_json(), before);
    }

    #[test]
    fn lookup_helpers() {
        let s = sample();
        assert_eq!(s.counter("a.b.c"), Some(3));
        assert_eq!(s.gauge("g"), Some(1.5));
        assert_eq!(s.histogram("h").unwrap().count, 2);
        assert_eq!(s.trace("alloc.cds").unwrap().len(), 1);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn json_contains_all_sections() {
        let j = sample().to_json();
        for needle in [
            "\"version\": 2",
            "\"a.b.c\": 3",
            "\"g\": 1.5",
            "\"count\": 2",
            "\"buckets\": [{\"le\": 3, \"count\": 1}, {\"le\": 7, \"count\": 1}]",
            "\"kind\": \"gopt_generation\"",
            "\"best_cost\": 9.5",
        ] {
            assert!(j.contains(needle), "missing {needle} in:\n{j}");
        }
    }

    #[test]
    fn empty_snapshot_is_valid_shape() {
        let s = Snapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            traces: vec![],
        };
        let j = s.to_json();
        assert!(j.contains("\"counters\": {}"));
        assert!(j.contains("\"traces\": []"));
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn write_creates_parents() {
        let dir = std::env::temp_dir().join("dbcast_obs_snapshot_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("metrics.json");
        sample().write_json(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"version\": 2"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
