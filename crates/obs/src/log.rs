//! A tiny leveled logger for the CLI's `--log-level` flag. Messages
//! go to stderr so they never corrupt JSON or CSV written to stdout.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    /// Parses a case-insensitive level name.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        };
        write!(f, "{s}")
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the most verbose level that will be printed.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current verbosity threshold.
pub fn level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Whether a message at `l` would currently be printed.
pub fn enabled_at(l: Level) -> bool {
    l as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Prints `args` to stderr when `l` passes the threshold. Prefer the
/// [`crate::obs_log!`] macro, which skips formatting entirely for
/// filtered-out messages.
pub fn log(l: Level, args: fmt::Arguments<'_>) {
    if enabled_at(l) {
        eprintln!("[{l:5}] {args}");
    }
}

/// Logs a formatted message at the given level:
/// `obs_log!(Level::Info, "built {} channels", k)`.
#[macro_export]
macro_rules! obs_log {
    ($level:expr, $($arg:tt)+) => {
        if $crate::log::enabled_at($level) {
            $crate::log::log($level, format_args!($($arg)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn threshold_ordering() {
        assert!(Level::Error < Level::Trace);
        set_level(Level::Info);
        assert!(enabled_at(Level::Error));
        assert!(enabled_at(Level::Info));
        assert!(!enabled_at(Level::Debug));
        set_level(Level::Warn);
    }
}
