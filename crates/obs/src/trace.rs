//! Structured convergence traces: typed per-iteration event streams
//! emitted by the optimizers (CDS refinement, DRP splitting, GOPT
//! generations) and exported with metric snapshots.
//!
//! Events carry plain indices and floats — no model types — so the
//! telemetry layer stays dependency-free and traces from different
//! algorithms share one stream type.

/// One step of an optimizer's progress.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// CDS accepted a cost-reducing move.
    CdsIteration {
        /// 1-based iteration number.
        iteration: usize,
        /// Item moved (index into the database ordering).
        item: usize,
        /// Source channel.
        from: usize,
        /// Destination channel.
        to: usize,
        /// Cost reduction achieved by the move (positive).
        reduction: f64,
        /// Total cost after applying the move.
        cost_after: f64,
    },
    /// DRP committed one binary split.
    DrpSplit {
        /// 1-based split number (the k-th cut).
        split: usize,
        /// Chosen cut position within the segment (prefix length).
        chosen_index: usize,
        /// Cost of the prefix segment after the cut.
        prefix_cost: f64,
        /// Cost of the suffix segment after the cut.
        suffix_cost: f64,
    },
    /// GOPT finished one generation.
    GoptGeneration {
        /// 0-based generation number.
        generation: usize,
        /// Best cost in the population after this generation.
        best_cost: f64,
    },
}

impl TraceEvent {
    /// The cost-like quantity tracked by this event: total cost after
    /// a CDS move, combined segment cost of a DRP split, or best cost
    /// of a GOPT generation.
    pub fn cost(&self) -> f64 {
        match *self {
            TraceEvent::CdsIteration { cost_after, .. } => cost_after,
            TraceEvent::DrpSplit { prefix_cost, suffix_cost, .. } => {
                prefix_cost + suffix_cost
            }
            TraceEvent::GoptGeneration { best_cost, .. } => best_cost,
        }
    }
}

/// A named stream of optimizer events from one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceTrace {
    /// `<crate>.<algo>` name, e.g. `alloc.cds`.
    pub name: String,
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
}

impl ConvergenceTrace {
    /// An empty trace for algorithm `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ConvergenceTrace { name: name.into(), events: Vec::new() }
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The cost series across events, in order.
    pub fn costs(&self) -> Vec<f64> {
        self.events.iter().map(TraceEvent::cost).collect()
    }

    /// Whether the cost series never increases (beyond `tol`) — the
    /// convergence invariant of CDS and GOPT.
    pub fn is_monotone_non_increasing(&self, tol: f64) -> bool {
        self.costs().windows(2).all(|w| w[1] <= w[0] + tol)
    }

    /// Final cost, or `None` for an empty trace.
    pub fn final_cost(&self) -> Option<f64> {
        self.events.last().map(TraceEvent::cost)
    }

    /// Records this trace in the global registry (honouring
    /// [`crate::enabled()`]); consumes the trace.
    pub fn record(self) {
        crate::registry().record_trace(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cds(i: usize, cost_after: f64) -> TraceEvent {
        TraceEvent::CdsIteration {
            iteration: i,
            item: 0,
            from: 0,
            to: 1,
            reduction: 1.0,
            cost_after,
        }
    }

    #[test]
    fn monotonicity_check() {
        let mut t = ConvergenceTrace::new("alloc.cds");
        for (i, c) in [10.0, 8.0, 8.0, 5.0].into_iter().enumerate() {
            t.push(cds(i + 1, c));
        }
        assert!(t.is_monotone_non_increasing(1e-9));
        assert_eq!(t.final_cost(), Some(5.0));
        t.push(cds(5, 6.0));
        assert!(!t.is_monotone_non_increasing(1e-9));
    }

    #[test]
    fn event_costs_by_kind() {
        let split = TraceEvent::DrpSplit {
            split: 1,
            chosen_index: 3,
            prefix_cost: 2.0,
            suffix_cost: 5.0,
        };
        assert_eq!(split.cost(), 7.0);
        let g = TraceEvent::GoptGeneration { generation: 0, best_cost: 4.5 };
        assert_eq!(g.cost(), 4.5);
    }

    #[test]
    fn recording_honours_switch() {
        let _guard = crate::TEST_SWITCH_LOCK.lock().unwrap();
        crate::set_enabled(true);
        let t = ConvergenceTrace::new("trace.test.switch");
        t.record();
        let snap = crate::registry().snapshot();
        let present = snap.traces.iter().any(|t| t.name == "trace.test.switch");
        // With the feature off nothing may be recorded; with it on the
        // trace must appear (the runtime switch defaults to on).
        assert_eq!(present, cfg!(feature = "enabled"));
    }
}
