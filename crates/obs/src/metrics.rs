//! Lock-free metric primitives: monotonic counters, gauges and
//! log2-bucketed histograms, all single-atomic on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds one (when recording is enabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (when recording is enabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.force_add(n);
        }
    }

    /// Adds `n` unconditionally, bypassing the enable switch. Exists
    /// so the arithmetic stays testable with the feature off.
    #[inline]
    pub fn force_add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins floating-point level (queue depth, cost, …).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub(crate) fn new() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }

    /// Stores `v` (when recording is enabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.force_set(v);
        }
    }

    /// Stores `v` unconditionally.
    #[inline]
    pub fn force_set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.force_set(0.0);
    }
}

/// Number of histogram buckets: one for zero plus one per power of
/// two up to `u64::MAX`.
pub const BUCKETS: usize = 65;

/// A histogram over `u64` observations (nanoseconds, queue depths, …)
/// with power-of-two buckets: bucket `0` holds the value `0`, bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i - 1]`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Index of the bucket holding `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Largest value stored in bucket `i` (inclusive upper bound).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Smallest value stored in bucket `i` (inclusive lower bound).
pub fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// A histogram not registered anywhere: scratch space for folding
    /// [`HistogramCells`] digests (fleet rollups, merge tests) without
    /// touching the process-wide registry.
    pub fn detached() -> Self {
        Self::new()
    }

    /// Records one observation (when recording is enabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.force_record(v);
        }
    }

    /// Records one observation unconditionally, bypassing the enable
    /// switch. Exists so the bucket math stays testable with the
    /// feature off.
    pub fn force_record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (wraps above `u64::MAX` totals).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Dense per-bucket cumulative counts (one relaxed load per
    /// bucket; no allocation).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Upper-bound estimate of the `q`-th percentile (`0..=100`): the
    /// inclusive upper bound of the first bucket whose cumulative
    /// count reaches `q%` of observations, clamped to the observed
    /// min/max. `None` when empty.
    ///
    /// **Caution:** because the buckets are powers of two, the upper
    /// bound can overstate the true percentile by up to 2× (the full
    /// bucket width) — e.g. a p95 that truly sits at 520 ns reports as
    /// 1023 ns. Use [`percentile_bounds`](Self::percentile_bounds) for
    /// the honest `(lo, hi)` interval, or
    /// [`percentile_midpoint`](Self::percentile_midpoint) for a
    /// centered point estimate (what snapshots report).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 100]`.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        self.percentile_bounds(q).map(|(_, hi)| hi)
    }

    /// The `(lo, hi)` inclusive bounds of the bucket containing the
    /// `q`-th percentile, clamped to the observed min/max — the true
    /// percentile is guaranteed to lie within. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 100]`.
    pub fn percentile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        assert!((0.0..=100.0).contains(&q), "percentile out of range: {q}");
        let n = self.count();
        if n == 0 {
            return None;
        }
        let (min, max) = (self.min()?, self.max()?);
        let target = ((q / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            if cumulative >= target {
                let lo = bucket_lower_bound(i).clamp(min, max);
                let hi = bucket_upper_bound(i).clamp(min, max);
                return Some((lo, hi));
            }
        }
        Some((max, max))
    }

    /// Midpoint of [`percentile_bounds`](Self::percentile_bounds): a
    /// centered estimate whose error is at most half the bucket width,
    /// where the raw upper bound can be pessimistic by the full width.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 100]`.
    pub fn percentile_midpoint(&self, q: f64) -> Option<u64> {
        self.percentile_bounds(q).map(|(lo, hi)| lo + (hi - lo) / 2)
    }

    /// Copies the non-empty buckets as `(upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_upper_bound(i), c))
            })
            .collect()
    }

    /// Freezes the current state into a plain-data snapshot. The
    /// percentile fields are bucket **midpoints**
    /// ([`percentile_midpoint`](Self::percentile_midpoint)), not the
    /// pessimistic bucket upper bounds.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // Read the buckets *before* the count: a record racing this
        // snapshot (bucket bumped, count not yet) then at worst
        // inflates `count` past the bucket total, never the other way
        // around — so the cumulative OpenMetrics bucket series always
        // stays <= the `+Inf`/`_count` line. The clamp covers a
        // record landing wholly between the two reads.
        let buckets = self.nonzero_buckets();
        let bucket_total: u64 = buckets.iter().map(|&(_, c)| c).sum();
        HistogramSnapshot {
            count: self.count().max(bucket_total),
            sum: self.sum(),
            mean: self.mean().unwrap_or(0.0),
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.percentile_midpoint(50.0).unwrap_or(0),
            p90: self.percentile_midpoint(90.0).unwrap_or(0),
            p95: self.percentile_midpoint(95.0).unwrap_or(0),
            p99: self.percentile_midpoint(99.0).unwrap_or(0),
            buckets,
        }
    }

    /// Freezes the raw cells — dense buckets plus count/sum/min/max —
    /// as plain mergeable data. Like [`snapshot`](Self::snapshot) the
    /// buckets are read before the count, and the count is clamped up
    /// to the bucket total, so a racing record can only inflate
    /// `count`, never leave it below the bucket series.
    pub fn cells(&self) -> HistogramCells {
        let buckets = self.bucket_counts();
        let bucket_total: u64 = buckets.iter().sum();
        HistogramCells {
            buckets,
            count: self.count().max(bucket_total),
            sum: self.sum(),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Folds a cells digest into this histogram element-wise (when
    /// recording is enabled): the result is exactly what recording the
    /// digest's underlying observations here would have produced.
    #[inline]
    pub fn merge_cells(&self, cells: &HistogramCells) {
        if crate::enabled() {
            self.force_merge_cells(cells);
        }
    }

    /// [`merge_cells`](Self::merge_cells) bypassing the enable switch,
    /// so the merge arithmetic stays testable with the feature off.
    pub fn force_merge_cells(&self, cells: &HistogramCells) {
        for (i, &c) in cells.buckets.iter().enumerate() {
            if c > 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        if cells.count > 0 {
            self.count.fetch_add(cells.count, Ordering::Relaxed);
            self.sum.fetch_add(cells.sum, Ordering::Relaxed);
            self.min.fetch_min(cells.min, Ordering::Relaxed);
            self.max.fetch_max(cells.max, Ordering::Relaxed);
        }
    }

    /// Folds another histogram's current contents into this one (when
    /// recording is enabled).
    pub fn merge_from(&self, other: &Histogram) {
        self.merge_cells(&other.cells());
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Plain-data histogram cells: the element-wise mergeable core of a
/// [`Histogram`]. Merging is associative and commutative with
/// [`HistogramCells::empty`] as identity (property-tested), so
/// per-client digests fold into exact fleet rollups in any order —
/// the same algebra count-min sketch cells obey.
///
/// `min` is `u64::MAX` while empty so that `min.min(other.min)` is the
/// correct fold without a special case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramCells {
    /// Dense per-bucket counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observations (wraps above `u64::MAX` totals).
    pub sum: u64,
    /// Smallest observation, `u64::MAX` when empty.
    pub min: u64,
    /// Largest observation, `0` when empty.
    pub max: u64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramCells {
    /// The merge identity: no observations.
    pub const fn empty() -> Self {
        HistogramCells { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Whether any observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Element-wise merge: bucket and scalar sums, min/max folds.
    pub fn merge(&mut self, other: &HistogramCells) {
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// Plain-data copy of a [`Histogram`], used by snapshots. The `p*`
/// fields are bucket-midpoint estimates (schema v2; v1 reported the
/// bucket upper bound, overstating by up to 2×).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub mean: f64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p95: u64,
    pub p99: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..64 {
            // The upper bound of bucket i is the last value mapping to i.
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i) + 1), i + 1);
        }
    }

    #[test]
    fn histogram_aggregates_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 100, 1000] {
            h.force_record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1111);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean().unwrap() - 1111.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_walk_buckets_monotonically() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.force_record(v);
        }
        let p50 = h.percentile(50.0).unwrap();
        let p90 = h.percentile(90.0).unwrap();
        let p95 = h.percentile(95.0).unwrap();
        let p100 = h.percentile(100.0).unwrap();
        assert!(p50 <= p90 && p90 <= p95 && p95 <= p100);
        assert_eq!(p100, 1000);
        // p50 of 1..=1000 lands in the bucket holding 500, whose upper
        // bound is 511.
        assert_eq!(p50, 511);
        // Estimates never leave the observed range.
        assert!(h.percentile(0.0).unwrap() >= 1);
    }

    #[test]
    fn empty_histogram_yields_none() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile_bounds(50.0), None);
        assert_eq!(h.percentile_midpoint(50.0), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn percentile_upper_bound_can_overstate_but_bounds_bracket_the_truth() {
        // Two observations, 520 and 1000, both in bucket [512, 1023].
        // The true p50 is 520; the raw upper-bound estimate reports
        // max-clamped 1000 — nearly 2× pessimistic — while the bounds
        // bracket the truth and the midpoint halves the error.
        let h = Histogram::new();
        h.force_record(520);
        h.force_record(1000);
        assert_eq!(h.percentile(50.0), Some(1000));
        assert_eq!(h.percentile_bounds(50.0), Some((520, 1000)));
        assert_eq!(h.percentile_midpoint(50.0), Some(760));
        // Snapshots report the midpoint, not the upper bound.
        assert_eq!(h.snapshot().p50, 760);
    }

    #[test]
    fn percentile_bounds_stay_within_observed_range() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.force_record(v);
        }
        for q in [0.0, 50.0, 90.0, 99.0, 100.0] {
            let (lo, hi) = h.percentile_bounds(q).unwrap();
            assert!(lo <= hi, "q={q}: lo {lo} > hi {hi}");
            assert!(lo >= 1 && hi <= 1000, "q={q}: ({lo}, {hi}) escapes [1, 1000]");
            let mid = h.percentile_midpoint(q).unwrap();
            assert!((lo..=hi).contains(&mid));
        }
        // p50 of 1..=1000 is 500, inside bucket [256, 511].
        assert_eq!(h.percentile_bounds(50.0), Some((256, 511)));
    }

    #[test]
    fn bucket_lower_bounds_match_indexing() {
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        for i in 1..=64 {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
            assert!(bucket_lower_bound(i) <= bucket_upper_bound(i));
        }
    }

    #[test]
    fn counter_is_atomic_under_contention() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        c.force_add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn histogram_count_is_atomic_under_contention() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.force_record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        let bucket_total: u64 = h.nonzero_buckets().iter().map(|&(_, c)| c).sum();
        assert_eq!(bucket_total, 40_000);
    }

    #[test]
    fn cells_round_trip_and_merge_exactly() {
        let h = Histogram::detached();
        for v in [0u64, 1, 5, 5, 100, 1000] {
            h.force_record(v);
        }
        let cells = h.cells();
        assert_eq!(cells.count, 6);
        assert_eq!(cells.sum, 1111);
        assert_eq!(cells.min, 0);
        assert_eq!(cells.max, 1000);

        // Folding the cells into a fresh histogram reproduces it.
        let g = Histogram::detached();
        g.force_merge_cells(&cells);
        assert_eq!(g.cells(), cells);
        assert_eq!(g.snapshot(), h.snapshot());

        // Splitting the stream and merging matches pooled recording.
        let (a, b) = (Histogram::detached(), Histogram::detached());
        for v in [0u64, 1, 5] {
            a.force_record(v);
        }
        for v in [5u64, 100, 1000] {
            b.force_record(v);
        }
        let mut merged = a.cells();
        merged.merge(&b.cells());
        assert_eq!(merged, cells);
    }

    #[test]
    fn empty_cells_are_the_merge_identity() {
        let mut cells = HistogramCells::empty();
        assert!(cells.is_empty());
        assert_eq!(cells.mean(), None);
        let mut populated = HistogramCells::empty();
        populated.record(7);
        populated.record(9000);
        let before = populated.clone();
        populated.merge(&HistogramCells::empty());
        assert_eq!(populated, before);
        cells.merge(&before);
        assert_eq!(cells, before);
        // Merging empty into a live histogram leaves min/max untouched.
        let h = Histogram::detached();
        h.force_merge_cells(&HistogramCells::empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn gated_merge_respects_the_enable_switch() {
        let _guard = crate::TEST_SWITCH_LOCK.lock().unwrap();
        crate::set_enabled(false);
        let mut cells = HistogramCells::empty();
        cells.record(42);
        let h = Histogram::detached();
        h.merge_cells(&cells);
        assert_eq!(h.count(), 0, "disabled merge must be a no-op");
        crate::set_enabled(true);
        let g = Histogram::detached();
        g.force_merge_cells(&cells);
        if crate::enabled() {
            let f = Histogram::detached();
            f.merge_from(&g);
            assert_eq!(f.count(), 1);
        }
    }

    #[test]
    fn gauge_round_trips_floats() {
        let g = Gauge::new();
        g.force_set(135.59999999999997);
        assert_eq!(g.get(), 135.59999999999997);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        // Under default features `crate::enabled()` is const-false;
        // with the feature on we flip the runtime switch instead.
        let _guard = crate::TEST_SWITCH_LOCK.lock().unwrap();
        crate::set_enabled(false);
        let c = Counter::new();
        c.inc();
        c.add(5);
        let h = Histogram::new();
        h.record(42);
        let g = Gauge::new();
        g.set(7.0);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(g.get(), 0.0);
        crate::set_enabled(true);
    }
}
