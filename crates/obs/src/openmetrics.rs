//! OpenMetrics / Prometheus text exposition of a registry
//! [`Snapshot`], plus a strict parser for validating scrapes.
//!
//! The renderer maps registry names (`serve.requests`) to OpenMetrics
//! names (`serve_requests`), emits `# TYPE`/`# HELP` metadata (help
//! text comes from the [`catalog`](crate::catalog) when the metric is
//! catalogued), renders histograms with cumulative `_bucket{le="…"}`
//! series plus `_sum`/`_count`, suffixes counters with `_total`, and
//! terminates the exposition with `# EOF` as the spec requires.
//!
//! The parser accepts exactly what the renderer produces (metadata
//! lines, samples with optional `{le="…"}` labels and optional
//! exemplar annotations, a final `# EOF`) and checks the structural
//! invariants scrapes rely on: every sample belongs to a declared
//! family, histogram buckets are cumulative and ordered, values parse
//! as finite floats, and exemplars appear only where the spec allows
//! them (bucket and counter samples, label set ≤ 128 runes). CI feeds
//! scraped `/metrics` bodies through it via
//! `dbcast flight check-metrics`.
//!
//! Exemplars follow the OpenMetrics annotation syntax
//! `name_bucket{le="X"} N # {label="v",…} value [timestamp]` and are
//! attached at render time by an [`ExemplarProvider`] — the audit
//! layer registers one (via [`set_exemplar_provider`]) that links tail
//! wait buckets to concrete trace records.

use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock, RwLock};

use crate::metrics::HistogramSnapshot;
use crate::snapshot::Snapshot;

/// Converts a registry name to an OpenMetrics name: dots and other
/// non-`[a-zA-Z0-9_]` characters become underscores, and a leading
/// digit is prefixed with an underscore.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn format_value(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

fn help_line(out: &mut String, om_name: &str, registry_name: &str) {
    if let Some(def) = crate::catalog::describe(registry_name) {
        let _ = writeln!(out, "# HELP {om_name} {}", def.help);
    }
}

/// A concrete observation attached to a bucket or counter sample per
/// the OpenMetrics exemplar syntax: `… # {labels} value [timestamp]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Label pairs identifying the exemplar (e.g. a request id).
    pub labels: Vec<(String, String)>,
    /// The exemplified observation's value.
    pub value: f64,
    /// Optional timestamp (seconds).
    pub timestamp: Option<f64>,
}

/// Renders `ex` in the exemplar wire syntax (without the leading
/// `` # `` separator).
pub fn render_exemplar(ex: &Exemplar) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in ex.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    let _ = write!(out, "}} {}", format_value(ex.value));
    if let Some(ts) = ex.timestamp {
        let _ = write!(out, " {}", format_value(ts));
    }
    out
}

/// Maps a registry metric name to the exemplars of its histogram
/// buckets, keyed by the bucket's upper bound.
pub type ExemplarProvider = dyn Fn(&str) -> Vec<(u64, Exemplar)> + Send + Sync;

fn exemplar_provider_cell() -> &'static RwLock<Option<Arc<ExemplarProvider>>> {
    static CELL: OnceLock<RwLock<Option<Arc<ExemplarProvider>>>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(None))
}

/// Installs (or with `None` clears) the process-global exemplar
/// provider consulted by [`render_global`]. The serve CLI points this
/// at the audit tracer so `/metrics` scrapes carry tail exemplars.
pub fn set_exemplar_provider(provider: Option<Arc<ExemplarProvider>>) {
    *exemplar_provider_cell().write().unwrap_or_else(|e| e.into_inner()) = provider;
}

fn render_histogram(
    out: &mut String,
    om_name: &str,
    h: &HistogramSnapshot,
    exemplars: &[(u64, Exemplar)],
) {
    let mut cumulative = 0u64;
    for &(le, count) in &h.buckets {
        cumulative += count;
        match exemplars.iter().find(|(b, _)| *b == le) {
            Some((_, ex)) => {
                let _ = writeln!(
                    out,
                    "{om_name}_bucket{{le=\"{le}\"}} {cumulative} # {}",
                    render_exemplar(ex)
                );
            }
            None => {
                let _ = writeln!(out, "{om_name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
        }
    }
    let _ = writeln!(out, "{om_name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{om_name}_sum {}", h.sum);
    let _ = writeln!(out, "{om_name}_count {}", h.count);
}

/// Renders `snapshot` in OpenMetrics text format (terminated with
/// `# EOF`). Families appear in sorted-name order per section.
pub fn render(snapshot: &Snapshot) -> String {
    render_with_exemplars(snapshot, &|_| Vec::new())
}

/// Renders `snapshot` with histogram-bucket exemplars supplied by
/// `provider` (called once per histogram with the registry name).
pub fn render_with_exemplars(
    snapshot: &Snapshot,
    provider: &(impl Fn(&str) -> Vec<(u64, Exemplar)> + ?Sized),
) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.counters {
        let om = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {om} counter");
        help_line(&mut out, &om, name);
        let _ = writeln!(out, "{om}_total {v}");
    }
    for (name, v) in &snapshot.gauges {
        let om = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {om} gauge");
        help_line(&mut out, &om, name);
        let _ = writeln!(out, "{om} {}", format_value(*v));
    }
    for (name, h) in &snapshot.histograms {
        let om = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {om} histogram");
        help_line(&mut out, &om, name);
        render_histogram(&mut out, &om, h, &provider(name));
    }
    out.push_str("# EOF\n");
    out
}

/// Convenience: render the global registry's current state, with
/// exemplars when a provider is installed.
pub fn render_global() -> String {
    let provider =
        exemplar_provider_cell().read().unwrap_or_else(|e| e.into_inner()).clone();
    let snapshot = crate::registry().snapshot();
    match provider {
        Some(p) => render_with_exemplars(&snapshot, &*p),
        None => render(&snapshot),
    }
}

/// A parse/validation failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for document-level failures).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "openmetrics: {}", self.message)
        } else {
            write!(f, "openmetrics: line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// The declared type of a parsed family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    Counter,
    Gauge,
    Histogram,
}

/// One sample line: `name{labels} value [# {labels} value [ts]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name, including any `_total`/`_bucket`/… suffix.
    pub name: String,
    /// Label pairs, in order of appearance.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
    /// The exemplar annotation, if the line carried one.
    pub exemplar: Option<Exemplar>,
}

/// One metric family: its metadata plus the samples that follow it.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// The family name from the `# TYPE` line.
    pub name: String,
    /// Declared type.
    pub kind: FamilyKind,
    /// Help text, if a `# HELP` line was present.
    pub help: Option<String>,
    /// Samples belonging to this family.
    pub samples: Vec<Sample>,
}

impl Family {
    /// The value of the sample named exactly `name`, if present.
    pub fn sample(&self, name: &str) -> Option<f64> {
        self.samples.iter().find(|s| s.name == name).map(|s| s.value)
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !s.starts_with(|c: char| c.is_ascii_digit())
}

/// Parses a `k="v",…` label body (the text between `{` and `}`).
fn parse_labels(
    labels_str: &str,
    lineno: usize,
) -> Result<Vec<(String, String)>, ParseError> {
    let mut labels = Vec::new();
    if !labels_str.is_empty() {
        for pair in labels_str.split(',') {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("malformed label {pair:?}")))?;
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| err(lineno, format!("label value not quoted: {pair:?}")))?;
            if !valid_name(k) {
                return Err(err(lineno, format!("invalid label name {k:?}")));
            }
            labels.push((k.to_string(), v.to_string()));
        }
    }
    Ok(labels)
}

/// Parses the text after a sample's `` # `` separator:
/// `{labels} value [timestamp]`.
fn parse_exemplar(text: &str, lineno: usize) -> Result<Exemplar, ParseError> {
    let rest = text
        .strip_prefix('{')
        .ok_or_else(|| err(lineno, "exemplar is missing its label set"))?;
    let close =
        rest.find('}').ok_or_else(|| err(lineno, "unterminated exemplar label set"))?;
    let labels = parse_labels(&rest[..close], lineno)?;
    // The spec caps the combined rune length of exemplar label names
    // and values at 128.
    let runes: usize =
        labels.iter().map(|(k, v)| k.chars().count() + v.chars().count()).sum();
    if runes > 128 {
        return Err(err(lineno, format!("exemplar label set has {runes} runes (> 128)")));
    }
    let mut it = rest[close + 1..].split_whitespace();
    let value_str = it.next().ok_or_else(|| err(lineno, "exemplar has no value"))?;
    let value =
        value_str.parse::<f64>().ok().filter(|v| v.is_finite()).ok_or_else(|| {
            err(lineno, format!("unparseable exemplar value {value_str:?}"))
        })?;
    let timestamp = match it.next() {
        Some(ts) => {
            Some(ts.parse::<f64>().ok().filter(|t| t.is_finite()).ok_or_else(|| {
                err(lineno, format!("unparseable exemplar timestamp {ts:?}"))
            })?)
        }
        None => None,
    };
    if it.next().is_some() {
        return Err(err(lineno, "trailing tokens after exemplar timestamp"));
    }
    Ok(Exemplar { labels, value, timestamp })
}

fn parse_sample(full_line: &str, lineno: usize) -> Result<Sample, ParseError> {
    // Split off an exemplar annotation first (`<sample> # <exemplar>`);
    // the renderer never quotes a bare " # " inside label values, so
    // the first occurrence is authoritative.
    let (line, exemplar) = match full_line.find(" # ") {
        Some(pos) => {
            (&full_line[..pos], Some(parse_exemplar(full_line[pos + 3..].trim(), lineno)?))
        }
        None => (full_line, None),
    };
    // `name{k="v",…} value` or `name value`.
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close = line[open..]
                .find('}')
                .map(|i| open + i)
                .ok_or_else(|| err(lineno, "unterminated label set"))?;
            (&line[..open], Some((&line[open + 1..close], &line[close + 1..])))
        }
        None => (line.split_whitespace().next().unwrap_or(""), None),
    };
    if !valid_name(name_part) {
        return Err(err(lineno, format!("invalid sample name {name_part:?}")));
    }
    let (labels, value_str) = match rest {
        Some((labels_str, tail)) => (parse_labels(labels_str, lineno)?, tail.trim()),
        None => {
            let mut it = line.split_whitespace();
            let _ = it.next();
            (Vec::new(), it.next().unwrap_or(""))
        }
    };
    if value_str.is_empty() {
        return Err(err(lineno, "sample has no value"));
    }
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse::<f64>()
            .map_err(|_| err(lineno, format!("unparseable value {other:?}")))?,
    };
    if exemplar.is_some()
        && !(name_part.ends_with("_bucket") || name_part.ends_with("_total"))
    {
        return Err(err(
            lineno,
            format!("exemplar on {name_part:?} (only buckets and counters may carry one)"),
        ));
    }
    Ok(Sample { name: name_part.to_string(), labels, value, exemplar })
}

/// Does `sample` belong to the family `base` of kind `kind`?
fn belongs_to(sample: &str, base: &str, kind: FamilyKind) -> bool {
    match kind {
        FamilyKind::Counter => sample == base || sample == format!("{base}_total"),
        FamilyKind::Gauge => sample == base,
        FamilyKind::Histogram => {
            sample == format!("{base}_bucket")
                || sample == format!("{base}_sum")
                || sample == format!("{base}_count")
        }
    }
}

fn validate_histogram(family: &Family, lineno: usize) -> Result<(), ParseError> {
    let mut last_le = f64::NEG_INFINITY;
    let mut last_cum = 0.0f64;
    let mut saw_inf = false;
    let mut bucket_total = None;
    for s in &family.samples {
        if s.name.ends_with("_bucket") {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| {
                    err(lineno, format!("{}: bucket sample without le label", family.name))
                })?;
            let le_val = if le == "+Inf" {
                saw_inf = true;
                f64::INFINITY
            } else {
                le.parse::<f64>().map_err(|_| {
                    err(lineno, format!("{}: unparseable le {le:?}", family.name))
                })?
            };
            if le_val <= last_le {
                return Err(err(
                    lineno,
                    format!("{}: bucket le values not increasing", family.name),
                ));
            }
            if s.value < last_cum {
                return Err(err(
                    lineno,
                    format!("{}: bucket counts not cumulative", family.name),
                ));
            }
            last_le = le_val;
            last_cum = s.value;
            if le_val.is_infinite() {
                bucket_total = Some(s.value);
            }
        }
    }
    if !saw_inf {
        return Err(err(lineno, format!("{}: missing +Inf bucket", family.name)));
    }
    if let (Some(total), Some(count)) =
        (bucket_total, family.sample(&format!("{}_count", family.name)))
    {
        if (total - count).abs() > f64::EPSILON {
            return Err(err(
                lineno,
                format!(
                    "{}: +Inf bucket {total} disagrees with _count {count}",
                    family.name
                ),
            ));
        }
    }
    Ok(())
}

/// Parses and validates an OpenMetrics text document.
///
/// # Errors
///
/// [`ParseError`] on any structural violation: a sample outside a
/// declared family, an unknown type keyword, non-cumulative histogram
/// buckets, counters with non-finite or decreasing-impossible values
/// (negative), or a missing terminal `# EOF`.
pub fn parse(text: &str) -> Result<Vec<Family>, ParseError> {
    let mut families: Vec<Family> = Vec::new();
    let mut family_start: Vec<usize> = Vec::new();
    let mut saw_eof = false;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if saw_eof {
            return Err(err(lineno, "content after # EOF"));
        }
        if let Some(meta) = line.strip_prefix("# ") {
            if meta == "EOF" {
                saw_eof = true;
            } else if let Some(rest) = meta.strip_prefix("TYPE ") {
                let mut it = rest.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                let kind = match it.next() {
                    Some("counter") => FamilyKind::Counter,
                    Some("gauge") => FamilyKind::Gauge,
                    Some("histogram") => FamilyKind::Histogram,
                    other => {
                        return Err(err(
                            lineno,
                            format!("unknown TYPE {:?} for {name}", other.unwrap_or("")),
                        ))
                    }
                };
                if !valid_name(name) {
                    return Err(err(lineno, format!("invalid family name {name:?}")));
                }
                if families.iter().any(|f| f.name == name) {
                    return Err(err(lineno, format!("family {name} declared twice")));
                }
                families.push(Family {
                    name: name.to_string(),
                    kind,
                    help: None,
                    samples: Vec::new(),
                });
                family_start.push(lineno);
            } else if let Some(rest) = meta.strip_prefix("HELP ") {
                let mut it = rest.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                let help = it.next().unwrap_or("").to_string();
                match families.last_mut() {
                    Some(f) if f.name == name => f.help = Some(help),
                    _ => {
                        return Err(err(
                            lineno,
                            format!("HELP for {name} outside its TYPE block"),
                        ))
                    }
                }
            } else {
                // Free-form comments are tolerated (the renderer emits
                // none, but scrapes may be concatenated with notes).
            }
        } else if line.starts_with('#') {
            // "#..." without a space: plain comment.
        } else {
            let sample = parse_sample(line, lineno)?;
            let family = families
                .iter_mut()
                .rev()
                .find(|f| belongs_to(&sample.name, &f.name, f.kind))
                .ok_or_else(|| {
                    err(
                        lineno,
                        format!("sample {} outside any declared family", sample.name),
                    )
                })?;
            if family.kind == FamilyKind::Counter && sample.value < 0.0 {
                return Err(err(lineno, format!("counter {} is negative", sample.name)));
            }
            family.samples.push(sample);
        }
    }
    if !saw_eof {
        return Err(err(0, "missing terminal # EOF"));
    }
    for (f, &start) in families.iter().zip(&family_start) {
        if f.kind == FamilyKind::Histogram && !f.samples.is_empty() {
            validate_histogram(f, start)?;
        }
    }
    Ok(families)
}

/// Looks up one sample value across parsed families (e.g.
/// `serve_requests_total`).
pub fn sample_value(families: &[Family], sample_name: &str) -> Option<f64> {
    families.iter().find_map(|f| f.sample(sample_name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![("serve.requests".into(), 42)],
            gauges: vec![("serve.drift_distance".into(), 0.125)],
            histograms: vec![(
                "serve.swap_latency".into(),
                HistogramSnapshot {
                    count: 3,
                    sum: 900,
                    mean: 300.0,
                    min: 100,
                    max: 600,
                    p50: 192,
                    p90: 767,
                    p95: 767,
                    p99: 767,
                    buckets: vec![(127, 1), (1023, 2)],
                },
            )],
            traces: vec![],
        }
    }

    #[test]
    fn renders_and_reparses() {
        let text = render(&sample_snapshot());
        assert!(text.ends_with("# EOF\n"), "missing EOF:\n{text}");
        let families = parse(&text).expect("own output parses");
        assert_eq!(families.len(), 3);
        assert_eq!(sample_value(&families, "serve_requests_total"), Some(42.0));
        assert_eq!(sample_value(&families, "serve_drift_distance"), Some(0.125));
        assert_eq!(sample_value(&families, "serve_swap_latency_count"), Some(3.0));
        assert_eq!(sample_value(&families, "serve_swap_latency_sum"), Some(900.0));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let text = render(&sample_snapshot());
        let families = parse(&text).unwrap();
        let hist = families.iter().find(|f| f.name == "serve_swap_latency").unwrap();
        let buckets: Vec<f64> = hist
            .samples
            .iter()
            .filter(|s| s.name.ends_with("_bucket"))
            .map(|s| s.value)
            .collect();
        assert_eq!(buckets, vec![1.0, 3.0, 3.0]);
    }

    #[test]
    fn catalogued_metrics_get_help_lines() {
        let text = render(&sample_snapshot());
        assert!(text.contains("# HELP serve_requests "), "no help line:\n{text}");
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("serve.slo.burn_rate"), "serve_slo_burn_rate");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
    }

    #[test]
    fn rejects_missing_eof() {
        let e = parse("# TYPE x counter\nx_total 1\n").unwrap_err();
        assert!(e.message.contains("EOF"), "{e}");
    }

    #[test]
    fn rejects_orphan_samples() {
        let e = parse("orphan 1\n# EOF\n").unwrap_err();
        assert!(e.message.contains("outside any declared family"), "{e}");
    }

    #[test]
    fn rejects_non_cumulative_buckets() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\n\
                    h_bucket{le=\"2\"} 3\n\
                    h_bucket{le=\"+Inf\"} 5\n\
                    h_sum 9\nh_count 5\n# EOF\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("cumulative"), "{e}");
    }

    #[test]
    fn rejects_duplicate_family() {
        let e = parse("# TYPE x counter\n# TYPE x counter\n# EOF\n").unwrap_err();
        assert!(e.message.contains("twice"), "{e}");
    }

    #[test]
    fn rejects_negative_counter() {
        let e = parse("# TYPE x counter\nx_total -1\n# EOF\n").unwrap_err();
        assert!(e.message.contains("negative"), "{e}");
    }

    #[test]
    fn exemplars_render_and_round_trip() {
        let exemplar = Exemplar {
            labels: vec![
                ("request_id".into(), "4711".into()),
                ("channel".into(), "2".into()),
            ],
            value: 1_250_000.0,
            timestamp: Some(12.5),
        };
        let snapshot = sample_snapshot();
        let provider = move |name: &str| {
            if name == "serve.swap_latency" {
                vec![(1023u64, exemplar.clone())]
            } else {
                Vec::new()
            }
        };
        let text = render_with_exemplars(&snapshot, &provider);
        assert!(
            text.contains(
                "serve_swap_latency_bucket{le=\"1023\"} 3 \
                 # {request_id=\"4711\",channel=\"2\"} 1250000 12.5"
            ),
            "exemplar line missing:\n{text}"
        );
        let families = parse(&text).expect("exemplar-annotated output parses");
        let hist = families.iter().find(|f| f.name == "serve_swap_latency").unwrap();
        let annotated: Vec<&Sample> =
            hist.samples.iter().filter(|s| s.exemplar.is_some()).collect();
        assert_eq!(annotated.len(), 1);
        let parsed = annotated[0].exemplar.as_ref().unwrap();
        assert_eq!(parsed.labels[0], ("request_id".to_string(), "4711".to_string()));
        assert_eq!(parsed.value, 1_250_000.0);
        assert_eq!(parsed.timestamp, Some(12.5));
        // The wire form itself round-trips: re-rendering the parsed
        // exemplar reproduces the annotation byte for byte.
        assert!(text.contains(&format!("# {}", render_exemplar(parsed))));
    }

    #[test]
    fn exemplar_without_timestamp_parses() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 1 # {id=\"7\"} 0.5\n\
                    h_bucket{le=\"+Inf\"} 1\n\
                    h_sum 1\nh_count 1\n# EOF\n";
        let families = parse(text).expect("parses");
        let ex = families[0].samples[0].exemplar.as_ref().expect("exemplar kept");
        assert_eq!(ex.value, 0.5);
        assert_eq!(ex.timestamp, None);
    }

    #[test]
    fn rejects_exemplar_on_gauge_sample() {
        let text = "# TYPE g gauge\ng 1 # {id=\"7\"} 0.5\n# EOF\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("only buckets and counters"), "{e}");
    }

    #[test]
    fn rejects_oversized_exemplar_label_set() {
        let big = "x".repeat(140);
        let text = format!(
            "# TYPE h histogram\n\
             h_bucket{{le=\"1\"}} 1 # {{id=\"{big}\"}} 0.5\n\
             h_bucket{{le=\"+Inf\"}} 1\nh_sum 1\nh_count 1\n# EOF\n"
        );
        let e = parse(&text).unwrap_err();
        assert!(e.message.contains("128"), "{e}");
    }

    #[test]
    fn rejects_malformed_exemplars() {
        for (annotation, why) in [
            ("# 0.5", "missing label set"),
            ("# {id=\"7\" 0.5", "unterminated label set"),
            ("# {id=\"7\"}", "missing value"),
            ("# {id=\"7\"} 0.5 1.0 junk", "trailing tokens"),
        ] {
            let text = format!(
                "# TYPE h histogram\n\
                 h_bucket{{le=\"1\"}} 1 {annotation}\n\
                 h_bucket{{le=\"+Inf\"}} 1\nh_sum 1\nh_count 1\n# EOF\n"
            );
            assert!(parse(&text).is_err(), "{why} accepted");
        }
    }

    #[test]
    fn empty_snapshot_renders_bare_eof() {
        let s = Snapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            traces: vec![],
        };
        let text = render(&s);
        assert_eq!(text, "# EOF\n");
        assert!(parse(&text).unwrap().is_empty());
    }
}
