//! Property-based tests of the simulator's conservation laws and the
//! statistics machinery.

use dbcast_model::{Allocation, BroadcastProgram, Database, ItemSpec};
use dbcast_sim::{Simulation, SummaryStats};
use dbcast_workload::TraceBuilder;
use proptest::prelude::*;

fn db_and_program() -> impl Strategy<Value = (Database, BroadcastProgram)> {
    (prop::collection::vec((0.01f64..10.0, 0.1f64..50.0), 1..25), 1usize..4, 1.0f64..50.0)
        .prop_map(|(pairs, k, bandwidth)| {
            let db = Database::try_from_specs(
                pairs.into_iter().map(|(f, z)| ItemSpec::new(f, z)),
            )
            .unwrap();
            let n = db.len();
            let alloc =
                Allocation::from_assignment(&db, k, (0..n).map(|i| i % k).collect())
                    .unwrap();
            let program = BroadcastProgram::new(&db, &alloc, bandwidth).unwrap();
            (db, program)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulation_conserves_requests_and_time(
        (db, program) in db_and_program(),
        requests in 0usize..300,
        seed in 0u64..100,
    ) {
        let trace = TraceBuilder::new(&db).requests(requests).seed(seed).build().unwrap();
        let report = Simulation::new(&program, &trace).run().unwrap();
        prop_assert_eq!(report.completed(), requests);
        prop_assert_eq!(report.events_processed(), 3 * requests as u64);
        let served: u64 = report.channel_loads().iter().map(|l| l.requests).sum();
        prop_assert_eq!(served, requests as u64);
        for (r, req) in report.records().iter().zip(trace.iter()) {
            prop_assert!((r.arrival - req.time).abs() < 1e-12);
            prop_assert!(r.slot_start >= r.arrival - 1e-9);
            prop_assert!(r.completion > r.slot_start);
            // Download time equals item size / bandwidth exactly.
            let z = db.items()[r.item.index()].size();
            prop_assert!((r.download_time() - z / program.bandwidth()).abs() < 1e-9);
            // Probe never exceeds one cycle of the serving channel.
            let cycle = program.channels()[r.channel.index()].cycle_size()
                / program.bandwidth();
            prop_assert!(r.probe_time() <= cycle + 1e-9);
        }
    }

    #[test]
    fn summary_stats_match_naive_computation(samples in prop::collection::vec(0.0f64..1e4, 2..200)) {
        let mut s = SummaryStats::new();
        for &x in &samples {
            s.record(x);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.max(1.0));
        prop_assert!((s.variance().unwrap() - var).abs() < 1e-6 * var.max(1.0));
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min().unwrap(), min);
        prop_assert_eq!(s.max().unwrap(), max);
        // Percentiles are monotone and bounded.
        let p10 = s.percentile(10.0).unwrap();
        let p50 = s.percentile(50.0).unwrap();
        let p90 = s.percentile(90.0).unwrap();
        prop_assert!(min <= p10 && p10 <= p50 && p50 <= p90 && p90 <= max);
    }

    #[test]
    fn merged_stats_equal_sequential_stats(
        a in prop::collection::vec(0.0f64..100.0, 0..50),
        b in prop::collection::vec(0.0f64..100.0, 0..50),
    ) {
        let mut sa = SummaryStats::new();
        for &x in &a { sa.record(x); }
        let mut sb = SummaryStats::new();
        for &x in &b { sb.record(x); }
        let mut merged = sa.clone();
        merged.merge(&sb);

        let mut reference = SummaryStats::new();
        for &x in a.iter().chain(&b) { reference.record(x); }
        prop_assert_eq!(merged.count(), reference.count());
        prop_assert!((merged.mean() - reference.mean()).abs() < 1e-9);
        match (merged.variance(), reference.variance()) {
            (Some(v1), Some(v2)) => prop_assert!((v1 - v2).abs() < 1e-6),
            (None, None) => {}
            _ => prop_assert!(false, "variance presence mismatch"),
        }
    }
}
