//! Analytical-vs-simulated agreement (Eq. 1/Eq. 2) driven through the
//! shared conformance generator: every strided case builds a broadcast
//! program and checks the discrete-event simulator against the model.

use dbcast_conformance::{Harness, HarnessConfig};

#[test]
fn simulator_agrees_with_the_model_on_generated_workloads() {
    // Empty subject registry: this run exercises only the cross-cutting
    // checks — CDS refinement from random starts and, on every second
    // case, the simulator agreement invariant.
    let report = Harness::with_subjects(
        HarnessConfig {
            seed: 0x51AB,
            cases: 30,
            max_items: 25,
            sim_stride: 2,
            ..Default::default()
        },
        Vec::new(),
    )
    .run();
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.sim_cases >= 15, "stride 2 over 30 cases must sim-check 15");
}
