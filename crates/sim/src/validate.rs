//! End-to-end validation of the analytical model (Eq. 1–2) against the
//! discrete-event simulator.

use dbcast_model::{
    average_waiting_time, Allocation, BroadcastProgram, Database, ModelError,
};
use dbcast_workload::RequestTrace;
use serde::{Deserialize, Serialize};

use crate::engine::{SimError, Simulation};

/// Outcome of one analytical-vs-empirical comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Analytical expected waiting time `W_b` (Eq. 2).
    pub analytical: f64,
    /// Empirical mean waiting time over the simulated requests.
    pub empirical: f64,
    /// Half-width of the empirical 95% confidence interval.
    pub ci95: f64,
    /// Number of simulated requests.
    pub requests: usize,
}

impl ValidationReport {
    /// Absolute difference between analytical and empirical means.
    pub fn absolute_error(&self) -> f64 {
        (self.analytical - self.empirical).abs()
    }

    /// Relative error against the analytical value.
    pub fn relative_error(&self) -> f64 {
        self.absolute_error() / self.analytical
    }

    /// Whether the analytical value lies within the empirical 95% CI
    /// widened by `slack` (use a small slack, e.g. 3–4× CI, to keep
    /// seeded tests robust).
    pub fn agrees_within(&self, slack: f64) -> bool {
        self.absolute_error() <= self.ci95 * slack
    }
}

/// Errors from validation (model or simulation layer).
#[derive(Debug)]
#[non_exhaustive]
pub enum ValidationError {
    /// The analytical model rejected the inputs.
    Model(ModelError),
    /// The simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::Model(e) => write!(f, "validation model error: {e}"),
            ValidationError::Sim(e) => write!(f, "validation simulation error: {e}"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<ModelError> for ValidationError {
    fn from(e: ModelError) -> Self {
        ValidationError::Model(e)
    }
}

impl From<SimError> for ValidationError {
    fn from(e: SimError) -> Self {
        ValidationError::Sim(e)
    }
}

/// Simulates `trace` against the program induced by `alloc` and compares
/// the empirical mean waiting time with the analytical `W_b`.
///
/// # Errors
///
/// Model errors for invalid bandwidth/allocation; simulation errors when
/// the trace requests unbroadcast items.
///
/// # Example
///
/// ```
/// use dbcast_alloc::DrpCds;
/// use dbcast_model::ChannelAllocator;
/// use dbcast_sim::validate_against_model;
/// use dbcast_workload::{TraceBuilder, WorkloadBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = WorkloadBuilder::new(30).seed(7).build()?;
/// let alloc = DrpCds::new().allocate(&db, 3)?;
/// let trace = TraceBuilder::new(&db).requests(20_000).seed(8).build()?;
/// let report = validate_against_model(&db, &alloc, &trace, 10.0)?;
/// assert!(report.relative_error() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn validate_against_model(
    db: &Database,
    alloc: &Allocation,
    trace: &RequestTrace,
    bandwidth: f64,
) -> Result<ValidationReport, ValidationError> {
    let analytical = average_waiting_time(db, alloc, bandwidth)?.total();
    let program = BroadcastProgram::new(db, alloc, bandwidth)?;
    let report = Simulation::new(&program, trace).run()?;
    Ok(ValidationReport {
        analytical,
        empirical: report.waiting().mean(),
        ci95: report.waiting().ci95_halfwidth().unwrap_or(f64::INFINITY),
        requests: report.completed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_alloc::DrpCds;
    use dbcast_model::ChannelAllocator;
    use dbcast_workload::{TraceBuilder, WorkloadBuilder};

    #[test]
    fn analytical_matches_empirical_on_flat_allocation() {
        let db = WorkloadBuilder::new(25).seed(1).build().unwrap();
        let alloc = dbcast_model::Allocation::from_assignment(
            &db,
            2,
            (0..25).map(|i| i % 2).collect(),
        )
        .unwrap();
        let trace = TraceBuilder::new(&db).requests(50_000).seed(2).build().unwrap();
        let report = validate_against_model(&db, &alloc, &trace, 10.0).unwrap();
        assert!(
            report.relative_error() < 0.03,
            "relative error {} too large (analytical {}, empirical {})",
            report.relative_error(),
            report.analytical,
            report.empirical
        );
    }

    #[test]
    fn analytical_matches_empirical_on_drpcds() {
        let db = WorkloadBuilder::new(40).seed(3).build().unwrap();
        let alloc = DrpCds::new().allocate(&db, 4).unwrap();
        let trace = TraceBuilder::new(&db).requests(50_000).seed(4).build().unwrap();
        let report = validate_against_model(&db, &alloc, &trace, 10.0).unwrap();
        assert!(report.relative_error() < 0.03, "{report:?}");
        assert!(report.agrees_within(5.0), "{report:?}");
    }

    #[test]
    fn better_allocation_yields_lower_empirical_waiting() {
        let db = WorkloadBuilder::new(50).seed(5).build().unwrap();
        let flat = dbcast_model::Allocation::from_assignment(
            &db,
            5,
            (0..50).map(|i| i % 5).collect(),
        )
        .unwrap();
        let smart = DrpCds::new().allocate(&db, 5).unwrap();
        let trace = TraceBuilder::new(&db).requests(30_000).seed(6).build().unwrap();
        let w_flat = validate_against_model(&db, &flat, &trace, 10.0).unwrap();
        let w_smart = validate_against_model(&db, &smart, &trace, 10.0).unwrap();
        assert!(w_smart.empirical < w_flat.empirical);
    }

    #[test]
    fn bad_bandwidth_is_reported() {
        let db = WorkloadBuilder::new(5).build().unwrap();
        let alloc = dbcast_model::Allocation::from_assignment(&db, 1, vec![0; 5]).unwrap();
        let trace = TraceBuilder::new(&db).requests(10).build().unwrap();
        assert!(matches!(
            validate_against_model(&db, &alloc, &trace, 0.0),
            Err(ValidationError::Model(_))
        ));
    }
}
