//! Streaming summary statistics (Welford) with optional percentiles.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance/min/max plus retained samples for
/// percentiles.
///
/// Uses Welford's algorithm, so the running moments are numerically
/// stable regardless of sample magnitude.
///
/// # Example
///
/// ```
/// use dbcast_sim::SummaryStats;
/// let mut s = SummaryStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.percentile(50.0).unwrap() - 2.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SummaryStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
}

impl SummaryStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SummaryStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            samples: Vec::new(),
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.samples.push(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`None` with fewer than 2 samples).
    pub fn variance(&self) -> Option<f64> {
        if self.count < 2 {
            None
        } else {
            Some(self.m2 / (self.count - 1) as f64)
        }
    }

    /// Sample standard deviation (`None` with fewer than 2 samples).
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Linear-interpolated percentile `p ∈ [0, 100]` (`None` when
    /// empty).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
    }

    /// Half-width of the normal-approximation 95% confidence interval
    /// around the mean (`None` with fewer than 2 samples).
    pub fn ci95_halfwidth(&self) -> Option<f64> {
        let sd = self.std_dev()?;
        Some(1.96 * sd / (self.count as f64).sqrt())
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &SummaryStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.samples.extend_from_slice(&other.samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_safe() {
        let s = SummaryStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.variance().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert!(s.percentile(50.0).is_none());
        assert!(s.ci95_halfwidth().is_none());
    }

    #[test]
    fn moments_match_direct_computation() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = SummaryStats::new();
        for &x in &data {
            s.record(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance().unwrap() - var).abs() < 1e-12);
        assert_eq!(s.min().unwrap(), 1.0);
        assert_eq!(s.max().unwrap(), 9.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s = SummaryStats::new();
        for x in [10.0, 20.0, 30.0, 40.0, 50.0] {
            s.record(x);
        }
        assert_eq!(s.percentile(0.0).unwrap(), 10.0);
        assert_eq!(s.percentile(100.0).unwrap(), 50.0);
        assert!((s.percentile(25.0).unwrap() - 20.0).abs() < 1e-12);
        assert!((s.percentile(90.0).unwrap() - 46.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_panics() {
        let mut s = SummaryStats::new();
        s.record(1.0);
        let _ = s.percentile(120.0);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a = SummaryStats::new();
        let mut b = SummaryStats::new();
        for &x in &a_data {
            a.record(x);
        }
        for &x in &b_data {
            b.record(x);
        }
        let mut merged = a.clone();
        merged.merge(&b);

        let mut reference = SummaryStats::new();
        for &x in a_data.iter().chain(&b_data) {
            reference.record(x);
        }
        assert_eq!(merged.count(), reference.count());
        assert!((merged.mean() - reference.mean()).abs() < 1e-12);
        assert!((merged.variance().unwrap() - reference.variance().unwrap()).abs() < 1e-12);
        assert_eq!(merged.min(), reference.min());
        assert_eq!(merged.max(), reference.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = SummaryStats::new();
        s.record(5.0);
        let before = s.clone();
        s.merge(&SummaryStats::new());
        assert_eq!(s, before);

        let mut empty = SummaryStats::new();
        empty.merge(&before);
        assert_eq!(empty.mean(), before.mean());
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = SummaryStats::new();
        let mut large = SummaryStats::new();
        // Same alternating data, different counts.
        for i in 0..10 {
            small.record((i % 2) as f64);
        }
        for i in 0..1000 {
            large.record((i % 2) as f64);
        }
        assert!(large.ci95_halfwidth().unwrap() < small.ci95_halfwidth().unwrap());
    }
}
