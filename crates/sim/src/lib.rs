//! Discrete-event simulator for multi-channel cyclic data broadcasting.
//!
//! The ICDCS 2005 paper evaluates allocations through the analytical
//! model (Eq. 1–2). This crate provides the end-to-end counterpart: a
//! classic event-heap simulation in which a server replays each
//! channel's cyclic schedule, clients arrive by a Poisson process,
//! tune in to the channel carrying their item, wait for the item's next
//! slot and download it. Empirical waiting times converge to the
//! analytical expectation, which is verified both in tests and by the
//! `sim_validation` bench binary.
//!
//! # Example
//!
//! ```
//! use dbcast_alloc::DrpCds;
//! use dbcast_model::{BroadcastProgram, ChannelAllocator};
//! use dbcast_sim::Simulation;
//! use dbcast_workload::{TraceBuilder, WorkloadBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let db = WorkloadBuilder::new(40).seed(1).build()?;
//! let alloc = DrpCds::new().allocate(&db, 4)?;
//! let program = BroadcastProgram::new(&db, &alloc, 10.0)?;
//! let trace = TraceBuilder::new(&db).requests(2_000).seed(2).build()?;
//! let report = Simulation::new(&program, &trace).run()?;
//! assert_eq!(report.completed(), 2_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod event;
mod stats;
mod validate;

pub use engine::{ChannelLoad, RequestRecord, SimError, SimReport, Simulation};
pub use event::{Event, EventQueue};
pub use stats::SummaryStats;
pub use validate::{validate_against_model, ValidationError, ValidationReport};
