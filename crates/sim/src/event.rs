//! The event heap at the core of the discrete-event engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dbcast_model::{ChannelId, ItemId};

/// A simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A client request for `item` arrives (request index in the trace).
    Arrival {
        /// Index of the request in the driving trace.
        request: usize,
        /// The requested item.
        item: ItemId,
    },
    /// The item a client waits for starts broadcasting on `channel`.
    SlotStart {
        /// Index of the request being served.
        request: usize,
        /// The channel delivering the item.
        channel: ChannelId,
    },
    /// A client finishes downloading its item.
    DownloadComplete {
        /// Index of the request being served.
        request: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq); seq gives FIFO among
        // simultaneous events, keeping runs fully deterministic.
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-time event queue.
///
/// Events at equal timestamps pop in insertion order. Popping never
/// travels back in time; scheduling an event before the last popped
/// timestamp panics (in debug builds), catching engine bugs early.
///
/// # Example
///
/// ```
/// use dbcast_model::ItemId;
/// use dbcast_sim::{Event, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, Event::DownloadComplete { request: 1 });
/// q.schedule(1.0, Event::Arrival { request: 0, item: ItemId::new(3) });
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(t, 1.0);
/// assert!(matches!(e, Event::Arrival { request: 0, .. }));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    now: f64,
}

impl EventQueue {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: 0.0 }
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Debug-panics when `time` is NaN or earlier than the last popped
    /// timestamp (a causality violation).
    pub fn schedule(&mut self, time: f64, event: Event) {
        debug_assert!(!time.is_nan(), "event time must not be NaN");
        debug_assert!(
            time >= self.now,
            "causality violation: scheduling at {time} after popping {}",
            self.now
        );
        self.heap.push(Scheduled { time, seq: self.seq, event });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the queue clock.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The timestamp of the last popped event (0 before any pop).
    pub fn now(&self) -> f64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(request: usize) -> Event {
        Event::Arrival { request, item: ItemId::new(0) }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, arrival(3));
        q.schedule(1.0, arrival(1));
        q.schedule(2.0, arrival(2));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, arrival(10));
        q.schedule(1.0, arrival(11));
        q.schedule(1.0, arrival(12));
        let order: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Arrival { request, .. } => request,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![10, 11, 12]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(5.0, arrival(0));
        q.pop();
        assert_eq!(q.now(), 5.0);
        // Scheduling at or after `now` is fine.
        q.schedule(5.0, arrival(1));
        q.schedule(7.0, arrival(2));
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, arrival(0));
        q.pop();
        q.schedule(4.0, arrival(1));
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
