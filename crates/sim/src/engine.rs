//! The discrete-event simulation engine.

use std::fmt;

use dbcast_model::{BroadcastProgram, ChannelId, ItemId};
use dbcast_workload::RequestTrace;
use serde::{Deserialize, Serialize};

use crate::event::{Event, EventQueue};
use crate::stats::SummaryStats;

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A request targets an item that no channel broadcasts.
    ItemNotBroadcast {
        /// The unknown item.
        item: ItemId,
        /// Index of the request in the trace.
        request: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ItemNotBroadcast { item, request } => {
                write!(f, "request {request} asks for {item}, which no channel broadcasts")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The lifecycle of one simulated request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// The requested item.
    pub item: ItemId,
    /// The channel that served it.
    pub channel: ChannelId,
    /// Arrival time (seconds).
    pub arrival: f64,
    /// When the item's slot started broadcasting.
    pub slot_start: f64,
    /// When the download completed.
    pub completion: f64,
}

impl RequestRecord {
    /// Probe time: arrival until the slot starts.
    pub fn probe_time(&self) -> f64 {
        self.slot_start - self.arrival
    }

    /// Download time: slot start until completion.
    pub fn download_time(&self) -> f64 {
        self.completion - self.slot_start
    }

    /// Total waiting time (the quantity of Eq. 1).
    pub fn waiting_time(&self) -> f64 {
        self.completion - self.arrival
    }
}

/// Per-channel load counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ChannelLoad {
    /// Requests served by this channel.
    pub requests: u64,
    /// Summed waiting time of those requests.
    pub total_waiting: f64,
}

impl ChannelLoad {
    /// Mean waiting time on this channel (0 when unused).
    pub fn mean_waiting(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_waiting / self.requests as f64
        }
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    records: Vec<RequestRecord>,
    waiting: SummaryStats,
    probe: SummaryStats,
    download: SummaryStats,
    channel_loads: Vec<ChannelLoad>,
    events_processed: u64,
}

impl SimReport {
    /// Number of completed requests.
    pub fn completed(&self) -> usize {
        self.records.len()
    }

    /// Per-request lifecycle records, in trace order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Waiting-time statistics (probe + download, Eq. 1's quantity).
    pub fn waiting(&self) -> &SummaryStats {
        &self.waiting
    }

    /// Probe-time statistics.
    pub fn probe(&self) -> &SummaryStats {
        &self.probe
    }

    /// Download-time statistics.
    pub fn download(&self) -> &SummaryStats {
        &self.download
    }

    /// Per-channel load, indexed by channel id.
    pub fn channel_loads(&self) -> &[ChannelLoad] {
        &self.channel_loads
    }

    /// Total events the engine processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }
}

/// A configured simulation: a broadcast program plus a request trace.
///
/// The engine is a textbook three-phase DES: arrivals are pre-scheduled
/// from the trace; each arrival computes the deterministic next slot
/// start of its item on its channel (cyclic schedules make per-tick
/// channel events unnecessary); slot-start events fire download
/// completions. All state transitions flow through the
/// [`EventQueue`](crate::EventQueue), and runs are bit-for-bit
/// deterministic.
#[derive(Debug)]
pub struct Simulation<'a> {
    program: &'a BroadcastProgram,
    trace: &'a RequestTrace,
}

impl<'a> Simulation<'a> {
    /// Binds a program to a trace.
    pub fn new(program: &'a BroadcastProgram, trace: &'a RequestTrace) -> Self {
        Simulation { program, trace }
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::ItemNotBroadcast`] if the trace requests an item that
    /// the program does not carry.
    pub fn run(&self) -> Result<SimReport, SimError> {
        let _span = dbcast_obs::span!("sim.engine.run");
        let bandwidth = self.program.bandwidth();
        let mut queue = EventQueue::new();
        {
            let _schedule = dbcast_obs::span!("sim.engine.schedule");
            for (i, r) in self.trace.iter().enumerate() {
                queue.schedule(r.time, Event::Arrival { request: i, item: r.item });
            }
        }

        #[derive(Clone, Copy)]
        struct Pending {
            item: ItemId,
            channel: ChannelId,
            arrival: f64,
            slot_start: f64,
            size: f64,
        }

        let mut pending: Vec<Option<Pending>> = vec![None; self.trace.len()];
        let mut records: Vec<Option<RequestRecord>> = vec![None; self.trace.len()];
        let mut waiting = SummaryStats::new();
        let mut probe = SummaryStats::new();
        let mut download = SummaryStats::new();
        let mut channel_loads = vec![ChannelLoad::default(); self.program.channels().len()];
        let mut events_processed = 0u64;

        let _event_loop = dbcast_obs::span!("sim.engine.event_loop");
        while let Some((now, event)) = queue.pop() {
            events_processed += 1;
            if dbcast_obs::enabled() {
                dbcast_obs::histogram!("sim.engine.queue_depth").record(queue.len() as u64);
            }
            match event {
                Event::Arrival { request, item } => {
                    // With replication the client tunes to whichever
                    // channel broadcasts the item soonest.
                    let (channel, slot_start, size) = self
                        .program
                        .best_start(item, now)
                        .ok_or(SimError::ItemNotBroadcast { item, request })?;
                    pending[request] =
                        Some(Pending { item, channel, arrival: now, slot_start, size });
                    queue.schedule(slot_start, Event::SlotStart { request, channel });
                }
                Event::SlotStart { request, channel } => {
                    let p = pending[request].expect("slot start follows arrival");
                    debug_assert_eq!(p.channel, channel);
                    queue.schedule(
                        now + p.size / bandwidth,
                        Event::DownloadComplete { request },
                    );
                }
                Event::DownloadComplete { request } => {
                    let p = pending[request].take().expect("completion follows arrival");
                    let record = RequestRecord {
                        item: p.item,
                        channel: p.channel,
                        arrival: p.arrival,
                        slot_start: p.slot_start,
                        completion: now,
                    };
                    waiting.record(record.waiting_time());
                    probe.record(record.probe_time());
                    download.record(record.download_time());
                    let load = &mut channel_loads[p.channel.index()];
                    load.requests += 1;
                    load.total_waiting += record.waiting_time();
                    records[request] = Some(record);
                }
            }
        }

        dbcast_obs::counter!("sim.engine.events").add(events_processed);
        dbcast_obs::counter!("sim.engine.requests").add(self.trace.len() as u64);
        if dbcast_obs::enabled() {
            // The report's own SummaryStats doubles as the telemetry
            // source — no second accumulation pass.
            dbcast_obs::gauge!("sim.engine.mean_waiting").set(waiting.mean());
            dbcast_obs::gauge!("sim.engine.mean_probe").set(probe.mean());
            dbcast_obs::gauge!("sim.engine.mean_download").set(download.mean());
        }

        Ok(SimReport {
            records: records
                .into_iter()
                .map(|r| r.expect("every request completes"))
                .collect(),
            waiting,
            probe,
            download,
            channel_loads,
            events_processed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_model::{Allocation, BroadcastProgram, Database, ItemSpec};
    use dbcast_workload::{TraceBuilder, WorkloadBuilder};

    fn tiny_program() -> (Database, BroadcastProgram) {
        let db = Database::try_from_specs(vec![
            ItemSpec::new(0.6, 2.0),
            ItemSpec::new(0.4, 3.0),
        ])
        .unwrap();
        let alloc = Allocation::from_assignment(&db, 1, vec![0, 0]).unwrap();
        let program = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        (db, program)
    }

    #[test]
    fn single_request_lifecycle_is_exact() {
        let (_, program) = tiny_program();
        // Cycle: item0 at [0, 0.2), item1 at [0.2, 0.5), repeating.
        // A request for item1 at t = 0.3 waits until 0.7, downloads 0.3s.
        let trace =
            dbcast_workload::RequestTrace::from_requests(vec![dbcast_workload::Request {
                time: 0.3,
                item: ItemId::new(1),
            }]);
        let report = Simulation::new(&program, &trace).run().unwrap();
        assert_eq!(report.completed(), 1);
        let r = &report.records()[0];
        assert!((r.slot_start - 0.7).abs() < 1e-12);
        assert!((r.completion - 1.0).abs() < 1e-12);
        assert!((r.waiting_time() - 0.7).abs() < 1e-12);
        assert!((r.probe_time() - 0.4).abs() < 1e-12);
        assert!((r.download_time() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn waiting_equals_probe_plus_download() {
        let db = WorkloadBuilder::new(20).seed(1).build().unwrap();
        let alloc = dbcast_model::Allocation::from_assignment(
            &db,
            2,
            (0..20).map(|i| i % 2).collect(),
        )
        .unwrap();
        let program = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        let trace = TraceBuilder::new(&db).requests(500).seed(3).build().unwrap();
        let report = Simulation::new(&program, &trace).run().unwrap();
        for r in report.records() {
            assert!((r.waiting_time() - r.probe_time() - r.download_time()).abs() < 1e-9);
            assert!(r.probe_time() >= -1e-12);
        }
    }

    #[test]
    fn every_request_completes_and_loads_add_up() {
        let db = WorkloadBuilder::new(30).seed(2).build().unwrap();
        let alloc = dbcast_model::Allocation::from_assignment(
            &db,
            3,
            (0..30).map(|i| i % 3).collect(),
        )
        .unwrap();
        let program = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        let trace = TraceBuilder::new(&db).requests(1000).seed(4).build().unwrap();
        let report = Simulation::new(&program, &trace).run().unwrap();
        assert_eq!(report.completed(), 1000);
        let served: u64 = report.channel_loads().iter().map(|l| l.requests).sum();
        assert_eq!(served, 1000);
        // 3 events per request.
        assert_eq!(report.events_processed(), 3000);
    }

    #[test]
    fn deterministic_runs() {
        let db = WorkloadBuilder::new(15).seed(5).build().unwrap();
        let alloc = dbcast_model::Allocation::from_assignment(
            &db,
            2,
            (0..15).map(|i| i % 2).collect(),
        )
        .unwrap();
        let program = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        let trace = TraceBuilder::new(&db).requests(200).seed(6).build().unwrap();
        let a = Simulation::new(&program, &trace).run().unwrap();
        let b = Simulation::new(&program, &trace).run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_is_fine() {
        let (_, program) = tiny_program();
        let trace = dbcast_workload::RequestTrace::default();
        let report = Simulation::new(&program, &trace).run().unwrap();
        assert_eq!(report.completed(), 0);
        assert_eq!(report.waiting().count(), 0);
    }
}
