//! Criterion micro-benchmarks of the extension subsystems:
//! heterogeneous-bandwidth allocation, greedy replication, air-index
//! construction, and dynamic catalogue maintenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbcast_alloc::{DrpCds, DynamicBroadcast};
use dbcast_hetero::{Bandwidths, HeteroDrpCds};
use dbcast_index::IndexedProgram;
use dbcast_model::{BroadcastProgram, ChannelAllocator};
use dbcast_replication::GreedyReplicator;
use dbcast_workload::{SizeDistribution, WorkloadBuilder};

fn workload(n: usize) -> dbcast_model::Database {
    WorkloadBuilder::new(n)
        .skewness(0.8)
        .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
        .seed(7)
        .build()
        .expect("valid workload")
}

fn bench_hetero_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("hetero_drp_h");
    for n in [60usize, 120, 180] {
        let db = workload(n);
        let bw = Bandwidths::try_new(vec![40.0, 20.0, 10.0, 5.0, 5.0]).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| HeteroDrpCds::new(bw.clone()).allocate(db).unwrap())
        });
    }
    group.finish();
}

fn bench_replication(c: &mut Criterion) {
    let db = workload(60);
    let base = DrpCds::new().allocate(&db, 5).unwrap();
    c.bench_function("greedy_replication_n60_k5", |b| {
        b.iter(|| GreedyReplicator::new().replicate(&db, base.clone(), 10.0).unwrap())
    });
}

fn bench_index_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_construction");
    for n in [60usize, 180] {
        let db = workload(n);
        let alloc = DrpCds::new().allocate(&db, 5).unwrap();
        let program = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, p| {
            b.iter(|| IndexedProgram::with_optimal_segments(p, 1.0, 0.1).unwrap())
        });
    }
    group.finish();
}

fn bench_dynamic_maintenance(c: &mut Criterion) {
    // Cost of one insert (greedy placement + budgeted repair) into a
    // 120-item live catalogue.
    let db = workload(120);
    let alloc = DrpCds::new().allocate(&db, 6).unwrap();
    c.bench_function("dynamic_insert_into_n120", |b| {
        b.iter_batched(
            || {
                DynamicBroadcast::from_allocation(&db, &alloc)
                    .unwrap()
                    .0
                    .with_repair_budget(8)
            },
            |mut live| live.insert(0.02, 7.5).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_hetero_pipeline,
    bench_replication,
    bench_index_construction,
    bench_dynamic_maintenance
);
criterion_main!(benches);
