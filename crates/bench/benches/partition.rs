//! Criterion micro-benchmarks of DRP's inner loop: the O(n) optimal
//! split scan and the cost bookkeeping primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbcast_alloc::best_split;
use dbcast_model::CostTracker;
use dbcast_workload::WorkloadBuilder;

fn prefix_sums(features: &[(f64, f64)]) -> (Vec<f64>, Vec<f64>) {
    let mut pf = vec![0.0];
    let mut pz = vec![0.0];
    for &(f, z) in features {
        pf.push(pf.last().unwrap() + f);
        pz.push(pz.last().unwrap() + z);
    }
    (pf, pz)
}

fn bench_best_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("best_split");
    for n in [60usize, 180, 1000, 10_000] {
        let db = WorkloadBuilder::new(n).seed(1).build().unwrap();
        let features: Vec<(f64, f64)> = db
            .ids_by_benefit_ratio_desc()
            .into_iter()
            .map(|id| {
                let d = &db.items()[id.index()];
                (d.frequency(), d.size())
            })
            .collect();
        let (pf, pz) = prefix_sums(&features);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| best_split(&pf, &pz, 0..n).unwrap())
        });
    }
    group.finish();
}

fn bench_move_reduction(c: &mut Criterion) {
    // The O(1) Eq. 4 evaluation that CDS performs K²N times per sweep.
    let mut tracker = CostTracker::new(8);
    let db = WorkloadBuilder::new(120).seed(2).build().unwrap();
    for (i, d) in db.iter().enumerate() {
        tracker.add(i % 8, d.frequency(), d.size());
    }
    c.bench_function("move_reduction", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for d in db.iter() {
                acc += tracker.move_reduction(0, 5, d.frequency(), d.size());
            }
            acc
        })
    });
}

criterion_group!(benches, bench_best_split, bench_move_reduction);
criterion_main!(benches);
