//! Criterion micro-benchmarks of the discrete-event simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbcast_alloc::DrpCds;
use dbcast_model::{BroadcastProgram, ChannelAllocator};
use dbcast_sim::Simulation;
use dbcast_workload::{TraceBuilder, WorkloadBuilder};

fn bench_simulation_throughput(c: &mut Criterion) {
    let db = WorkloadBuilder::new(120).seed(1).build().unwrap();
    let alloc = DrpCds::new().allocate(&db, 6).unwrap();
    let program = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();

    let mut group = c.benchmark_group("simulation");
    for requests in [1_000usize, 10_000, 100_000] {
        let trace = TraceBuilder::new(&db).requests(requests).seed(2).build().unwrap();
        group.throughput(Throughput::Elements(requests as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(requests),
            &trace,
            |b, trace| b.iter(|| Simulation::new(&program, trace).run().unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation_throughput);
criterion_main!(benches);
