//! Criterion micro-benchmarks of every allocator, at the paper's
//! default operating point (N = 120, K = 6, Φ = 2, θ = 0.8) and across
//! the K / N axes — the measurement substrate behind Figures 6–7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbcast_alloc::{Cds, Drp, DrpCds};
use dbcast_baselines::{Flat, Gopt, GoptConfig, Greedy, Vfk};
use dbcast_model::{ChannelAllocator, Database};
use dbcast_workload::{SizeDistribution, WorkloadBuilder};

fn workload(n: usize) -> Database {
    WorkloadBuilder::new(n)
        .skewness(0.8)
        .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
        .seed(42)
        .build()
        .expect("valid workload")
}

fn bench_default_point(c: &mut Criterion) {
    let db = workload(120);
    let mut group = c.benchmark_group("allocators_n120_k6");
    group.bench_function("FLAT", |b| b.iter(|| Flat::new().allocate(&db, 6).unwrap()));
    group.bench_function("VF^K", |b| b.iter(|| Vfk::new().allocate(&db, 6).unwrap()));
    group.bench_function("GREEDY", |b| b.iter(|| Greedy::new().allocate(&db, 6).unwrap()));
    group.bench_function("DRP", |b| b.iter(|| Drp::new().allocate(&db, 6).unwrap()));
    group.bench_function("DRP-CDS", |b| b.iter(|| DrpCds::new().allocate(&db, 6).unwrap()));
    group.sample_size(10);
    group.bench_function("GOPT", |b| {
        let gopt = Gopt::new(GoptConfig {
            population: 50,
            max_generations: 100,
            stagnation_limit: 30,
            ..GoptConfig::default()
        });
        b.iter(|| gopt.allocate(&db, 6).unwrap())
    });
    group.finish();
}

fn bench_drpcds_scaling_channels(c: &mut Criterion) {
    // Figure 6 shape: execution time vs K.
    let db = workload(120);
    let mut group = c.benchmark_group("drpcds_vs_channels");
    for k in [4usize, 6, 8, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| DrpCds::new().allocate(&db, k).unwrap())
        });
    }
    group.finish();
}

fn bench_drpcds_scaling_items(c: &mut Criterion) {
    // Figure 7 shape: execution time vs N.
    let mut group = c.benchmark_group("drpcds_vs_items");
    for n in [60usize, 120, 180] {
        let db = workload(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| DrpCds::new().allocate(db, 6).unwrap())
        });
    }
    group.finish();
}

fn bench_cds_refinement(c: &mut Criterion) {
    // CDS alone, starting from DRP's rough allocation.
    let db = workload(120);
    let rough = Drp::new().allocate(&db, 6).unwrap();
    c.bench_function("cds_refine_n120_k6", |b| {
        b.iter(|| Cds::new().refine(&db, rough.clone()).unwrap())
    });
}

criterion_group!(
    benches,
    bench_default_point,
    bench_drpcds_scaling_channels,
    bench_drpcds_scaling_items,
    bench_cds_refinement
);
criterion_main!(benches);
