//! The parallel sweep runner behind Figures 2–5.

use dbcast_model::average_waiting_time;
use dbcast_sim::SummaryStats;
use dbcast_workload::{SizeDistribution, WorkloadBuilder};
use serde::{Deserialize, Serialize};

use crate::algos::AlgoSpec;
use crate::config::{ExperimentConfig, SweepAxis};

/// Aggregated result of one algorithm at one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoPoint {
    /// Algorithm name.
    pub algo: String,
    /// Mean average waiting time `W_b` (seconds) over the seeds.
    pub mean_waiting: f64,
    /// Mean allocation cost (Eq. 3) over the seeds.
    pub mean_cost: f64,
}

/// All algorithms' results at one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The x-coordinate (K, N, Φ or θ).
    pub x: f64,
    /// Per-algorithm aggregates, in registry order.
    pub algos: Vec<AlgoPoint>,
}

/// A completed sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Axis label ("K", "N", "Phi", "theta").
    pub axis: String,
    /// One entry per sweep point, in axis order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The waiting-time series of one algorithm across the sweep.
    pub fn series(&self, algo: &str) -> Option<Vec<(f64, f64)>> {
        if !self.points.iter().all(|p| p.algos.iter().any(|a| a.algo == algo)) {
            return None;
        }
        Some(
            self.points
                .iter()
                .map(|p| {
                    let a = p.algos.iter().find(|a| a.algo == algo).expect("checked above");
                    (p.x, a.mean_waiting)
                })
                .collect(),
        )
    }
}

/// One work cell: evaluate every algorithm on one (point, seed)
/// workload.
fn run_cell(
    config: &ExperimentConfig,
    axis: &SweepAxis,
    algos: &[AlgoSpec],
    point: usize,
    seed: u64,
) -> Vec<(f64, f64)> {
    let (n, k, phi, theta) = config.at_point(axis, point);
    let db = WorkloadBuilder::new(n)
        .skewness(theta)
        .sizes(SizeDistribution::Diversity { phi_max: phi })
        .seed(seed)
        .build()
        .expect("paper parameter space is valid");
    algos
        .iter()
        .map(|spec| {
            let alloc =
                spec.allocate(&db, k, seed).expect("paper instances are feasible (K <= N)");
            let waiting = average_waiting_time(&db, &alloc, config.bandwidth)
                .expect("bandwidth validated by config")
                .total();
            (waiting, alloc.total_cost())
        })
        .collect()
}

/// Per-worker accumulator: `[point][algo] -> (waiting, cost)` stats.
type WorkerStats = Vec<Vec<(SummaryStats, SummaryStats)>>;

/// Runs a full sweep: every `(point, seed)` cell evaluates every
/// algorithm. Cells are partitioned statically (round-robin) across
/// worker threads; each worker accumulates its share into per-point
/// [`SummaryStats`] and the partials combine with
/// [`SummaryStats::merge`] (parallel Welford) in worker order, so the
/// output is deterministic for a given worker count.
///
/// # Panics
///
/// Panics if `axis` is empty, `algos` is empty, or the configuration
/// has no seeds.
pub fn run_sweep(
    config: &ExperimentConfig,
    axis: &SweepAxis,
    algos: &[AlgoSpec],
) -> SweepResult {
    assert!(!axis.is_empty(), "sweep axis must have points");
    assert!(!algos.is_empty(), "need at least one algorithm");
    assert!(!config.seeds.is_empty(), "need at least one seed");

    let points = axis.len();
    let seeds = &config.seeds;
    let cells: Vec<(usize, u64)> =
        (0..points).flat_map(|p| seeds.iter().map(move |&s| (p, s))).collect();
    dbcast_obs::counter!("bench.sweep.cells").add(cells.len() as u64);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cells.len().max(1));

    let empty_stats =
        || vec![vec![(SummaryStats::new(), SummaryStats::new()); algos.len()]; points];
    let mut per_worker: Vec<Option<WorkerStats>> = (0..workers).map(|_| None).collect();
    let (done_tx, done_rx) = crossbeam_channel::unbounded::<(usize, WorkerStats)>();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let done_tx = done_tx.clone();
            let cells = &cells;
            scope.spawn(move || {
                let _span = dbcast_obs::span!("bench.sweep.worker");
                let mut acc = empty_stats();
                // Static round-robin share: cells w, w+workers, ...
                for i in (w..cells.len()).step_by(workers) {
                    let (point, seed) = cells[i];
                    let cell = run_cell(config, axis, algos, point, seed);
                    for (a, &(waiting, cost)) in cell.iter().enumerate() {
                        acc[point][a].0.record(waiting);
                        acc[point][a].1.record(cost);
                    }
                }
                done_tx.send((w, acc)).expect("collector alive");
            });
        }
        drop(done_tx);
        while let Ok((w, acc)) = done_rx.recv() {
            per_worker[w] = Some(acc);
        }
    });

    // Merge worker partials in worker order — deterministic.
    let mut merged = empty_stats();
    for acc in per_worker.into_iter().map(|a| a.expect("every worker reported")) {
        for (p, row) in acc.into_iter().enumerate() {
            for (a, (waiting, cost)) in row.into_iter().enumerate() {
                merged[p][a].0.merge(&waiting);
                merged[p][a].1.merge(&cost);
            }
        }
    }

    let xs = axis.values();
    let out = xs
        .iter()
        .zip(&merged)
        .map(|(&x, row)| SweepPoint {
            x,
            algos: algos
                .iter()
                .zip(row)
                .map(|(spec, (waiting, cost))| AlgoPoint {
                    algo: spec.name().to_string(),
                    mean_waiting: waiting.mean(),
                    mean_cost: cost.mean(),
                })
                .collect(),
        })
        .collect();
    SweepResult { axis: axis.label().to_string(), points: out }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            items: 20,
            channels: 3,
            seeds: vec![0, 1],
            ..ExperimentConfig::default()
        }
    }

    fn fast_algos() -> Vec<AlgoSpec> {
        vec![AlgoSpec::Flat, AlgoSpec::Drp, AlgoSpec::DrpCds]
    }

    #[test]
    fn sweep_shape_matches_axis() {
        let cfg = tiny_config();
        let axis = SweepAxis::Channels(vec![2, 3, 4]);
        let result = run_sweep(&cfg, &axis, &fast_algos());
        assert_eq!(result.axis, "K");
        assert_eq!(result.points.len(), 3);
        for p in &result.points {
            assert_eq!(p.algos.len(), 3);
        }
        assert_eq!(result.points[0].x, 2.0);
    }

    #[test]
    fn sweep_is_deterministic_despite_parallelism() {
        let cfg = tiny_config();
        let axis = SweepAxis::Items(vec![10, 20]);
        let a = run_sweep(&cfg, &axis, &fast_algos());
        let b = run_sweep(&cfg, &axis, &fast_algos());
        assert_eq!(a, b);
    }

    #[test]
    fn drpcds_never_worse_than_drp_in_sweep() {
        let cfg = tiny_config();
        let axis = SweepAxis::Channels(vec![3, 4]);
        let result = run_sweep(&cfg, &axis, &fast_algos());
        for p in &result.points {
            let drp = p.algos.iter().find(|a| a.algo == "DRP").unwrap();
            let combined = p.algos.iter().find(|a| a.algo == "DRP-CDS").unwrap();
            assert!(combined.mean_cost <= drp.mean_cost + 1e-9);
        }
    }

    #[test]
    fn series_extraction() {
        let cfg = tiny_config();
        let axis = SweepAxis::Channels(vec![2, 4]);
        let result = run_sweep(&cfg, &axis, &fast_algos());
        let series = result.series("DRP").unwrap();
        assert_eq!(series.len(), 2);
        assert!(result.series("NOPE").is_none());
    }

    #[test]
    fn merged_means_match_serial_reference() {
        let cfg = tiny_config();
        let axis = SweepAxis::Channels(vec![3]);
        let algos = fast_algos();
        let result = run_sweep(&cfg, &axis, &algos);
        // Serial reference: plain sum over seeds.
        let mut sums = vec![(0.0f64, 0.0f64); algos.len()];
        for &seed in &cfg.seeds {
            for (a, (w, c)) in
                run_cell(&cfg, &axis, &algos, 0, seed).into_iter().enumerate()
            {
                sums[a].0 += w;
                sums[a].1 += c;
            }
        }
        let denom = cfg.seeds.len() as f64;
        for (a, point) in result.points[0].algos.iter().enumerate() {
            assert!((point.mean_waiting - sums[a].0 / denom).abs() < 1e-9);
            assert!((point.mean_cost - sums[a].1 / denom).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "sweep axis must have points")]
    fn empty_axis_panics() {
        run_sweep(&tiny_config(), &SweepAxis::Channels(vec![]), &fast_algos());
    }
}
