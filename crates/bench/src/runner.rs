//! High-level entry points: one function per paper table/figure.

use std::io;
use std::path::Path;

use dbcast_alloc::DrpCds;
use dbcast_model::ChannelAllocator;
use dbcast_sim::validate_against_model;
use dbcast_workload::{paper, SizeDistribution, TraceBuilder, WorkloadBuilder};

use crate::algos::AlgoSpec;
use crate::config::{ExperimentConfig, SweepAxis};
use crate::report::{write_reports, ReportTable};
use crate::sweep::run_sweep;
use crate::timing::run_timing_sweep;

/// Writes the telemetry snapshot accumulated so far next to a figure's
/// report files (`<stem>.metrics.json`). A no-op when the `obs`
/// feature is off or recording is disabled at runtime.
fn write_metrics_snapshot(dir: &Path, stem: &str) -> io::Result<()> {
    if dbcast_obs::enabled() {
        dbcast_obs::snapshot::write_global(&dir.join(format!("{stem}.metrics.json")))?;
    }
    Ok(())
}

fn waiting_figure(
    config: &ExperimentConfig,
    axis: SweepAxis,
    dir: &Path,
    stem: &str,
    title: &str,
) -> io::Result<String> {
    let result = run_sweep(config, &axis, &AlgoSpec::paper_lineup());
    let table = ReportTable::from_sweep(title, &result);
    let md = write_reports(dir, stem, &table)?;
    write_metrics_snapshot(dir, stem)?;
    Ok(md)
}

/// Figure 2: number of channels `K` vs average waiting time.
///
/// # Errors
///
/// Propagates filesystem errors while writing reports.
pub fn run_fig2(config: &ExperimentConfig, dir: &Path) -> io::Result<String> {
    waiting_figure(
        config,
        SweepAxis::paper_channels(),
        dir,
        "fig2_channels",
        "Figure 2: channel number K vs average waiting time W_b (s)",
    )
}

/// Figure 3: number of broadcast items `N` vs average waiting time.
///
/// # Errors
///
/// Propagates filesystem errors while writing reports.
pub fn run_fig3(config: &ExperimentConfig, dir: &Path) -> io::Result<String> {
    waiting_figure(
        config,
        SweepAxis::paper_items(),
        dir,
        "fig3_items",
        "Figure 3: broadcast items N vs average waiting time W_b (s)",
    )
}

/// Figure 4: diversity parameter `Φ` vs average waiting time.
///
/// # Errors
///
/// Propagates filesystem errors while writing reports.
pub fn run_fig4(config: &ExperimentConfig, dir: &Path) -> io::Result<String> {
    waiting_figure(
        config,
        SweepAxis::paper_diversity(),
        dir,
        "fig4_diversity",
        "Figure 4: diversity Phi vs average waiting time W_b (s)",
    )
}

/// Figure 5: skewness parameter `θ` vs average waiting time.
///
/// # Errors
///
/// Propagates filesystem errors while writing reports.
pub fn run_fig5(config: &ExperimentConfig, dir: &Path) -> io::Result<String> {
    waiting_figure(
        config,
        SweepAxis::paper_skewness(),
        dir,
        "fig5_skewness",
        "Figure 5: skewness theta vs average waiting time W_b (s)",
    )
}

/// Figure 6: number of channels `K` vs execution time.
///
/// # Errors
///
/// Propagates filesystem errors while writing reports.
pub fn run_fig6(config: &ExperimentConfig, dir: &Path) -> io::Result<String> {
    let result =
        run_timing_sweep(config, &SweepAxis::paper_channels(), &AlgoSpec::timing_lineup());
    let table =
        ReportTable::from_timing("Figure 6: channel number K vs execution time", &result);
    let md = write_reports(dir, "fig6_exec_channels", &table)?;
    write_metrics_snapshot(dir, "fig6_exec_channels")?;
    Ok(md)
}

/// Figure 7: number of broadcast items `N` vs execution time.
///
/// # Errors
///
/// Propagates filesystem errors while writing reports.
pub fn run_fig7(config: &ExperimentConfig, dir: &Path) -> io::Result<String> {
    let result =
        run_timing_sweep(config, &SweepAxis::paper_items(), &AlgoSpec::timing_lineup());
    let table =
        ReportTable::from_timing("Figure 7: broadcast items N vs execution time", &result);
    let md = write_reports(dir, "fig7_exec_items", &table)?;
    write_metrics_snapshot(dir, "fig7_exec_items")?;
    Ok(md)
}

/// Tables 2–4: replays the paper's worked example (the Table 2 profile,
/// the DRP splitting trace of Table 3 and the CDS move trace of
/// Table 4) and renders it as Markdown.
///
/// # Errors
///
/// Propagates filesystem errors while writing the report.
pub fn run_tables(dir: &Path) -> io::Result<String> {
    let db = paper::table2_profile();
    let outcome = DrpCds::new().allocate_traced(&db, 5).expect("paper example is feasible");

    let mut md = String::from("## Tables 2-4: the paper's worked example\n\n");
    md.push_str("### Table 2 profile (15 items, 5 channels)\n\n");
    md.push_str("| item | freq | size |\n|---|---|---|\n");
    for d in db.iter() {
        md.push_str(&format!(
            "| d{} | {:.4} | {:.2} |\n",
            d.id().index() + 1,
            d.frequency(),
            d.size()
        ));
    }

    md.push_str("\n### Table 3: DRP iterations\n\n");
    for (i, it) in outcome.drp.iterations.iter().enumerate() {
        md.push_str(&format!("Iteration {i} (total cost {:.2}):\n\n", it.total_cost()));
        md.push_str("| group | members | cost |\n|---|---|---|\n");
        for (g, snap) in it.groups.iter().enumerate() {
            let members: Vec<String> =
                snap.members.iter().map(|m| format!("d{}", m.index() + 1)).collect();
            md.push_str(&format!(
                "| {} | {{{}}} | {:.2} |\n",
                g + 1,
                members.join(" "),
                snap.cost
            ));
        }
        md.push('\n');
    }

    md.push_str("### Table 4: CDS iterations\n\n");
    md.push_str(&format!("Initial cost: {:.2}\n\n", outcome.cds.initial_cost));
    md.push_str("| step | move | reduction | cost after |\n|---|---|---|---|\n");
    for (i, s) in outcome.cds.steps.iter().enumerate() {
        md.push_str(&format!(
            "| {} | d{}: c{} -> c{} | {:.2} | {:.2} |\n",
            i + 1,
            s.mv.item.index() + 1,
            s.mv.from.index() + 1,
            s.mv.to.index() + 1,
            s.reduction,
            s.cost_after
        ));
    }
    md.push_str(&format!(
        "\nLocal optimum cost: {:.2} (paper: 22.29)\n",
        outcome.cds.final_cost()
    ));

    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("tables_2_3_4.md"), &md)?;
    write_metrics_snapshot(dir, "tables_2_3_4")?;
    Ok(md)
}

/// Extra experiment: analytical Eq. 2 vs the discrete-event simulator
/// over several seeded workloads.
///
/// # Errors
///
/// Propagates filesystem errors while writing the report.
pub fn run_sim_validation(config: &ExperimentConfig, dir: &Path) -> io::Result<String> {
    let mut table = ReportTable {
        title: "Simulation validation: analytical W_b vs discrete-event mean".to_string(),
        header: vec![
            "seed".into(),
            "analytical (s)".into(),
            "empirical (s)".into(),
            "rel. error".into(),
            "CI95 (s)".into(),
        ],
        rows: Vec::new(),
    };
    for &seed in config.seeds.iter().take(5) {
        let db = WorkloadBuilder::new(config.items)
            .skewness(config.skewness)
            .sizes(SizeDistribution::Diversity { phi_max: config.diversity })
            .seed(seed)
            .build()
            .expect("valid parameters");
        let alloc =
            DrpCds::new().allocate(&db, config.channels).expect("feasible instance");
        let trace = TraceBuilder::new(&db)
            .requests(30_000)
            .seed(seed.wrapping_add(1000))
            .build()
            .expect("valid trace parameters");
        let report = validate_against_model(&db, &alloc, &trace, config.bandwidth)
            .expect("validation inputs are consistent");
        table.rows.push(vec![
            seed.to_string(),
            format!("{:.4}", report.analytical),
            format!("{:.4}", report.empirical),
            format!("{:.4}", report.relative_error()),
            format!("{:.4}", report.ci95),
        ]);
    }
    let md = write_reports(dir, "sim_validation", &table)?;
    write_metrics_snapshot(dir, "sim_validation")?;
    Ok(md)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dbcast-runner-{name}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn tables_report_reproduces_paper_numbers() {
        let dir = tmpdir("tables");
        let md = run_tables(&dir).unwrap();
        assert!(md.contains("135.60"));
        assert!(md.contains("29.04"));
        // The paper prints 24.09 by summing rounded group costs; the
        // exact value is 24.0847 and renders as 24.08.
        assert!(md.contains("24.08"));
        assert!(md.contains("22.29"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sim_validation_report_has_small_errors() {
        let cfg = ExperimentConfig {
            items: 30,
            channels: 3,
            seeds: vec![0, 1],
            ..ExperimentConfig::default()
        };
        let dir = tmpdir("simval");
        let md = run_sim_validation(&cfg, &dir).unwrap();
        assert!(md.contains("seed"));
        // Every data row's relative error column should be < 0.1.
        for line in md.lines().filter(|l| l.starts_with("|") && !l.contains("seed")) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            if cells.len() >= 5 {
                if let Ok(err) = cells[4].parse::<f64>() {
                    assert!(err < 0.1, "relative error {err} too large: {line}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
