//! The algorithm registry used by the experiment harness.

use dbcast_alloc::{Drp, DrpCds};
use dbcast_baselines::{ContiguousDp, Flat, Gopt, GoptConfig, Greedy, Vfk};
use dbcast_model::{AllocError, Allocation, ChannelAllocator, Database};
use serde::{Deserialize, Serialize};

/// A serializable specification of one allocation algorithm.
///
/// The harness works with specs rather than trait objects so that
/// experiment configurations can be logged, persisted and re-run
/// bit-for-bit, and so cells can be dispatched across worker threads
/// without `dyn` plumbing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AlgoSpec {
    /// Round-robin flat program.
    Flat,
    /// Conventional-environment baseline VF^K.
    Vfk,
    /// DRP without refinement.
    Drp,
    /// The paper's DRP-CDS scheme.
    DrpCds,
    /// Benefit-ratio greedy insertion.
    Greedy,
    /// Optimal benefit-ratio-contiguous partition (DP).
    ContiguousDp,
    /// Genetic global-optimum proxy.
    Gopt(GoptConfig),
}

impl AlgoSpec {
    /// The paper's Figure 2–5 line-up: FLAT, VF^K, DRP, DRP-CDS, GOPT.
    pub fn paper_lineup() -> Vec<AlgoSpec> {
        vec![
            AlgoSpec::Flat,
            AlgoSpec::Vfk,
            AlgoSpec::Drp,
            AlgoSpec::DrpCds,
            AlgoSpec::Gopt(GoptConfig::default()),
        ]
    }

    /// The complexity line-up of Figures 6–7: DRP-CDS vs GOPT.
    pub fn timing_lineup() -> Vec<AlgoSpec> {
        vec![AlgoSpec::DrpCds, AlgoSpec::Gopt(GoptConfig::default())]
    }

    /// The report column name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgoSpec::Flat => "FLAT",
            AlgoSpec::Vfk => "VF^K",
            AlgoSpec::Drp => "DRP",
            AlgoSpec::DrpCds => "DRP-CDS",
            AlgoSpec::Greedy => "GREEDY",
            AlgoSpec::ContiguousDp => "DP",
            AlgoSpec::Gopt(_) => "GOPT",
        }
    }

    /// Runs the algorithm on `db` with `channels` channels.
    ///
    /// `seed` re-seeds randomized algorithms (GOPT) so that every
    /// workload cell explores an independent GA trajectory, as the
    /// paper's per-point averaging implies.
    ///
    /// # Errors
    ///
    /// Forwards the algorithm's own errors.
    pub fn allocate(
        &self,
        db: &Database,
        channels: usize,
        seed: u64,
    ) -> Result<Allocation, AllocError> {
        match self {
            AlgoSpec::Flat => Flat::new().allocate(db, channels),
            AlgoSpec::Vfk => Vfk::new().allocate(db, channels),
            AlgoSpec::Drp => Drp::new().allocate(db, channels),
            AlgoSpec::DrpCds => DrpCds::new().allocate(db, channels),
            AlgoSpec::Greedy => Greedy::new().allocate(db, channels),
            AlgoSpec::ContiguousDp => ContiguousDp::new().allocate(db, channels),
            AlgoSpec::Gopt(cfg) => {
                Gopt::new(GoptConfig { seed, ..*cfg }).allocate(db, channels)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_workload::WorkloadBuilder;

    #[test]
    fn lineups_have_expected_names() {
        let names: Vec<&str> = AlgoSpec::paper_lineup().iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["FLAT", "VF^K", "DRP", "DRP-CDS", "GOPT"]);
        assert_eq!(
            AlgoSpec::timing_lineup().iter().map(|a| a.name()).collect::<Vec<_>>(),
            vec!["DRP-CDS", "GOPT"]
        );
    }

    #[test]
    fn every_spec_allocates() {
        let db = WorkloadBuilder::new(12).seed(1).build().unwrap();
        for spec in [
            AlgoSpec::Flat,
            AlgoSpec::Vfk,
            AlgoSpec::Drp,
            AlgoSpec::DrpCds,
            AlgoSpec::Greedy,
            AlgoSpec::ContiguousDp,
            AlgoSpec::Gopt(GoptConfig {
                population: 20,
                max_generations: 30,
                ..GoptConfig::default()
            }),
        ] {
            let alloc = spec.allocate(&db, 3, 7).unwrap();
            assert_eq!(alloc.channels(), 3);
            alloc.validate(&db).unwrap();
        }
    }

    #[test]
    fn gopt_seed_is_threaded_through() {
        let db = WorkloadBuilder::new(15).seed(2).build().unwrap();
        let cfg = GoptConfig {
            population: 20,
            max_generations: 20,
            polish: false,
            ..GoptConfig::default()
        };
        let spec = AlgoSpec::Gopt(cfg);
        let a = spec.allocate(&db, 3, 1).unwrap();
        let b = spec.allocate(&db, 3, 1).unwrap();
        assert_eq!(a, b); // same seed, same result
    }
}
