//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **DRP split priority** — the paper's pseudocode (max-cost) vs the
//!    rule its worked example implies (max-gain).
//! 2. **CDS improvement threshold** — sensitivity of final cost and
//!    move count to the strict-improvement cutoff.
//! 3. **GOPT budget** — quality/time tradeoff across population and
//!    generation budgets.
//! 4. **Heterogeneous bandwidths** — bandwidth-aware DRP-H vs the
//!    bandwidth-oblivious paper pipeline, as channel speeds diverge.
//! 5. **Replication** — simulated waiting time of greedy replication on
//!    flat vs DRP-CDS bases.

use std::time::Instant;

use dbcast_alloc::{Cds, Drp, DrpCds, SplitPriority};
use dbcast_baselines::{Gopt, GoptConfig};
use dbcast_hetero::{hetero_waiting_time, Bandwidths, HeteroDrpCds};
use dbcast_model::{Allocation, BroadcastProgram, ChannelAllocator, Database};
use dbcast_replication::GreedyReplicator;
use dbcast_sim::Simulation;
use dbcast_workload::{SizeDistribution, TraceBuilder, WorkloadBuilder};

use crate::report::ReportTable;

fn workloads(seeds: &[u64], n: usize) -> Vec<Database> {
    seeds
        .iter()
        .map(|&s| {
            WorkloadBuilder::new(n)
                .skewness(0.8)
                .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
                .seed(s)
                .build()
                .expect("valid parameters")
        })
        .collect()
}

/// Ablation 1: DRP split priority (max-gain default vs pseudocode
/// max-cost), with and without CDS.
pub fn ablate_split_priority(seeds: &[u64]) -> ReportTable {
    let dbs = workloads(seeds, 120);
    let mut rows = Vec::new();
    for k in [4usize, 5, 6, 7, 8, 9, 10] {
        let mut gain = 0.0;
        let mut cost_rule = 0.0;
        let mut gain_cds = 0.0;
        let mut cost_cds = 0.0;
        for db in &dbs {
            let g = Drp::new().allocate(db, k).unwrap();
            let c = Drp::new().with_priority(SplitPriority::Cost).allocate(db, k).unwrap();
            gain += g.total_cost();
            cost_rule += c.total_cost();
            gain_cds += Cds::new().refine(db, g).unwrap().final_cost();
            cost_cds += Cds::new().refine(db, c).unwrap().final_cost();
        }
        let d = dbs.len() as f64;
        rows.push(vec![
            k.to_string(),
            format!("{:.3}", gain / d),
            format!("{:.3}", cost_rule / d),
            format!("{:.3}", gain_cds / d),
            format!("{:.3}", cost_cds / d),
        ]);
    }
    ReportTable {
        title: "Ablation: DRP split priority (mean cost, N = 120)".to_string(),
        header: vec![
            "K".into(),
            "gain rule".into(),
            "max-cost rule".into(),
            "gain + CDS".into(),
            "max-cost + CDS".into(),
        ],
        rows,
    }
}

/// Ablation 2: CDS strict-improvement threshold.
pub fn ablate_cds_threshold(seeds: &[u64]) -> ReportTable {
    let dbs = workloads(seeds, 120);
    let mut rows = Vec::new();
    for threshold in [0.0, 1e-9, 1e-4, 1e-2, 1e-1, 1.0] {
        let mut cost = 0.0;
        let mut moves = 0usize;
        for db in &dbs {
            let rough = Drp::new().allocate(db, 6).unwrap();
            let out = Cds::new().min_reduction(threshold).refine(db, rough).unwrap();
            cost += out.final_cost();
            moves += out.steps.len();
        }
        rows.push(vec![
            format!("{threshold:.0e}"),
            format!("{:.3}", cost / dbs.len() as f64),
            format!("{:.1}", moves as f64 / dbs.len() as f64),
        ]);
    }
    ReportTable {
        title: "Ablation: CDS improvement threshold (N = 120, K = 6)".to_string(),
        header: vec!["threshold".into(), "mean cost".into(), "mean moves".into()],
        rows,
    }
}

/// Ablation 3: GOPT budget (population × generations) vs quality and
/// wall-clock, relative to DRP-CDS.
pub fn ablate_gopt_budget(seeds: &[u64]) -> ReportTable {
    let dbs = workloads(seeds, 120);
    let drpcds_cost: f64 = dbs
        .iter()
        .map(|db| DrpCds::new().allocate(db, 6).unwrap().total_cost())
        .sum::<f64>()
        / dbs.len() as f64;
    let mut rows = vec![vec![
        "DRP-CDS".into(),
        format!("{drpcds_cost:.3}"),
        "1.000".into(),
        "-".into(),
    ]];
    for (pop, gens) in [(20usize, 50usize), (50, 150), (100, 300), (100, 600)] {
        let mut cost = 0.0;
        let mut millis = 0.0;
        for (i, db) in dbs.iter().enumerate() {
            let gopt = Gopt::new(GoptConfig {
                population: pop,
                max_generations: gens,
                stagnation_limit: gens,
                seed: i as u64,
                ..GoptConfig::default()
            });
            let start = Instant::now();
            cost += gopt.allocate(db, 6).unwrap().total_cost();
            millis += start.elapsed().as_secs_f64() * 1e3;
        }
        let d = dbs.len() as f64;
        rows.push(vec![
            format!("GOPT {pop}x{gens}"),
            format!("{:.3}", cost / d),
            format!("{:.3}", (cost / d) / drpcds_cost),
            format!("{:.1}", millis / d),
        ]);
    }
    ReportTable {
        title: "Ablation: GOPT budget vs quality (N = 120, K = 6)".to_string(),
        header: vec![
            "config".into(),
            "mean cost".into(),
            "vs DRP-CDS".into(),
            "mean ms".into(),
        ],
        rows,
    }
}

/// Ablation 4: bandwidth-aware DRP-H vs the bandwidth-oblivious paper
/// pipeline as channel speeds diverge (`spread` = fastest/slowest).
pub fn ablate_hetero(seeds: &[u64]) -> ReportTable {
    let dbs = workloads(seeds, 100);
    let k = 5;
    let mut rows = Vec::new();
    for spread in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
        // Geometric bandwidth ladder with the given spread, mean 10.
        let ratio = spread.powf(1.0 / (k as f64 - 1.0));
        let mut raw: Vec<f64> = (0..k).map(|i| ratio.powi(i as i32)).collect();
        let mean: f64 = raw.iter().sum::<f64>() / k as f64;
        for b in &mut raw {
            *b *= 10.0 / mean;
        }
        let bw = Bandwidths::try_new(raw).unwrap();
        let mut oblivious = 0.0;
        let mut aware = 0.0;
        for db in &dbs {
            let plain = DrpCds::new().allocate(db, k).unwrap();
            oblivious += hetero_waiting_time(db, &plain, &bw).unwrap();
            let h = HeteroDrpCds::new(bw.clone()).allocate(db).unwrap();
            aware += hetero_waiting_time(db, &h, &bw).unwrap();
        }
        let d = dbs.len() as f64;
        rows.push(vec![
            format!("{spread:.0}x"),
            format!("{:.3}", oblivious / d),
            format!("{:.3}", aware / d),
            format!("{:.1}%", 100.0 * (oblivious - aware) / oblivious),
        ]);
    }
    ReportTable {
        title: "Ablation: heterogeneous bandwidths (N = 100, K = 5, mean b = 10)"
            .to_string(),
        header: vec![
            "bandwidth spread".into(),
            "oblivious W_b (s)".into(),
            "DRP-H W_b (s)".into(),
            "improvement".into(),
        ],
        rows,
    }
}

/// Ablation 5: greedy replication measured by the discrete-event
/// simulator, on flat and DRP-CDS bases.
pub fn ablate_replication(seeds: &[u64]) -> ReportTable {
    let mut rows = Vec::new();
    for &seed in seeds.iter().take(3) {
        let db = WorkloadBuilder::new(60)
            .skewness(1.2)
            .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
            .seed(seed)
            .build()
            .unwrap();
        let trace =
            TraceBuilder::new(&db).requests(20_000).seed(seed + 500).build().unwrap();
        for (label, base) in [
            (
                "flat",
                Allocation::from_assignment(&db, 5, (0..60).map(|i| i % 5).collect())
                    .unwrap(),
            ),
            ("drp-cds", DrpCds::new().allocate(&db, 5).unwrap()),
        ] {
            let out = GreedyReplicator::new().replicate(&db, base.clone(), 10.0).unwrap();
            let w_base = {
                let p = BroadcastProgram::new(&db, &base, 10.0).unwrap();
                Simulation::new(&p, &trace).run().unwrap().waiting().mean()
            };
            let w_repl = {
                let p = out.allocation.to_program(&db, 10.0).unwrap();
                Simulation::new(&p, &trace).run().unwrap().waiting().mean()
            };
            rows.push(vec![
                format!("seed {seed} / {label}"),
                out.accepted.len().to_string(),
                format!("{w_base:.3}"),
                format!("{w_repl:.3}"),
                format!("{:.1}%", 100.0 * (w_base - w_repl) / w_base),
            ]);
        }
    }
    ReportTable {
        title: "Ablation: greedy replication, simulated (N = 60, K = 5)".to_string(),
        header: vec![
            "base".into(),
            "replicas".into(),
            "base W (s)".into(),
            "replicated W (s)".into(),
            "gain".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_priority_table_shape() {
        let t = ablate_split_priority(&[0, 1]);
        assert_eq!(t.rows.len(), 7);
        assert_eq!(t.header.len(), 5);
    }

    #[test]
    fn cds_threshold_moves_decrease_with_threshold() {
        let t = ablate_cds_threshold(&[0, 1]);
        let moves: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(moves.first().unwrap() >= moves.last().unwrap());
    }

    #[test]
    fn hetero_gain_grows_with_spread() {
        let t = ablate_hetero(&[0, 1, 2]);
        // Improvement at the largest spread should exceed the uniform case.
        let first: f64 = t.rows[0][3].trim_end_matches('%').parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[3].trim_end_matches('%').parse().unwrap();
        assert!(last > first, "{first}% -> {last}%");
    }

    #[test]
    fn replication_table_has_flat_and_optimized_rows() {
        let t = ablate_replication(&[0]);
        assert_eq!(t.rows.len(), 2);
    }
}
