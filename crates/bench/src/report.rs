//! Rendering sweep results as aligned Markdown tables and CSV files.

use std::fs;
use std::io;
use std::path::Path;

use crate::sweep::SweepResult;
use crate::timing::TimingResult;

/// A rendered table: a header row plus data rows of equal width.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportTable {
    /// Table title (e.g. `"Figure 2: K vs average waiting time"`).
    pub title: String,
    /// Column headers; column 0 is the x-axis.
    pub header: Vec<String>,
    /// Data rows, formatted.
    pub rows: Vec<Vec<String>>,
}

impl ReportTable {
    /// Builds a table from a waiting-time sweep.
    pub fn from_sweep(title: &str, result: &SweepResult) -> Self {
        let mut header = vec![result.axis.clone()];
        if let Some(first) = result.points.first() {
            header.extend(first.algos.iter().map(|a| a.algo.clone()));
        }
        let rows = result
            .points
            .iter()
            .map(|p| {
                let mut row = vec![format_x(p.x)];
                row.extend(p.algos.iter().map(|a| format!("{:.4}", a.mean_waiting)));
                row
            })
            .collect();
        ReportTable { title: title.to_string(), header, rows }
    }

    /// Builds a table from a timing sweep: per algorithm one mean,
    /// median and p95 column (milliseconds).
    pub fn from_timing(title: &str, result: &TimingResult) -> Self {
        let mut header = vec![result.axis.clone()];
        if let Some(first) = result.points.first() {
            for t in &first.algos {
                header.push(format!("{} mean (ms)", t.algo));
                header.push(format!("{} p50 (ms)", t.algo));
                header.push(format!("{} p95 (ms)", t.algo));
            }
        }
        let rows = result
            .points
            .iter()
            .map(|p| {
                let mut row = vec![format_x(p.x)];
                for t in &p.algos {
                    row.push(format!("{:.3}", t.mean_ms));
                    row.push(format!("{:.3}", t.median_ms));
                    row.push(format!("{:.3}", t.p95_ms));
                }
                row
            })
            .collect();
        ReportTable { title: title.to_string(), header, rows }
    }
}

fn format_x(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

/// Renders a table as GitHub-flavored Markdown with aligned columns.
pub fn render_markdown(table: &ReportTable) -> String {
    let cols = table.header.len();
    let mut widths: Vec<usize> = table.header.iter().map(String::len).collect();
    for row in &table.rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = format!("## {}\n\n", table.title);
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let padded: Vec<String> =
            cells.iter().zip(widths).map(|(c, &w)| format!("{c:>w$}")).collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(&table.header, &widths));
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    out.push_str(&format!("| {} |\n", sep.join(" | ")));
    for row in &table.rows {
        out.push_str(&fmt_row(row, &widths));
    }
    let _ = cols;
    out
}

/// Renders a table as CSV.
pub fn render_csv(table: &ReportTable) -> String {
    let mut out = String::new();
    out.push_str(&table.header.join(","));
    out.push('\n');
    for row in &table.rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Writes `<stem>.md` and `<stem>.csv` under `dir`, creating it if
/// needed, and returns the Markdown rendering.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_reports(dir: &Path, stem: &str, table: &ReportTable) -> io::Result<String> {
    fs::create_dir_all(dir)?;
    let md = render_markdown(table);
    fs::write(dir.join(format!("{stem}.md")), &md)?;
    fs::write(dir.join(format!("{stem}.csv")), render_csv(table))?;
    Ok(md)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{AlgoPoint, SweepPoint};

    fn sample_sweep() -> SweepResult {
        SweepResult {
            axis: "K".to_string(),
            points: vec![
                SweepPoint {
                    x: 4.0,
                    algos: vec![
                        AlgoPoint {
                            algo: "FLAT".into(),
                            mean_waiting: 2.5,
                            mean_cost: 40.0,
                        },
                        AlgoPoint {
                            algo: "DRP".into(),
                            mean_waiting: 1.25,
                            mean_cost: 20.0,
                        },
                    ],
                },
                SweepPoint {
                    x: 5.0,
                    algos: vec![
                        AlgoPoint {
                            algo: "FLAT".into(),
                            mean_waiting: 2.0,
                            mean_cost: 32.0,
                        },
                        AlgoPoint {
                            algo: "DRP".into(),
                            mean_waiting: 1.0,
                            mean_cost: 16.0,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn markdown_contains_all_cells() {
        let table = ReportTable::from_sweep("Figure 2", &sample_sweep());
        let md = render_markdown(&table);
        assert!(md.contains("## Figure 2"));
        assert!(md.contains("FLAT"));
        assert!(md.contains("2.5000"));
        assert!(md.contains("| 5"));
        // Header + separator + 2 data rows.
        assert_eq!(md.lines().filter(|l| l.starts_with('|')).count(), 4);
    }

    #[test]
    fn csv_roundtrips_structure() {
        let table = ReportTable::from_sweep("t", &sample_sweep());
        let csv = render_csv(&table);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "K,FLAT,DRP");
        assert!(lines[1].starts_with("4,"));
    }

    #[test]
    fn timing_table_has_mean_median_p95_columns() {
        use crate::timing::{AlgoTiming, TimingPoint, TimingResult};
        let result = TimingResult {
            axis: "K".into(),
            points: vec![TimingPoint {
                x: 4.0,
                algos: vec![AlgoTiming {
                    algo: "DRP".into(),
                    mean_ms: 1.5,
                    median_ms: 1.25,
                    p95_ms: 2.75,
                }],
            }],
        };
        let table = ReportTable::from_timing("Figure 6", &result);
        assert_eq!(
            table.header,
            vec!["K", "DRP mean (ms)", "DRP p50 (ms)", "DRP p95 (ms)"]
        );
        assert_eq!(table.rows[0], vec!["4", "1.500", "1.250", "2.750"]);
    }

    #[test]
    fn fractional_x_values_format_with_decimals() {
        let mut sweep = sample_sweep();
        sweep.axis = "Phi".into();
        sweep.points[0].x = 0.5;
        let table = ReportTable::from_sweep("t", &sweep);
        assert_eq!(table.rows[0][0], "0.50");
        assert_eq!(table.rows[1][0], "5");
    }

    #[test]
    fn files_are_written() {
        let dir = std::env::temp_dir().join("dbcast-report-test");
        let table = ReportTable::from_sweep("Figure X", &sample_sweep());
        let md = write_reports(&dir, "figx", &table).unwrap();
        assert!(dir.join("figx.md").exists());
        assert!(dir.join("figx.csv").exists());
        assert_eq!(std::fs::read_to_string(dir.join("figx.md")).unwrap(), md);
        std::fs::remove_dir_all(&dir).ok();
    }
}
