//! Experiment configuration: the paper's Table 5 parameter space.

use serde::{Deserialize, Serialize};

/// Which parameter a sweep varies; the others stay at
/// [`ExperimentConfig`] defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Vary the number of channels `K` (Figure 2 / Figure 6).
    Channels(Vec<usize>),
    /// Vary the number of items `N` (Figure 3 / Figure 7).
    Items(Vec<usize>),
    /// Vary the diversity parameter `Φ` (Figure 4).
    Diversity(Vec<f64>),
    /// Vary the skewness parameter `θ` (Figure 5).
    Skewness(Vec<f64>),
}

impl SweepAxis {
    /// The axis label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SweepAxis::Channels(_) => "K",
            SweepAxis::Items(_) => "N",
            SweepAxis::Diversity(_) => "Phi",
            SweepAxis::Skewness(_) => "theta",
        }
    }

    /// The numeric x-coordinates of the sweep.
    pub fn values(&self) -> Vec<f64> {
        match self {
            SweepAxis::Channels(v) => v.iter().map(|&x| x as f64).collect(),
            SweepAxis::Items(v) => v.iter().map(|&x| x as f64).collect(),
            SweepAxis::Diversity(v) | SweepAxis::Skewness(v) => v.clone(),
        }
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::Channels(v) => v.len(),
            SweepAxis::Items(v) => v.len(),
            SweepAxis::Diversity(v) | SweepAxis::Skewness(v) => v.len(),
        }
    }

    /// Whether the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The paper's Figure 2 axis: `K = 4..=10`.
    pub fn paper_channels() -> Self {
        SweepAxis::Channels((4..=10).collect())
    }

    /// The paper's Figure 3 axis: `N = 60..=180` step 20.
    pub fn paper_items() -> Self {
        SweepAxis::Items((60..=180).step_by(20).collect())
    }

    /// The paper's Figure 4 axis: `Φ = 0..=3` step 0.5.
    pub fn paper_diversity() -> Self {
        SweepAxis::Diversity((0..=6).map(|i| i as f64 * 0.5).collect())
    }

    /// The paper's Figure 5 axis: `θ = 0.4..=1.6` step 0.2.
    pub fn paper_skewness() -> Self {
        SweepAxis::Skewness((0..=6).map(|i| 0.4 + i as f64 * 0.2).collect())
    }
}

/// Fixed parameters of an experiment (the paper's Table 5 defaults).
///
/// The paper fixes one set of "other" parameters per figure without
/// stating them; we use the midpoints `N = 120`, `K = 6`, `Φ = 2`,
/// `θ = 0.8` and record that choice in EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of broadcast items `N` when not swept.
    pub items: usize,
    /// Number of channels `K` when not swept.
    pub channels: usize,
    /// Diversity parameter `Φ` when not swept.
    pub diversity: f64,
    /// Skewness parameter `θ` when not swept.
    pub skewness: f64,
    /// Channel bandwidth in size units per second (Table 5: 10).
    pub bandwidth: f64,
    /// Workload seeds to average over per sweep point.
    pub seeds: Vec<u64>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            items: 120,
            channels: 6,
            diversity: 2.0,
            skewness: 0.8,
            bandwidth: 10.0,
            seeds: (0..20).collect(),
        }
    }
}

impl ExperimentConfig {
    /// A cheaper configuration for smoke tests and CI (fewer seeds).
    pub fn quick() -> Self {
        ExperimentConfig { seeds: (0..3).collect(), ..ExperimentConfig::default() }
    }

    /// Resolves the effective `(N, K, Φ, θ)` at a sweep point.
    pub fn at_point(&self, axis: &SweepAxis, index: usize) -> (usize, usize, f64, f64) {
        let mut n = self.items;
        let mut k = self.channels;
        let mut phi = self.diversity;
        let mut theta = self.skewness;
        match axis {
            SweepAxis::Channels(v) => k = v[index],
            SweepAxis::Items(v) => n = v[index],
            SweepAxis::Diversity(v) => phi = v[index],
            SweepAxis::Skewness(v) => theta = v[index],
        }
        (n, k, phi, theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_axes_match_table5() {
        assert_eq!(SweepAxis::paper_channels().values(), vec![4., 5., 6., 7., 8., 9., 10.]);
        assert_eq!(
            SweepAxis::paper_items().values(),
            vec![60., 80., 100., 120., 140., 160., 180.]
        );
        assert_eq!(
            SweepAxis::paper_diversity().values(),
            vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
        );
        let sk = SweepAxis::paper_skewness().values();
        assert_eq!(sk.len(), 7);
        assert!((sk[0] - 0.4).abs() < 1e-12 && (sk[6] - 1.6).abs() < 1e-12);
    }

    #[test]
    fn at_point_overrides_only_the_axis() {
        let cfg = ExperimentConfig::default();
        let axis = SweepAxis::paper_channels();
        let (n, k, phi, theta) = cfg.at_point(&axis, 0);
        assert_eq!((n, k), (120, 4));
        assert_eq!((phi, theta), (2.0, 0.8));

        let axis = SweepAxis::paper_diversity();
        let (n, k, phi, _) = cfg.at_point(&axis, 6);
        assert_eq!((n, k), (120, 6));
        assert_eq!(phi, 3.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SweepAxis::paper_channels().label(), "K");
        assert_eq!(SweepAxis::paper_items().label(), "N");
        assert_eq!(SweepAxis::paper_diversity().label(), "Phi");
        assert_eq!(SweepAxis::paper_skewness().label(), "theta");
    }

    #[test]
    fn default_matches_table5_bandwidth() {
        assert_eq!(ExperimentConfig::default().bandwidth, 10.0);
        assert_eq!(ExperimentConfig::default().seeds.len(), 20);
        assert_eq!(ExperimentConfig::quick().seeds.len(), 3);
    }
}
