//! Execution-time measurement behind Figures 6–7.

use std::time::Instant;

use dbcast_sim::SummaryStats;
use dbcast_workload::{SizeDistribution, WorkloadBuilder};
use serde::{Deserialize, Serialize};

use crate::algos::AlgoSpec;
use crate::config::{ExperimentConfig, SweepAxis};

/// Wall-clock statistics of one algorithm at one sweep point, over the
/// configured seeds (all in milliseconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoTiming {
    /// Algorithm name.
    pub algo: String,
    /// Mean execution time.
    pub mean_ms: f64,
    /// Median (p50) execution time.
    pub median_ms: f64,
    /// 95th-percentile execution time.
    pub p95_ms: f64,
}

/// Execution-time statistics of each algorithm at one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingPoint {
    /// The x-coordinate (K or N).
    pub x: f64,
    /// Per-algorithm timings, in registry order.
    pub algos: Vec<AlgoTiming>,
}

/// A completed timing sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingResult {
    /// Axis label.
    pub axis: String,
    /// Points in axis order.
    pub points: Vec<TimingPoint>,
}

/// Measures wall-clock execution time per algorithm per point,
/// reporting mean, median and p95 over the seeds, with one warmup
/// iteration discarded per cell (see [`run_timing_sweep_with`]).
///
/// Unlike [`run_sweep`](crate::run_sweep) this runs **serially** —
/// concurrent cells would contend for cores and corrupt the
/// measurements. The workloads are identical to the waiting-time
/// sweeps (same seeds), so Figures 2/6 and 3/7 describe the same runs,
/// mirroring the paper.
///
/// # Panics
///
/// Panics on an empty axis, algorithm list, or seed list.
pub fn run_timing_sweep(
    config: &ExperimentConfig,
    axis: &SweepAxis,
    algos: &[AlgoSpec],
) -> TimingResult {
    run_timing_sweep_with(config, axis, algos, 1)
}

/// [`run_timing_sweep`] with an explicit warmup count: before the
/// recorded runs of each (point, algorithm) cell, the algorithm runs
/// `warmup` extra times on the first seed's workload and those samples
/// are discarded. Without a warmup, the first sample absorbs
/// cold-cache and lazy-initialization noise (metric-registry
/// interning, allocator warm-up) and skews the mean and p95 upward.
///
/// # Panics
///
/// Panics on an empty axis, algorithm list, or seed list.
pub fn run_timing_sweep_with(
    config: &ExperimentConfig,
    axis: &SweepAxis,
    algos: &[AlgoSpec],
    warmup: usize,
) -> TimingResult {
    assert!(!axis.is_empty(), "sweep axis must have points");
    assert!(!algos.is_empty(), "need at least one algorithm");
    assert!(!config.seeds.is_empty(), "need at least one seed");

    let xs = axis.values();
    let mut points = Vec::with_capacity(axis.len());
    for (p, &x) in xs.iter().enumerate() {
        let (n, k, phi, theta) = config.at_point(axis, p);
        let mut samples = vec![SummaryStats::new(); algos.len()];
        if warmup > 0 {
            let seed = config.seeds[0];
            let db = WorkloadBuilder::new(n)
                .skewness(theta)
                .sizes(SizeDistribution::Diversity { phi_max: phi })
                .seed(seed)
                .build()
                .expect("paper parameter space is valid");
            for spec in algos {
                for _ in 0..warmup {
                    let alloc = spec.allocate(&db, k, seed).expect("feasible instance");
                    std::hint::black_box(&alloc);
                }
            }
        }
        for &seed in &config.seeds {
            let db = WorkloadBuilder::new(n)
                .skewness(theta)
                .sizes(SizeDistribution::Diversity { phi_max: phi })
                .seed(seed)
                .build()
                .expect("paper parameter space is valid");
            for (a, spec) in algos.iter().enumerate() {
                let start = Instant::now();
                let alloc = spec.allocate(&db, k, seed).expect("feasible instance");
                let elapsed = start.elapsed().as_secs_f64() * 1e3;
                // Keep the allocation alive past the timer so the work
                // cannot be optimized away.
                std::hint::black_box(&alloc);
                samples[a].record(elapsed);
            }
        }
        points.push(TimingPoint {
            x,
            algos: algos
                .iter()
                .zip(&samples)
                .map(|(spec, s)| AlgoTiming {
                    algo: spec.name().to_string(),
                    mean_ms: s.mean(),
                    median_ms: s.percentile(50.0).expect("at least one seed"),
                    p95_ms: s.percentile(95.0).expect("at least one seed"),
                })
                .collect(),
        });
    }
    TimingResult { axis: axis.label().to_string(), points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_baselines::GoptConfig;

    #[test]
    fn timing_shape_and_positivity() {
        let cfg = ExperimentConfig {
            items: 15,
            channels: 3,
            seeds: vec![0],
            ..ExperimentConfig::default()
        };
        let axis = SweepAxis::Channels(vec![2, 3]);
        let result = run_timing_sweep(&cfg, &axis, &[AlgoSpec::Drp, AlgoSpec::DrpCds]);
        assert_eq!(result.points.len(), 2);
        for p in &result.points {
            for t in &p.algos {
                assert!(t.mean_ms >= 0.0, "{} took {} ms", t.algo, t.mean_ms);
                assert!(t.median_ms >= 0.0);
                assert!(t.p95_ms >= t.median_ms - 1e-12, "{}: p95 below median", t.algo);
            }
        }
    }

    #[test]
    fn warmup_runs_are_discarded_from_the_samples() {
        let cfg = ExperimentConfig {
            items: 12,
            channels: 2,
            seeds: vec![0],
            ..ExperimentConfig::default()
        };
        let axis = SweepAxis::Channels(vec![2]);
        // With a single recorded seed, every statistic collapses onto
        // that one sample — regardless of how many warmup iterations
        // ran first. If warmup runs leaked into the samples, mean and
        // p95 would diverge from the median.
        for warmup in [0usize, 3] {
            let result = run_timing_sweep_with(&cfg, &axis, &[AlgoSpec::Drp], warmup);
            let t = &result.points[0].algos[0];
            assert!(
                (t.mean_ms - t.median_ms).abs() < 1e-12
                    && (t.p95_ms - t.median_ms).abs() < 1e-12,
                "warmup {warmup} leaked into the recorded samples: {t:?}"
            );
        }
    }

    #[test]
    fn single_seed_collapses_the_percentiles() {
        let cfg = ExperimentConfig {
            items: 12,
            channels: 2,
            seeds: vec![0],
            ..ExperimentConfig::default()
        };
        let axis = SweepAxis::Channels(vec![2]);
        let result = run_timing_sweep(&cfg, &axis, &[AlgoSpec::Drp]);
        let t = &result.points[0].algos[0];
        assert!((t.mean_ms - t.median_ms).abs() < 1e-12);
        assert!((t.p95_ms - t.median_ms).abs() < 1e-12);
    }

    #[test]
    fn gopt_is_slower_than_drpcds() {
        // The core claim of Figures 6–7.
        let cfg = ExperimentConfig {
            items: 40,
            channels: 4,
            seeds: vec![0, 1],
            ..ExperimentConfig::default()
        };
        let axis = SweepAxis::Channels(vec![4]);
        let gopt = AlgoSpec::Gopt(GoptConfig {
            population: 60,
            max_generations: 100,
            ..GoptConfig::default()
        });
        let result = run_timing_sweep(&cfg, &axis, &[AlgoSpec::DrpCds, gopt]);
        let p = &result.points[0];
        let drpcds_ms = p.algos[0].mean_ms;
        let gopt_ms = p.algos[1].mean_ms;
        assert!(
            gopt_ms > drpcds_ms,
            "GOPT ({gopt_ms} ms) should dwarf DRP-CDS ({drpcds_ms} ms)"
        );
    }
}
