//! Execution-time measurement behind Figures 6–7.

use std::time::Instant;

use dbcast_workload::{SizeDistribution, WorkloadBuilder};
use serde::{Deserialize, Serialize};

use crate::algos::AlgoSpec;
use crate::config::{ExperimentConfig, SweepAxis};

/// Mean execution time of each algorithm at one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingPoint {
    /// The x-coordinate (K or N).
    pub x: f64,
    /// `(algorithm name, mean wall-clock milliseconds)` in registry
    /// order.
    pub algos: Vec<(String, f64)>,
}

/// A completed timing sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingResult {
    /// Axis label.
    pub axis: String,
    /// Points in axis order.
    pub points: Vec<TimingPoint>,
}

/// Measures mean wall-clock execution time per algorithm per point.
///
/// Unlike [`run_sweep`](crate::run_sweep) this runs **serially** —
/// concurrent cells would contend for cores and corrupt the
/// measurements. The workloads are identical to the waiting-time
/// sweeps (same seeds), so Figures 2/6 and 3/7 describe the same runs,
/// mirroring the paper.
///
/// # Panics
///
/// Panics on an empty axis, algorithm list, or seed list.
pub fn run_timing_sweep(
    config: &ExperimentConfig,
    axis: &SweepAxis,
    algos: &[AlgoSpec],
) -> TimingResult {
    assert!(!axis.is_empty(), "sweep axis must have points");
    assert!(!algos.is_empty(), "need at least one algorithm");
    assert!(!config.seeds.is_empty(), "need at least one seed");

    let xs = axis.values();
    let mut points = Vec::with_capacity(axis.len());
    for (p, &x) in xs.iter().enumerate() {
        let (n, k, phi, theta) = config.at_point(axis, p);
        let mut totals = vec![0.0f64; algos.len()];
        for &seed in &config.seeds {
            let db = WorkloadBuilder::new(n)
                .skewness(theta)
                .sizes(SizeDistribution::Diversity { phi_max: phi })
                .seed(seed)
                .build()
                .expect("paper parameter space is valid");
            for (a, spec) in algos.iter().enumerate() {
                let start = Instant::now();
                let alloc = spec.allocate(&db, k, seed).expect("feasible instance");
                let elapsed = start.elapsed().as_secs_f64() * 1e3;
                // Keep the allocation alive past the timer so the work
                // cannot be optimized away.
                std::hint::black_box(&alloc);
                totals[a] += elapsed;
            }
        }
        let denom = config.seeds.len() as f64;
        points.push(TimingPoint {
            x,
            algos: algos
                .iter()
                .zip(&totals)
                .map(|(spec, &t)| (spec.name().to_string(), t / denom))
                .collect(),
        });
    }
    TimingResult { axis: axis.label().to_string(), points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_baselines::GoptConfig;

    #[test]
    fn timing_shape_and_positivity() {
        let cfg = ExperimentConfig {
            items: 15,
            channels: 3,
            seeds: vec![0],
            ..ExperimentConfig::default()
        };
        let axis = SweepAxis::Channels(vec![2, 3]);
        let result = run_timing_sweep(&cfg, &axis, &[AlgoSpec::Drp, AlgoSpec::DrpCds]);
        assert_eq!(result.points.len(), 2);
        for p in &result.points {
            for (name, ms) in &p.algos {
                assert!(*ms >= 0.0, "{name} took {ms} ms");
            }
        }
    }

    #[test]
    fn gopt_is_slower_than_drpcds() {
        // The core claim of Figures 6–7.
        let cfg = ExperimentConfig {
            items: 40,
            channels: 4,
            seeds: vec![0, 1],
            ..ExperimentConfig::default()
        };
        let axis = SweepAxis::Channels(vec![4]);
        let gopt = AlgoSpec::Gopt(GoptConfig {
            population: 60,
            max_generations: 100,
            ..GoptConfig::default()
        });
        let result = run_timing_sweep(&cfg, &axis, &[AlgoSpec::DrpCds, gopt]);
        let p = &result.points[0];
        let drpcds_ms = p.algos[0].1;
        let gopt_ms = p.algos[1].1;
        assert!(
            gopt_ms > drpcds_ms,
            "GOPT ({gopt_ms} ms) should dwarf DRP-CDS ({drpcds_ms} ms)"
        );
    }
}
