//! Experiment harness regenerating every table and figure of the
//! ICDCS 2005 diverse-broadcast paper.
//!
//! Each figure is a *parameter sweep*: one axis parameter varies while
//! the others stay at the paper's defaults, every (point, seed) cell
//! generates a fresh Zipf/diversity workload, and every registered
//! algorithm allocates it. Aggregated average waiting times (Figures
//! 2–5) or execution times (Figures 6–7) are printed as aligned tables
//! and written to `results/` as Markdown + CSV.
//!
//! Binaries (run with `--release`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig2_channels` | Figure 2 — K vs `W_b` |
//! | `fig3_items` | Figure 3 — N vs `W_b` |
//! | `fig4_diversity` | Figure 4 — Φ vs `W_b` |
//! | `fig5_skewness` | Figure 5 — θ vs `W_b` |
//! | `fig6_exec_channels` | Figure 6 — K vs execution time |
//! | `fig7_exec_items` | Figure 7 — N vs execution time |
//! | `tables` | Tables 2–4 — the worked example traces |
//! | `sim_validation` | analytical Eq. 2 vs discrete-event simulation |
//! | `run_all` | everything above |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
mod algos;
mod config;
mod report;
mod runner;
mod sweep;
mod timing;

pub use algos::AlgoSpec;
pub use config::{ExperimentConfig, SweepAxis};
pub use report::{render_csv, render_markdown, write_reports, ReportTable};
pub use runner::{
    run_fig2, run_fig3, run_fig4, run_fig5, run_fig6, run_fig7, run_sim_validation,
    run_tables,
};
pub use sweep::{run_sweep, AlgoPoint, SweepPoint, SweepResult};
pub use timing::{
    run_timing_sweep, run_timing_sweep_with, AlgoTiming, TimingPoint, TimingResult,
};
