//! Validates the analytical waiting-time model (Eq. 2) against the
//! discrete-event simulator.
//!
//! Usage: `cargo run --release -p dbcast-bench --bin sim_validation [--quick]`

use dbcast_bench::{run_sim_validation, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let config =
        if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let md = run_sim_validation(&config, std::path::Path::new("results"))?;
    print!("{md}");
    Ok(())
}
