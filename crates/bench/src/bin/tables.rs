//! Replays the paper's worked example (Tables 2–4).
//!
//! Usage: `cargo run --release -p dbcast-bench --bin tables`

use dbcast_bench::run_tables;

fn main() -> std::io::Result<()> {
    let md = run_tables(std::path::Path::new("results"))?;
    print!("{md}");
    Ok(())
}
