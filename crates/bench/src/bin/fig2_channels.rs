//! Regenerates Figure 2: channel number K vs average waiting time.
//!
//! Usage: `cargo run --release -p dbcast-bench --bin fig2_channels [--quick]`

use dbcast_bench::{run_fig2, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let config =
        if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let md = run_fig2(&config, std::path::Path::new("results"))?;
    print!("{md}");
    Ok(())
}
