//! Regenerates every table and figure of the paper in one run.
//!
//! Usage: `cargo run --release -p dbcast-bench --bin run_all [--quick]`
//!
//! Writes Markdown + CSV artifacts under `results/`.

use std::path::Path;

use dbcast_bench::{
    run_fig2, run_fig3, run_fig4, run_fig5, run_fig6, run_fig7, run_sim_validation,
    run_tables, ExperimentConfig,
};

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let config =
        if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let dir = Path::new("results");

    eprintln!("[1/8] Tables 2-4 (worked example)");
    print!("{}", run_tables(dir)?);
    eprintln!("[2/8] Figure 2 (K vs W_b)");
    print!("{}", run_fig2(&config, dir)?);
    eprintln!("[3/8] Figure 3 (N vs W_b)");
    print!("{}", run_fig3(&config, dir)?);
    eprintln!("[4/8] Figure 4 (diversity vs W_b)");
    print!("{}", run_fig4(&config, dir)?);
    eprintln!("[5/8] Figure 5 (skewness vs W_b)");
    print!("{}", run_fig5(&config, dir)?);
    eprintln!("[6/8] Figure 6 (K vs execution time)");
    print!("{}", run_fig6(&config, dir)?);
    eprintln!("[7/8] Figure 7 (N vs execution time)");
    print!("{}", run_fig7(&config, dir)?);
    eprintln!("[8/8] Simulation validation");
    print!("{}", run_sim_validation(&config, dir)?);
    eprintln!("done; artifacts in {}", dir.display());
    Ok(())
}
