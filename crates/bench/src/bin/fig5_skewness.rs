//! Regenerates Figure 5: skewness theta vs average waiting time.
//!
//! Usage: `cargo run --release -p dbcast-bench --bin fig5_skewness [--quick]`

use dbcast_bench::{run_fig5, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let config =
        if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let md = run_fig5(&config, std::path::Path::new("results"))?;
    print!("{md}");
    Ok(())
}
