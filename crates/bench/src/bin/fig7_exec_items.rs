//! Regenerates Figure 7: broadcast items N vs execution time.
//!
//! Usage: `cargo run --release -p dbcast-bench --bin fig7_exec_items [--quick]`

use dbcast_bench::{run_fig7, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let config =
        if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let md = run_fig7(&config, std::path::Path::new("results"))?;
    print!("{md}");
    Ok(())
}
