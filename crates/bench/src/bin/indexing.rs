//! Extension experiment: (1, m) air indexing over allocated programs —
//! access/tuning/energy versus the index copy count m, per allocation
//! algorithm.
//!
//! Usage: `cargo run --release -p dbcast-bench --bin indexing [--quick]`

use dbcast_alloc::DrpCds;
use dbcast_baselines::Flat;
use dbcast_bench::{render_markdown, ReportTable};
use dbcast_index::{EnergyModel, IndexedProgram};
use dbcast_model::{BroadcastProgram, ChannelAllocator};
use dbcast_workload::{SizeDistribution, WorkloadBuilder};

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: u64 = if quick { 3 } else { 10 };
    let radio = EnergyModel::typical();
    let index_size = 1.0;
    let k = 5;

    let mut table = ReportTable {
        title: "Indexing: access / tuning / energy vs index copies m (N = 100, K = 5)"
            .to_string(),
        header: vec![
            "allocator".into(),
            "m".into(),
            "access (s)".into(),
            "tuning (s)".into(),
            "energy (mJ)".into(),
            "battery x".into(),
        ],
        rows: Vec::new(),
    };

    for (algo_name, algo) in [
        ("DRP-CDS", &DrpCds::new() as &dyn ChannelAllocator),
        ("FLAT", &Flat::new() as &dyn ChannelAllocator),
    ] {
        for m_choice in ["1", "4", "m*", "32"] {
            let mut access = 0.0;
            let mut tuning = 0.0;
            let mut energy = 0.0;
            let mut unindexed_energy = 0.0;
            for seed in 0..seeds {
                let db = WorkloadBuilder::new(100)
                    .skewness(0.8)
                    .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
                    .seed(seed)
                    .build()
                    .expect("valid parameters");
                let alloc = algo.allocate(&db, k).expect("feasible");
                let program = BroadcastProgram::new(&db, &alloc, 10.0).expect("valid");
                let indexed = match m_choice {
                    "m*" => {
                        IndexedProgram::with_optimal_segments(&program, index_size, 0.1)
                    }
                    fixed => {
                        let m: usize = fixed.parse().expect("numeric m");
                        IndexedProgram::new(&program, &vec![m; k], index_size, 0.1)
                    }
                }
                .expect("valid indexing");
                let metrics = indexed.expected_metrics(&db).expect("items covered");
                access += metrics.access;
                tuning += metrics.tuning;
                energy += metrics.energy(&radio);
                unindexed_energy += metrics.energy_unindexed(&radio);
            }
            let d = seeds as f64;
            table.rows.push(vec![
                algo_name.to_string(),
                m_choice.to_string(),
                format!("{:.3}", access / d),
                format!("{:.3}", tuning / d),
                format!("{:.1}", energy / d),
                format!("{:.1}", unindexed_energy / energy),
            ]);
        }
    }

    let md = render_markdown(&table);
    std::fs::create_dir_all("results")?;
    std::fs::write("results/indexing.md", &md)?;
    print!("{md}");
    Ok(())
}
