//! Regenerates Figure 3: broadcast items N vs average waiting time.
//!
//! Usage: `cargo run --release -p dbcast-bench --bin fig3_items [--quick]`

use dbcast_bench::{run_fig3, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let config =
        if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let md = run_fig3(&config, std::path::Path::new("results"))?;
    print!("{md}");
    Ok(())
}
