//! Regenerates Figure 6: channel number K vs execution time.
//!
//! Usage: `cargo run --release -p dbcast-bench --bin fig6_exec_channels [--quick]`

use dbcast_bench::{run_fig6, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let config =
        if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let md = run_fig6(&config, std::path::Path::new("results"))?;
    print!("{md}");
    Ok(())
}
