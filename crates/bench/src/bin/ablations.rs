//! Runs every ablation study and writes `results/ablations.md`.
//!
//! Usage: `cargo run --release -p dbcast-bench --bin ablations [--quick]`

use dbcast_bench::ablations::{
    ablate_cds_threshold, ablate_gopt_budget, ablate_hetero, ablate_replication,
    ablate_split_priority,
};
use dbcast_bench::render_markdown;

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick { (0..3).collect() } else { (0..10).collect() };

    let mut md = String::new();
    eprintln!("[1/5] DRP split priority");
    md.push_str(&render_markdown(&ablate_split_priority(&seeds)));
    eprintln!("[2/5] CDS threshold");
    md.push_str(&render_markdown(&ablate_cds_threshold(&seeds)));
    eprintln!("[3/5] GOPT budget");
    md.push_str(&render_markdown(&ablate_gopt_budget(&seeds)));
    eprintln!("[4/5] heterogeneous bandwidths");
    md.push_str(&render_markdown(&ablate_hetero(&seeds)));
    eprintln!("[5/5] replication (simulated)");
    md.push_str(&render_markdown(&ablate_replication(&seeds)));

    std::fs::create_dir_all("results")?;
    std::fs::write("results/ablations.md", &md)?;
    print!("{md}");
    Ok(())
}
