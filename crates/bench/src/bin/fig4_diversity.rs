//! Regenerates Figure 4: diversity Phi vs average waiting time.
//!
//! Usage: `cargo run --release -p dbcast-bench --bin fig4_diversity [--quick]`

use dbcast_bench::{run_fig4, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let config =
        if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let md = run_fig4(&config, std::path::Path::new("results"))?;
    print!("{md}");
    Ok(())
}
