//! Extension experiment: multi-item query latency per allocator and
//! per intra-channel ordering.
//!
//! Usage: `cargo run --release -p dbcast-bench --bin queries [--quick]`

use dbcast_alloc::DrpCds;
use dbcast_baselines::{Flat, Vfk};
use dbcast_bench::{render_markdown, ReportTable};
use dbcast_model::{BroadcastProgram, ChannelAllocator};
use dbcast_query::{affinity_order, evaluate, CoAccessMatrix, QueryWorkloadBuilder};
use dbcast_workload::{SizeDistribution, WorkloadBuilder};

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: u64 = if quick { 2 } else { 5 };
    let (k, b) = (5usize, 10.0f64);

    let mut table = ReportTable {
        title: "Multi-item queries: mean latency (s), 1000 arrivals, sizes 1..=4"
            .to_string(),
        header: vec![
            "allocator".into(),
            "id order".into(),
            "affinity order".into(),
            "excess over LB (id)".into(),
        ],
        rows: Vec::new(),
    };

    for (name, algo) in [
        ("FLAT", &Flat::new() as &dyn ChannelAllocator),
        ("VF^K", &Vfk::new() as &dyn ChannelAllocator),
        ("DRP-CDS", &DrpCds::new() as &dyn ChannelAllocator),
    ] {
        let mut id_latency = 0.0;
        let mut affinity_latency = 0.0;
        let mut excess = 0.0;
        for seed in 0..seeds {
            let db = WorkloadBuilder::new(80)
                .skewness(1.0)
                .sizes(SizeDistribution::Diversity { phi_max: 1.5 })
                .seed(seed)
                .build()
                .expect("valid parameters");
            let queries = QueryWorkloadBuilder::new(&db)
                .queries(60)
                .max_size(4)
                .arrivals(1_000, 2.0)
                .seed(seed + 100)
                .build();
            let alloc = algo.allocate(&db, k).expect("feasible");

            let id_program = BroadcastProgram::new(&db, &alloc, b).expect("valid");
            let id_eval = evaluate(&id_program, &queries).expect("items broadcast");
            id_latency += id_eval.mean_latency;
            excess += id_eval.mean_excess_over_bound;

            let matrix = CoAccessMatrix::from_workload(db.len(), &queries);
            let ordered = affinity_order(&alloc, &matrix);
            let aff_program =
                BroadcastProgram::from_overlapping_groups(&db, &ordered, b).expect("valid");
            affinity_latency +=
                evaluate(&aff_program, &queries).expect("items broadcast").mean_latency;
        }
        let d = seeds as f64;
        table.rows.push(vec![
            name.to_string(),
            format!("{:.3}", id_latency / d),
            format!("{:.3}", affinity_latency / d),
            format!("{:.3}", excess / d),
        ]);
    }

    let md = render_markdown(&table);
    std::fs::create_dir_all("results")?;
    std::fs::write("results/queries.md", &md)?;
    print!("{md}");
    Ok(())
}
