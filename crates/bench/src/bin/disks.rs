//! Extension experiment: intra-channel broadcast-disk scheduling vs
//! the paper's multi-channel flat-cycle allocation.
//!
//! Two ways to give popular items shorter effective periods:
//! (a) the paper's — split the database over K flat channels by benefit
//! ratio (DRP-CDS); (b) broadcast disks — one fat channel of aggregate
//! bandwidth `K·b` with non-uniform appearance frequencies. This
//! harness also stacks them: sqrt-rule scheduling *within* each DRP-CDS
//! channel.
//!
//! Usage: `cargo run --release -p dbcast-bench --bin disks [--quick]`

use dbcast_alloc::DrpCds;
use dbcast_bench::{render_markdown, ReportTable};
use dbcast_disks::{flat_probe_time, sqrt_rule_probe_bound, OnlineScheduler};
use dbcast_model::{ChannelAllocator, Database};
use dbcast_workload::{SizeDistribution, WorkloadBuilder};

fn channel_items(
    db: &Database,
    alloc: &dbcast_model::Allocation,
    ch: usize,
) -> Vec<(f64, f64)> {
    alloc
        .assignment()
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == ch)
        .map(|(i, _)| (db.items()[i].frequency(), db.items()[i].size()))
        .collect()
}

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: u64 = if quick { 3 } else { 10 };
    let (k, b) = (5usize, 10.0f64);

    let mut table = ReportTable {
        title: format!(
            "Broadcast disks vs channel allocation (N = 100, K = {k}, b = {b}/channel): \
             expected probe time (s)"
        ),
        header: vec![
            "theta".into(),
            "1 fat flat".into(),
            "1 fat sqrt-rule".into(),
            "K flat DRP-CDS".into(),
            "DRP-CDS + sqrt in-channel".into(),
            "measured sqrt (sim)".into(),
        ],
        rows: Vec::new(),
    };

    for theta in [0.4f64, 0.8, 1.2, 1.6] {
        let mut fat_flat = 0.0;
        let mut fat_sqrt = 0.0;
        let mut k_flat = 0.0;
        let mut k_sqrt = 0.0;
        let mut measured = 0.0;
        for seed in 0..seeds {
            let db = WorkloadBuilder::new(100)
                .skewness(theta)
                .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
                .seed(seed)
                .build()
                .expect("valid parameters");
            let items: Vec<(f64, f64)> =
                db.iter().map(|d| (d.frequency(), d.size())).collect();
            let fat_b = b * k as f64;
            fat_flat += flat_probe_time(&items, fat_b);
            fat_sqrt += sqrt_rule_probe_bound(&items, fat_b);

            let alloc = DrpCds::new().allocate(&db, k).expect("feasible");
            k_flat += alloc.total_cost() / (2.0 * b);
            // Square-root bound *within* each DRP-CDS channel.
            k_sqrt += (0..k)
                .map(|ch| {
                    let group = channel_items(&db, &alloc, ch);
                    if group.is_empty() {
                        0.0
                    } else {
                        // Weight by the channel's share of requests.
                        sqrt_rule_probe_bound(&group, b)
                    }
                })
                .sum::<f64>();

            // Empirical check of the fat-channel sqrt-rule bound.
            let horizon = 600.0;
            let schedule =
                OnlineScheduler::new(&items, fat_b).expect("valid items").generate(horizon);
            let mean_wait = schedule.mean_waiting_time(&items, horizon * 0.8);
            let download: f64 = items.iter().map(|&(f, z)| f * z / fat_b).sum();
            measured += mean_wait - download; // probe component
        }
        let d = seeds as f64;
        table.rows.push(vec![
            format!("{theta:.1}"),
            format!("{:.3}", fat_flat / d),
            format!("{:.3}", fat_sqrt / d),
            format!("{:.3}", k_flat / d),
            format!("{:.3}", k_sqrt / d),
            format!("{:.3}", measured / d),
        ]);
    }

    let md = render_markdown(&table);
    std::fs::create_dir_all("results")?;
    std::fs::write("results/disks.md", &md)?;
    print!("{md}");
    Ok(())
}
