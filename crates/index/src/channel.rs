//! One broadcast channel with (1, m) index interleaving.

use dbcast_model::{ChannelSchedule, ItemId, ModelError};
use serde::{Deserialize, Serialize};

/// One entry of the indexed cycle layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LayoutEntry {
    /// A full channel index (the `i`-th of `m` per cycle).
    Index {
        /// Which of the `m` index copies this is.
        copy: usize,
    },
    /// A data item slot.
    Item {
        /// The item occupying the slot.
        item: ItemId,
    },
}

/// A slot in the indexed cycle: what it carries, where it starts (size
/// units from cycle start) and how long it is (size units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Slot {
    entry: LayoutEntry,
    offset: f64,
    size: f64,
}

/// The classic (1, m) rule: choose the number of index copies `m`
/// minimizing the overhead tradeoff `f(m) = Z/(2m) + m·I/2` for a data
/// payload of aggregate size `z_total` and an index of size
/// `index_size` (both in size units). The continuous optimum is
/// `sqrt(Z/I)`; the exact integer argmin is picked between its floor
/// and ceiling (plain rounding is off by one near `m(m+1) = Z/I`).
///
/// Returns at least 1.
///
/// # Panics
///
/// Panics when either argument is non-positive or non-finite.
///
/// # Example
///
/// ```
/// use dbcast_index::optimal_segments;
/// assert_eq!(optimal_segments(100.0, 1.0), 10);
/// assert_eq!(optimal_segments(1.0, 100.0), 1);
/// ```
pub fn optimal_segments(z_total: f64, index_size: f64) -> usize {
    assert!(z_total.is_finite() && z_total > 0.0, "payload size must be positive");
    assert!(index_size.is_finite() && index_size > 0.0, "index size must be positive");
    let x = z_total / index_size;
    let lo = (x.sqrt().floor() as usize).max(1);
    // Integer argmin of m + x/m: prefer lo unless lo+1 is strictly
    // better, i.e. unless lo (lo+1) < x.
    if ((lo * (lo + 1)) as f64) < x {
        lo + 1
    } else {
        lo
    }
}

/// A broadcast channel carrying `m` interleaved index copies.
///
/// The cycle is `[Ix][bucket 1][Ix][bucket 2]…[Ix][bucket m]` where the
/// buckets partition the channel's data slots into `m` contiguous runs
/// of near-equal aggregate size. Cycle length becomes
/// `Z + m · index_size`.
///
/// The client protocol modelled (doze-capable (1, m)):
///
/// 1. tune in; read the current packet header (active for
///    `header_size` units) to learn the next index offset;
/// 2. doze until the next index copy; read it (active);
/// 3. doze until the target item's next slot start; download (active).
///
/// *Access time* covers 1–3 wall-clock; *tuning time* is only the
/// active spans: `min(header, wait-to-index) + index + item` — when the
/// next index arrives before the header read would finish, the client
/// simply stays awake into it, so the active span is capped by the
/// wait itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexedChannel {
    slots: Vec<Slot>,
    cycle_size: f64,
    index_size: f64,
    header_size: f64,
    segments: usize,
}

impl IndexedChannel {
    /// Interleaves `segments` index copies (each `index_size` size
    /// units, headers of `header_size` units) into `schedule`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidSize`] for non-positive `index_size` /
    ///   negative `header_size`.
    /// * [`ModelError::ZeroChannels`] (reused) when `segments == 0`.
    /// * [`ModelError::EmptyDatabase`] (reused) for an empty schedule.
    pub fn new(
        schedule: &ChannelSchedule,
        segments: usize,
        index_size: f64,
        header_size: f64,
    ) -> Result<Self, ModelError> {
        if !index_size.is_finite() || index_size <= 0.0 {
            return Err(ModelError::InvalidSize { index: 0, value: index_size });
        }
        if !header_size.is_finite() || header_size < 0.0 {
            return Err(ModelError::InvalidSize { index: 1, value: header_size });
        }
        if segments == 0 {
            return Err(ModelError::ZeroChannels);
        }
        if schedule.is_empty() {
            return Err(ModelError::EmptyDatabase);
        }
        let m = segments.min(schedule.slots().len());

        // Greedy near-equal-size contiguous bucketing: close bucket j
        // once the cumulative size crosses the fraction (j+1)/m of the
        // total, forcing a close when exactly one slot per remaining
        // bucket is left.
        let n_slots = schedule.slots().len();
        let total: f64 = schedule.slots().iter().map(|s| s.size).sum();
        let mut buckets: Vec<Vec<(ItemId, f64)>> = Vec::with_capacity(m);
        let mut current: Vec<(ItemId, f64)> = Vec::new();
        let mut cum = 0.0;
        for (idx, slot) in schedule.slots().iter().enumerate() {
            current.push((slot.item, slot.size));
            cum += slot.size;
            let closed = buckets.len();
            if closed + 1 >= m {
                continue; // the rest belongs to the final bucket
            }
            let remaining_slots = n_slots - idx - 1;
            let remaining_buckets = m - closed - 1;
            let boundary = total * (closed + 1) as f64 / m as f64;
            let must_close = remaining_slots == remaining_buckets;
            if (cum >= boundary || must_close) && remaining_slots >= remaining_buckets {
                buckets.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            buckets.push(current);
        }
        debug_assert_eq!(buckets.len(), m);

        let mut slots = Vec::new();
        let mut offset = 0.0;
        for (copy, bucket) in buckets.iter().enumerate() {
            slots.push(Slot {
                entry: LayoutEntry::Index { copy },
                offset,
                size: index_size,
            });
            offset += index_size;
            for &(item, size) in bucket {
                slots.push(Slot { entry: LayoutEntry::Item { item }, offset, size });
                offset += size;
            }
        }
        Ok(IndexedChannel {
            slots,
            cycle_size: offset,
            index_size,
            header_size,
            segments: m,
        })
    }

    /// Number of index copies `m` actually used (capped by slot count).
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Cycle length in size units, including index overhead.
    pub fn cycle_size(&self) -> f64 {
        self.cycle_size
    }

    /// The full cycle layout in broadcast order:
    /// `(entry, offset, size)` per slot.
    pub fn layout(&self) -> impl Iterator<Item = (LayoutEntry, f64, f64)> + '_ {
        self.slots.iter().map(|s| (s.entry, s.offset, s.size))
    }

    /// The next index-copy start time `>= now` (seconds).
    pub fn next_index_start(&self, now: f64, bandwidth: f64) -> f64 {
        debug_assert!(bandwidth > 0.0 && now >= 0.0);
        let cycle_time = self.cycle_size / bandwidth;
        self.slots
            .iter()
            .filter(|s| matches!(s.entry, LayoutEntry::Index { .. }))
            .map(|s| {
                let offset_time = s.offset / bandwidth;
                let k = ((now - offset_time) / cycle_time).ceil().max(0.0);
                let mut t = offset_time + k * cycle_time;
                if t < now {
                    t += cycle_time;
                }
                t
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// The next start time `>= now` of `item`'s slot (seconds), or
    /// `None` if the channel does not carry the item.
    pub fn next_item_start(&self, item: ItemId, now: f64, bandwidth: f64) -> Option<f64> {
        let cycle_time = self.cycle_size / bandwidth;
        let slot = self
            .slots
            .iter()
            .find(|s| matches!(s.entry, LayoutEntry::Item { item: i } if i == item))?;
        let offset_time = slot.offset / bandwidth;
        let k = ((now - offset_time) / cycle_time).ceil().max(0.0);
        let mut t = offset_time + k * cycle_time;
        if t < now {
            t += cycle_time;
        }
        Some(t)
    }

    /// Item size (size units), if carried.
    fn item_size(&self, item: ItemId) -> Option<f64> {
        self.slots
            .iter()
            .find(|s| matches!(s.entry, LayoutEntry::Item { item: i } if i == item))
            .map(|s| s.size)
    }

    /// Access and tuning time (seconds) for a request of `item` issued
    /// at `now`: wait for the next index, read it, doze to the item's
    /// next start *after the index read*, download. Tuning counts only
    /// the radio-active spans and is always `<=` access.
    ///
    /// Returns `None` if the channel does not carry the item.
    pub fn request_metrics(
        &self,
        item: ItemId,
        now: f64,
        bandwidth: f64,
    ) -> Option<(f64, f64)> {
        let size = self.item_size(item)?;
        let index_start = self.next_index_start(now, bandwidth);
        let index_end = index_start + self.index_size / bandwidth;
        // Tolerance guards the exact-boundary case where the item slot
        // begins at the index end: one ULP of rounding must not cost a
        // whole extra cycle.
        let eps = 1e-9 * self.cycle_size / bandwidth;
        let item_start =
            self.next_item_start(item, index_end - eps, bandwidth)?.max(index_end);
        let access = item_start + size / bandwidth - now;
        let header_active = (self.header_size / bandwidth).min(index_start - now);
        let tuning = header_active + (self.index_size + size) / bandwidth;
        Some((access, tuning))
    }

    /// Access time (seconds) for a request of `item` issued at `now`.
    ///
    /// Returns `None` if the channel does not carry the item.
    pub fn access_time(&self, item: ItemId, now: f64, bandwidth: f64) -> Option<f64> {
        self.request_metrics(item, now, bandwidth).map(|(a, _)| a)
    }

    /// Upper bound on the tuning time (seconds of radio-active time)
    /// for any request of `item`: full header read + index read + item
    /// download. The exact per-request value
    /// ([`request_metrics`](Self::request_metrics)) is lower only when
    /// the next index starts within the header read.
    ///
    /// Returns `None` if the channel does not carry the item.
    pub fn tuning_time(&self, item: ItemId, bandwidth: f64) -> Option<f64> {
        let size = self.item_size(item)?;
        Some((self.header_size + self.index_size + size) / bandwidth)
    }

    /// Mean `(access, tuning)` over a request instant uniform in the
    /// cycle, computed by deterministic grid integration (`samples`
    /// points).
    pub fn expected_metrics(
        &self,
        item: ItemId,
        bandwidth: f64,
        samples: usize,
    ) -> Option<(f64, f64)> {
        let cycle_time = self.cycle_size / bandwidth;
        let mut access_sum = 0.0;
        let mut tuning_sum = 0.0;
        for i in 0..samples {
            let t = cycle_time * (i as f64 + 0.5) / samples as f64;
            let (a, tu) = self.request_metrics(item, t, bandwidth)?;
            access_sum += a;
            tuning_sum += tu;
        }
        Some((access_sum / samples as f64, tuning_sum / samples as f64))
    }

    /// Mean access time over a request instant uniform in the cycle.
    pub fn expected_access_time(
        &self,
        item: ItemId,
        bandwidth: f64,
        samples: usize,
    ) -> Option<f64> {
        self.expected_metrics(item, bandwidth, samples).map(|(a, _)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_model::{Allocation, BroadcastProgram, Database, ItemSpec};

    /// One channel with four unit-ish items.
    fn schedule() -> (Database, BroadcastProgram) {
        let db = Database::try_from_specs(vec![
            ItemSpec::new(0.4, 2.0),
            ItemSpec::new(0.3, 3.0),
            ItemSpec::new(0.2, 4.0),
            ItemSpec::new(0.1, 1.0),
        ])
        .unwrap();
        let alloc = Allocation::from_assignment(&db, 1, vec![0; 4]).unwrap();
        let program = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        (db, program)
    }

    #[test]
    fn optimal_segments_formula() {
        assert_eq!(optimal_segments(400.0, 4.0), 10);
        assert_eq!(optimal_segments(2.0, 8.0), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn optimal_segments_rejects_zero() {
        let _ = optimal_segments(0.0, 1.0);
    }

    #[test]
    fn layout_interleaves_m_indexes() {
        let (_, p) = schedule();
        let ch = IndexedChannel::new(&p.channels()[0], 2, 0.5, 0.05).unwrap();
        assert_eq!(ch.segments(), 2);
        // Cycle = data (10) + 2 indexes (1.0).
        assert!((ch.cycle_size() - 11.0).abs() < 1e-12);
        let indexes: Vec<f64> = ch
            .layout()
            .filter(|(e, _, _)| matches!(e, LayoutEntry::Index { .. }))
            .map(|(_, o, _)| o)
            .collect();
        assert_eq!(indexes.len(), 2);
        assert_eq!(indexes[0], 0.0);
        assert!(indexes[1] > 0.0);
    }

    #[test]
    fn segments_capped_by_slot_count() {
        let (_, p) = schedule();
        let ch = IndexedChannel::new(&p.channels()[0], 99, 0.5, 0.0).unwrap();
        assert_eq!(ch.segments(), 4);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let (_, p) = schedule();
        let s = &p.channels()[0];
        assert!(IndexedChannel::new(s, 0, 0.5, 0.0).is_err());
        assert!(IndexedChannel::new(s, 2, 0.0, 0.0).is_err());
        assert!(IndexedChannel::new(s, 2, 0.5, -1.0).is_err());
    }

    #[test]
    fn tuning_time_is_constant_and_small() {
        let (_, p) = schedule();
        let ch = IndexedChannel::new(&p.channels()[0], 2, 0.5, 0.05).unwrap();
        let t = ch.tuning_time(ItemId::new(2), 10.0).unwrap();
        // (0.05 + 0.5 + 4.0) / 10
        assert!((t - 0.455).abs() < 1e-12);
        // Access varies with request time; tuning does not.
        let a0 = ch.access_time(ItemId::new(2), 0.0, 10.0).unwrap();
        let a1 = ch.access_time(ItemId::new(2), 0.37, 10.0).unwrap();
        assert_ne!(a0, a1);
        assert!(t <= a0 && t <= a1);
    }

    #[test]
    fn access_walks_index_then_item() {
        let (_, p) = schedule();
        // m = 1: cycle = [Ix 0.5][d0 2][d1 3][d2 4][d3 1], size 10.5.
        let ch = IndexedChannel::new(&p.channels()[0], 1, 0.5, 0.0).unwrap();
        // Request d0 at t = 0: index at 0..0.05s, d0 at 0.05..0.25s.
        let a = ch.access_time(ItemId::new(0), 0.0, 10.0).unwrap();
        assert!((a - 0.25).abs() < 1e-12);
        // Request d0 just after cycle start: next index is next cycle
        // (1.05s), then d0 at 1.10s, done 1.30s => access = 1.30 - 0.01.
        let a = ch.access_time(ItemId::new(0), 0.01, 10.0).unwrap();
        assert!((a - (1.30 - 0.01)).abs() < 1e-9, "{a}");
    }

    #[test]
    fn unknown_item_yields_none() {
        let (_, p) = schedule();
        let ch = IndexedChannel::new(&p.channels()[0], 1, 0.5, 0.0).unwrap();
        assert!(ch.access_time(ItemId::new(9), 0.0, 10.0).is_none());
        assert!(ch.tuning_time(ItemId::new(9), 10.0).is_none());
    }

    #[test]
    fn more_segments_reduce_index_wait_but_grow_cycle() {
        let (_, p) = schedule();
        let m1 = IndexedChannel::new(&p.channels()[0], 1, 0.5, 0.0).unwrap();
        let m4 = IndexedChannel::new(&p.channels()[0], 4, 0.5, 0.0).unwrap();
        assert!(m4.cycle_size() > m1.cycle_size());
        // Mean distance to next index shrinks with more copies.
        let mean_wait = |ch: &IndexedChannel| {
            let cycle = ch.cycle_size() / 10.0;
            let n = 1000;
            (0..n)
                .map(|i| {
                    let t = cycle * (i as f64 + 0.5) / n as f64;
                    ch.next_index_start(t, 10.0) - t
                })
                .sum::<f64>()
                / n as f64
        };
        assert!(mean_wait(&m4) < mean_wait(&m1));
    }

    #[test]
    fn expected_access_time_near_theory_for_m1() {
        // For m = 1 the expected access is roughly
        // E[wait to index] + index + E[index end -> item start] + item
        // ≈ L/2 + I + L/2-ish; just sanity-bound it by the cycle.
        let (_, p) = schedule();
        let ch = IndexedChannel::new(&p.channels()[0], 1, 0.5, 0.0).unwrap();
        let cycle_time = ch.cycle_size() / 10.0;
        for item in 0..4 {
            let e = ch.expected_access_time(ItemId::new(item), 10.0, 2000).unwrap();
            assert!(e > 0.0 && e < 2.0 * cycle_time + 1.0);
        }
    }
}
