//! The two-state radio energy model of selective tuning.

use serde::{Deserialize, Serialize};

/// A mobile radio with an *active* (receiving) and a *doze* power draw.
///
/// Classic figures from the data-on-air literature put doze power at
/// 1–5% of active power, which is what makes tuning time the battery
/// metric.
///
/// # Example
///
/// ```
/// use dbcast_index::EnergyModel;
/// let radio = EnergyModel::new(250.0, 5.0);
/// // 2 s active out of a 10 s access window:
/// let mj = radio.energy(10.0, 2.0);
/// assert!((mj - (2.0 * 250.0 + 8.0 * 5.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Power draw while actively receiving, in milliwatts.
    pub active_mw: f64,
    /// Power draw while dozing, in milliwatts.
    pub doze_mw: f64,
}

impl EnergyModel {
    /// Creates a model from active and doze power draws (mW).
    ///
    /// # Panics
    ///
    /// Panics unless `active_mw >= doze_mw >= 0` and both are finite.
    pub fn new(active_mw: f64, doze_mw: f64) -> Self {
        assert!(
            active_mw.is_finite()
                && doze_mw.is_finite()
                && doze_mw >= 0.0
                && active_mw >= doze_mw,
            "need active >= doze >= 0"
        );
        EnergyModel { active_mw, doze_mw }
    }

    /// A typical early-2000s WLAN card: 250 mW active, 5 mW doze.
    pub fn typical() -> Self {
        EnergyModel::new(250.0, 5.0)
    }

    /// Energy (millijoules) for one request spending `access` seconds
    /// end-to-end of which `tuning` seconds are radio-active.
    ///
    /// # Panics
    ///
    /// Panics (debug) when `tuning > access` or either is negative.
    pub fn energy(&self, access: f64, tuning: f64) -> f64 {
        debug_assert!(tuning >= 0.0 && access >= tuning - 1e-9);
        tuning * self.active_mw + (access - tuning).max(0.0) * self.doze_mw
    }

    /// Energy of an *unindexed* request, where the radio listens for the
    /// whole access window.
    pub fn energy_unindexed(&self, access: f64) -> f64 {
        access * self.active_mw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let _ = EnergyModel::new(100.0, 0.0);
        let _ = EnergyModel::new(100.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "active >= doze")]
    fn doze_above_active_panics() {
        let _ = EnergyModel::new(5.0, 10.0);
    }

    #[test]
    fn indexing_saves_energy_when_doze_is_cheap() {
        let radio = EnergyModel::typical();
        let access = 12.0;
        let tuning = 0.8;
        assert!(radio.energy(access, tuning) < radio.energy_unindexed(access));
    }

    #[test]
    fn equal_powers_mean_no_saving() {
        let radio = EnergyModel::new(100.0, 100.0);
        assert!((radio.energy(10.0, 1.0) - radio.energy_unindexed(10.0)).abs() < 1e-9);
    }
}
