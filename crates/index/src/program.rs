//! Indexing a whole multi-channel broadcast program and measuring it.

use dbcast_model::{BroadcastProgram, Database, ItemId, ModelError};
use dbcast_workload::RequestTrace;
use serde::{Deserialize, Serialize};

use crate::channel::{optimal_segments, IndexedChannel};
use crate::energy::EnergyModel;

/// Frequency-weighted expected metrics of an indexed program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramMetrics {
    /// Expected access time (seconds) per request.
    pub access: f64,
    /// Expected tuning time (seconds of radio-active time) per request.
    pub tuning: f64,
    /// Expected access time of the same program *without* indexing.
    pub unindexed_access: f64,
}

impl ProgramMetrics {
    /// The access-latency overhead indexing costs, relative.
    pub fn access_overhead(&self) -> f64 {
        self.access / self.unindexed_access - 1.0
    }

    /// Expected per-request energy (mJ) under `radio`, indexed.
    pub fn energy(&self, radio: &EnergyModel) -> f64 {
        radio.energy(self.access, self.tuning)
    }

    /// Expected per-request energy (mJ) without indexing (radio active
    /// for the whole access window).
    pub fn energy_unindexed(&self, radio: &EnergyModel) -> f64 {
        radio.energy_unindexed(self.unindexed_access)
    }
}

/// Empirical per-trace metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceMetrics {
    /// Requests evaluated.
    pub requests: usize,
    /// Mean access time (s).
    pub access: f64,
    /// Mean tuning time (s).
    pub tuning: f64,
}

/// A fully indexed multi-channel broadcast program.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedProgram {
    channels: Vec<IndexedChannel>,
    bandwidth: f64,
}

impl IndexedProgram {
    /// Indexes every non-empty channel of `program` with an explicit
    /// per-channel segment count (entries for empty channels ignored).
    ///
    /// # Errors
    ///
    /// [`ModelError::AssignmentLength`] when `segments` has the wrong
    /// length; channel-construction errors propagate.
    pub fn new(
        program: &BroadcastProgram,
        segments: &[usize],
        index_size: f64,
        header_size: f64,
    ) -> Result<Self, ModelError> {
        if segments.len() != program.channels().len() {
            return Err(ModelError::AssignmentLength {
                expected: program.channels().len(),
                actual: segments.len(),
            });
        }
        let mut channels = Vec::new();
        for (schedule, &m) in program.channels().iter().zip(segments) {
            if schedule.is_empty() {
                continue;
            }
            channels.push(IndexedChannel::new(schedule, m, index_size, header_size)?);
        }
        Ok(IndexedProgram { channels, bandwidth: program.bandwidth() })
    }

    /// Indexes every channel with its own `m* = sqrt(Z_i / index_size)`.
    ///
    /// # Errors
    ///
    /// Channel-construction errors propagate.
    pub fn with_optimal_segments(
        program: &BroadcastProgram,
        index_size: f64,
        header_size: f64,
    ) -> Result<Self, ModelError> {
        let segments: Vec<usize> = program
            .channels()
            .iter()
            .map(|c| {
                if c.is_empty() {
                    1
                } else {
                    optimal_segments(c.cycle_size(), index_size)
                }
            })
            .collect();
        IndexedProgram::new(program, &segments, index_size, header_size)
    }

    /// The indexed channels (empty source channels are dropped).
    pub fn channels(&self) -> &[IndexedChannel] {
        &self.channels
    }

    /// The shared bandwidth (size units / second).
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    fn channel_of(&self, item: ItemId) -> Option<&IndexedChannel> {
        self.channels.iter().find(|c| c.tuning_time(item, self.bandwidth).is_some())
    }

    /// Access time of one request (seconds).
    pub fn access_time(&self, item: ItemId, now: f64) -> Option<f64> {
        self.channel_of(item)?.access_time(item, now, self.bandwidth)
    }

    /// Exact `(access, tuning)` of one request (seconds).
    pub fn request_metrics(&self, item: ItemId, now: f64) -> Option<(f64, f64)> {
        self.channel_of(item)?.request_metrics(item, now, self.bandwidth)
    }

    /// Upper bound on the tuning time of any request for `item`.
    pub fn tuning_time(&self, item: ItemId) -> Option<f64> {
        self.channel_of(item)?.tuning_time(item, self.bandwidth)
    }

    /// Frequency-weighted expected metrics over `db`, with unindexed
    /// access (Eq. 1 of the base paper) as the latency baseline.
    ///
    /// # Errors
    ///
    /// [`ModelError::ItemOutOfRange`] if the program does not carry
    /// some database item.
    pub fn expected_metrics(&self, db: &Database) -> Result<ProgramMetrics, ModelError> {
        let mut access = 0.0;
        let mut tuning = 0.0;
        let mut unindexed = 0.0;
        for d in db.iter() {
            let ch = self.channel_of(d.id()).ok_or(ModelError::ItemOutOfRange {
                item: d.id().index(),
                items: db.len(),
            })?;
            let (e_access, e_tuning) = ch
                .expected_metrics(d.id(), self.bandwidth, 512)
                .expect("channel carries the item");
            access += d.frequency() * e_access;
            tuning += d.frequency() * e_tuning;
            // Unindexed: probe half the *data-only* cycle + download.
            let data_cycle = ch.cycle_size() - ch.segments() as f64 * index_overhead_of(ch);
            unindexed += d.frequency()
                * (data_cycle / (2.0 * self.bandwidth) + d.size() / self.bandwidth);
        }
        Ok(ProgramMetrics { access, tuning, unindexed_access: unindexed })
    }

    /// Evaluates a request trace: per-request access/tuning means.
    ///
    /// # Errors
    ///
    /// [`ModelError::ItemOutOfRange`] if the trace requests an item the
    /// program does not carry.
    pub fn evaluate_trace(&self, trace: &RequestTrace) -> Result<TraceMetrics, ModelError> {
        let mut access = 0.0;
        let mut tuning = 0.0;
        for r in trace.iter() {
            let (a, t) =
                self.request_metrics(r.item, r.time).ok_or(ModelError::ItemOutOfRange {
                    item: r.item.index(),
                    items: usize::MAX,
                })?;
            access += a;
            tuning += t;
        }
        let n = trace.len().max(1) as f64;
        Ok(TraceMetrics { requests: trace.len(), access: access / n, tuning: tuning / n })
    }
}

/// The per-copy index size of a built channel (recovered from layout).
fn index_overhead_of(ch: &IndexedChannel) -> f64 {
    ch.layout()
        .find(|(e, _, _)| matches!(e, crate::channel::LayoutEntry::Index { .. }))
        .map(|(_, _, size)| size)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_alloc::DrpCds;
    use dbcast_model::ChannelAllocator;
    use dbcast_workload::{TraceBuilder, WorkloadBuilder};

    fn setup() -> (Database, BroadcastProgram) {
        let db = WorkloadBuilder::new(40).seed(5).build().unwrap();
        let alloc = DrpCds::new().allocate(&db, 4).unwrap();
        let program = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        (db, program)
    }

    #[test]
    fn optimal_indexing_has_low_tuning_and_bounded_overhead() {
        let (db, program) = setup();
        let indexed = IndexedProgram::with_optimal_segments(&program, 1.0, 0.1).unwrap();
        let m = indexed.expected_metrics(&db).unwrap();
        assert!(m.tuning < m.access, "{m:?}");
        // Indexing cuts tuning to well under a third of the unindexed
        // access time (the exact ratio hovers around 3.4-4.4x across
        // workload instances).
        assert!(m.tuning < m.unindexed_access / 3.0, "{m:?}");
        // Index overhead on latency stays modest at m*.
        assert!(m.access_overhead() < 0.35, "overhead {}", m.access_overhead());
    }

    #[test]
    fn energy_savings_are_dramatic_with_cheap_doze() {
        let (db, program) = setup();
        let indexed = IndexedProgram::with_optimal_segments(&program, 1.0, 0.1).unwrap();
        let m = indexed.expected_metrics(&db).unwrap();
        let radio = EnergyModel::typical();
        let saving = 1.0 - m.energy(&radio) / m.energy_unindexed(&radio);
        assert!(saving > 0.5, "expected >50% energy saving, got {saving:.2}");
    }

    #[test]
    fn optimal_m_beats_extreme_choices() {
        let (db, program) = setup();
        let k = program.channels().len();
        let best = IndexedProgram::with_optimal_segments(&program, 1.0, 0.1).unwrap();
        let m1 = IndexedProgram::new(&program, &vec![1; k], 1.0, 0.1).unwrap();
        let huge = IndexedProgram::new(&program, &vec![64; k], 1.0, 0.1).unwrap();
        let wb = best.expected_metrics(&db).unwrap();
        let w1 = m1.expected_metrics(&db).unwrap();
        let whuge = huge.expected_metrics(&db).unwrap();
        assert!(wb.access <= w1.access + 1e-9);
        assert!(wb.access <= whuge.access + 1e-9);
    }

    #[test]
    fn trace_evaluation_matches_expected_metrics() {
        let (db, program) = setup();
        let indexed = IndexedProgram::with_optimal_segments(&program, 1.0, 0.1).unwrap();
        let expected = indexed.expected_metrics(&db).unwrap();
        let trace = TraceBuilder::new(&db).requests(30_000).seed(6).build().unwrap();
        let measured = indexed.evaluate_trace(&trace).unwrap();
        let rel = (measured.access - expected.access).abs() / expected.access;
        assert!(rel < 0.05, "access {} vs {}", measured.access, expected.access);
        let rel_t = (measured.tuning - expected.tuning).abs() / expected.tuning;
        assert!(rel_t < 0.05, "tuning {} vs {}", measured.tuning, expected.tuning);
    }

    #[test]
    fn wrong_segment_vector_length_errors() {
        let (_, program) = setup();
        assert!(IndexedProgram::new(&program, &[1, 1], 1.0, 0.1).is_err());
    }
}
