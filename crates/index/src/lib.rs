//! **Air indexing** for data broadcasting — the selective-tuning
//! substrate of Imielinski, Viswanathan & Badrinath ("Data on Air",
//! IEEE TKDE 1997; the ICDCS 2005 paper's reference \[11\]).
//!
//! Without an index, a client must listen continuously until its item
//! appears: *tuning time* (radio-active time, the battery cost) equals
//! *access time* (latency). **(1, m) indexing** interleaves `m` copies
//! of a channel index into each broadcast cycle; a client then reads one
//! bucket header, dozes to the next index, reads it, dozes straight to
//! its item, and downloads — tuning time collapses to
//! `header + index + item` while access time grows only by the index
//! overhead.
//!
//! This crate layers indexing *on top of* the allocation work of the
//! main crates: any [`BroadcastProgram`](dbcast_model::BroadcastProgram)
//! (from DRP-CDS or any baseline) can be indexed per channel, measured
//! for expected access time, tuning time, and energy per request, and
//! evaluated against request traces.
//!
//! # Example
//!
//! ```
//! use dbcast_index::{EnergyModel, IndexedProgram};
//! use dbcast_alloc::DrpCds;
//! use dbcast_model::{BroadcastProgram, ChannelAllocator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let db = dbcast_workload::WorkloadBuilder::new(40).seed(1).build()?;
//! let alloc = DrpCds::new().allocate(&db, 4)?;
//! let program = BroadcastProgram::new(&db, &alloc, 10.0)?;
//! let indexed = IndexedProgram::with_optimal_segments(&program, 1.0, 0.1)?;
//! let metrics = indexed.expected_metrics(&db)?;
//! // Tuning time is a small fraction of access time.
//! assert!(metrics.tuning < metrics.access / 2.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod energy;
mod program;

pub use channel::{optimal_segments, IndexedChannel, LayoutEntry};
pub use energy::EnergyModel;
pub use program::{IndexedProgram, ProgramMetrics, TraceMetrics};
