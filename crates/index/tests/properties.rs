//! Property-based tests of air indexing invariants.

use dbcast_index::{optimal_segments, IndexedChannel, LayoutEntry};
use dbcast_model::{Allocation, BroadcastProgram, Database, ItemSpec};
use proptest::prelude::*;

fn single_channel() -> impl Strategy<Value = (Database, BroadcastProgram)> {
    prop::collection::vec((0.01f64..10.0, 0.1f64..50.0), 1..25).prop_map(|pairs| {
        let db =
            Database::try_from_specs(pairs.into_iter().map(|(f, z)| ItemSpec::new(f, z)))
                .unwrap();
        let n = db.len();
        let alloc = Allocation::from_assignment(&db, 1, vec![0; n]).unwrap();
        let program = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        (db, program)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn layout_carries_every_item_and_m_indexes(
        (db, program) in single_channel(),
        m in 1usize..10,
        index_size in 0.1f64..5.0,
    ) {
        let ch = IndexedChannel::new(&program.channels()[0], m, index_size, 0.05).unwrap();
        let effective_m = m.min(db.len());
        prop_assert_eq!(ch.segments(), effective_m);
        let mut item_count = 0usize;
        let mut index_count = 0usize;
        let mut last_end = 0.0f64;
        for (entry, offset, size) in ch.layout() {
            prop_assert!((offset - last_end).abs() < 1e-9, "layout must be gapless");
            last_end = offset + size;
            match entry {
                LayoutEntry::Index { .. } => index_count += 1,
                LayoutEntry::Item { .. } => item_count += 1,
            }
        }
        prop_assert_eq!(item_count, db.len());
        prop_assert_eq!(index_count, effective_m);
        // Cycle = data + m * index.
        let data: f64 = db.iter().map(|d| d.size()).sum();
        let expected = data + effective_m as f64 * index_size;
        prop_assert!((ch.cycle_size() - expected).abs() < 1e-9);
        prop_assert!((last_end - ch.cycle_size()).abs() < 1e-9);
    }

    #[test]
    fn tuning_never_exceeds_access(
        (db, program) in single_channel(),
        m in 1usize..8,
        t in 0.0f64..100.0,
    ) {
        let ch = IndexedChannel::new(&program.channels()[0], m, 0.5, 0.05).unwrap();
        for d in db.iter().take(5) {
            let (access, tuning) = ch.request_metrics(d.id(), t, 10.0).unwrap();
            prop_assert!(tuning <= access + 1e-9, "tuning {tuning} > access {access}");
            // The constant tuning bound dominates the exact value.
            let bound = ch.tuning_time(d.id(), 10.0).unwrap();
            prop_assert!(tuning <= bound + 1e-9);
            // Access is bounded by two indexed cycles.
            prop_assert!(access <= 2.0 * ch.cycle_size() / 10.0 + 1e-9);
        }
    }

    #[test]
    fn next_index_is_within_a_fraction_of_the_cycle(
        (_db, program) in single_channel(),
        m in 1usize..8,
        t in 0.0f64..50.0,
    ) {
        let ch = IndexedChannel::new(&program.channels()[0], m, 0.5, 0.0).unwrap();
        let cycle_time = ch.cycle_size() / 10.0;
        let next = ch.next_index_start(t, 10.0);
        prop_assert!(next >= t - 1e-9);
        // With m copies, an index arrives within one cycle (and on
        // average within cycle/m; the hard bound is one cycle).
        prop_assert!(next - t <= cycle_time + 1e-9);
    }

    #[test]
    fn optimal_segments_is_the_argmin_over_neighbors(
        z_total in 1.0f64..1e4,
        index_size in 0.05f64..10.0,
    ) {
        // m* = round(sqrt(Z/I)) minimizes f(m) = Z/(2m) + m*I/2 over
        // the integers (the standard overhead tradeoff).
        let f = |m: usize| z_total / (2.0 * m as f64) + m as f64 * index_size / 2.0;
        let m = optimal_segments(z_total, index_size);
        prop_assert!(f(m) <= f(m + 1) + 1e-9);
        if m > 1 {
            prop_assert!(f(m) <= f(m - 1) + 1e-9);
        }
    }
}
