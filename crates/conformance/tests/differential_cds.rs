//! The differential CDS battery: the incremental engine behind
//! [`Cds`] must reproduce the paper-literal [`ReferenceCds`] scan
//! **bit-for-bit** on everything this repository can throw at it —
//! the seeded generator corpus, every committed regression entry, and
//! workload-builder instances beyond the generator's size envelope.
//!
//! The per-instance comparison itself lives in the invariant suite
//! (`cds-differential` in `crates/conformance/src/invariants.rs`), so
//! a divergence found here is shrinkable with the same ddmin machinery
//! as every other violation; these tests drive that check across the
//! full corpus and fail on the first diverging instance.

use dbcast_alloc::{Cds, Drp, ReferenceCds};
use dbcast_conformance::{
    corpus, GeneratorConfig, Harness, HarnessConfig, Instance, InstanceGenerator,
};
use dbcast_model::{Allocation, ChannelAllocator, Database};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Bit-compares a full refinement from `start` under both engines.
fn assert_bit_identical(db: &Database, start: Allocation, context: &str) {
    let oracle = ReferenceCds::new().refine(db, start.clone()).unwrap();
    let fast = Cds::new().refine(db, start).unwrap();
    assert_eq!(oracle.steps.len(), fast.steps.len(), "{context}: step counts diverged");
    for (i, (a, b)) in oracle.steps.iter().zip(&fast.steps).enumerate() {
        assert_eq!(a.mv, b.mv, "{context}: step {i} move");
        assert_eq!(
            a.reduction.to_bits(),
            b.reduction.to_bits(),
            "{context}: step {i} reduction ({} vs {})",
            a.reduction,
            b.reduction
        );
        assert_eq!(
            a.cost_after.to_bits(),
            b.cost_after.to_bits(),
            "{context}: step {i} cost_after"
        );
    }
    assert_eq!(oracle.converged, fast.converged, "{context}: convergence flag");
    assert_eq!(
        oracle.allocation.assignment(),
        fast.allocation.assignment(),
        "{context}: final assignment"
    );
    assert_eq!(
        oracle.allocation.total_cost().to_bits(),
        fast.allocation.total_cost().to_bits(),
        "{context}: final Eq. 3 cost"
    );
}

/// Both engines, on every start the invariant suite uses: a seeded
/// random assignment and (when feasible) the DRP rough allocation.
fn check_instance_differential(instance: &Instance, context: &str) {
    let db = match instance.database() {
        Ok(db) => db,
        Err(_) => return, // corpus may hold deliberately invalid features
    };
    let k = instance.channels;
    let mut rng = ChaCha8Rng::seed_from_u64(instance.seed ^ instance.case);
    let random: Vec<usize> = (0..db.len()).map(|_| rng.gen_range(0..k)).collect();
    let start = Allocation::from_assignment(&db, k, random).unwrap();
    assert_bit_identical(&db, start, &format!("{context} (random start)"));
    if k <= db.len() {
        if let Ok(rough) = Drp::new().allocate(&db, k) {
            assert_bit_identical(&db, rough, &format!("{context} (drp start)"));
        }
    }
}

/// Replays the seeded generator corpus through both engines. The same
/// generator configuration as the standard harness, so the instance
/// population matches what `dbcast conformance` fuzzes.
#[test]
fn generator_corpus_is_bit_identical_across_engines() {
    let cfg = HarnessConfig::default();
    let generator = InstanceGenerator::new(GeneratorConfig {
        seed: cfg.seed,
        max_items: cfg.max_items,
        max_channels: cfg.max_channels,
    });
    for case in 0..cfg.cases {
        let instance = generator.instance(case);
        check_instance_differential(&instance, &format!("generated case {case}"));
    }
}

/// Replays every committed regression entry — including `ignore`d ones,
/// whose waiver covers their own invariant, not this one — through both
/// engines.
#[test]
fn committed_corpus_is_bit_identical_across_engines() {
    let entries = corpus::load_dir(&corpus::default_dir()).expect("corpus loads");
    assert!(!entries.is_empty(), "committed corpus is missing");
    for named in &entries {
        check_instance_differential(
            &named.entry.instance,
            &format!("corpus entry {}", named.name),
        );
    }
}

/// The full harness (all invariants, shrinking enabled) stays clean
/// with the differential check in the suite — the gate CI runs.
#[test]
fn standard_harness_run_is_clean_with_differential_check() {
    let report = Harness::new(HarnessConfig {
        cases: 60,
        sim_stride: 0, // the sim check is covered by the harness suite
        ..HarnessConfig::default()
    })
    .run();
    assert!(report.is_clean(), "{}", report.render());
}

/// Instances beyond the generator's `N ≤ 40` envelope: skewed diverse
/// workloads at a few hundred items, where the incremental engine's
/// lazy invalidation actually kicks in (hot channels, demoted cached
/// bests, runner-up recoveries).
#[test]
fn midsize_workloads_are_bit_identical_across_engines() {
    use dbcast_workload::{SizeDistribution, WorkloadBuilder};
    for (n, k, seed) in [(200usize, 12usize, 7u64), (350, 24, 31), (500, 16, 5)] {
        let db = WorkloadBuilder::new(n)
            .skewness(0.8)
            .sizes(SizeDistribution::Diversity { phi_max: 2.0 })
            .seed(seed)
            .build()
            .unwrap();
        let rough = Drp::new().allocate(&db, k).unwrap();
        assert_bit_identical(&db, rough, &format!("workload n={n} k={k} seed={seed}"));
    }
}
