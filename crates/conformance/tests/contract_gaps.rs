//! The two contract gaps discovered by the first conformance sweep,
//! pinned as explicit unit tests.
//!
//! The PR-2 fuzzing campaign found that two "obvious" invariants do NOT
//! hold, and the registry contracts were weakened accordingly
//! (`crates/conformance/src/registry.rs`). A corpus entry replays each
//! minimized witness on every run, but a corpus entry only asserts that
//! the *corrected* contract is violation-free — it cannot assert that
//! the gap is still *there*. These tests pin the gaps themselves: if an
//! algorithm change ever makes DRP-CDS permutation-invariant or VF^K
//! K-monotone, the corresponding test fails and the contract in the
//! registry (plus the corpus note) should be re-strengthened in the
//! same commit.

use dbcast_alloc::{Cds, DrpCds, ReferenceCds};
use dbcast_baselines::Vfk;
use dbcast_model::{Allocation, ChannelAllocator, Database, ItemSpec};

/// The minimized DRP-CDS witness from
/// `corpus/drp-cds-permutation.json`: 20 equal-size items, K = 5.
fn permutation_witness() -> Vec<ItemSpec> {
    [
        1.0,
        0.4,
        0.1,
        0.08,
        0.06,
        0.05,
        0.05,
        0.04,
        0.03,
        0.03,
        0.03,
        0.02,
        0.013762995784803767,
        0.01,
        0.01,
        0.01,
        0.01,
        0.01,
        0.01,
        0.009000000000000001,
    ]
    .iter()
    .map(|&f| ItemSpec::new(f, 1.0))
    .collect()
}

/// DRP-CDS is *not* permutation-invariant: CDS breaks ties between
/// equal-reduction moves by item id, so relabeling items can steer the
/// steepest descent into a different local optimum of Eq. 3.
///
/// On the pinned witness, swapping the two adjacent items with
/// frequencies 0.06 and 0.05 (ids 4 and 5) moves the refined cost from
/// ≈ 2.2511 to ≈ 2.2328 — the *relabeled* input converges to the better
/// optimum. Neither order dominates in general; the point is that the
/// outputs differ at all, which is why the registry contract for
/// DRP-CDS deliberately omits `permutation-invariance`.
#[test]
fn drp_cds_is_sensitive_to_item_relabeling() {
    let specs = permutation_witness();
    let mut relabeled = specs.clone();
    relabeled.swap(4, 5);

    let original = Database::try_from_specs(specs).unwrap();
    let relabeled = Database::try_from_specs(relabeled).unwrap();

    let cost_original = DrpCds::new().allocate(&original, 5).unwrap().total_cost();
    let cost_relabeled = DrpCds::new().allocate(&relabeled, 5).unwrap().total_cost();

    // Items 4 and 5 have equal sizes, and after the swap the database
    // holds the same multiset of (frequency, size) pairs, so a
    // permutation-invariant allocator would report identical costs.
    assert!(
        (cost_original - cost_relabeled).abs() > 1e-6,
        "DRP-CDS became permutation-invariant (cost {cost_original} both ways); \
         re-strengthen its contract in conformance/src/registry.rs and update \
         corpus/drp-cds-permutation.json"
    );

    // Pin the witness magnitudes so silent algorithm drift shows up too.
    assert!((cost_original - 2.251_063_603_896).abs() < 1e-9, "got {cost_original}");
    assert!((cost_relabeled - 2.232_841_436_845).abs() < 1e-9, "got {cost_relabeled}");
}

/// VF^K is *not* K-monotone: one more channel can make its Eq. 3 cost
/// worse. VF^K partitions the frequency-sorted order while ignoring
/// sizes, so the re-partition at K+1 can co-locate a large item with
/// hot small ones that K kept apart. The paper's own Figure 5 shows the
/// same non-monotone behavior for VF^K under size diversity.
///
/// The pinned witness from `corpus/vfk-k-monotonicity.json`: 9 items,
/// one of size 90 among size-1 items; the cost at K = 5 (≈ 16.24) is
/// ~45% *worse* than at K = 4 (≈ 11.24).
#[test]
fn vfk_cost_increases_with_an_extra_channel() {
    let specs = vec![
        ItemSpec::new(1.0, 1.0),
        ItemSpec::new(0.4, 1.0),
        ItemSpec::new(0.2, 1.0),
        ItemSpec::new(0.135_063_339_372_222_4, 90.0),
        ItemSpec::new(0.08, 1.0),
        ItemSpec::new(0.06, 1.0),
        ItemSpec::new(0.05, 1.0),
        ItemSpec::new(0.04, 1.0),
        ItemSpec::new(0.04, 1.0),
    ];
    let db = Database::try_from_specs(specs).unwrap();

    let cost_k4 = Vfk::new().allocate(&db, 4).unwrap().total_cost();
    let cost_k5 = Vfk::new().allocate(&db, 5).unwrap().total_cost();

    assert!(
        cost_k5 > cost_k4,
        "VF^K became K-monotone on the pinned witness (K=4: {cost_k4}, K=5: \
         {cost_k5}); re-strengthen its contract in conformance/src/registry.rs and \
         update corpus/vfk-k-monotonicity.json"
    );

    assert!((cost_k4 - 11.236_933_736_929).abs() < 1e-9, "got {cost_k4}");
    assert!((cost_k5 - 16.239_269_475_181).abs() < 1e-9, "got {cost_k5}");
}

/// The item-id tie-break is not an artifact of small instances — it is
/// load-bearing at production scale, and the incremental engine must
/// preserve it exactly.
///
/// The witness: 512 items in 64 blocks of 8 *identical* items
/// (identical frequency and size), every block starting co-located on
/// one channel. Moving any item of a block to a given destination
/// produces a bit-identical Eq. 4 reduction, so the steepest-descent
/// scan faces genuine ties at (almost) every step and resolves them by
/// lowest item id, then lowest destination channel. If the incremental
/// engine's lazy-invalidation cache ever surfaced a *stale sibling*
/// (higher id, equal reduction) the step sequences would diverge here
/// long before any cost difference appeared.
#[test]
fn incremental_engine_preserves_item_id_tie_break_at_scale() {
    const BLOCKS: usize = 64;
    const BLOCK_SIZE: usize = 8;
    const K: usize = 8;

    // Zipf-ish block frequencies with mildly diverse sizes; items
    // within a block are exact clones.
    let specs: Vec<ItemSpec> = (0..BLOCKS)
        .flat_map(|b| {
            let f = 1.0 / (b + 1) as f64;
            let z = 1.0 + (b % 4) as f64 * 0.5;
            std::iter::repeat_n(ItemSpec::new(f, z), BLOCK_SIZE)
        })
        .collect();
    let db = Database::try_from_specs(specs).unwrap();

    // Block b starts whole on channel b % K, keeping the clones
    // co-located so their candidate moves tie bit-for-bit.
    let assignment: Vec<usize> =
        (0..BLOCKS).flat_map(|b| std::iter::repeat_n(b % K, BLOCK_SIZE)).collect();
    let start = Allocation::from_assignment(&db, K, assignment.clone()).unwrap();

    let oracle = ReferenceCds::new().refine(&db, start.clone()).unwrap();
    let fast = Cds::new().refine(&db, start).unwrap();

    // Bit-for-bit step identity between the exhaustive oracle and the
    // incremental engine, across the whole descent.
    assert_eq!(oracle.steps.len(), fast.steps.len(), "step counts diverged");
    for (i, (a, b)) in oracle.steps.iter().zip(&fast.steps).enumerate() {
        assert_eq!(a.mv, b.mv, "step {i} move");
        assert_eq!(a.reduction.to_bits(), b.reduction.to_bits(), "step {i} reduction");
        assert_eq!(a.cost_after.to_bits(), b.cost_after.to_bits(), "step {i} cost");
    }
    assert_eq!(oracle.allocation.assignment(), fast.allocation.assignment());
    assert_eq!(
        oracle.allocation.total_cost().to_bits(),
        fast.allocation.total_cost().to_bits()
    );

    // The ties are real and resolved by id: replay the descent and
    // check every moved item is the lowest-id clone among its
    // co-located siblings at the moment of its move.
    let mut live = assignment;
    let mut tied_steps = 0usize;
    for (i, step) in oracle.steps.iter().enumerate() {
        let x = step.mv.item.index();
        let from = usize::from(step.mv.from);
        assert_eq!(live[x], from, "step {i} moved an item from the wrong channel");
        let block = x / BLOCK_SIZE;
        let siblings = (block * BLOCK_SIZE..(block + 1) * BLOCK_SIZE)
            .filter(|&y| live[y] == from)
            .collect::<Vec<_>>();
        if siblings.len() > 1 {
            tied_steps += 1;
        }
        assert_eq!(
            siblings.first().copied(),
            Some(x),
            "step {i}: item {x} moved while a lower-id identical sibling \
             {siblings:?} shared its channel — the id tie-break broke"
        );
        live[x] = usize::from(step.mv.to);
    }
    assert!(
        tied_steps > 10,
        "only {tied_steps} tied steps — the witness lost its ties; rebuild it"
    );
    assert!(oracle.converged, "the witness descent should converge");
}
