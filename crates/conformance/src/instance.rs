//! A conformance *instance*: the raw, replayable description of one
//! fuzzing case.
//!
//! Instances carry pre-normalization `(frequency, size)` pairs rather
//! than a built [`Database`] so that corpus files stay human-editable
//! and metamorphic transformations (permutation, scaling) act on the
//! exact values the generator drew.

use dbcast_model::{Database, ItemSpec, ModelError};
use serde::{Deserialize, Serialize};

/// Raw features of one item, before frequency normalization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ItemFeatures {
    /// Raw access popularity (any positive finite value; the model
    /// normalizes frequencies to sum to 1 at construction).
    pub frequency: f64,
    /// Item size in size units.
    pub size: f64,
}

/// One generated or hand-written conformance case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Raw per-item features in id order.
    pub items: Vec<ItemFeatures>,
    /// Requested channel count `K`.
    pub channels: usize,
    /// The structural shape the generator drew this case from (e.g.
    /// `"zipf-diverse"`, `"n-less-than-k"`); `"manual"` for
    /// hand-written corpus entries.
    pub shape: String,
    /// Seed of the generator run that produced this case (0 for
    /// hand-written entries).
    pub seed: u64,
    /// Case index within that generator run.
    pub case: u64,
}

impl Instance {
    /// A hand-written instance (shape `"manual"`, seed/case 0).
    pub fn manual(items: Vec<ItemFeatures>, channels: usize) -> Self {
        Instance { items, channels, shape: "manual".to_string(), seed: 0, case: 0 }
    }

    /// Number of items `N`.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the instance has no items (invalid; kept so shrinking
    /// can detect over-shrunk candidates).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Builds the model [`Database`] (normalizing frequencies).
    ///
    /// # Errors
    ///
    /// Whatever [`Database::try_from_specs`] rejects — corpus files are
    /// user input and may encode invalid features on purpose.
    pub fn database(&self) -> Result<Database, ModelError> {
        Database::try_from_specs(
            self.items.iter().map(|it| ItemSpec::new(it.frequency, it.size)),
        )
    }

    /// The same instance with items reordered by `perm` (`perm[i]` is
    /// the old index of the item placed at new position `i`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..len`.
    pub fn permuted(&self, perm: &[usize]) -> Instance {
        assert_eq!(perm.len(), self.items.len(), "permutation length mismatch");
        let mut inst = self.clone();
        inst.items = perm.iter().map(|&old| self.items[old]).collect();
        inst
    }

    /// The same instance with every size multiplied by `factor`.
    pub fn scaled_sizes(&self, factor: f64) -> Instance {
        let mut inst = self.clone();
        for it in &mut inst.items {
            it.size *= factor;
        }
        inst
    }

    /// The same instance with every raw frequency multiplied by
    /// `factor` (a no-op after normalization when `factor` is exact in
    /// binary floating point, e.g. a power of two).
    pub fn scaled_frequencies(&self, factor: f64) -> Instance {
        let mut inst = self.clone();
        for it in &mut inst.items {
            it.frequency *= factor;
        }
        inst
    }

    /// A one-line human-readable summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "{} (N = {}, K = {}, seed {}, case {})",
            self.shape,
            self.items.len(),
            self.channels,
            self.seed,
            self.case
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::manual(
            vec![
                ItemFeatures { frequency: 3.0, size: 2.0 },
                ItemFeatures { frequency: 1.0, size: 8.0 },
            ],
            2,
        )
    }

    #[test]
    fn database_normalizes() {
        let db = inst().database().unwrap();
        assert!((db.items()[0].frequency() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn permutation_reorders() {
        let p = inst().permuted(&[1, 0]);
        assert_eq!(p.items[0].size, 8.0);
        assert_eq!(p.items[1].size, 2.0);
    }

    #[test]
    fn scaling_acts_on_raw_features() {
        let s = inst().scaled_sizes(2.0);
        assert_eq!(s.items[0].size, 4.0);
        let f = inst().scaled_frequencies(4.0);
        assert_eq!(f.items[0].frequency, 12.0);
        // Power-of-two frequency scaling is invisible after normalization.
        let db_a = inst().database().unwrap();
        let db_b = f.database().unwrap();
        assert_eq!(db_a, db_b);
    }

    #[test]
    fn json_roundtrip() {
        let i = inst();
        let text = serde_json::to_string(&i).unwrap();
        let back: Instance = serde_json::from_str(&text).unwrap();
        assert_eq!(i, back);
    }
}
