//! The driver that ties generator, registry, invariants, shrinking and
//! corpus together.
//!
//! One [`Harness::run`] call generates `cases` instances from a seed,
//! checks every registered subject against the full invariant suite
//! (routing small instances through the exact oracle), shrinks each
//! failure to a minimal reproducer and returns a [`ConformanceReport`].
//! The same entry points back the `dbcast conformance` CLI subcommand,
//! the per-crate property tests and the CI corpus replay.

use crate::corpus::NamedEntry;
use crate::generator::{GeneratorConfig, InstanceGenerator};
use crate::instance::Instance;
use crate::invariants::{CheckConfig, Violation};
use crate::registry::{standard_subjects, Subject};
use crate::shrink::{shrink, ShrinkConfig};

/// Configuration of one conformance run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Run seed; every case is derived from `(seed, case index)`.
    pub seed: u64,
    /// Number of generated cases.
    pub cases: u64,
    /// Largest generated `N`.
    pub max_items: usize,
    /// Largest generated `K`.
    pub max_channels: usize,
    /// Oracle routing ceiling: instances with at most this many items
    /// (and [`HarnessConfig::oracle_max_channels`] channels) are also
    /// checked against [`dbcast_baselines::ExactBnB`].
    pub oracle_max_items: usize,
    /// See [`HarnessConfig::oracle_max_items`].
    pub oracle_max_channels: usize,
    /// Run the analytical-vs-simulated agreement check on every
    /// `sim_stride`-th case (0 disables it; it is the most expensive
    /// check in the suite).
    pub sim_stride: u64,
    /// Shrink failures to minimal reproducers before reporting.
    pub shrink: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            seed: 0,
            cases: 200,
            max_items: 40,
            max_channels: 8,
            oracle_max_items: 10,
            oracle_max_channels: 4,
            sim_stride: 25,
            shrink: true,
        }
    }
}

/// The outcome of a conformance run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceReport {
    /// Cases generated and checked.
    pub cases: u64,
    /// Cases additionally routed through the exact oracle.
    pub oracle_cases: u64,
    /// Cases on which the simulator agreement check ran.
    pub sim_cases: u64,
    /// Every violation found, shrunk when shrinking was enabled.
    pub violations: Vec<Violation>,
}

impl ConformanceReport {
    /// `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One line per violation plus a header — the CLI's plain output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "conformance: {} cases ({} oracle-checked, {} sim-checked), {} violation(s)\n",
            self.cases,
            self.oracle_cases,
            self.sim_cases,
            self.violations.len()
        );
        for v in &self.violations {
            out.push_str(&format!("  {v}\n"));
        }
        out
    }
}

/// The conformance harness: a subject registry plus tuning knobs.
pub struct Harness {
    cfg: HarnessConfig,
    subjects: Vec<Subject>,
}

impl Harness {
    /// A harness over the standard registry (every production
    /// allocator, GOPT strided).
    pub fn new(cfg: HarnessConfig) -> Self {
        let subjects = standard_subjects(cfg.seed);
        Harness { cfg, subjects }
    }

    /// A harness over a caller-chosen registry — used by per-crate
    /// property tests that focus on their own allocators.
    pub fn with_subjects(cfg: HarnessConfig, subjects: Vec<Subject>) -> Self {
        Harness { cfg, subjects }
    }

    /// The active configuration.
    pub fn config(&self) -> &HarnessConfig {
        &self.cfg
    }

    /// Generates and checks `cfg.cases` instances, shrinking failures.
    pub fn run(&self) -> ConformanceReport {
        let _span = dbcast_obs::span!("conformance.run");
        let generator = InstanceGenerator::new(GeneratorConfig {
            seed: self.cfg.seed,
            max_items: self.cfg.max_items,
            max_channels: self.cfg.max_channels,
        });
        let mut report = ConformanceReport {
            cases: self.cfg.cases,
            oracle_cases: 0,
            sim_cases: 0,
            violations: Vec::new(),
        };
        for case in 0..self.cfg.cases {
            let instance = generator.instance(case);
            let check = self.check_config_for(case, &instance);
            if instance.len() <= check.oracle_max_items
                && instance.channels <= check.oracle_max_channels
            {
                report.oracle_cases += 1;
            }
            if check.check_sim {
                report.sim_cases += 1;
            }
            let violations = self.check_with(&instance, &check);
            dbcast_obs::counter!("conformance.cases").inc();
            if !violations.is_empty() {
                dbcast_obs::counter!("conformance.violations").add(violations.len() as u64);
                report.violations.extend(self.minimize(violations, &check));
            }
        }
        dbcast_obs::gauge!("conformance.last_run.violations")
            .set(report.violations.len() as f64);
        report
    }

    /// Checks one explicit instance (corpus replay, external callers).
    /// The simulator check follows the instance's own case stride, so a
    /// replayed corpus entry is checked exactly as its original run
    /// checked it.
    pub fn check_instance(&self, instance: &Instance) -> Vec<Violation> {
        let check = self.check_config_for(instance.case, instance);
        self.check_with(instance, &check)
    }

    /// Replays corpus entries: returns the violations of every
    /// non-ignored entry (which must therefore be empty for a green
    /// build) and, separately, the names of ignored entries that now
    /// pass and should have their `ignore` flag removed.
    pub fn replay(&self, corpus: &[NamedEntry]) -> (Vec<Violation>, Vec<String>) {
        let mut regressions = Vec::new();
        let mut fixed = Vec::new();
        for named in corpus {
            let violations = self.check_instance(&named.entry.instance);
            dbcast_obs::counter!("conformance.corpus.replayed").inc();
            if named.entry.ignore {
                if violations.is_empty() {
                    fixed.push(named.name.clone());
                }
            } else {
                regressions.extend(violations);
            }
        }
        (regressions, fixed)
    }

    fn check_config_for(&self, case: u64, _instance: &Instance) -> CheckConfig {
        CheckConfig {
            oracle_max_items: self.cfg.oracle_max_items,
            oracle_max_channels: self.cfg.oracle_max_channels,
            check_sim: self.cfg.sim_stride > 0 && case.is_multiple_of(self.cfg.sim_stride),
            ..CheckConfig::default()
        }
    }

    fn check_with(&self, instance: &Instance, check: &CheckConfig) -> Vec<Violation> {
        let active: Vec<&Subject> = self
            .subjects
            .iter()
            .filter(|s| s.stride <= 1 || instance.case.is_multiple_of(s.stride))
            .collect();
        // check_instance takes a slice of owned subjects; rebuild a
        // borrowed view without cloning allocators.
        check_filtered(instance, &active, check)
    }

    /// Shrinks each violation to a minimal instance that still violates
    /// the *same* invariant (for the same algorithm).
    fn minimize(&self, violations: Vec<Violation>, check: &CheckConfig) -> Vec<Violation> {
        if !self.cfg.shrink {
            return violations;
        }
        violations
            .into_iter()
            .map(|v| {
                let _span = dbcast_obs::span!("conformance.shrink");
                let target = (v.invariant.clone(), v.algorithm.clone());
                let small = shrink(&v.instance, &ShrinkConfig::default(), |candidate| {
                    self.check_with(candidate, check)
                        .iter()
                        .any(|c| (c.invariant.clone(), c.algorithm.clone()) == target)
                });
                // Re-derive the detail from the shrunk instance so the
                // report matches what the corpus entry will replay.
                self.check_with(&small, check)
                    .into_iter()
                    .find(|c| (c.invariant == v.invariant) && (c.algorithm == v.algorithm))
                    .unwrap_or(v)
            })
            .collect()
    }
}

fn check_filtered(
    instance: &Instance,
    subjects: &[&Subject],
    check: &CheckConfig,
) -> Vec<Violation> {
    // `check_instance` wants `&[Subject]`; we only have borrows, so go
    // through the slice-of-refs entry point.
    crate::invariants::check_instance_refs(instance, subjects, check)
}

// Re-exported here so the harness module reads top-down; the actual
// logic lives in `invariants`.
pub use crate::invariants::check_instance as check_one;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusEntry;
    use crate::instance::ItemFeatures;

    fn quick_cfg() -> HarnessConfig {
        HarnessConfig { cases: 40, sim_stride: 20, max_items: 14, ..Default::default() }
    }

    #[test]
    fn a_short_standard_run_is_clean() {
        let report = Harness::new(quick_cfg()).run();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.cases, 40);
        assert!(report.oracle_cases > 0, "no case was oracle-sized");
        assert!(report.sim_cases >= 2);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = Harness::new(quick_cfg()).run();
        let b = Harness::new(quick_cfg()).run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_explore_different_cases() {
        let mut cfg = quick_cfg();
        cfg.sim_stride = 0;
        let g0 = InstanceGenerator::new(GeneratorConfig {
            seed: cfg.seed,
            max_items: cfg.max_items,
            max_channels: cfg.max_channels,
        });
        cfg.seed = 99;
        let g1 = InstanceGenerator::new(GeneratorConfig {
            seed: cfg.seed,
            max_items: cfg.max_items,
            max_channels: cfg.max_channels,
        });
        assert_ne!(g0.instance(0), g1.instance(0));
    }

    #[test]
    fn replay_flags_fixed_ignored_entries_and_clean_regressions() {
        let harness = Harness::new(HarnessConfig { shrink: false, ..quick_cfg() });
        let clean = Instance::manual(
            vec![
                ItemFeatures { frequency: 0.7, size: 1.0 },
                ItemFeatures { frequency: 0.3, size: 4.0 },
            ],
            2,
        );
        let corpus = vec![
            NamedEntry {
                name: "fixed-regression".to_string(),
                entry: CorpusEntry {
                    instance: clean.clone(),
                    invariant: "no-panic".to_string(),
                    algorithm: Some("DRP".to_string()),
                    detail: "historic".to_string(),
                    ignore: false,
                    note: "".to_string(),
                },
            },
            NamedEntry {
                name: "stale-ignore".to_string(),
                entry: CorpusEntry {
                    instance: clean,
                    invariant: "no-panic".to_string(),
                    algorithm: None,
                    detail: "historic".to_string(),
                    ignore: true,
                    note: "".to_string(),
                },
            },
        ];
        let (regressions, fixed) = harness.replay(&corpus);
        assert!(regressions.is_empty(), "{regressions:?}");
        assert_eq!(fixed, vec!["stale-ignore".to_string()]);
    }

    #[test]
    fn shrinking_reduces_a_seeded_failure() {
        // A subject that fails whenever N ≥ 3 — the shrunk repro must
        // be exactly 3 items.
        use dbcast_model::{AllocError, Allocation, ChannelAllocator, Database};
        struct FailsOnThree;
        impl ChannelAllocator for FailsOnThree {
            fn name(&self) -> &str {
                "FAILS-ON-3"
            }
            fn allocate(
                &self,
                db: &Database,
                channels: usize,
            ) -> Result<Allocation, AllocError> {
                assert!(db.len() < 3, "injected failure");
                let assignment = (0..db.len()).map(|i| i % channels).collect();
                Ok(Allocation::from_assignment(db, channels, assignment)?)
            }
        }
        let subjects = vec![Subject {
            allocator: Box::new(FailsOnThree),
            requires_k_le_n: false,
            permutation_invariant: false,
            k_monotone: false,
            stride: 1,
        }];
        let harness = Harness::with_subjects(
            HarnessConfig { cases: 30, sim_stride: 0, ..Default::default() },
            subjects,
        );
        let report = harness.run();
        assert!(!report.is_clean(), "the injected failure never triggered");
        for v in &report.violations {
            assert_eq!(v.invariant, "no-panic");
            assert_eq!(v.instance.len(), 3, "not minimal: {}", v.instance.summary());
        }
    }
}
