//! Failure minimization: given an instance that violates an invariant,
//! find a smaller instance that still violates it before anything is
//! reported or filed into the corpus.
//!
//! The shrinker is a plain greedy delta-debugger over three reduction
//! families, iterated to a fixed point (bounded by a predicate-call
//! budget, since each probe re-runs allocators):
//!
//! 1. **Bisect items** — drop halves, then quarters, … of the item
//!    list, ddmin-style.
//! 2. **Reduce channels** — smaller `K` means smaller search spaces in
//!    every allocator the repro exercises.
//! 3. **Round features** — snap each frequency/size to `1.0` (and then
//!    to one significant digit), turning noisy reals into values a
//!    human can reason about in a corpus file.

use crate::instance::Instance;

/// Bounds of one shrink run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkConfig {
    /// Maximum number of predicate evaluations (each one typically
    /// re-runs the full invariant suite on a candidate).
    pub max_probes: usize,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig { max_probes: 400 }
    }
}

/// Shrinks `instance` while `still_fails` keeps returning `true`,
/// returning the smallest failing instance found (possibly the
/// original). The predicate is never trusted on the original — callers
/// pass an instance they already observed failing.
pub fn shrink<F>(instance: &Instance, cfg: &ShrinkConfig, mut still_fails: F) -> Instance
where
    F: FnMut(&Instance) -> bool,
{
    let mut best = instance.clone();
    let mut probes = 0usize;
    // Iterate all passes until none of them makes progress.
    loop {
        let before = fingerprint(&best);
        shrink_items(&mut best, cfg, &mut probes, &mut still_fails);
        shrink_channels(&mut best, cfg, &mut probes, &mut still_fails);
        round_features(&mut best, cfg, &mut probes, &mut still_fails);
        if probes >= cfg.max_probes || fingerprint(&best) == before {
            return best;
        }
    }
}

/// Cheap progress detector for the fixed-point loop.
fn fingerprint(inst: &Instance) -> (usize, usize, u64) {
    let feature_bits = inst.items.iter().fold(0u64, |acc, it| {
        acc.wrapping_mul(31)
            .wrapping_add(it.frequency.to_bits() ^ it.size.to_bits().rotate_left(17))
    });
    (inst.items.len(), inst.channels, feature_bits)
}

fn try_candidate<F>(
    best: &mut Instance,
    candidate: Instance,
    cfg: &ShrinkConfig,
    probes: &mut usize,
    still_fails: &mut F,
) -> bool
where
    F: FnMut(&Instance) -> bool,
{
    if *probes >= cfg.max_probes || candidate.is_empty() || candidate.channels == 0 {
        return false;
    }
    *probes += 1;
    if still_fails(&candidate) {
        *best = candidate;
        true
    } else {
        false
    }
}

/// ddmin over the item list: try removing chunks of shrinking size.
fn shrink_items<F>(
    best: &mut Instance,
    cfg: &ShrinkConfig,
    probes: &mut usize,
    still_fails: &mut F,
) where
    F: FnMut(&Instance) -> bool,
{
    let mut chunk = best.len() / 2;
    while chunk >= 1 {
        let mut start = 0;
        while start < best.len() && best.len() > 1 {
            let mut candidate = best.clone();
            let end = (start + chunk).min(candidate.items.len());
            candidate.items.drain(start..end);
            if try_candidate(best, candidate, cfg, probes, still_fails) {
                // Chunk removed; retry the same offset against the
                // shorter list.
                continue;
            }
            start += chunk;
            if *probes >= cfg.max_probes {
                return;
            }
        }
        chunk /= 2;
    }
}

/// Lower `K` as far as the failure allows (binary-search-free linear
/// walk — `K` is at most a handful).
fn shrink_channels<F>(
    best: &mut Instance,
    cfg: &ShrinkConfig,
    probes: &mut usize,
    still_fails: &mut F,
) where
    F: FnMut(&Instance) -> bool,
{
    while best.channels > 1 {
        let mut candidate = best.clone();
        candidate.channels -= 1;
        if !try_candidate(best, candidate, cfg, probes, still_fails) {
            return;
        }
    }
}

/// Snap features toward human-readable values: first `1.0`, then one
/// significant digit.
fn round_features<F>(
    best: &mut Instance,
    cfg: &ShrinkConfig,
    probes: &mut usize,
    still_fails: &mut F,
) where
    F: FnMut(&Instance) -> bool,
{
    for idx in 0..best.len() {
        for field in [Field::Frequency, Field::Size] {
            let current = field.get(&best.items[idx]);
            for replacement in [1.0, round_to_one_digit(current)] {
                if replacement == current || !replacement.is_finite() || replacement <= 0.0
                {
                    continue;
                }
                let mut candidate = best.clone();
                field.set(&mut candidate.items[idx], replacement);
                try_candidate(best, candidate, cfg, probes, still_fails);
                if *probes >= cfg.max_probes {
                    return;
                }
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Field {
    Frequency,
    Size,
}

impl Field {
    fn get(self, it: &crate::instance::ItemFeatures) -> f64 {
        match self {
            Field::Frequency => it.frequency,
            Field::Size => it.size,
        }
    }
    fn set(self, it: &mut crate::instance::ItemFeatures, v: f64) {
        match self {
            Field::Frequency => it.frequency = v,
            Field::Size => it.size = v,
        }
    }
}

/// `1234.5 -> 1000.0`, `0.0123 -> 0.01`: keeps the magnitude, drops the
/// noise.
fn round_to_one_digit(v: f64) -> f64 {
    if !v.is_finite() || v <= 0.0 {
        return v;
    }
    let exp = v.abs().log10().floor();
    let scale = 10f64.powf(exp);
    (v / scale).round() * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ItemFeatures;

    fn noisy_instance(n: usize) -> Instance {
        Instance::manual(
            (0..n)
                .map(|i| ItemFeatures {
                    frequency: 0.317 + i as f64 * 0.211,
                    size: 3.77 + i as f64,
                })
                .collect(),
            4,
        )
    }

    #[test]
    fn shrinks_to_a_single_item_when_anything_fails() {
        // Predicate "always fails" — the minimum is one item, K = 1,
        // with both features snapped to 1.0.
        let out = shrink(&noisy_instance(20), &ShrinkConfig::default(), |_| true);
        assert_eq!(out.len(), 1);
        assert_eq!(out.channels, 1);
        assert_eq!(out.items[0], ItemFeatures { frequency: 1.0, size: 1.0 });
    }

    #[test]
    fn preserves_the_property_that_fails() {
        // Failure requires ≥ 3 items and K ≥ 2: shrink must stop there.
        let out = shrink(&noisy_instance(20), &ShrinkConfig::default(), |i| {
            i.len() >= 3 && i.channels >= 2
        });
        assert_eq!(out.len(), 3);
        assert_eq!(out.channels, 2);
    }

    #[test]
    fn probe_budget_is_respected() {
        let mut calls = 0usize;
        let cfg = ShrinkConfig { max_probes: 17 };
        shrink(&noisy_instance(30), &cfg, |_| {
            calls += 1;
            true
        });
        assert!(calls <= 17, "{calls} probes for a 17-probe budget");
    }

    #[test]
    fn rounding_keeps_magnitude() {
        assert_eq!(round_to_one_digit(1234.5), 1000.0);
        assert_eq!(round_to_one_digit(0.0123), 0.01);
        assert_eq!(round_to_one_digit(9.6), 10.0);
    }
}
