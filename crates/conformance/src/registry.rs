//! The registry of allocators under test, with their declared
//! contracts.
//!
//! Each [`Subject`] pairs a [`ChannelAllocator`] with the guarantees it
//! claims; the harness checks exactly what is claimed, so a subject
//! that does not promise permutation invariance (e.g. the id-order
//! round-robin FLAT) is never flagged for lacking it.

use dbcast_alloc::{Drp, DrpCds};
use dbcast_baselines::{ContiguousDp, Flat, Gopt, GoptConfig, Greedy, Vfk};
use dbcast_model::ChannelAllocator;

/// One allocator plus its declared contract.
pub struct Subject {
    /// The algorithm under test.
    pub allocator: Box<dyn ChannelAllocator>,
    /// The algorithm requires `K ≤ N` (every channel non-empty) and
    /// must reject `K > N` with [`dbcast_model::AllocError::Infeasible`].
    /// Subjects without this flag must *succeed* on `K > N` and return
    /// exactly `K` (possibly empty-tail) groups.
    pub requires_k_le_n: bool,
    /// Allocation *cost* is invariant under item relabeling (checked
    /// only on instances without cross-item sort-key ties; see
    /// [`crate::invariants`]).
    pub permutation_invariant: bool,
    /// Cost is non-increasing in `K` by construction (exact searches
    /// and iterative-splitting schemes).
    pub k_monotone: bool,
    /// Run this subject only on every `stride`-th case (1 = always);
    /// used to keep expensive subjects (GOPT) from dominating runtime.
    pub stride: u64,
}

impl Subject {
    /// The subject's report name.
    pub fn name(&self) -> &str {
        self.allocator.name()
    }
}

impl std::fmt::Debug for Subject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subject")
            .field("name", &self.allocator.name())
            .field("requires_k_le_n", &self.requires_k_le_n)
            .field("permutation_invariant", &self.permutation_invariant)
            .field("k_monotone", &self.k_monotone)
            .field("stride", &self.stride)
            .finish()
    }
}

/// The full standard registry: every production allocator in the
/// workspace. `seed` parameterizes the randomized subjects (GOPT).
///
/// GOPT runs with a deliberately small population/generation budget —
/// conformance checks its *contract* (validity, determinism,
/// feasibility, never beating the exact optimum), not its solution
/// quality, which `tests/cross_algorithm.rs` covers with a full budget.
pub fn standard_subjects(seed: u64) -> Vec<Subject> {
    let mut subjects = core_subjects();
    subjects.push(Subject {
        allocator: Box::new(Gopt::new(GoptConfig {
            population: 24,
            max_generations: 40,
            stagnation_limit: 12,
            seed,
            ..GoptConfig::default()
        })),
        requires_k_le_n: false,
        // The GA's trajectory depends on gene order, so only the
        // structural contract is claimed.
        permutation_invariant: false,
        k_monotone: false,
        stride: 16,
    });
    subjects
}

/// The deterministic subjects (everything except GOPT) — cheap enough
/// to run on every case.
pub fn core_subjects() -> Vec<Subject> {
    vec![
        Subject {
            allocator: Box::new(Flat::new()),
            requires_k_le_n: false,
            // FLAT assigns by raw item id, so relabeling changes groups.
            permutation_invariant: false,
            k_monotone: false,
            stride: 1,
        },
        Subject {
            allocator: Box::new(Vfk::new()),
            requires_k_le_n: true,
            permutation_invariant: true,
            // NOT K-monotone in Eq. 3 cost: VF^K's DP balances
            // *frequency* over the frequency-sorted order and ignores
            // sizes, so the re-partition at K+1 can co-locate large
            // items that K kept apart (found by the harness; pinned in
            // corpus/vfk-k-monotonicity.json — the paper's evaluation
            // shows the same size-diversity weakness).
            k_monotone: false,
            stride: 1,
        },
        Subject {
            allocator: Box::new(Greedy::new()),
            requires_k_le_n: false,
            permutation_invariant: true,
            k_monotone: false,
            stride: 1,
        },
        Subject {
            allocator: Box::new(Drp::new()),
            requires_k_le_n: true,
            permutation_invariant: true,
            // DRP(K+1) is DRP(K) plus one further split, and a split
            // never increases Σ F·Z.
            k_monotone: true,
            stride: 1,
        },
        Subject {
            allocator: Box::new(DrpCds::new()),
            requires_k_le_n: true,
            // NOT permutation invariant: the DRP start is, but CDS is a
            // steepest-descent local search whose equal-Δc moves are
            // tie-broken by item id, so relabeled inputs can converge to
            // different local optima (found by the harness on equal-size
            // Zipf workloads; pinned in corpus/drp-cds-permutation.json).
            permutation_invariant: false,
            // CDS local optima from different DRP starts are not
            // theoretically ordered across K, but DRP(K+1) ≤ DRP(K)
            // and CDS only improves — monotonicity holds empirically
            // and is part of the claimed contract (Figure 2).
            k_monotone: true,
            stride: 1,
        },
        Subject {
            allocator: Box::new(ContiguousDp::new()),
            requires_k_le_n: true,
            permutation_invariant: true,
            k_monotone: true,
            stride: 1,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let subjects = standard_subjects(0);
        let mut names: Vec<&str> = subjects.iter().map(Subject::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), subjects.len());
    }

    #[test]
    fn registry_covers_all_production_allocators() {
        let names: Vec<String> =
            standard_subjects(0).iter().map(|s| s.name().to_string()).collect();
        for expected in
            ["FLAT", "VF^K", "GREEDY", "DRP", "DRP-CDS", "DP(br-contiguous)", "GOPT"]
        {
            assert!(
                names.iter().any(|n| n == expected),
                "registry is missing {expected}; has {names:?}"
            );
        }
    }

    #[test]
    fn debug_is_informative() {
        let s = &core_subjects()[0];
        let text = format!("{s:?}");
        assert!(text.contains("FLAT"));
    }
}
