//! The committed regression corpus.
//!
//! Every minimized failure can be written as a JSON file under a corpus
//! directory (`crates/conformance/corpus/` in this repository) and is
//! replayed by `cargo test` and CI forever after. Entries are
//! *regressions*: an entry that is not [`CorpusEntry::ignore`]d must
//! produce **zero** violations today — it records a bug that was fixed
//! and must stay fixed. Known-open findings are committed with
//! `"ignore": true` plus a note, so they document the defect without
//! failing the build.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::instance::Instance;

/// One committed regression case.
///
/// The vendored serde derive has no `#[serde(default)]`, so corpus
/// files must spell out **every** field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// The minimized failing (or once-failing) instance.
    pub instance: Instance,
    /// The invariant this entry originally violated.
    pub invariant: String,
    /// The implicated algorithm (`null` for cross-cutting checks).
    pub algorithm: Option<String>,
    /// The violation detail as observed when the entry was filed.
    pub detail: String,
    /// `true` marks a known-open finding: replay reports it but does
    /// not fail. `false` (the norm) means "fixed; must stay fixed".
    pub ignore: bool,
    /// Context for the reader: what happened, where it was fixed.
    pub note: String,
}

/// A loaded corpus file, with its provenance for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedEntry {
    /// File stem the entry was loaded from.
    pub name: String,
    /// The entry itself.
    pub entry: CorpusEntry,
}

/// Loads every `*.json` entry under `dir`, sorted by file name so
/// replay order is stable. A missing directory is an empty corpus, not
/// an error.
pub fn load_dir(dir: &Path) -> io::Result<Vec<NamedEntry>> {
    let mut entries = Vec::new();
    let read = match fs::read_dir(dir) {
        Ok(read) => read,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(entries),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = read
        .filter_map(|r| r.ok().map(|d| d.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let file = fs::File::open(&path)?;
        let entry: CorpusEntry = serde_json::from_reader(io::BufReader::new(file))
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })?;
        let name =
            path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        entries.push(NamedEntry { name, entry });
    }
    Ok(entries)
}

/// Writes `entry` as `dir/<name>.json` (pretty-printed, trailing
/// newline), creating the directory if needed. Returns the path
/// written.
pub fn save(dir: &Path, name: &str, entry: &CorpusEntry) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut text = serde_json::to_string_pretty(entry)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    text.push('\n');
    fs::write(&path, text)?;
    Ok(path)
}

/// The in-repo corpus directory, resolved relative to this crate so it
/// works from any workspace member's test binary.
pub fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ItemFeatures;

    fn entry() -> CorpusEntry {
        CorpusEntry {
            instance: Instance::manual(vec![ItemFeatures { frequency: 1.0, size: 2.0 }], 1),
            invariant: "no-panic".to_string(),
            algorithm: Some("DRP".to_string()),
            detail: "example".to_string(),
            ignore: false,
            note: "unit-test fixture".to_string(),
        }
    }

    #[test]
    fn save_then_load_roundtrips() {
        let dir =
            std::env::temp_dir().join(format!("dbcast-corpus-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let written = save(&dir, "case-b", &entry()).unwrap();
        assert!(written.ends_with("case-b.json"));
        save(&dir, "case-a", &entry()).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        // Sorted by file name for stable replay order.
        assert_eq!(loaded[0].name, "case-a");
        assert_eq!(loaded[1].name, "case-b");
        assert_eq!(loaded[0].entry, entry());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = Path::new("/nonexistent/definitely/not/here");
        assert!(load_dir(dir).unwrap().is_empty());
    }

    #[test]
    fn malformed_json_is_a_named_error() {
        let dir =
            std::env::temp_dir().join(format!("dbcast-corpus-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("broken.json"), "{not json").unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("broken.json"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn default_dir_points_into_this_crate() {
        assert!(default_dir().ends_with("conformance/corpus"));
    }
}
