//! Deterministic, seed-replayable instance generation.
//!
//! Every case is derived from `(run seed, case index)` alone — there is
//! no generator state — so any case from any run can be regenerated in
//! isolation, which is what makes corpus entries and failure reports
//! replayable years later.
//!
//! The generator performs *structured* fuzzing: most cases follow the
//! paper's §4.1 workload model (Zipf(θ) frequencies × `10^U[0,Φ]`
//! sizes), and a fixed fraction is drawn from degenerate shapes that
//! historically break allocators — `N < K`, uniform frequencies, a
//! single dominant item, sizes at the model's positive floor,
//! duplicated items, and single-item databases.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::instance::{Instance, ItemFeatures};

/// Configuration of the instance generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Run seed; together with a case index it fully determines a case.
    pub seed: u64,
    /// Largest `N` the common shapes draw (degenerate shapes stay tiny
    /// by design).
    pub max_items: usize,
    /// Largest `K` the common shapes draw.
    pub max_channels: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig { seed: 0, max_items: 40, max_channels: 8 }
    }
}

/// The stateless case generator.
#[derive(Debug, Clone, Copy)]
pub struct InstanceGenerator {
    cfg: GeneratorConfig,
}

/// SplitMix64 finalizer — decorrelates `(seed, case)` pairs into
/// independent ChaCha seeds.
fn mix(seed: u64, case: u64) -> u64 {
    let mut z = seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Every shape the generator can draw, in draw-weight order.
pub const SHAPES: &[&str] = &[
    "zipf-diverse",
    "uniform-freq",
    "equal-size",
    "dominant-item",
    "tiny-sizes",
    "duplicate-items",
    "n-less-than-k",
    "single-item",
];

impl InstanceGenerator {
    /// Creates a generator for `cfg`.
    pub fn new(cfg: GeneratorConfig) -> Self {
        InstanceGenerator { cfg }
    }

    /// The configuration this generator draws from.
    pub fn config(&self) -> &GeneratorConfig {
        &self.cfg
    }

    /// Generates case number `case` of this run. Pure: the same
    /// `(config, case)` always yields the same instance.
    pub fn instance(&self, case: u64) -> Instance {
        let _span = dbcast_obs::span!("conformance.generate_case");
        let mut rng = ChaCha8Rng::seed_from_u64(mix(self.cfg.seed, case));
        // Common shapes dominate; each degenerate shape keeps a steady
        // share so even short runs cover every one of them.
        let shape = match rng.gen_range(0..16u32) {
            0..=6 => "zipf-diverse",
            7..=8 => "uniform-freq",
            9..=10 => "equal-size",
            11 => "dominant-item",
            12 => "tiny-sizes",
            13 => "duplicate-items",
            14 => "n-less-than-k",
            _ => "single-item",
        };
        let (items, channels) = self.draw(shape, &mut rng);
        Instance { items, channels, shape: shape.to_string(), seed: self.cfg.seed, case }
    }

    fn draw(&self, shape: &str, rng: &mut ChaCha8Rng) -> (Vec<ItemFeatures>, usize) {
        let max_n = self.cfg.max_items.max(1);
        let max_k = self.cfg.max_channels.max(1);
        match shape {
            "zipf-diverse" => {
                let n = rng.gen_range(1..=max_n);
                let theta = rng.gen::<f64>() * 1.6;
                let phi = rng.gen::<f64>() * 3.0;
                let items = (0..n)
                    .map(|rank| ItemFeatures {
                        frequency: zipf_weight(rank, theta),
                        size: 10f64.powf(rng.gen::<f64>() * phi),
                    })
                    .collect();
                (items, rng.gen_range(1..=n.min(max_k)))
            }
            "uniform-freq" => {
                let n = rng.gen_range(1..=max_n);
                let items = (0..n)
                    .map(|_| ItemFeatures {
                        frequency: 1.0,
                        size: 10f64.powf(rng.gen::<f64>() * 2.0),
                    })
                    .collect();
                (items, rng.gen_range(1..=n.min(max_k)))
            }
            "equal-size" => {
                // The conventional environment (Φ = 0).
                let n = rng.gen_range(1..=max_n);
                let theta = rng.gen::<f64>() * 1.6;
                let items = (0..n)
                    .map(|rank| ItemFeatures {
                        frequency: zipf_weight(rank, theta),
                        size: 1.0,
                    })
                    .collect();
                (items, rng.gen_range(1..=n.min(max_k)))
            }
            "dominant-item" => {
                let n = rng.gen_range(2..=max_n.max(2));
                let items = (0..n)
                    .map(|rank| ItemFeatures {
                        frequency: if rank == 0 { 0.95 } else { 0.05 / (n - 1) as f64 },
                        size: 10f64.powf(rng.gen::<f64>() * 2.0),
                    })
                    .collect();
                (items, rng.gen_range(1..=n.min(max_k)))
            }
            "tiny-sizes" => {
                // Sizes at the model's positive floor ("zero-size" items
                // up to validation, which rejects exact zeros) mixed
                // with ordinary ones.
                let n = rng.gen_range(1..=max_n);
                let items = (0..n)
                    .map(|_| ItemFeatures {
                        frequency: 0.01 + rng.gen::<f64>(),
                        size: if rng.gen_bool(0.5) {
                            1e-9 * (1.0 + rng.gen::<f64>())
                        } else {
                            10f64.powf(rng.gen::<f64>() * 2.0)
                        },
                    })
                    .collect();
                (items, rng.gen_range(1..=n.min(max_k)))
            }
            "duplicate-items" => {
                // Every item identical: stresses tie-breaking everywhere.
                let n = rng.gen_range(1..=max_n);
                let f = 0.1 + rng.gen::<f64>();
                let z = 10f64.powf(rng.gen::<f64>() * 2.0);
                let items =
                    (0..n).map(|_| ItemFeatures { frequency: f, size: z }).collect();
                (items, rng.gen_range(1..=n.min(max_k)))
            }
            "n-less-than-k" => {
                let n = rng.gen_range(1..=4usize);
                let items = (0..n)
                    .map(|rank| ItemFeatures {
                        frequency: zipf_weight(rank, 0.8),
                        size: 10f64.powf(rng.gen::<f64>() * 2.0),
                    })
                    .collect();
                (items, n + rng.gen_range(1..=4usize))
            }
            "single-item" => {
                let items = vec![ItemFeatures {
                    frequency: 1.0,
                    size: 10f64.powf(rng.gen::<f64>() * 3.0),
                }];
                (items, rng.gen_range(1..=3usize))
            }
            other => unreachable!("unknown shape {other}"),
        }
    }
}

/// Unnormalized Zipf weight of 0-based `rank`: `(1/(rank+1))^θ`. The
/// database constructor performs the normalization.
fn zipf_weight(rank: usize, theta: f64) -> f64 {
    (1.0 / (rank + 1) as f64).powf(theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn same_seed_same_case_same_instance() {
        let g = InstanceGenerator::new(GeneratorConfig { seed: 7, ..Default::default() });
        assert_eq!(g.instance(12), g.instance(12));
    }

    #[test]
    fn cases_are_decorrelated() {
        let g = InstanceGenerator::new(GeneratorConfig::default());
        assert_ne!(g.instance(0), g.instance(1));
        let h = InstanceGenerator::new(GeneratorConfig { seed: 1, ..Default::default() });
        assert_ne!(g.instance(0), h.instance(0));
    }

    #[test]
    fn every_shape_appears_and_every_instance_is_buildable() {
        let g = InstanceGenerator::new(GeneratorConfig { seed: 3, ..Default::default() });
        let mut seen = BTreeSet::new();
        for case in 0..400 {
            let inst = g.instance(case);
            seen.insert(inst.shape.clone());
            assert!(inst.channels >= 1);
            assert!(!inst.is_empty());
            // Every generated instance passes model validation.
            let db = inst.database().unwrap();
            assert_eq!(db.len(), inst.len());
        }
        for shape in SHAPES {
            assert!(seen.contains(*shape), "shape {shape} never drawn in 400 cases");
        }
    }

    #[test]
    fn bounds_are_honored() {
        let cfg = GeneratorConfig { seed: 9, max_items: 12, max_channels: 3 };
        let g = InstanceGenerator::new(cfg);
        for case in 0..300 {
            let inst = g.instance(case);
            if inst.shape == "n-less-than-k" {
                assert!(inst.channels > inst.len());
            } else if inst.shape == "single-item" {
                assert_eq!(inst.len(), 1);
            } else {
                assert!(inst.len() <= 12, "N = {} in {}", inst.len(), inst.shape);
                assert!(inst.channels <= 3, "{}", inst.summary());
            }
        }
    }
}
