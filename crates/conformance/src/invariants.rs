//! The invariant suite: everything the harness checks about one
//! instance.
//!
//! Checks are layered by the strength of the available oracle:
//!
//! 1. **Exact** — on small instances every allocator's cost is bounded
//!    below by [`ExactBnB`]'s global optimum.
//! 2. **Metamorphic** — properties that need no oracle: permutation
//!    invariance, frequency/size scale equivariance, monotone
//!    non-increasing cost in `K`, CDS monotonicity and local
//!    optimality, analytical-vs-simulated waiting-time agreement.
//! 3. **Differential/structural** — every allocator's output is a
//!    valid `K`-way partition whose incremental cost bookkeeping
//!    matches the from-scratch Eq. 3 reference, and repeated runs are
//!    bit-identical.
//!
//! Each failed check becomes a [`Violation`] carrying the offending
//! [`Instance`], so it can be shrunk and filed into the corpus.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dbcast_alloc::{Cds, CdsOutcome, Drp, ReferenceCds};
use dbcast_baselines::ExactBnB;
use dbcast_model::{
    allocation_cost, AllocError, Allocation, ChannelAllocator, ChannelId, Database, ItemId,
    Move,
};
use dbcast_workload::TraceBuilder;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::instance::Instance;
use crate::registry::Subject;

/// Relative tolerance for cost comparisons that should agree up to
/// floating-point associativity noise.
const REL_TOL: f64 = 1e-9;

/// Absolute slack admitted on "no improving CDS move remains" — CDS
/// itself stops below a `1e-9` reduction, so anything above this bound
/// is a genuine missed move, not noise.
const CDS_SLACK: f64 = 1e-6;

/// One failed invariant check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Kebab-case invariant name (e.g. `"oracle-lower-bound"`).
    pub invariant: String,
    /// The offending algorithm, when the check targets one.
    pub algorithm: Option<String>,
    /// Human-readable failure description with the observed values.
    pub detail: String,
    /// The (possibly shrunk) instance that exhibits the failure.
    pub instance: Instance,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} on {}: {}",
            self.invariant,
            self.algorithm.as_deref().unwrap_or("-"),
            self.instance.summary(),
            self.detail
        )
    }
}

/// Tunable knobs of the invariant suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Route instances with `N ≤ oracle_max_items` and
    /// `K ≤ oracle_max_channels` through the [`ExactBnB`] oracle;
    /// larger ones get invariant-only checking.
    pub oracle_max_items: usize,
    /// See [`CheckConfig::oracle_max_items`].
    pub oracle_max_channels: usize,
    /// Run the discrete-event-simulator agreement check (it costs a
    /// few milliseconds per instance, so the harness strides it).
    pub check_sim: bool,
    /// Requests per simulator agreement run.
    pub sim_requests: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            oracle_max_items: 10,
            oracle_max_channels: 4,
            check_sim: false,
            sim_requests: 4000,
        }
    }
}

/// Checks every invariant of `instance` against `subjects` and returns
/// the violations (empty = conformant).
///
/// Deterministic: internal randomness (permutations, CDS starting
/// points, simulation traces) is derived from the instance's own
/// `(seed, case)` pair.
pub fn check_instance(
    instance: &Instance,
    subjects: &[Subject],
    cfg: &CheckConfig,
) -> Vec<Violation> {
    let refs: Vec<&Subject> = subjects.iter().collect();
    check_instance_refs(instance, &refs, cfg)
}

/// [`check_instance`] over borrowed subjects — lets the harness filter
/// its registry (stride-gating GOPT) without cloning allocators.
pub fn check_instance_refs(
    instance: &Instance,
    subjects: &[&Subject],
    cfg: &CheckConfig,
) -> Vec<Violation> {
    let mut v = Vec::new();
    let db = match instance.database() {
        Ok(db) => db,
        Err(e) => {
            // Corpus files are user input; a non-buildable instance is
            // itself a (corpus) violation rather than a crash.
            v.push(Violation {
                invariant: "instance-buildable".into(),
                algorithm: None,
                detail: format!("model rejected the instance: {e}"),
                instance: instance.clone(),
            });
            return v;
        }
    };
    let mut rng = ChaCha8Rng::seed_from_u64(instance.seed ^ instance.case.rotate_left(32));

    // Per-subject structural + metamorphic checks; remember produced
    // costs for the oracle comparison.
    let mut produced: Vec<(String, f64)> = Vec::new();
    for subject in subjects {
        if let Some(alloc) = run_subject(instance, &db, subject, &mut v) {
            produced.push((subject.name().to_string(), alloc.total_cost()));
            check_determinism(instance, &db, subject, &alloc, &mut v);
            check_frequency_scale_invariance(instance, &db, subject, &alloc, &mut v);
            check_size_scale_equivariance(instance, subject, &alloc, &mut v);
            if subject.permutation_invariant {
                check_permutation_invariance(
                    instance, &db, subject, &alloc, &mut rng, &mut v,
                );
            }
            if subject.k_monotone {
                check_k_monotonicity(instance, &db, subject, &alloc, &mut v);
            }
        }
    }

    check_cds(instance, &db, &mut rng, &mut v);
    check_cds_differential(instance, &db, &mut v);
    check_oracle(instance, &db, &produced, cfg, &mut v);
    if cfg.check_sim {
        check_sim_agreement(instance, &db, cfg, &mut rng, &mut v);
    }
    v
}

/// Runs one subject, converting panics and contract breaches into
/// violations. Returns the allocation when one was legitimately
/// produced.
fn run_subject(
    instance: &Instance,
    db: &Database,
    subject: &Subject,
    v: &mut Vec<Violation>,
) -> Option<Allocation> {
    let k = instance.channels;
    let n = db.len();
    let outcome = catch_unwind(AssertUnwindSafe(|| subject.allocator.allocate(db, k)));
    let mut fail = |invariant: &str, detail: String| {
        v.push(Violation {
            invariant: invariant.into(),
            algorithm: Some(subject.name().to_string()),
            detail,
            instance: instance.clone(),
        });
    };
    match outcome {
        Err(panic) => {
            fail(
                "no-panic",
                format!("allocate(N = {n}, K = {k}) panicked: {}", panic_msg(&*panic)),
            );
            None
        }
        Ok(Err(e)) => {
            if k > n
                && subject.requires_k_le_n
                && matches!(e, AllocError::Infeasible { .. })
            {
                None // the typed rejection its contract promises
            } else {
                fail(
                    "feasibility-contract",
                    format!("allocate(N = {n}, K = {k}) unexpectedly failed: {e}"),
                );
                None
            }
        }
        Ok(Ok(alloc)) => {
            if k > n && subject.requires_k_le_n {
                fail(
                    "feasibility-contract",
                    format!("claims K ≤ N is required yet accepted N = {n}, K = {k}"),
                );
            }
            if alloc.channels() != k || alloc.items() != n {
                fail(
                    "valid-partition",
                    format!(
                        "returned {} channels / {} items, expected exactly {k} / {n}",
                        alloc.channels(),
                        alloc.items()
                    ),
                );
                return None;
            }
            if let Err(e) = alloc.validate(db) {
                fail("valid-partition", format!("allocation failed validation: {e}"));
                return None;
            }
            let reference = allocation_cost(db, k, alloc.assignment())
                .expect("validated assignment must cost");
            let cost = alloc.total_cost();
            if !cost.is_finite() || relative_gap(cost, reference) > REL_TOL {
                fail(
                    "cost-consistency",
                    format!("incremental cost {cost} != Eq. 3 reference {reference}"),
                );
            }
            // Sandwich bounds: Σ f·z ≤ Σ F_i·Z_i ≤ (Σ f)(Σ z).
            let stats = db.stats();
            let lo = stats.weighted_size;
            let hi = stats.total_frequency * stats.total_size;
            if cost < lo - absolute_slack(lo) || cost > hi + absolute_slack(hi) {
                fail(
                    "cost-consistency",
                    format!("cost {cost} outside the feasible band [{lo}, {hi}]"),
                );
            }
            Some(alloc)
        }
    }
}

/// Two runs over the same inputs must agree bit-for-bit — randomized
/// subjects carry their seed in their configuration.
fn check_determinism(
    instance: &Instance,
    db: &Database,
    subject: &Subject,
    first: &Allocation,
    v: &mut Vec<Violation>,
) {
    match subject.allocator.allocate(db, instance.channels) {
        Ok(second) if second.assignment() == first.assignment() => {}
        Ok(second) => v.push(Violation {
            invariant: "determinism".into(),
            algorithm: Some(subject.name().to_string()),
            detail: format!(
                "two identical runs disagree: {:?} vs {:?}",
                first.assignment(),
                second.assignment()
            ),
            instance: instance.clone(),
        }),
        Err(e) => v.push(Violation {
            invariant: "determinism".into(),
            algorithm: Some(subject.name().to_string()),
            detail: format!("second identical run failed: {e}"),
            instance: instance.clone(),
        }),
    }
}

/// Scaling every raw frequency by a power of two is erased by
/// normalization, so the rebuilt database is bit-identical and the
/// allocator must reproduce the exact same assignment.
fn check_frequency_scale_invariance(
    instance: &Instance,
    db: &Database,
    subject: &Subject,
    base: &Allocation,
    v: &mut Vec<Violation>,
) {
    let scaled = instance.scaled_frequencies(4.0);
    let scaled_db = match scaled.database() {
        Ok(d) => d,
        // ×4 can overflow only absurd corpus values; skip silently.
        Err(_) => return,
    };
    if &scaled_db != db {
        // Normalization did not erase the scaling (non-power-of-two
        // artifacts); the metamorphic relation does not apply.
        return;
    }
    match subject.allocator.allocate(&scaled_db, instance.channels) {
        Ok(alloc) if alloc.assignment() == base.assignment() => {}
        Ok(alloc) => v.push(Violation {
            invariant: "frequency-scale-invariance".into(),
            algorithm: Some(subject.name().to_string()),
            detail: format!(
                "raw frequencies ×4 changed the assignment: {:?} vs {:?}",
                base.assignment(),
                alloc.assignment()
            ),
            instance: instance.clone(),
        }),
        Err(e) => v.push(Violation {
            invariant: "frequency-scale-invariance".into(),
            algorithm: Some(subject.name().to_string()),
            detail: format!("raw frequencies ×4 made the instance fail: {e}"),
            instance: instance.clone(),
        }),
    }
}

/// Scaling every size by a power of two scales every channel aggregate
/// and therefore the cost by exactly that factor.
fn check_size_scale_equivariance(
    instance: &Instance,
    subject: &Subject,
    base: &Allocation,
    v: &mut Vec<Violation>,
) {
    let base_cost = base.total_cost();
    // Threshold-bearing refiners (CDS's 1e-9 minimum improvement)
    // legitimately diverge when the cost scale approaches the
    // threshold, so the relation is only claimed above it.
    if base_cost < 1e-5 {
        return;
    }
    let scaled = instance.scaled_sizes(2.0);
    let scaled_db = match scaled.database() {
        Ok(d) => d,
        Err(_) => return,
    };
    match subject.allocator.allocate(&scaled_db, instance.channels) {
        Ok(alloc) => {
            let got = alloc.total_cost();
            let want = 2.0 * base_cost;
            if relative_gap(got, want) > 1e-7 {
                v.push(Violation {
                    invariant: "size-scale-equivariance".into(),
                    algorithm: Some(subject.name().to_string()),
                    detail: format!("sizes ×2 produced cost {got}, expected {want}"),
                    instance: instance.clone(),
                });
            }
        }
        Err(e) => v.push(Violation {
            invariant: "size-scale-equivariance".into(),
            algorithm: Some(subject.name().to_string()),
            detail: format!("sizes ×2 made the instance fail: {e}"),
            instance: instance.clone(),
        }),
    }
}

/// Relabeling items must not change the achieved cost — for subjects
/// that claim it, and only on instances whose sort keys are free of
/// cross-item ties (ties make the achieved grouping legitimately
/// depend on id order).
fn check_permutation_invariance(
    instance: &Instance,
    db: &Database,
    subject: &Subject,
    base: &Allocation,
    rng: &mut ChaCha8Rng,
    v: &mut Vec<Violation>,
) {
    if has_ambiguous_ties(db) {
        return;
    }
    let n = instance.len();
    if n < 2 {
        return;
    }
    // Deterministic Fisher–Yates shuffle.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    let permuted = instance.permuted(&perm);
    let permuted_db = match permuted.database() {
        Ok(d) => d,
        Err(_) => return,
    };
    match subject.allocator.allocate(&permuted_db, instance.channels) {
        Ok(alloc) => {
            let got = alloc.total_cost();
            let want = base.total_cost();
            if relative_gap(got, want) > REL_TOL {
                v.push(Violation {
                    invariant: "permutation-invariance".into(),
                    algorithm: Some(subject.name().to_string()),
                    detail: format!(
                        "relabeling items changed the cost: {got} vs {want} (perm {perm:?})"
                    ),
                    instance: instance.clone(),
                });
            }
        }
        Err(e) => v.push(Violation {
            invariant: "permutation-invariance".into(),
            algorithm: Some(subject.name().to_string()),
            detail: format!("relabeled instance failed: {e}"),
            instance: instance.clone(),
        }),
    }
}

/// More channels never hurt: `cost(K+1) ≤ cost(K)` for subjects that
/// claim monotonicity.
fn check_k_monotonicity(
    instance: &Instance,
    db: &Database,
    subject: &Subject,
    base: &Allocation,
    v: &mut Vec<Violation>,
) {
    let next_k = instance.channels + 1;
    if subject.requires_k_le_n && next_k > db.len() {
        return;
    }
    match subject.allocator.allocate(db, next_k) {
        Ok(alloc) => {
            let upper = base.total_cost();
            let got = alloc.total_cost();
            if got > upper + absolute_slack(upper) {
                v.push(Violation {
                    invariant: "k-monotonicity".into(),
                    algorithm: Some(subject.name().to_string()),
                    detail: format!(
                        "cost rose with channels: K = {} gives {upper}, K = {next_k} gives {got}",
                        instance.channels
                    ),
                    instance: instance.clone(),
                });
            }
        }
        Err(e) => v.push(Violation {
            invariant: "k-monotonicity".into(),
            algorithm: Some(subject.name().to_string()),
            detail: format!("allocation at K = {next_k} failed: {e}"),
            instance: instance.clone(),
        }),
    }
}

/// CDS contract, checked from a random starting allocation: it never
/// worsens its input, its per-step accounting matches the realized
/// cost drops, and a converged result is a genuine local optimum.
fn check_cds(
    instance: &Instance,
    db: &Database,
    rng: &mut ChaCha8Rng,
    v: &mut Vec<Violation>,
) {
    let k = instance.channels;
    let start: Vec<usize> = (0..db.len()).map(|_| rng.gen_range(0..k)).collect();
    let rough = Allocation::from_assignment(db, k, start)
        .expect("random assignment over K channels is structurally valid");
    let initial = rough.total_cost();
    let mut fail = |invariant: &str, detail: String| {
        v.push(Violation {
            invariant: invariant.into(),
            algorithm: Some("CDS".to_string()),
            detail,
            instance: instance.clone(),
        });
    };
    let out = match Cds::new().refine(db, rough) {
        Ok(out) => out,
        Err(e) => {
            fail("cds-never-worsens", format!("refine failed on a valid input: {e}"));
            return;
        }
    };
    let final_cost = out.final_cost();
    if final_cost > initial + absolute_slack(initial) {
        fail(
            "cds-never-worsens",
            format!("refinement worsened the input: {initial} -> {final_cost}"),
        );
    }
    let mut prev = out.initial_cost;
    for (i, step) in out.steps.iter().enumerate() {
        let realized = prev - step.cost_after;
        if step.cost_after >= prev || (realized - step.reduction).abs() > CDS_SLACK {
            fail(
                "cds-step-accounting",
                format!(
                    "step {i} claimed Δc = {} but realized {realized} ({} -> {})",
                    step.reduction, prev, step.cost_after
                ),
            );
            break;
        }
        prev = step.cost_after;
    }
    if !out.converged {
        fail(
            "cds-local-optimum",
            format!("CDS hit its iteration cap after {} steps", out.steps.len()),
        );
        return;
    }
    // A converged refinement admits no further strictly improving move.
    let alloc = &out.allocation;
    for (item, &p) in alloc.assignment().iter().enumerate() {
        for q in 0..k {
            if q == p {
                continue;
            }
            let mv = Move {
                item: ItemId::new(item),
                from: ChannelId::new(p),
                to: ChannelId::new(q),
            };
            let delta = alloc
                .move_reduction(mv)
                .expect("scan only proposes structurally valid moves");
            if delta > CDS_SLACK {
                fail(
                    "cds-local-optimum",
                    format!(
                        "converged result still improvable: moving item {item} \
                         {p} -> {q} gains {delta}"
                    ),
                );
                return;
            }
        }
    }
}

/// Differential battery: the production incremental CDS engine must
/// reproduce the paper-literal [`ReferenceCds`] scan **bit-for-bit** —
/// the same step sequence (moves, reduction bits, post-move cost bits),
/// the same convergence flag and the same final allocation — from both
/// a random starting allocation and the DRP rough allocation. Any
/// divergence is a [`Violation`] like every other invariant, so ddmin
/// shrinking produces a minimal diverging instance for the corpus.
fn check_cds_differential(instance: &Instance, db: &Database, v: &mut Vec<Violation>) {
    let k = instance.channels;
    // Own deterministic stream: adding this check must not perturb the
    // rng draws the pre-existing checks (and the corpus entries pinned
    // against them) consume.
    let mut rng = ChaCha8Rng::seed_from_u64(
        instance.seed.rotate_left(17) ^ instance.case ^ 0xC05_D1FF,
    );
    let random: Vec<usize> = (0..db.len()).map(|_| rng.gen_range(0..k)).collect();
    let mut starts: Vec<(&str, Allocation)> = vec![(
        "random start",
        Allocation::from_assignment(db, k, random)
            .expect("random assignment over K channels is structurally valid"),
    )];
    if k <= db.len() {
        if let Ok(rough) = Drp::new().allocate(db, k) {
            starts.push(("drp start", rough));
        }
    }
    for (label, start) in starts {
        let reference = ReferenceCds::new().refine(db, start.clone());
        let fast = Cds::new().refine(db, start);
        match (reference, fast) {
            (Ok(oracle), Ok(incremental)) => {
                if let Some(detail) = first_cds_divergence(&oracle, &incremental) {
                    v.push(Violation {
                        invariant: "cds-differential".into(),
                        algorithm: Some("CDS".to_string()),
                        detail: format!("{label}: {detail}"),
                        instance: instance.clone(),
                    });
                }
            }
            (reference, fast) => v.push(Violation {
                invariant: "cds-differential".into(),
                algorithm: Some("CDS".to_string()),
                detail: format!(
                    "{label}: refine failability diverged: reference {:?} vs incremental {:?}",
                    reference.map(|o| o.steps.len()),
                    fast.map(|o| o.steps.len()),
                ),
                instance: instance.clone(),
            }),
        }
    }
}

/// The first point where two CDS outcomes stop being bit-identical, or
/// `None` when they agree completely.
fn first_cds_divergence(oracle: &CdsOutcome, fast: &CdsOutcome) -> Option<String> {
    for (i, (a, b)) in oracle.steps.iter().zip(&fast.steps).enumerate() {
        if a.mv != b.mv {
            return Some(format!("step {i} move diverged: {:?} vs {:?}", a.mv, b.mv));
        }
        if a.reduction.to_bits() != b.reduction.to_bits() {
            return Some(format!(
                "step {i} reduction bits diverged: {} vs {}",
                a.reduction, b.reduction
            ));
        }
        if a.cost_after.to_bits() != b.cost_after.to_bits() {
            return Some(format!(
                "step {i} cost bits diverged: {} vs {}",
                a.cost_after, b.cost_after
            ));
        }
    }
    if oracle.steps.len() != fast.steps.len() {
        return Some(format!(
            "step counts diverged: reference took {} steps, incremental {}",
            oracle.steps.len(),
            fast.steps.len()
        ));
    }
    if oracle.converged != fast.converged {
        return Some(format!(
            "convergence diverged: reference {} vs incremental {}",
            oracle.converged, fast.converged
        ));
    }
    if oracle.allocation.assignment() != fast.allocation.assignment() {
        return Some("final assignments diverged despite identical steps".to_string());
    }
    if oracle.allocation.total_cost().to_bits() != fast.allocation.total_cost().to_bits() {
        return Some(format!(
            "final cost bits diverged: {} vs {}",
            oracle.allocation.total_cost(),
            fast.allocation.total_cost()
        ));
    }
    None
}

/// On oracle-sized instances, no allocator may beat the exact optimum,
/// and the exact solver itself must produce a valid partition.
fn check_oracle(
    instance: &Instance,
    db: &Database,
    produced: &[(String, f64)],
    cfg: &CheckConfig,
    v: &mut Vec<Violation>,
) {
    if db.len() > cfg.oracle_max_items || instance.channels > cfg.oracle_max_channels {
        return; // routed to invariant-only checking
    }
    let exact = ExactBnB::new().with_max_items(cfg.oracle_max_items);
    let optimum = match exact.allocate(db, instance.channels) {
        Ok(alloc) => {
            if let Err(e) = alloc.validate(db) {
                v.push(Violation {
                    invariant: "valid-partition".into(),
                    algorithm: Some("EXACT".to_string()),
                    detail: format!("oracle allocation failed validation: {e}"),
                    instance: instance.clone(),
                });
                return;
            }
            alloc.total_cost()
        }
        Err(AllocError::TooLarge { items, limit }) => {
            v.push(Violation {
                invariant: "oracle-routing".into(),
                algorithm: Some("EXACT".to_string()),
                detail: format!(
                    "oracle rejected an in-budget instance: {items} items vs limit {limit}"
                ),
                instance: instance.clone(),
            });
            return;
        }
        Err(e) => {
            v.push(Violation {
                invariant: "oracle-routing".into(),
                algorithm: Some("EXACT".to_string()),
                detail: format!("oracle failed: {e}"),
                instance: instance.clone(),
            });
            return;
        }
    };
    for (name, cost) in produced {
        if *cost < optimum - absolute_slack(optimum) {
            v.push(Violation {
                invariant: "oracle-lower-bound".into(),
                algorithm: Some(name.clone()),
                detail: format!("beat the exact optimum: {cost} < {optimum}"),
                instance: instance.clone(),
            });
        }
    }
}

/// Eq. 1/Eq. 2 agreement: the analytical waiting time must match the
/// discrete-event simulator within statistical tolerance.
fn check_sim_agreement(
    instance: &Instance,
    db: &Database,
    cfg: &CheckConfig,
    rng: &mut ChaCha8Rng,
    v: &mut Vec<Violation>,
) {
    let k = instance.channels;
    // Use the strongest available allocation; fall back to round-robin
    // when DRP's K ≤ N precondition does not hold.
    let alloc = if k <= db.len() {
        match Drp::new().allocate(db, k) {
            Ok(a) => a,
            Err(_) => return,
        }
    } else {
        let assignment = (0..db.len()).map(|i| i % k).collect();
        Allocation::from_assignment(db, k, assignment)
            .expect("round-robin assignment is structurally valid")
    };
    let trace =
        match TraceBuilder::new(db).requests(cfg.sim_requests).seed(rng.next_u64()).build()
        {
            Ok(t) => t,
            Err(e) => {
                v.push(Violation {
                    invariant: "sim-model-agreement".into(),
                    algorithm: None,
                    detail: format!("trace generation failed: {e}"),
                    instance: instance.clone(),
                });
                return;
            }
        };
    match dbcast_sim::validate_against_model(db, &alloc, &trace, 10.0) {
        Ok(report) => {
            // 8× the 95% CI half-width or 8% relative — loose enough
            // for seeded sampling noise, tight enough to catch a model
            // or engine regression.
            if !(report.agrees_within(8.0) || report.relative_error() < 0.08) {
                v.push(Violation {
                    invariant: "sim-model-agreement".into(),
                    algorithm: None,
                    detail: format!(
                        "analytical W_b = {} vs empirical {} (ci95 {}, {} requests)",
                        report.analytical, report.empirical, report.ci95, report.requests
                    ),
                    instance: instance.clone(),
                });
            }
        }
        Err(e) => v.push(Violation {
            invariant: "sim-model-agreement".into(),
            algorithm: None,
            detail: format!("validation pipeline failed: {e}"),
            instance: instance.clone(),
        }),
    }
}

/// Whether two non-identical items share a benefit-ratio or frequency
/// sort key (within `1e-6` relative) — on such instances id-order
/// tie-breaking legitimately leaks into the result, so permutation
/// invariance is not claimed.
fn has_ambiguous_ties(db: &Database) -> bool {
    let items = db.items();
    for (i, a) in items.iter().enumerate() {
        for b in &items[i + 1..] {
            let identical = a.frequency() == b.frequency() && a.size() == b.size();
            if identical {
                continue;
            }
            let ratio_tie =
                relative_gap(a.frequency() / a.size(), b.frequency() / b.size()) < 1e-6;
            let freq_tie = relative_gap(a.frequency(), b.frequency()) < 1e-6;
            if ratio_tie || freq_tie {
                return true;
            }
        }
    }
    false
}

fn relative_gap(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs()).max(1e-300);
    (a - b).abs() / scale
}

/// `REL_TOL` scaled to the magnitude of the quantities compared (with
/// an absolute floor for near-zero costs).
fn absolute_slack(magnitude: f64) -> f64 {
    REL_TOL * magnitude.abs().max(1.0)
}

fn panic_msg(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ItemFeatures;
    use crate::registry::core_subjects;

    fn diverse_instance() -> Instance {
        Instance::manual(
            vec![
                ItemFeatures { frequency: 0.55, size: 1.0 },
                ItemFeatures { frequency: 0.25, size: 8.0 },
                ItemFeatures { frequency: 0.12, size: 2.0 },
                ItemFeatures { frequency: 0.08, size: 16.0 },
            ],
            2,
        )
    }

    #[test]
    fn clean_instance_has_no_violations() {
        let v =
            check_instance(&diverse_instance(), &core_subjects(), &CheckConfig::default());
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn a_cost_inflating_allocator_is_caught_by_the_oracle() {
        /// Deliberately puts everything on channel 0 and lies that the
        /// result used all channels — caught by the oracle (cost above
        /// optimum is fine) but must NOT trip the lower bound.
        struct AllOnOne;
        impl ChannelAllocator for AllOnOne {
            fn name(&self) -> &str {
                "ALL-ON-ONE"
            }
            fn allocate(
                &self,
                db: &Database,
                channels: usize,
            ) -> Result<Allocation, AllocError> {
                Ok(Allocation::from_assignment(db, channels, vec![0; db.len()])?)
            }
        }
        let subjects = vec![Subject {
            allocator: Box::new(AllOnOne),
            requires_k_le_n: false,
            permutation_invariant: true,
            k_monotone: false,
            stride: 1,
        }];
        let v = check_instance(&diverse_instance(), &subjects, &CheckConfig::default());
        // Pessimal but honest: no violation.
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn an_impossibly_good_cost_trips_the_oracle_bound() {
        /// Reports a fabricated sub-optimal... actually *super*-optimal
        /// cost by lying through a modified database? We cannot fake
        /// `total_cost` (it is derived), so fake the other side: claim
        /// `requires_k_le_n` yet accept K > N.
        struct Liar;
        impl ChannelAllocator for Liar {
            fn name(&self) -> &str {
                "LIAR"
            }
            fn allocate(
                &self,
                db: &Database,
                channels: usize,
            ) -> Result<Allocation, AllocError> {
                let assignment = (0..db.len()).map(|i| i % channels).collect();
                Ok(Allocation::from_assignment(db, channels, assignment)?)
            }
        }
        let subjects = vec![Subject {
            allocator: Box::new(Liar),
            requires_k_le_n: true, // lie: it happily accepts K > N
            permutation_invariant: false,
            k_monotone: false,
            stride: 1,
        }];
        let mut inst = diverse_instance();
        inst.channels = 6; // K > N = 4
        let v = check_instance(&inst, &subjects, &CheckConfig::default());
        assert!(
            v.iter().any(|x| x.invariant == "feasibility-contract"),
            "expected a feasibility-contract violation, got {v:?}"
        );
    }

    #[test]
    fn a_panicking_allocator_is_reported_not_propagated() {
        struct Panics;
        impl ChannelAllocator for Panics {
            fn name(&self) -> &str {
                "PANICS"
            }
            fn allocate(
                &self,
                _db: &Database,
                _channels: usize,
            ) -> Result<Allocation, AllocError> {
                panic!("boom");
            }
        }
        let subjects = vec![Subject {
            allocator: Box::new(Panics),
            requires_k_le_n: false,
            permutation_invariant: false,
            k_monotone: false,
            stride: 1,
        }];
        let v = check_instance(&diverse_instance(), &subjects, &CheckConfig::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "no-panic");
        assert!(v[0].detail.contains("boom"), "detail was: {}", v[0].detail);
    }

    #[test]
    fn a_nondeterministic_allocator_is_caught() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Flaky(AtomicUsize);
        impl ChannelAllocator for Flaky {
            fn name(&self) -> &str {
                "FLAKY"
            }
            fn allocate(
                &self,
                db: &Database,
                channels: usize,
            ) -> Result<Allocation, AllocError> {
                let run = self.0.fetch_add(1, Ordering::Relaxed);
                let assignment = (0..db.len()).map(|i| (i + run) % channels).collect();
                Ok(Allocation::from_assignment(db, channels, assignment)?)
            }
        }
        let subjects = vec![Subject {
            allocator: Box::new(Flaky(AtomicUsize::new(0))),
            requires_k_le_n: false,
            permutation_invariant: false,
            k_monotone: false,
            stride: 1,
        }];
        let v = check_instance(&diverse_instance(), &subjects, &CheckConfig::default());
        assert!(v.iter().any(|x| x.invariant == "determinism"), "{v:?}");
    }

    #[test]
    fn tie_guard_detects_shared_sort_keys() {
        // Same frequency, different size: ambiguous for VF^K ordering.
        let db = Instance::manual(
            vec![
                ItemFeatures { frequency: 0.5, size: 1.0 },
                ItemFeatures { frequency: 0.5, size: 2.0 },
            ],
            1,
        )
        .database()
        .unwrap();
        assert!(has_ambiguous_ties(&db));
        // Identical items are not ambiguous.
        let dup = Instance::manual(
            vec![
                ItemFeatures { frequency: 0.5, size: 2.0 },
                ItemFeatures { frequency: 0.5, size: 2.0 },
            ],
            1,
        )
        .database()
        .unwrap();
        assert!(!has_ambiguous_ties(&dup));
        assert!(!has_ambiguous_ties(&diverse_instance().database().unwrap()));
    }

    #[test]
    fn sim_agreement_runs_clean_on_a_simple_instance() {
        let cfg = CheckConfig { check_sim: true, sim_requests: 2000, ..Default::default() };
        let v = check_instance(&diverse_instance(), &[], &cfg);
        assert!(v.is_empty(), "{v:?}");
    }
}
