//! dbcast-conformance — differential verification and deterministic
//! fuzzing for every channel allocator in the workspace.
//!
//! The crate answers one question continuously: *do all allocators
//! still honor their contracts?* It does so with a layered oracle
//! hierarchy:
//!
//! * **Exact** — on small instances ([`HarnessConfig::oracle_max_items`]
//!   items or fewer) every allocator's cost is checked against
//!   [`dbcast_baselines::ExactBnB`]'s global optimum.
//! * **Metamorphic** — properties that hold at any size: item
//!   relabeling cannot change the cost, scaling all sizes by a power of
//!   two scales the cost by exactly that factor, scaling raw
//!   frequencies is erased by normalization, adding a channel never
//!   hurts, CDS never worsens its input and genuinely converges, and
//!   the Eq. 2 analytical waiting time matches the discrete-event
//!   simulator.
//! * **Differential/structural** — outputs are valid `K`-way
//!   partitions, incremental cost bookkeeping matches the from-scratch
//!   Eq. 3 reference, reruns are bit-identical, and `K > N` is either
//!   honored or rejected with the typed error each algorithm promises.
//!
//! Cases come from a *stateless* seeded generator — any case is
//! regenerable from `(seed, case)` alone — mixing the paper's §4.1
//! Zipf × log-uniform workload model with degenerate shapes (`N < K`,
//! uniform frequencies, dominant items, floor-sized items, duplicate
//! items, single-item databases). Failures are shrunk to minimal
//! reproducers and filed as JSON entries in `crates/conformance/corpus/`,
//! which CI replays forever after.
//!
//! # Example
//!
//! ```
//! use dbcast_conformance::{Harness, HarnessConfig};
//!
//! let report = Harness::new(HarnessConfig {
//!     seed: 42,
//!     cases: 25,
//!     sim_stride: 0, // skip the expensive simulator check in docs
//!     ..Default::default()
//! })
//! .run();
//! assert!(report.is_clean(), "{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod generator;
pub mod harness;
pub mod instance;
pub mod invariants;
pub mod registry;
pub mod shrink;

pub use corpus::{
    load_dir as load_corpus, save as save_corpus_entry, CorpusEntry, NamedEntry,
};
pub use generator::{GeneratorConfig, InstanceGenerator, SHAPES};
pub use harness::{ConformanceReport, Harness, HarnessConfig};
pub use instance::{Instance, ItemFeatures};
pub use invariants::{check_instance, CheckConfig, Violation};
pub use registry::{core_subjects, standard_subjects, Subject};
pub use shrink::{shrink, ShrinkConfig};
