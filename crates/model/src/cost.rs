//! The allocation cost function (paper Eq. 3) and an incremental
//! aggregate tracker for search algorithms.

use serde::{Deserialize, Serialize};

use crate::database::Database;
use crate::error::ModelError;

/// Cost of a single group of items, `cost(G) = (Σ f)(Σ z)` (Definition 1).
///
/// The iterator yields `(frequency, size)` pairs; an empty group costs 0.
///
/// # Example
///
/// ```
/// use dbcast_model::channel_cost;
/// let cost = channel_cost([(0.5, 2.0), (0.25, 6.0)]);
/// assert!((cost - 0.75 * 8.0).abs() < 1e-12);
/// ```
pub fn channel_cost<I>(items: I) -> f64
where
    I: IntoIterator<Item = (f64, f64)>,
{
    let (f, z) = items.into_iter().fold((0.0, 0.0), |(f, z), (fi, zi)| (f + fi, z + zi));
    f * z
}

/// Total cost `Σ_i F_i Z_i` of an `item -> channel` assignment over `db`
/// (Eq. 3), computed from scratch in O(N + K).
///
/// This is the reference implementation that incremental bookkeeping
/// (e.g. [`Allocation::total_cost`](crate::Allocation::total_cost),
/// [`CostTracker`]) is tested against.
///
/// # Errors
///
/// * [`ModelError::ZeroChannels`] if `channels == 0`.
/// * [`ModelError::AssignmentLength`] on a length mismatch.
/// * [`ModelError::ChannelOutOfRange`] if an entry exceeds `channels`.
pub fn allocation_cost(
    db: &Database,
    channels: usize,
    assignment: &[usize],
) -> Result<f64, ModelError> {
    if channels == 0 {
        return Err(ModelError::ZeroChannels);
    }
    if assignment.len() != db.len() {
        return Err(ModelError::AssignmentLength {
            expected: db.len(),
            actual: assignment.len(),
        });
    }
    let mut freq = vec![0.0f64; channels];
    let mut size = vec![0.0f64; channels];
    for (item, &ch) in assignment.iter().enumerate() {
        if ch >= channels {
            return Err(ModelError::ChannelOutOfRange { channel: ch, channels });
        }
        let d = &db.items()[item];
        freq[ch] += d.frequency();
        size[ch] += d.size();
    }
    Ok(freq.iter().zip(&size).map(|(f, z)| f * z).sum())
}

/// Incremental `(F_i, Z_i)` bookkeeping over a mutable assignment.
///
/// Search algorithms (CDS, GOPT mutation repair, greedy) need to evaluate
/// and apply thousands of single-item relocations; `CostTracker` makes
/// each evaluation O(1) without materializing an
/// [`Allocation`](crate::Allocation). It deliberately does **not** hold a
/// reference to the database: callers pass the moved item's `(f, z)`.
///
/// # Example
///
/// ```
/// use dbcast_model::CostTracker;
/// let mut t = CostTracker::new(2);
/// t.add(0, 0.7, 3.0);
/// t.add(1, 0.3, 9.0);
/// let before = t.total_cost();
/// let delta = t.move_reduction(0, 1, 0.7, 3.0);
/// t.relocate(0, 1, 0.7, 3.0);
/// assert!((before - t.total_cost() - delta).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostTracker {
    freq: Vec<f64>,
    size: Vec<f64>,
    items: Vec<usize>,
}

impl CostTracker {
    /// Creates a tracker with `channels` empty channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "CostTracker requires at least one channel");
        CostTracker {
            freq: vec![0.0; channels],
            size: vec![0.0; channels],
            items: vec![0; channels],
        }
    }

    /// Builds a tracker pre-populated from an assignment over `db`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`allocation_cost`].
    pub fn from_assignment(
        db: &Database,
        channels: usize,
        assignment: &[usize],
    ) -> Result<Self, ModelError> {
        // Validate once via the reference path, then fill.
        allocation_cost(db, channels, assignment)?;
        let mut t = CostTracker::new(channels);
        for (item, &ch) in assignment.iter().enumerate() {
            let d = &db.items()[item];
            t.add(ch, d.frequency(), d.size());
        }
        Ok(t)
    }

    /// Number of channels tracked.
    pub fn channels(&self) -> usize {
        self.freq.len()
    }

    /// Adds an item with features `(f, z)` to `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn add(&mut self, channel: usize, f: f64, z: f64) {
        self.freq[channel] += f;
        self.size[channel] += z;
        self.items[channel] += 1;
    }

    /// Removes an item with features `(f, z)` from `channel`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the channel has no items.
    pub fn remove(&mut self, channel: usize, f: f64, z: f64) {
        debug_assert!(self.items[channel] > 0, "removing from empty channel");
        self.freq[channel] -= f;
        self.size[channel] -= z;
        self.items[channel] -= 1;
    }

    /// Moves an item with features `(f, z)` from `from` to `to`.
    pub fn relocate(&mut self, from: usize, to: usize, f: f64, z: f64) {
        if from == to {
            return;
        }
        self.remove(from, f, z);
        self.add(to, f, z);
    }

    /// Eq. 4 cost reduction of moving an item with features `(f, z)` from
    /// `from` to `to`: `Δc = f (Z_p − Z_q) + z (F_p − F_q) − 2 f z`.
    ///
    /// Positive values mean the move lowers total cost.
    pub fn move_reduction(&self, from: usize, to: usize, f: f64, z: f64) -> f64 {
        if from == to {
            return 0.0;
        }
        f * (self.size[from] - self.size[to]) + z * (self.freq[from] - self.freq[to])
            - 2.0 * f * z
    }

    /// Aggregate frequency `F_i` of a channel.
    pub fn frequency(&self, channel: usize) -> f64 {
        self.freq[channel]
    }

    /// Aggregate size `Z_i` of a channel.
    pub fn size(&self, channel: usize) -> f64 {
        self.size[channel]
    }

    /// Item count `N_i` of a channel.
    pub fn item_count(&self, channel: usize) -> usize {
        self.items[channel]
    }

    /// Cost `F_i · Z_i` of a channel.
    pub fn channel_cost(&self, channel: usize) -> f64 {
        self.freq[channel] * self.size[channel]
    }

    /// Total cost `Σ_i F_i Z_i`.
    pub fn total_cost(&self) -> f64 {
        self.freq.iter().zip(&self.size).map(|(f, z)| f * z).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemSpec;

    fn db() -> Database {
        Database::try_from_specs(vec![
            ItemSpec::new(0.4, 2.0),
            ItemSpec::new(0.3, 3.0),
            ItemSpec::new(0.2, 5.0),
            ItemSpec::new(0.1, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn channel_cost_empty_is_zero() {
        assert_eq!(channel_cost(std::iter::empty()), 0.0);
    }

    #[test]
    fn channel_cost_matches_manual() {
        let c = channel_cost([(0.1, 1.0), (0.2, 2.0), (0.3, 3.0)]);
        assert!((c - 0.6 * 6.0).abs() < 1e-12);
    }

    #[test]
    fn allocation_cost_matches_allocation_type() {
        let db = db();
        let assignment = vec![0, 1, 0, 1];
        let via_fn = allocation_cost(&db, 2, &assignment).unwrap();
        let via_alloc =
            crate::Allocation::from_assignment(&db, 2, assignment).unwrap().total_cost();
        assert!((via_fn - via_alloc).abs() < 1e-12);
    }

    #[test]
    fn allocation_cost_validates() {
        let db = db();
        assert!(allocation_cost(&db, 0, &[0, 0, 0, 0]).is_err());
        assert!(allocation_cost(&db, 2, &[0, 0]).is_err());
        assert!(allocation_cost(&db, 2, &[0, 0, 0, 5]).is_err());
    }

    #[test]
    fn tracker_matches_reference_after_random_walk() {
        let db = db();
        let mut assignment = vec![0usize, 0, 1, 2];
        let mut t = CostTracker::from_assignment(&db, 3, &assignment).unwrap();
        // Deterministic pseudo-random walk over moves.
        let mut state = 12345u64;
        for _ in 0..200 {
            state =
                state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let item = (state >> 33) as usize % 4;
            let to = (state >> 17) as usize % 3;
            let from = assignment[item];
            let d = &db.items()[item];
            let predicted = t.move_reduction(from, to, d.frequency(), d.size());
            let before = t.total_cost();
            t.relocate(from, to, d.frequency(), d.size());
            assignment[item] = to;
            let expected = allocation_cost(&db, 3, &assignment).unwrap();
            assert!((t.total_cost() - expected).abs() < 1e-9);
            assert!((before - t.total_cost() - predicted).abs() < 1e-9);
        }
    }

    #[test]
    fn tracker_same_channel_move_is_zero() {
        let t = {
            let mut t = CostTracker::new(2);
            t.add(0, 0.5, 2.0);
            t
        };
        assert_eq!(t.move_reduction(0, 0, 0.5, 2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn tracker_zero_channels_panics() {
        let _ = CostTracker::new(0);
    }
}
