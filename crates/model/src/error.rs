use std::fmt;

/// Errors produced when constructing or validating model types.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The database would contain no items.
    EmptyDatabase,
    /// An item frequency is not finite and strictly positive.
    InvalidFrequency {
        /// Index of the offending item in construction order.
        index: usize,
        /// The rejected frequency value.
        value: f64,
    },
    /// An item size is not finite and strictly positive.
    InvalidSize {
        /// Index of the offending item in construction order.
        index: usize,
        /// The rejected size value.
        value: f64,
    },
    /// Frequencies do not sum to 1 (within tolerance) and normalization
    /// was not requested.
    UnnormalizedFrequencies {
        /// The actual frequency sum.
        sum: f64,
    },
    /// A channel count of zero was requested.
    ZeroChannels,
    /// More channels than items were requested where the operation
    /// requires every channel to be non-empty.
    TooManyChannels {
        /// Requested channel count.
        channels: usize,
        /// Number of items available.
        items: usize,
    },
    /// An assignment vector has the wrong length.
    AssignmentLength {
        /// Expected length (number of items).
        expected: usize,
        /// Actual length supplied.
        actual: usize,
    },
    /// An assignment refers to a channel that does not exist.
    ChannelOutOfRange {
        /// The offending channel index.
        channel: usize,
        /// Number of channels in the allocation.
        channels: usize,
    },
    /// An item id is out of range for the database.
    ItemOutOfRange {
        /// The offending item index.
        item: usize,
        /// Number of items in the database.
        items: usize,
    },
    /// Bandwidth must be finite and strictly positive.
    InvalidBandwidth {
        /// The rejected bandwidth value.
        value: f64,
    },
    /// A move's source channel does not currently hold the item.
    ItemNotOnChannel {
        /// The item being moved.
        item: usize,
        /// The claimed source channel.
        channel: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModelError::EmptyDatabase => write!(f, "broadcast database must contain items"),
            ModelError::InvalidFrequency { index, value } => write!(
                f,
                "item {index} has invalid access frequency {value}; must be finite and > 0"
            ),
            ModelError::InvalidSize { index, value } => write!(
                f,
                "item {index} has invalid size {value}; must be finite and > 0"
            ),
            ModelError::UnnormalizedFrequencies { sum } => write!(
                f,
                "access frequencies sum to {sum}, expected 1 (use try_from_specs to normalize)"
            ),
            ModelError::ZeroChannels => write!(f, "at least one broadcast channel is required"),
            ModelError::TooManyChannels { channels, items } => write!(
                f,
                "{channels} channels requested but only {items} items available"
            ),
            ModelError::AssignmentLength { expected, actual } => write!(
                f,
                "assignment length {actual} does not match database size {expected}"
            ),
            ModelError::ChannelOutOfRange { channel, channels } => write!(
                f,
                "channel index {channel} out of range for {channels} channels"
            ),
            ModelError::ItemOutOfRange { item, items } => {
                write!(f, "item index {item} out of range for {items} items")
            }
            ModelError::InvalidBandwidth { value } => write!(
                f,
                "channel bandwidth {value} is invalid; must be finite and > 0"
            ),
            ModelError::ItemNotOnChannel { item, channel } => {
                write!(f, "item {item} is not allocated to channel {channel}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            ModelError::EmptyDatabase,
            ModelError::InvalidFrequency { index: 3, value: -1.0 },
            ModelError::InvalidSize { index: 1, value: f64::NAN },
            ModelError::UnnormalizedFrequencies { sum: 0.5 },
            ModelError::ZeroChannels,
            ModelError::TooManyChannels { channels: 9, items: 4 },
            ModelError::AssignmentLength { expected: 5, actual: 2 },
            ModelError::ChannelOutOfRange { channel: 7, channels: 3 },
            ModelError::ItemOutOfRange { item: 10, items: 10 },
            ModelError::InvalidBandwidth { value: 0.0 },
            ModelError::ItemNotOnChannel { item: 2, channel: 0 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
