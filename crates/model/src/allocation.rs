use std::fmt;

use serde::{Deserialize, Serialize};

use crate::database::Database;
use crate::error::ModelError;
use crate::item::ItemId;

/// Identifier of a broadcast channel (`0 .. K`).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    Default,
)]
#[serde(transparent)]
pub struct ChannelId(usize);

impl ChannelId {
    /// Creates a channel id from a raw index.
    pub const fn new(index: usize) -> Self {
        ChannelId(index)
    }

    /// Returns the underlying index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<usize> for ChannelId {
    fn from(index: usize) -> Self {
        ChannelId(index)
    }
}

impl From<ChannelId> for usize {
    fn from(id: ChannelId) -> Self {
        id.0
    }
}

/// Per-channel aggregates: item count, aggregate frequency `F_i`,
/// aggregate size `Z_i` and cost `F_i · Z_i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ChannelStats {
    /// Number of items allocated to this channel, `N_i`.
    pub items: usize,
    /// Aggregate access frequency `F_i = Σ_j f_j^(i)` (Definition 3).
    pub frequency: f64,
    /// Aggregate size `Z_i = Σ_j z_j^(i)` (Definition 4).
    pub size: f64,
}

impl ChannelStats {
    /// The channel's contribution to the allocation cost:
    /// `cost(i) = F_i · Z_i` (Definition 1).
    pub fn cost(&self) -> f64 {
        self.frequency * self.size
    }
}

/// A single-item relocation between channels, as considered by CDS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Move {
    /// The item to relocate.
    pub item: ItemId,
    /// Channel the item currently lives on.
    pub from: ChannelId,
    /// Channel the item is moved to.
    pub to: ChannelId,
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} -> {}", self.item, self.from, self.to)
    }
}

/// An allocation of every database item to one of `K` broadcast
/// channels — the output of every allocator in the workspace.
///
/// Internally this is a dense `item -> channel` assignment plus
/// incrementally-maintained per-channel aggregates, so cost queries and
/// CDS-style move evaluation are O(1).
///
/// An `Allocation` is always *consistent* with the database it was built
/// from (every item assigned, channels in range); *empty channels are
/// permitted* — the cost model simply assigns them zero cost. Algorithms
/// that require non-empty channels enforce that themselves.
///
/// # Example
///
/// ```
/// use dbcast_model::{Allocation, Database, ItemSpec};
/// # fn main() -> Result<(), dbcast_model::ModelError> {
/// let db = Database::try_from_specs(vec![
///     ItemSpec::new(0.6, 1.0),
///     ItemSpec::new(0.4, 5.0),
/// ])?;
/// let alloc = Allocation::from_assignment(&db, 2, vec![0, 1])?;
/// assert_eq!(alloc.channels(), 2);
/// assert!((alloc.total_cost() - (0.6 * 1.0 + 0.4 * 5.0)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// `assignment[item] = channel index`.
    assignment: Vec<usize>,
    /// Per-channel aggregates, kept in sync with `assignment`.
    stats: Vec<ChannelStats>,
    /// Cached item features `(f, z)` so moves don't need the database.
    features: Vec<(f64, f64)>,
}

impl Allocation {
    /// Builds an allocation from an explicit `item -> channel` vector.
    ///
    /// # Errors
    ///
    /// * [`ModelError::ZeroChannels`] if `channels == 0`.
    /// * [`ModelError::AssignmentLength`] if `assignment.len() != db.len()`.
    /// * [`ModelError::ChannelOutOfRange`] if any entry `>= channels`.
    pub fn from_assignment(
        db: &Database,
        channels: usize,
        assignment: Vec<usize>,
    ) -> Result<Self, ModelError> {
        if channels == 0 {
            return Err(ModelError::ZeroChannels);
        }
        if assignment.len() != db.len() {
            return Err(ModelError::AssignmentLength {
                expected: db.len(),
                actual: assignment.len(),
            });
        }
        let mut stats = vec![ChannelStats::default(); channels];
        let mut features = Vec::with_capacity(db.len());
        for (item, &ch) in assignment.iter().enumerate() {
            if ch >= channels {
                return Err(ModelError::ChannelOutOfRange { channel: ch, channels });
            }
            let d = &db.items()[item];
            features.push((d.frequency(), d.size()));
            let s = &mut stats[ch];
            s.items += 1;
            s.frequency += d.frequency();
            s.size += d.size();
        }
        Ok(Allocation { assignment, stats, features })
    }

    /// Builds an allocation from explicit per-channel item groups.
    ///
    /// Groups must be disjoint and cover the database exactly; the group
    /// index becomes the channel id.
    ///
    /// # Errors
    ///
    /// * [`ModelError::ZeroChannels`] for an empty group list.
    /// * [`ModelError::ItemOutOfRange`] for unknown item ids.
    /// * [`ModelError::AssignmentLength`] if the groups do not partition
    ///   the database (an item missing or listed twice).
    pub fn from_groups(db: &Database, groups: &[Vec<ItemId>]) -> Result<Self, ModelError> {
        if groups.is_empty() {
            return Err(ModelError::ZeroChannels);
        }
        let mut assignment = vec![usize::MAX; db.len()];
        let mut assigned = 0usize;
        for (ch, group) in groups.iter().enumerate() {
            for &id in group {
                if id.index() >= db.len() {
                    return Err(ModelError::ItemOutOfRange {
                        item: id.index(),
                        items: db.len(),
                    });
                }
                if assignment[id.index()] != usize::MAX {
                    // Item listed twice: groups do not partition D.
                    return Err(ModelError::AssignmentLength {
                        expected: db.len(),
                        actual: assigned + 1,
                    });
                }
                assignment[id.index()] = ch;
                assigned += 1;
            }
        }
        if assigned != db.len() {
            return Err(ModelError::AssignmentLength {
                expected: db.len(),
                actual: assigned,
            });
        }
        Allocation::from_assignment(db, groups.len(), assignment)
    }

    /// Number of channels `K`.
    pub fn channels(&self) -> usize {
        self.stats.len()
    }

    /// Number of items `N`.
    pub fn items(&self) -> usize {
        self.assignment.len()
    }

    /// The channel holding `item`.
    ///
    /// # Errors
    ///
    /// [`ModelError::ItemOutOfRange`] for unknown ids.
    pub fn channel_of(&self, item: ItemId) -> Result<ChannelId, ModelError> {
        self.assignment.get(item.index()).map(|&c| ChannelId::new(c)).ok_or(
            ModelError::ItemOutOfRange { item: item.index(), items: self.assignment.len() },
        )
    }

    /// Aggregates of one channel.
    ///
    /// # Errors
    ///
    /// [`ModelError::ChannelOutOfRange`] for unknown channels.
    pub fn channel_stats(&self, channel: ChannelId) -> Result<ChannelStats, ModelError> {
        self.stats.get(channel.index()).copied().ok_or(ModelError::ChannelOutOfRange {
            channel: channel.index(),
            channels: self.stats.len(),
        })
    }

    /// Aggregates of every channel, indexed by channel id.
    pub fn all_channel_stats(&self) -> &[ChannelStats] {
        &self.stats
    }

    /// The raw `item -> channel` assignment vector.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Materializes per-channel item groups (item ids in id order).
    pub fn groups(&self) -> Vec<Vec<ItemId>> {
        let mut groups = vec![Vec::new(); self.stats.len()];
        for (item, &ch) in self.assignment.iter().enumerate() {
            groups[ch].push(ItemId::new(item));
        }
        groups
    }

    /// Total allocation cost `Σ_i F_i · Z_i` (Eq. 3).
    pub fn total_cost(&self) -> f64 {
        self.stats.iter().map(ChannelStats::cost).sum()
    }

    /// Number of channels with no items.
    pub fn empty_channels(&self) -> usize {
        self.stats.iter().filter(|s| s.items == 0).count()
    }

    /// The cost delta of applying `mv`, per the paper's Eq. 4:
    ///
    /// `Δc = f_x (Z_p − Z_q) + z_x (F_p − F_q) − 2 f_x z_x`
    ///
    /// Positive `Δc` means the move *reduces* total cost by `Δc`.
    /// The move is **not** applied.
    ///
    /// # Errors
    ///
    /// * [`ModelError::ItemOutOfRange`] / [`ModelError::ChannelOutOfRange`]
    ///   for unknown ids.
    /// * [`ModelError::ItemNotOnChannel`] if `mv.from` is not the item's
    ///   current channel.
    pub fn move_reduction(&self, mv: Move) -> Result<f64, ModelError> {
        let cur = self.channel_of(mv.item)?;
        if cur != mv.from {
            return Err(ModelError::ItemNotOnChannel {
                item: mv.item.index(),
                channel: mv.from.index(),
            });
        }
        let p = self.channel_stats(mv.from)?;
        let q = self.channel_stats(mv.to)?;
        let (f_x, z_x) = self.features[mv.item.index()];
        Ok(f_x * (p.size - q.size) + z_x * (p.frequency - q.frequency) - 2.0 * f_x * z_x)
    }

    /// Applies `mv`, updating the assignment and aggregates in O(1).
    ///
    /// Returns the realized cost reduction (same value
    /// [`move_reduction`](Self::move_reduction) would have reported).
    ///
    /// # Errors
    ///
    /// Same conditions as [`move_reduction`](Self::move_reduction).
    /// A move with `from == to` is a no-op returning `0.0`.
    pub fn apply_move(&mut self, mv: Move) -> Result<f64, ModelError> {
        let reduction = self.move_reduction(mv)?;
        if mv.from == mv.to {
            return Ok(0.0);
        }
        let (f_x, z_x) = self.features[mv.item.index()];
        self.assignment[mv.item.index()] = mv.to.index();
        let p = &mut self.stats[mv.from.index()];
        p.items -= 1;
        p.frequency -= f_x;
        p.size -= z_x;
        let q = &mut self.stats[mv.to.index()];
        q.items += 1;
        q.frequency += f_x;
        q.size += z_x;
        Ok(reduction)
    }

    /// Recomputes aggregates from scratch and checks internal
    /// consistency against `db`. Intended for tests and debug assertions.
    ///
    /// # Errors
    ///
    /// Any structural mismatch is reported with the most specific
    /// [`ModelError`] available.
    pub fn validate(&self, db: &Database) -> Result<(), ModelError> {
        if self.assignment.len() != db.len() {
            return Err(ModelError::AssignmentLength {
                expected: db.len(),
                actual: self.assignment.len(),
            });
        }
        let rebuilt =
            Allocation::from_assignment(db, self.stats.len(), self.assignment.clone())?;
        for (a, b) in self.stats.iter().zip(rebuilt.stats.iter()) {
            if a.items != b.items
                || (a.frequency - b.frequency).abs() > 1e-9
                || (a.size - b.size).abs() > 1e-9
            {
                return Err(ModelError::AssignmentLength {
                    expected: b.items,
                    actual: a.items,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemSpec;

    fn db4() -> Database {
        Database::try_from_specs(vec![
            ItemSpec::new(0.4, 2.0),
            ItemSpec::new(0.3, 3.0),
            ItemSpec::new(0.2, 5.0),
            ItemSpec::new(0.1, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn from_assignment_validates_inputs() {
        let db = db4();
        assert_eq!(
            Allocation::from_assignment(&db, 0, vec![0; 4]),
            Err(ModelError::ZeroChannels)
        );
        assert_eq!(
            Allocation::from_assignment(&db, 2, vec![0; 3]),
            Err(ModelError::AssignmentLength { expected: 4, actual: 3 })
        );
        assert_eq!(
            Allocation::from_assignment(&db, 2, vec![0, 1, 2, 0]),
            Err(ModelError::ChannelOutOfRange { channel: 2, channels: 2 })
        );
    }

    #[test]
    fn aggregates_match_definitions() {
        let db = db4();
        let a = Allocation::from_assignment(&db, 2, vec![0, 0, 1, 1]).unwrap();
        let s0 = a.channel_stats(ChannelId::new(0)).unwrap();
        let s1 = a.channel_stats(ChannelId::new(1)).unwrap();
        assert_eq!(s0.items, 2);
        assert!((s0.frequency - 0.7).abs() < 1e-12);
        assert!((s0.size - 5.0).abs() < 1e-12);
        assert!((s1.frequency - 0.3).abs() < 1e-12);
        assert!((s1.size - 6.0).abs() < 1e-12);
        assert!((a.total_cost() - (0.7 * 5.0 + 0.3 * 6.0)).abs() < 1e-12);
    }

    #[test]
    fn groups_roundtrip() {
        let db = db4();
        let a = Allocation::from_assignment(&db, 3, vec![2, 0, 0, 1]).unwrap();
        let groups = a.groups();
        let b = Allocation::from_groups(&db, &groups).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_groups_rejects_non_partition() {
        let db = db4();
        // Missing item 3.
        let missing = vec![vec![ItemId::new(0)], vec![ItemId::new(1), ItemId::new(2)]];
        assert!(Allocation::from_groups(&db, &missing).is_err());
        // Duplicate item 0.
        let dup = vec![
            vec![ItemId::new(0), ItemId::new(1)],
            vec![ItemId::new(0), ItemId::new(2), ItemId::new(3)],
        ];
        assert!(Allocation::from_groups(&db, &dup).is_err());
        // Unknown id.
        let unknown = vec![vec![ItemId::new(9)]];
        assert!(matches!(
            Allocation::from_groups(&db, &unknown),
            Err(ModelError::ItemOutOfRange { item: 9, items: 4 })
        ));
    }

    #[test]
    fn empty_channels_are_allowed_and_counted() {
        let db = db4();
        let a = Allocation::from_assignment(&db, 3, vec![0, 0, 0, 0]).unwrap();
        assert_eq!(a.empty_channels(), 2);
        assert!((a.total_cost() - 11.0).abs() < 1e-12); // F=1, Z=11
    }

    #[test]
    fn move_reduction_matches_recomputation() {
        let db = db4();
        let a = Allocation::from_assignment(&db, 2, vec![0, 0, 1, 1]).unwrap();
        let mv =
            Move { item: ItemId::new(1), from: ChannelId::new(0), to: ChannelId::new(1) };
        let predicted = a.move_reduction(mv).unwrap();

        let mut b = a.clone();
        let realized = b.apply_move(mv).unwrap();
        assert!((predicted - realized).abs() < 1e-12);
        assert!((a.total_cost() - b.total_cost() - predicted).abs() < 1e-12);
        b.validate(&db).unwrap();
    }

    #[test]
    fn apply_move_same_channel_is_noop() {
        let db = db4();
        let mut a = Allocation::from_assignment(&db, 2, vec![0, 0, 1, 1]).unwrap();
        let before = a.clone();
        let mv =
            Move { item: ItemId::new(0), from: ChannelId::new(0), to: ChannelId::new(0) };
        assert_eq!(a.apply_move(mv).unwrap(), 0.0);
        assert_eq!(a, before);
    }

    #[test]
    fn move_from_wrong_channel_is_rejected() {
        let db = db4();
        let a = Allocation::from_assignment(&db, 2, vec![0, 0, 1, 1]).unwrap();
        let mv =
            Move { item: ItemId::new(0), from: ChannelId::new(1), to: ChannelId::new(0) };
        assert_eq!(
            a.move_reduction(mv),
            Err(ModelError::ItemNotOnChannel { item: 0, channel: 1 })
        );
    }

    #[test]
    fn validate_detects_ok_state() {
        let db = db4();
        let mut a = Allocation::from_assignment(&db, 2, vec![0, 1, 0, 1]).unwrap();
        a.validate(&db).unwrap();
        for mv in [
            Move { item: ItemId::new(0), from: ChannelId::new(0), to: ChannelId::new(1) },
            Move { item: ItemId::new(3), from: ChannelId::new(1), to: ChannelId::new(0) },
        ] {
            a.apply_move(mv).unwrap();
            a.validate(&db).unwrap();
        }
    }

    #[test]
    fn display_of_ids_and_moves() {
        let mv =
            Move { item: ItemId::new(4), from: ChannelId::new(1), to: ChannelId::new(2) };
        assert_eq!(mv.to_string(), "d4: c1 -> c2");
        assert_eq!(ChannelId::new(5).to_string(), "c5");
    }
}
