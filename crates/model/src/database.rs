use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::item::{DataItem, ItemId, ItemSpec};

/// Tolerance for "frequencies sum to 1" checks.
pub(crate) const FREQ_SUM_TOLERANCE: f64 = 1e-6;

/// The broadcast database `D`: the immutable set of `N` data items to be
/// disseminated, each with an access frequency and a size.
///
/// Frequencies are normalized to sum to exactly 1 at construction, which
/// makes every downstream quantity (cost, waiting time) directly
/// comparable to the paper's analytical model.
///
/// # Example
///
/// ```
/// use dbcast_model::{Database, ItemSpec};
/// # fn main() -> Result<(), dbcast_model::ModelError> {
/// let db = Database::try_from_specs(vec![
///     ItemSpec::new(3.0, 2.0), // raw popularity counts are fine;
///     ItemSpec::new(1.0, 8.0), // they are normalized to sum to 1
/// ])?;
/// assert_eq!(db.len(), 2);
/// assert!((db.item(0.into())?.frequency() - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Database {
    items: Vec<DataItem>,
}

impl Database {
    /// Builds a database from `(frequency, size)` specs, validating every
    /// entry and normalizing frequencies so that they sum to 1.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyDatabase`] if `specs` is empty.
    /// * [`ModelError::InvalidFrequency`] / [`ModelError::InvalidSize`]
    ///   if any entry is non-finite or not strictly positive.
    pub fn try_from_specs<I>(specs: I) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = ItemSpec>,
    {
        let specs: Vec<ItemSpec> = specs.into_iter().collect();
        if specs.is_empty() {
            return Err(ModelError::EmptyDatabase);
        }
        for (index, s) in specs.iter().enumerate() {
            if !s.frequency.is_finite() || s.frequency <= 0.0 {
                return Err(ModelError::InvalidFrequency { index, value: s.frequency });
            }
            if !s.size.is_finite() || s.size <= 0.0 {
                return Err(ModelError::InvalidSize { index, value: s.size });
            }
        }
        let total: f64 = specs.iter().map(|s| s.frequency).sum();
        let items = specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| DataItem::new(ItemId::new(i), s.frequency / total, s.size))
            .collect();
        Ok(Database { items })
    }

    /// Builds a database from already-normalized specs, rejecting inputs
    /// whose frequencies do not sum to 1 within `1e-6`.
    ///
    /// Useful when reproducing published profiles (e.g. the paper's
    /// Table 2) where the exact frequencies matter.
    ///
    /// # Errors
    ///
    /// Everything [`Database::try_from_specs`] rejects, plus
    /// [`ModelError::UnnormalizedFrequencies`] when the sum is off.
    pub fn try_from_normalized_specs<I>(specs: I) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = ItemSpec>,
    {
        let specs: Vec<ItemSpec> = specs.into_iter().collect();
        let sum: f64 = specs.iter().map(|s| s.frequency).sum();
        if specs.is_empty() {
            return Err(ModelError::EmptyDatabase);
        }
        if (sum - 1.0).abs() > FREQ_SUM_TOLERANCE {
            return Err(ModelError::UnnormalizedFrequencies { sum });
        }
        // Do NOT renormalize: keep the published values bit-exact.
        for (index, s) in specs.iter().enumerate() {
            if !s.frequency.is_finite() || s.frequency <= 0.0 {
                return Err(ModelError::InvalidFrequency { index, value: s.frequency });
            }
            if !s.size.is_finite() || s.size <= 0.0 {
                return Err(ModelError::InvalidSize { index, value: s.size });
            }
        }
        let items = specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| DataItem::new(ItemId::new(i), s.frequency, s.size))
            .collect();
        Ok(Database { items })
    }

    /// Number of items `N`.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the database is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Looks up an item by id.
    ///
    /// # Errors
    ///
    /// [`ModelError::ItemOutOfRange`] if `id` does not name an item.
    pub fn item(&self, id: ItemId) -> Result<&DataItem, ModelError> {
        self.items
            .get(id.index())
            .ok_or(ModelError::ItemOutOfRange { item: id.index(), items: self.items.len() })
    }

    /// All items in id order.
    pub fn items(&self) -> &[DataItem] {
        &self.items
    }

    /// Iterates over items in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, DataItem> {
        self.items.iter()
    }

    /// Item ids sorted by benefit ratio `f/z`, **descending** — the input
    /// order required by DRP and VF^K-style partitioning algorithms.
    ///
    /// Ties are broken by item id so the order is deterministic.
    pub fn ids_by_benefit_ratio_desc(&self) -> Vec<ItemId> {
        let mut ids: Vec<ItemId> = self.items.iter().map(DataItem::id).collect();
        ids.sort_by(|a, b| {
            let ra = self.items[a.index()].benefit_ratio();
            let rb = self.items[b.index()].benefit_ratio();
            rb.cmp(&ra).then_with(|| a.cmp(b))
        });
        ids
    }

    /// Item ids sorted by access frequency, **descending** (the order
    /// conventional equal-size algorithms such as VF^K expect).
    pub fn ids_by_frequency_desc(&self) -> Vec<ItemId> {
        let mut ids: Vec<ItemId> = self.items.iter().map(DataItem::id).collect();
        ids.sort_by(|a, b| {
            let fa = self.items[a.index()].frequency();
            let fb = self.items[b.index()].frequency();
            fb.total_cmp(&fa).then_with(|| a.cmp(b))
        });
        ids
    }

    /// Summary statistics over the database.
    pub fn stats(&self) -> DatabaseStats {
        let n = self.items.len() as f64;
        let total_size: f64 = self.items.iter().map(DataItem::size).sum();
        let total_frequency: f64 = self.items.iter().map(DataItem::frequency).sum();
        let weighted_size: f64 = self.items.iter().map(|d| d.frequency() * d.size()).sum();
        let min_size = self.items.iter().map(DataItem::size).fold(f64::INFINITY, f64::min);
        let max_size =
            self.items.iter().map(DataItem::size).fold(f64::NEG_INFINITY, f64::max);
        DatabaseStats {
            items: self.items.len(),
            total_frequency,
            total_size,
            mean_size: total_size / n,
            min_size,
            max_size,
            weighted_size,
        }
    }
}

impl<'a> IntoIterator for &'a Database {
    type Item = &'a DataItem;
    type IntoIter = std::slice::Iter<'a, DataItem>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// Aggregate statistics of a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatabaseStats {
    /// Number of items `N`.
    pub items: usize,
    /// Sum of all access frequencies (1.0 up to rounding).
    pub total_frequency: f64,
    /// Sum of all item sizes (the flat one-channel cycle length).
    pub total_size: f64,
    /// Mean item size.
    pub mean_size: f64,
    /// Smallest item size.
    pub min_size: f64,
    /// Largest item size.
    pub max_size: f64,
    /// `Σ f_j · z_j` — the allocation-independent download term of Eq. 2
    /// (before dividing by bandwidth).
    pub weighted_size: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db3() -> Database {
        Database::try_from_specs(vec![
            ItemSpec::new(0.5, 2.0),
            ItemSpec::new(0.3, 4.0),
            ItemSpec::new(0.2, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Database::try_from_specs(Vec::new()), Err(ModelError::EmptyDatabase));
    }

    #[test]
    fn rejects_bad_frequency_and_size() {
        assert!(matches!(
            Database::try_from_specs(vec![ItemSpec::new(0.0, 1.0)]),
            Err(ModelError::InvalidFrequency { index: 0, .. })
        ));
        assert!(matches!(
            Database::try_from_specs(vec![ItemSpec::new(f64::NAN, 1.0)]),
            Err(ModelError::InvalidFrequency { index: 0, .. })
        ));
        assert!(matches!(
            Database::try_from_specs(vec![ItemSpec::new(1.0, -2.0)]),
            Err(ModelError::InvalidSize { index: 0, .. })
        ));
        assert!(matches!(
            Database::try_from_specs(vec![ItemSpec::new(1.0, f64::INFINITY)]),
            Err(ModelError::InvalidSize { index: 0, .. })
        ));
    }

    #[test]
    fn normalizes_frequencies() {
        let db = Database::try_from_specs(vec![
            ItemSpec::new(2.0, 1.0),
            ItemSpec::new(6.0, 1.0),
        ])
        .unwrap();
        let f: Vec<f64> = db.iter().map(|d| d.frequency()).collect();
        assert!((f[0] - 0.25).abs() < 1e-12);
        assert!((f[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalized_constructor_rejects_off_sum() {
        let err = Database::try_from_normalized_specs(vec![
            ItemSpec::new(0.5, 1.0),
            ItemSpec::new(0.4, 1.0),
        ])
        .unwrap_err();
        assert!(matches!(err, ModelError::UnnormalizedFrequencies { .. }));
    }

    #[test]
    fn normalized_constructor_keeps_exact_values() {
        let db = Database::try_from_normalized_specs(vec![
            ItemSpec::new(0.5, 1.0),
            ItemSpec::new(0.5, 3.0),
        ])
        .unwrap();
        assert_eq!(db.item(ItemId::new(0)).unwrap().frequency(), 0.5);
    }

    #[test]
    fn item_lookup_in_and_out_of_range() {
        let db = db3();
        assert_eq!(db.item(ItemId::new(2)).unwrap().size(), 1.0);
        assert_eq!(
            db.item(ItemId::new(3)),
            Err(ModelError::ItemOutOfRange { item: 3, items: 3 })
        );
    }

    #[test]
    fn benefit_ratio_order_is_descending_with_id_tiebreak() {
        // br: d0 = 0.25, d1 = 0.075, d2 = 0.2
        let db = db3();
        let order = db.ids_by_benefit_ratio_desc();
        assert_eq!(order, vec![ItemId::new(0), ItemId::new(2), ItemId::new(1)]);

        // Exact ties fall back to id order.
        let tied = Database::try_from_specs(vec![
            ItemSpec::new(0.5, 1.0),
            ItemSpec::new(0.5, 1.0),
        ])
        .unwrap();
        assert_eq!(tied.ids_by_benefit_ratio_desc(), vec![ItemId::new(0), ItemId::new(1)]);
    }

    #[test]
    fn frequency_order_is_descending() {
        let db = db3();
        assert_eq!(
            db.ids_by_frequency_desc(),
            vec![ItemId::new(0), ItemId::new(1), ItemId::new(2)]
        );
    }

    #[test]
    fn stats_are_consistent() {
        let db = db3();
        let s = db.stats();
        assert_eq!(s.items, 3);
        assert!((s.total_frequency - 1.0).abs() < 1e-12);
        assert!((s.total_size - 7.0).abs() < 1e-12);
        assert!((s.mean_size - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min_size, 1.0);
        assert_eq!(s.max_size, 4.0);
        // Σ f z = 0.5*2 + 0.3*4 + 0.2*1 = 2.4
        assert!((s.weighted_size - 2.4).abs() < 1e-12);
    }

    #[test]
    fn iteration_yields_id_order() {
        let db = db3();
        let ids: Vec<usize> = (&db).into_iter().map(|d| d.id().index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
