//! The analytical waiting-time model of diverse data broadcasting
//! (paper Eq. 1 and Eq. 2).

use serde::{Deserialize, Serialize};

use crate::allocation::Allocation;
use crate::database::Database;
use crate::error::ModelError;
use crate::item::ItemId;

fn check_bandwidth(bandwidth: f64) -> Result<(), ModelError> {
    if !bandwidth.is_finite() || bandwidth <= 0.0 {
        return Err(ModelError::InvalidBandwidth { value: bandwidth });
    }
    Ok(())
}

/// Expected waiting time for one item (Eq. 1):
/// `W_j^(i) = Z_i / (2b) + z_j / b`, where `Z_i` is the aggregate size of
/// the item's channel.
///
/// # Errors
///
/// * [`ModelError::InvalidBandwidth`] for non-positive bandwidth.
/// * [`ModelError::ItemOutOfRange`] for unknown items.
pub fn item_waiting_time(
    db: &Database,
    alloc: &Allocation,
    item: ItemId,
    bandwidth: f64,
) -> Result<f64, ModelError> {
    check_bandwidth(bandwidth)?;
    let d = db.item(item)?;
    let ch = alloc.channel_of(item)?;
    let stats = alloc.channel_stats(ch)?;
    Ok(stats.size / (2.0 * bandwidth) + d.size() / bandwidth)
}

/// Frequency-weighted average waiting time of one channel
/// (`W^(i)` in the paper):
/// `Z_i / (2b) + (Σ_j f_j z_j) / (b F_i)`.
///
/// Returns `0.0` for an empty channel (nothing can be requested there).
///
/// # Errors
///
/// * [`ModelError::InvalidBandwidth`] for non-positive bandwidth.
/// * [`ModelError::ChannelOutOfRange`] for unknown channels.
pub fn channel_waiting_time(
    db: &Database,
    alloc: &Allocation,
    channel: crate::ChannelId,
    bandwidth: f64,
) -> Result<f64, ModelError> {
    check_bandwidth(bandwidth)?;
    let stats = alloc.channel_stats(channel)?;
    if stats.items == 0 {
        return Ok(0.0);
    }
    let mut weighted_download = 0.0;
    for (item, &ch) in alloc.assignment().iter().enumerate() {
        if ch == channel.index() {
            let d = &db.items()[item];
            weighted_download += d.frequency() * d.size();
        }
    }
    Ok(stats.size / (2.0 * bandwidth) + weighted_download / (bandwidth * stats.frequency))
}

/// The probe/download decomposition of the program-level average waiting
/// time `W_b` (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaitingTimeBreakdown {
    /// Probe term `(1/2b) Σ_i F_i Z_i` — the only allocation-dependent
    /// part; equals `cost / (2b)`.
    pub probe: f64,
    /// Download term `(1/b) Σ_j f_j z_j` — fixed by the database.
    pub download: f64,
}

impl WaitingTimeBreakdown {
    /// Total expected waiting time `W_b = probe + download`.
    pub fn total(&self) -> f64 {
        self.probe + self.download
    }
}

/// Program-level expected waiting time `W_b` (Eq. 2), decomposed into
/// probe and download terms.
///
/// # Errors
///
/// [`ModelError::InvalidBandwidth`] for non-positive bandwidth;
/// [`ModelError::AssignmentLength`] if `alloc` was not built over `db`.
///
/// # Example
///
/// ```
/// use dbcast_model::{average_waiting_time, Allocation, Database, ItemSpec};
/// # fn main() -> Result<(), dbcast_model::ModelError> {
/// let db = Database::try_from_specs(vec![
///     ItemSpec::new(0.5, 4.0),
///     ItemSpec::new(0.5, 4.0),
/// ])?;
/// let alloc = Allocation::from_assignment(&db, 1, vec![0, 0])?;
/// let w = average_waiting_time(&db, &alloc, 10.0)?;
/// // One channel, cycle 8: probe = 8/(2·10) = 0.4, download = 4/10.
/// assert!((w.probe - 0.4).abs() < 1e-12);
/// assert!((w.download - 0.4).abs() < 1e-12);
/// assert!((w.total() - 0.8).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn average_waiting_time(
    db: &Database,
    alloc: &Allocation,
    bandwidth: f64,
) -> Result<WaitingTimeBreakdown, ModelError> {
    check_bandwidth(bandwidth)?;
    if alloc.items() != db.len() {
        return Err(ModelError::AssignmentLength {
            expected: db.len(),
            actual: alloc.items(),
        });
    }
    let probe = alloc.total_cost() / (2.0 * bandwidth);
    let download = db.stats().weighted_size / bandwidth;
    Ok(WaitingTimeBreakdown { probe, download })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::ChannelId;
    use crate::item::ItemSpec;

    fn db() -> Database {
        Database::try_from_specs(vec![
            ItemSpec::new(0.4, 2.0),
            ItemSpec::new(0.3, 3.0),
            ItemSpec::new(0.2, 5.0),
            ItemSpec::new(0.1, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_bad_bandwidth() {
        let db = db();
        let alloc = Allocation::from_assignment(&db, 1, vec![0; 4]).unwrap();
        for b in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(average_waiting_time(&db, &alloc, b).is_err());
            assert!(item_waiting_time(&db, &alloc, ItemId::new(0), b).is_err());
        }
    }

    #[test]
    fn item_waiting_time_matches_eq1() {
        let db = db();
        let alloc = Allocation::from_assignment(&db, 2, vec![0, 0, 1, 1]).unwrap();
        // Channel 0 aggregate size = 5, item 1 size = 3, b = 10:
        // W = 5/(20) + 3/10 = 0.25 + 0.3
        let w = item_waiting_time(&db, &alloc, ItemId::new(1), 10.0).unwrap();
        assert!((w - 0.55).abs() < 1e-12);
    }

    #[test]
    fn channel_waiting_time_is_weighted_item_average() {
        let db = db();
        let alloc = Allocation::from_assignment(&db, 2, vec![0, 0, 1, 1]).unwrap();
        let ch = ChannelId::new(0);
        let expected = {
            // Weighted by f within the channel, normalized by F_0.
            let w0 = item_waiting_time(&db, &alloc, ItemId::new(0), 10.0).unwrap();
            let w1 = item_waiting_time(&db, &alloc, ItemId::new(1), 10.0).unwrap();
            (0.4 * w0 + 0.3 * w1) / 0.7
        };
        let got = channel_waiting_time(&db, &alloc, ch, 10.0).unwrap();
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_channel_waits_zero() {
        let db = db();
        let alloc = Allocation::from_assignment(&db, 2, vec![0, 0, 0, 0]).unwrap();
        let w = channel_waiting_time(&db, &alloc, ChannelId::new(1), 10.0).unwrap();
        assert_eq!(w, 0.0);
    }

    #[test]
    fn wb_is_frequency_weighted_average_of_channel_waits() {
        // Eq. 2 is derived as Σ_i F_i · W^(i); check both paths agree.
        let db = db();
        let alloc = Allocation::from_assignment(&db, 2, vec![0, 1, 0, 1]).unwrap();
        let b = 10.0;
        let mut weighted = 0.0;
        for c in 0..2 {
            let ch = ChannelId::new(c);
            let f = alloc.channel_stats(ch).unwrap().frequency;
            weighted += f * channel_waiting_time(&db, &alloc, ch, b).unwrap();
        }
        let direct = average_waiting_time(&db, &alloc, b).unwrap().total();
        assert!((weighted - direct).abs() < 1e-12);
    }

    #[test]
    fn download_term_is_allocation_independent() {
        let db = db();
        let a = Allocation::from_assignment(&db, 2, vec![0, 0, 1, 1]).unwrap();
        let b = Allocation::from_assignment(&db, 2, vec![0, 1, 0, 1]).unwrap();
        let wa = average_waiting_time(&db, &a, 5.0).unwrap();
        let wb = average_waiting_time(&db, &b, 5.0).unwrap();
        assert!((wa.download - wb.download).abs() < 1e-12);
    }

    #[test]
    fn probe_term_equals_cost_over_2b() {
        let db = db();
        let a = Allocation::from_assignment(&db, 3, vec![0, 1, 2, 0]).unwrap();
        let w = average_waiting_time(&db, &a, 7.0).unwrap();
        assert!((w.probe - a.total_cost() / 14.0).abs() < 1e-12);
    }
}
