use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a data item: its index into the owning [`Database`].
///
/// Item ids are stable for the lifetime of a database; allocations and
/// broadcast programs refer to items by id.
///
/// [`Database`]: crate::Database
///
/// # Example
///
/// ```
/// use dbcast_model::ItemId;
/// let id = ItemId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "d3");
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Serialize,
    Deserialize,
    Default,
)]
#[serde(transparent)]
pub struct ItemId(usize);

impl ItemId {
    /// Creates an item id from a raw database index.
    pub const fn new(index: usize) -> Self {
        ItemId(index)
    }

    /// Returns the underlying database index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl From<usize> for ItemId {
    fn from(index: usize) -> Self {
        ItemId(index)
    }
}

impl From<ItemId> for usize {
    fn from(id: ItemId) -> Self {
        id.0
    }
}

/// The raw `(frequency, size)` pair used to build database entries.
///
/// `ItemSpec` carries no identity; identities ([`ItemId`]s) are assigned
/// by the [`Database`](crate::Database) constructor in insertion order.
///
/// # Example
///
/// ```
/// use dbcast_model::ItemSpec;
/// let spec = ItemSpec::new(0.25, 10.0);
/// assert_eq!(spec.frequency, 0.25);
/// assert_eq!(spec.size, 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ItemSpec {
    /// Access frequency (relative popularity). Must be finite and `> 0`.
    pub frequency: f64,
    /// Item size in abstract size units. Must be finite and `> 0`.
    pub size: f64,
}

impl ItemSpec {
    /// Creates a new spec from a frequency and a size.
    pub const fn new(frequency: f64, size: f64) -> Self {
        ItemSpec { frequency, size }
    }
}

/// A data item in the broadcast database.
///
/// In the diverse-broadcast model every item carries two features: its
/// access frequency `f` (the probability that a client request targets
/// this item; frequencies sum to 1 across the database) and its size `z`
/// in abstract size units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataItem {
    id: ItemId,
    frequency: f64,
    size: f64,
}

impl DataItem {
    /// Creates an item. Intended for use by [`Database`](crate::Database);
    /// invariants (positive finite frequency/size) are enforced there.
    pub(crate) const fn new(id: ItemId, frequency: f64, size: f64) -> Self {
        DataItem { id, frequency, size }
    }

    /// The item's identifier (index into its database).
    pub const fn id(&self) -> ItemId {
        self.id
    }

    /// The item's access frequency `f`.
    pub const fn frequency(&self) -> f64 {
        self.frequency
    }

    /// The item's size `z` in size units.
    pub const fn size(&self) -> f64 {
        self.size
    }

    /// The item's *benefit ratio* `br = f / z` (paper §3.1).
    ///
    /// High benefit ratio means "popular and cheap to rebroadcast"; DRP
    /// sorts items on this quantity to reduce the two-dimensional
    /// grouping problem to a one-dimensional partitioning problem.
    ///
    /// # Example
    ///
    /// ```
    /// use dbcast_model::{Database, ItemSpec};
    /// # fn main() -> Result<(), dbcast_model::ModelError> {
    /// let db = Database::try_from_specs(vec![ItemSpec::new(1.0, 4.0)])?;
    /// assert_eq!(db.item(0.into())?.benefit_ratio().value(), 0.25);
    /// # Ok(())
    /// # }
    /// ```
    pub fn benefit_ratio(&self) -> BenefitRatio {
        BenefitRatio(self.frequency / self.size)
    }
}

/// The benefit ratio `br = f / z` of an item, a total-orderable newtype.
///
/// Benefit ratios of valid items are always finite and positive, so the
/// `Ord` implementation (via total ordering on the bits of a finite
/// `f64`) is well-behaved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenefitRatio(f64);

impl BenefitRatio {
    /// The ratio as a bare `f64`.
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl Eq for BenefitRatio {}

impl PartialOrd for BenefitRatio {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BenefitRatio {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Valid items guarantee finite, positive ratios; total_cmp keeps
        // this correct even for exotic values that slip through.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for BenefitRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_id_roundtrip_and_display() {
        let id = ItemId::new(7);
        assert_eq!(usize::from(id), 7);
        assert_eq!(ItemId::from(7usize), id);
        assert_eq!(id.to_string(), "d7");
    }

    #[test]
    fn benefit_ratio_is_frequency_over_size() {
        let item = DataItem::new(ItemId::new(0), 0.2, 4.0);
        assert!((item.benefit_ratio().value() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn benefit_ratio_ordering_is_total_and_sensible() {
        let lo = BenefitRatio(0.1);
        let hi = BenefitRatio(0.9);
        assert!(lo < hi);
        assert_eq!(lo.max(hi), hi);

        let mut v = vec![BenefitRatio(0.5), BenefitRatio(0.1), BenefitRatio(0.9)];
        v.sort();
        assert_eq!(v, vec![BenefitRatio(0.1), BenefitRatio(0.5), BenefitRatio(0.9)]);
    }

    #[test]
    fn spec_constructor_is_plain_data() {
        let s = ItemSpec::new(0.3, 2.5);
        assert_eq!(s, ItemSpec { frequency: 0.3, size: 2.5 });
    }
}
