//! The [`ChannelAllocator`] abstraction shared by every allocation
//! algorithm in the workspace (DRP, DRP-CDS, VF^K, GOPT, flat, greedy,
//! exact search).

use std::fmt;

use crate::allocation::Allocation;
use crate::database::Database;
use crate::error::ModelError;

/// Errors produced by allocation algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AllocError {
    /// A structural error from the model layer.
    Model(ModelError),
    /// The instance is infeasible for this algorithm (e.g. more
    /// channels than items for algorithms requiring non-empty channels).
    Infeasible {
        /// Why the instance cannot be solved.
        reason: String,
    },
    /// The instance is too large for an exact algorithm's budget.
    TooLarge {
        /// Number of items in the instance.
        items: usize,
        /// The algorithm's limit.
        limit: usize,
    },
    /// An algorithm parameter is out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint.
        constraint: &'static str,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Model(e) => write!(f, "allocation model error: {e}"),
            AllocError::Infeasible { reason } => write!(f, "infeasible instance: {reason}"),
            AllocError::TooLarge { items, limit } => {
                write!(f, "instance with {items} items exceeds exact-search limit {limit}")
            }
            AllocError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter {name}: {constraint}")
            }
        }
    }
}

impl std::error::Error for AllocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AllocError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for AllocError {
    fn from(e: ModelError) -> Self {
        AllocError::Model(e)
    }
}

/// A channel-allocation algorithm: groups the items of a database onto
/// `channels` broadcast channels, attempting to minimize the cost
/// function `Σ_i F_i Z_i` (Eq. 3).
///
/// Implementations must be deterministic for a fixed configuration
/// (randomized algorithms carry an explicit seed in their config).
pub trait ChannelAllocator {
    /// A short stable name for reports (e.g. `"DRP-CDS"`, `"VF^K"`).
    fn name(&self) -> &str;

    /// Computes an allocation of `db` onto `channels` channels.
    ///
    /// # Errors
    ///
    /// Algorithm-specific; see each implementation. All algorithms
    /// reject `channels == 0`.
    fn allocate(&self, db: &Database, channels: usize) -> Result<Allocation, AllocError>;
}

impl<T: ChannelAllocator + ?Sized> ChannelAllocator for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn allocate(&self, db: &Database, channels: usize) -> Result<Allocation, AllocError> {
        (**self).allocate(db, channels)
    }
}

impl<T: ChannelAllocator + ?Sized> ChannelAllocator for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn allocate(&self, db: &Database, channels: usize) -> Result<Allocation, AllocError> {
        (**self).allocate(db, channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemSpec;

    /// A trivial allocator used to exercise the trait plumbing.
    struct RoundRobin;

    impl ChannelAllocator for RoundRobin {
        fn name(&self) -> &str {
            "round-robin"
        }

        fn allocate(
            &self,
            db: &Database,
            channels: usize,
        ) -> Result<Allocation, AllocError> {
            if channels == 0 {
                return Err(ModelError::ZeroChannels.into());
            }
            let assignment = (0..db.len()).map(|i| i % channels).collect();
            Ok(Allocation::from_assignment(db, channels, assignment)?)
        }
    }

    fn db() -> Database {
        Database::try_from_specs(vec![
            ItemSpec::new(0.5, 1.0),
            ItemSpec::new(0.3, 2.0),
            ItemSpec::new(0.2, 3.0),
        ])
        .unwrap()
    }

    #[test]
    fn trait_object_and_ref_impls_work() {
        let rr = RoundRobin;
        let by_ref: &dyn ChannelAllocator = &rr;
        let boxed: Box<dyn ChannelAllocator> = Box::new(RoundRobin);
        let db = db();
        assert_eq!(by_ref.name(), "round-robin");
        assert_eq!(boxed.name(), "round-robin");
        let a = by_ref.allocate(&db, 2).unwrap();
        let b = boxed.allocate(&db, 2).unwrap();
        assert_eq!(a.assignment(), b.assignment());
        assert_eq!((&&rr).name(), "round-robin");
    }

    #[test]
    fn model_errors_convert() {
        let rr = RoundRobin;
        let err = rr.allocate(&db(), 0).unwrap_err();
        assert!(matches!(err, AllocError::Model(ModelError::ZeroChannels)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn display_for_all_variants() {
        for e in [
            AllocError::Infeasible { reason: "k > n".into() },
            AllocError::TooLarge { items: 30, limit: 14 },
            AllocError::InvalidParameter { name: "pop", constraint: "must be > 0" },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
