//! Domain model for **diverse data broadcasting**.
//!
//! This crate defines the shared vocabulary of the workspace: data items
//! with *access frequency* and *item size*, broadcast databases, channel
//! allocations (groupings of items onto `K` channels), the allocation
//! cost function of Hung & Chen (ICDCS 2005, Eq. 3), and the analytical
//! waiting-time model (Eq. 1–2).
//!
//! # Model recap
//!
//! A broadcast server owns a database `D` of `N` items. Item `d_j` has an
//! access frequency `f_j` (all frequencies sum to 1) and a size `z_j`.
//! The items are split into `K` disjoint groups, one per broadcast
//! channel; each channel broadcasts its group cyclically at bandwidth
//! `b`. A client that wants item `d_j` on channel `c_i` waits on average
//!
//! ```text
//! W_j^(i) = Z_i / (2 b) + z_j / b          (Eq. 1, Z_i = aggregate size of c_i)
//! ```
//!
//! and the program-level expected waiting time is
//!
//! ```text
//! W_b = (1/2b) Σ_i F_i · Z_i + (1/b) Σ_j f_j z_j     (Eq. 2)
//! ```
//!
//! Only the first term depends on the allocation, so allocation quality
//! is measured by the cost function `cost = Σ_i F_i · Z_i` (Eq. 3).
//!
//! # Example
//!
//! ```
//! use dbcast_model::{Database, Allocation, ItemSpec};
//!
//! # fn main() -> Result<(), dbcast_model::ModelError> {
//! // Three items: (frequency, size).
//! let db = Database::try_from_specs(vec![
//!     ItemSpec::new(0.5, 2.0),
//!     ItemSpec::new(0.3, 4.0),
//!     ItemSpec::new(0.2, 1.0),
//! ])?;
//!
//! // Put the popular item alone on channel 0, the rest on channel 1.
//! let alloc = Allocation::from_assignment(&db, 2, vec![0, 1, 1])?;
//! assert!(alloc.total_cost() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocation;
mod allocator;
mod cost;
mod database;
mod error;
mod item;
mod program;
mod waiting;

pub use allocation::{Allocation, ChannelId, ChannelStats, Move};
pub use allocator::{AllocError, ChannelAllocator};
pub use cost::{allocation_cost, channel_cost, CostTracker};
pub use database::{Database, DatabaseStats};
pub use error::ModelError;
pub use item::{BenefitRatio, DataItem, ItemId, ItemSpec};
pub use program::{BroadcastProgram, ChannelSchedule, ScheduledItem};
pub use waiting::{
    average_waiting_time, channel_waiting_time, item_waiting_time, WaitingTimeBreakdown,
};

/// Convenient glob-import surface: `use dbcast_model::prelude::*;`.
pub mod prelude {
    pub use crate::{
        allocation_cost, average_waiting_time, AllocError, Allocation, BroadcastProgram,
        ChannelAllocator, ChannelId, CostTracker, DataItem, Database, ItemId, ItemSpec,
        ModelError,
    };
}
