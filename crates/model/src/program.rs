//! Concrete broadcast programs: the cyclic per-channel schedules a server
//! actually transmits, derived from an [`Allocation`].

use serde::{Deserialize, Serialize};

use crate::allocation::{Allocation, ChannelId};
use crate::database::Database;
use crate::error::ModelError;
use crate::item::ItemId;

/// One item's slot within a channel cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledItem {
    /// The item occupying this slot.
    pub item: ItemId,
    /// Offset of the slot start from the cycle start, in size units.
    pub offset: f64,
    /// The item's size (slot length) in size units.
    pub size: f64,
}

/// The cyclic schedule of one broadcast channel.
///
/// Slots are laid out back-to-back in the given item order; the cycle
/// repeats every [`cycle_size`](Self::cycle_size) size units. With
/// bandwidth `b`, wall-clock cycle time is `cycle_size / b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelSchedule {
    channel: ChannelId,
    slots: Vec<ScheduledItem>,
    cycle_size: f64,
}

impl ChannelSchedule {
    /// The channel this schedule belongs to.
    pub fn channel(&self) -> ChannelId {
        self.channel
    }

    /// The slots of one cycle, in broadcast order.
    pub fn slots(&self) -> &[ScheduledItem] {
        &self.slots
    }

    /// Total size of one cycle in size units (`Z_i`).
    pub fn cycle_size(&self) -> f64 {
        self.cycle_size
    }

    /// Whether the channel broadcasts nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Slot for `item`, if it is broadcast on this channel.
    pub fn slot_of(&self, item: ItemId) -> Option<&ScheduledItem> {
        self.slots.iter().find(|s| s.item == item)
    }

    /// The next time `>= now` (in seconds) at which `item` *starts*
    /// broadcasting, given channel bandwidth `bandwidth`.
    ///
    /// Returns `None` if the item is not on this channel or the channel
    /// is empty.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `bandwidth <= 0` or `now < 0`.
    pub fn next_start(&self, item: ItemId, now: f64, bandwidth: f64) -> Option<f64> {
        debug_assert!(bandwidth > 0.0 && now >= 0.0);
        let slot = self.slot_of(item)?;
        let cycle_time = self.cycle_size / bandwidth;
        let offset_time = slot.offset / bandwidth;
        // Number of whole cycles completed before `now`.
        let k = ((now - offset_time) / cycle_time).ceil().max(0.0);
        let mut t = offset_time + k * cycle_time;
        // Guard against floating-point rounding putting t just below now.
        if t < now {
            t += cycle_time;
        }
        Some(t)
    }
}

/// A complete broadcast program: one [`ChannelSchedule`] per channel plus
/// the shared channel bandwidth.
///
/// The program fixes the *intra-channel order* of items (the allocation
/// only fixes the grouping). Waiting-time expectations (Eq. 1–2) are
/// order-independent, but a concrete order is needed to actually
/// broadcast — and for the discrete-event simulator.
///
/// # Example
///
/// ```
/// use dbcast_model::{Allocation, BroadcastProgram, Database, ItemSpec};
/// # fn main() -> Result<(), dbcast_model::ModelError> {
/// let db = Database::try_from_specs(vec![
///     ItemSpec::new(0.6, 2.0),
///     ItemSpec::new(0.4, 3.0),
/// ])?;
/// let alloc = Allocation::from_assignment(&db, 1, vec![0, 0])?;
/// let program = BroadcastProgram::new(&db, &alloc, 10.0)?;
/// assert_eq!(program.channels().len(), 1);
/// assert!((program.channels()[0].cycle_size() - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BroadcastProgram {
    channels: Vec<ChannelSchedule>,
    bandwidth: f64,
}

impl BroadcastProgram {
    /// Builds a program from an allocation, placing each channel's items
    /// in item-id order.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidBandwidth`] for non-positive bandwidth.
    /// * [`ModelError::AssignmentLength`] if `alloc` does not cover `db`.
    pub fn new(
        db: &Database,
        alloc: &Allocation,
        bandwidth: f64,
    ) -> Result<Self, ModelError> {
        if !bandwidth.is_finite() || bandwidth <= 0.0 {
            return Err(ModelError::InvalidBandwidth { value: bandwidth });
        }
        if alloc.items() != db.len() {
            return Err(ModelError::AssignmentLength {
                expected: db.len(),
                actual: alloc.items(),
            });
        }
        let mut channels = Vec::with_capacity(alloc.channels());
        for (ch, group) in alloc.groups().into_iter().enumerate() {
            let mut slots = Vec::with_capacity(group.len());
            let mut offset = 0.0;
            for id in group {
                let size = db.items()[id.index()].size();
                slots.push(ScheduledItem { item: id, offset, size });
                offset += size;
            }
            channels.push(ChannelSchedule {
                channel: ChannelId::new(ch),
                slots,
                cycle_size: offset,
            });
        }
        Ok(BroadcastProgram { channels, bandwidth })
    }

    /// Builds a program from explicit per-channel groups that may
    /// **overlap** (an item broadcast on several channels — the
    /// replication extension). Every item must appear on at least one
    /// channel; within a channel, slots follow the given order.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidBandwidth`] for non-positive bandwidth.
    /// * [`ModelError::ZeroChannels`] for an empty group list.
    /// * [`ModelError::ItemOutOfRange`] for unknown item ids.
    /// * [`ModelError::AssignmentLength`] if some item appears on no
    ///   channel.
    pub fn from_overlapping_groups(
        db: &Database,
        groups: &[Vec<ItemId>],
        bandwidth: f64,
    ) -> Result<Self, ModelError> {
        if !bandwidth.is_finite() || bandwidth <= 0.0 {
            return Err(ModelError::InvalidBandwidth { value: bandwidth });
        }
        if groups.is_empty() {
            return Err(ModelError::ZeroChannels);
        }
        let mut covered = vec![false; db.len()];
        let mut channels = Vec::with_capacity(groups.len());
        for (ch, group) in groups.iter().enumerate() {
            let mut slots = Vec::with_capacity(group.len());
            let mut offset = 0.0;
            for &id in group {
                if id.index() >= db.len() {
                    return Err(ModelError::ItemOutOfRange {
                        item: id.index(),
                        items: db.len(),
                    });
                }
                covered[id.index()] = true;
                let size = db.items()[id.index()].size();
                slots.push(ScheduledItem { item: id, offset, size });
                offset += size;
            }
            channels.push(ChannelSchedule {
                channel: ChannelId::new(ch),
                slots,
                cycle_size: offset,
            });
        }
        let missing = covered.iter().filter(|&&c| !c).count();
        if missing > 0 {
            return Err(ModelError::AssignmentLength {
                expected: db.len(),
                actual: db.len() - missing,
            });
        }
        Ok(BroadcastProgram { channels, bandwidth })
    }

    /// All channel schedules, indexed by channel id.
    pub fn channels(&self) -> &[ChannelSchedule] {
        &self.channels
    }

    /// The shared channel bandwidth in size units per second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// The first schedule carrying `item`, with its slot. With
    /// replication, prefer [`locate_all`](Self::locate_all) or
    /// [`best_start`](Self::best_start).
    pub fn locate(&self, item: ItemId) -> Option<(&ChannelSchedule, &ScheduledItem)> {
        self.channels.iter().find_map(|c| c.slot_of(item).map(|s| (c, s)))
    }

    /// Every schedule carrying `item` (more than one under replication).
    pub fn locate_all(&self, item: ItemId) -> Vec<(&ChannelSchedule, &ScheduledItem)> {
        self.channels.iter().filter_map(|c| c.slot_of(item).map(|s| (c, s))).collect()
    }

    /// The earliest upcoming broadcast of `item` at or after `now`,
    /// across all channels carrying it: `(channel, start time, size)`.
    ///
    /// Returns `None` if no channel broadcasts the item.
    pub fn best_start(&self, item: ItemId, now: f64) -> Option<(ChannelId, f64, f64)> {
        self.locate_all(item)
            .into_iter()
            .filter_map(|(schedule, slot)| {
                schedule
                    .next_start(item, now, self.bandwidth)
                    .map(|t| (schedule.channel(), t, slot.size))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Time (seconds) a request for `item` issued at `now` waits until
    /// the *download completes*: wait for the item's next slot start
    /// (on whichever channel broadcasts it soonest), then download it.
    /// This is the quantity whose expectation Eq. 1 describes (for the
    /// unreplicated case).
    ///
    /// Returns `None` if no channel broadcasts the item.
    pub fn response_time(&self, item: ItemId, now: f64) -> Option<f64> {
        let (_, start, size) = self.best_start(item, now)?;
        Some(start - now + size / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemSpec;

    fn setup() -> (Database, BroadcastProgram) {
        let db = Database::try_from_specs(vec![
            ItemSpec::new(0.4, 2.0), // d0 -> c0
            ItemSpec::new(0.3, 3.0), // d1 -> c0
            ItemSpec::new(0.2, 5.0), // d2 -> c1
            ItemSpec::new(0.1, 1.0), // d3 -> c1
        ])
        .unwrap();
        let alloc = Allocation::from_assignment(&db, 2, vec![0, 0, 1, 1]).unwrap();
        let program = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        (db, program)
    }

    #[test]
    fn slots_are_contiguous_and_cycle_is_aggregate_size() {
        let (_, p) = setup();
        let c0 = &p.channels()[0];
        assert_eq!(c0.slots().len(), 2);
        assert_eq!(c0.slots()[0].offset, 0.0);
        assert_eq!(c0.slots()[1].offset, 2.0);
        assert!((c0.cycle_size() - 5.0).abs() < 1e-12);
        let c1 = &p.channels()[1];
        assert!((c1.cycle_size() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn next_start_wraps_cycles() {
        let (_, p) = setup();
        let c0 = &p.channels()[0];
        // d1 occupies offsets [2, 5) size units => [0.2s, 0.5s) each 0.5s cycle.
        assert!((c0.next_start(ItemId::new(1), 0.0, 10.0).unwrap() - 0.2).abs() < 1e-12);
        assert!((c0.next_start(ItemId::new(1), 0.2, 10.0).unwrap() - 0.2).abs() < 1e-12);
        assert!((c0.next_start(ItemId::new(1), 0.21, 10.0).unwrap() - 0.7).abs() < 1e-12);
        assert!((c0.next_start(ItemId::new(1), 1.7, 10.0).unwrap() - 1.7).abs() < 1e-9);
    }

    #[test]
    fn next_start_unknown_item_is_none() {
        let (_, p) = setup();
        assert!(p.channels()[0].next_start(ItemId::new(2), 0.0, 10.0).is_none());
    }

    #[test]
    fn response_time_includes_download() {
        let (_, p) = setup();
        // Request d0 at t = 0: starts immediately, download 2/10 = 0.2s.
        assert!((p.response_time(ItemId::new(0), 0.0).unwrap() - 0.2).abs() < 1e-12);
        // Request d0 just after its slot started: wait rest of cycle.
        let r = p.response_time(ItemId::new(0), 0.01).unwrap();
        assert!((r - (0.5 - 0.01 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn response_time_unknown_item_is_none() {
        let (db, _) = setup();
        let alloc = Allocation::from_assignment(&db, 2, vec![0, 0, 0, 0]).unwrap();
        let p = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        // Channel 1 is empty; every item still on channel 0.
        assert!(p.channels()[1].is_empty());
        assert!(p.response_time(ItemId::new(3), 0.3).is_some());
    }

    #[test]
    fn average_response_time_over_cycle_matches_eq1() {
        // Integrate the response time of one item over a full cycle of
        // request times; the mean must equal Eq. 1.
        let (db, p) = setup();
        let alloc = Allocation::from_assignment(&db, 2, vec![0, 0, 1, 1]).unwrap();
        let item = ItemId::new(1);
        let analytical =
            crate::waiting::item_waiting_time(&db, &alloc, item, 10.0).unwrap();
        let cycle = 0.5; // channel 0: 5 units / 10 per sec
        let steps = 100_000;
        let mut sum = 0.0;
        for i in 0..steps {
            let t = cycle * (i as f64 + 0.5) / steps as f64;
            sum += p.response_time(item, t).unwrap();
        }
        let empirical = sum / steps as f64;
        assert!(
            (empirical - analytical).abs() < 1e-3,
            "empirical {empirical} vs analytical {analytical}"
        );
    }

    #[test]
    fn rejects_bad_bandwidth() {
        let (db, _) = setup();
        let alloc = Allocation::from_assignment(&db, 1, vec![0; 4]).unwrap();
        assert!(BroadcastProgram::new(&db, &alloc, 0.0).is_err());
        assert!(BroadcastProgram::new(&db, &alloc, f64::NAN).is_err());
    }

    #[test]
    fn overlapping_groups_build_replicated_programs() {
        let (db, _) = setup();
        // d0 replicated onto both channels.
        let groups = vec![
            vec![ItemId::new(0), ItemId::new(1)],
            vec![ItemId::new(0), ItemId::new(2), ItemId::new(3)],
        ];
        let p = BroadcastProgram::from_overlapping_groups(&db, &groups, 10.0).unwrap();
        assert_eq!(p.locate_all(ItemId::new(0)).len(), 2);
        assert_eq!(p.locate_all(ItemId::new(2)).len(), 1);
    }

    #[test]
    fn overlapping_groups_reject_uncovered_items() {
        let (db, _) = setup();
        let groups = vec![vec![ItemId::new(0)], vec![ItemId::new(1)]];
        assert!(matches!(
            BroadcastProgram::from_overlapping_groups(&db, &groups, 10.0),
            Err(ModelError::AssignmentLength { .. })
        ));
        let unknown = vec![vec![ItemId::new(9)]];
        assert!(BroadcastProgram::from_overlapping_groups(&db, &unknown, 10.0).is_err());
        assert!(BroadcastProgram::from_overlapping_groups(&db, &[], 10.0).is_err());
    }

    #[test]
    fn replication_never_increases_response_time() {
        let (db, _) = setup();
        let base_groups = vec![
            vec![ItemId::new(0), ItemId::new(1)],
            vec![ItemId::new(2), ItemId::new(3)],
        ];
        let repl_groups = vec![
            vec![ItemId::new(0), ItemId::new(1)],
            vec![ItemId::new(2), ItemId::new(3), ItemId::new(0)],
        ];
        let base =
            BroadcastProgram::from_overlapping_groups(&db, &base_groups, 10.0).unwrap();
        let repl =
            BroadcastProgram::from_overlapping_groups(&db, &repl_groups, 10.0).unwrap();
        // The replicated item's response never worsens at any probe time;
        // (its own channel-0 schedule is unchanged, and channel 1 only
        // adds an extra opportunity).
        for i in 0..200 {
            let t = i as f64 * 0.013;
            let b = base.response_time(ItemId::new(0), t).unwrap();
            let r = repl.response_time(ItemId::new(0), t).unwrap();
            assert!(r <= b + 1e-9, "at t = {t}: {r} > {b}");
        }
    }

    #[test]
    fn best_start_picks_the_sooner_replica() {
        let (db, _) = setup();
        let groups = vec![
            vec![ItemId::new(1), ItemId::new(0)], // d0 at offset 3 of cycle 5
            vec![ItemId::new(0), ItemId::new(2), ItemId::new(3)], // d0 at offset 0 of cycle 8
        ];
        let p = BroadcastProgram::from_overlapping_groups(&db, &groups, 10.0).unwrap();
        // At t = 0, channel 1 starts d0 immediately.
        let (ch, start, _) = p.best_start(ItemId::new(0), 0.0).unwrap();
        assert_eq!(ch.index(), 1);
        assert_eq!(start, 0.0);
        // Just after, channel 0's copy at 0.3s beats channel 1's next
        // cycle at 0.8s.
        let (ch, start, _) = p.best_start(ItemId::new(0), 0.05).unwrap();
        assert_eq!(ch.index(), 0);
        assert!((start - 0.3).abs() < 1e-12);
    }
}
