//! Property-based tests of the model crate's core invariants.

use dbcast_model::{
    allocation_cost, average_waiting_time, Allocation, BroadcastProgram, ChannelId,
    CostTracker, Database, ItemId, ItemSpec, Move,
};
use proptest::prelude::*;

fn specs_strategy() -> impl Strategy<Value = Vec<ItemSpec>> {
    prop::collection::vec((0.001f64..100.0, 0.01f64..1e4), 1..50)
        .prop_map(|v| v.into_iter().map(|(f, z)| ItemSpec::new(f, z)).collect())
}

fn db_k_assignment() -> impl Strategy<Value = (Database, usize, Vec<usize>)> {
    specs_strategy().prop_flat_map(|specs| {
        let db = Database::try_from_specs(specs).expect("valid specs");
        let n = db.len();
        (1usize..6).prop_flat_map(move |k| {
            let db = db.clone();
            prop::collection::vec(0..k, n)
                .prop_map(move |assignment| (db.clone(), k, assignment))
        })
    })
}

proptest! {
    #[test]
    fn database_normalizes_any_positive_profile(specs in specs_strategy()) {
        let db = Database::try_from_specs(specs).unwrap();
        let sum: f64 = db.iter().map(|d| d.frequency()).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for d in db.iter() {
            prop_assert!(d.frequency() > 0.0 && d.size() > 0.0);
            prop_assert!(d.benefit_ratio().value() > 0.0);
        }
    }

    #[test]
    fn benefit_ratio_order_is_a_permutation_and_sorted(specs in specs_strategy()) {
        let db = Database::try_from_specs(specs).unwrap();
        let order = db.ids_by_benefit_ratio_desc();
        prop_assert_eq!(order.len(), db.len());
        let mut seen = vec![false; db.len()];
        for id in &order {
            prop_assert!(!seen[id.index()]);
            seen[id.index()] = true;
        }
        for w in order.windows(2) {
            let a = db.items()[w[0].index()].benefit_ratio();
            let b = db.items()[w[1].index()].benefit_ratio();
            prop_assert!(a >= b);
        }
    }

    #[test]
    fn allocation_aggregates_match_reference((db, k, assignment) in db_k_assignment()) {
        let alloc = Allocation::from_assignment(&db, k, assignment.clone()).unwrap();
        let reference = allocation_cost(&db, k, &assignment).unwrap();
        prop_assert!((alloc.total_cost() - reference).abs() < 1e-6);
        alloc.validate(&db).unwrap();
        // Per-channel item counts sum to N.
        let total: usize = alloc.all_channel_stats().iter().map(|s| s.items).sum();
        prop_assert_eq!(total, db.len());
    }

    #[test]
    fn cost_tracker_survives_arbitrary_move_sequences(
        (db, k, assignment) in db_k_assignment(),
        moves in prop::collection::vec((0usize..50, 0usize..6), 0..60),
    ) {
        let mut alloc = Allocation::from_assignment(&db, k, assignment.clone()).unwrap();
        let mut tracker = CostTracker::from_assignment(&db, k, &assignment).unwrap();
        for (raw_item, raw_to) in moves {
            let item = raw_item % db.len();
            let to = raw_to % k;
            let from = alloc.channel_of(ItemId::new(item)).unwrap();
            let d = &db.items()[item];
            let predicted = tracker.move_reduction(from.index(), to, d.frequency(), d.size());
            let mv = Move { item: ItemId::new(item), from, to: ChannelId::new(to) };
            let realized = alloc.apply_move(mv).unwrap();
            tracker.relocate(from.index(), to, d.frequency(), d.size());
            prop_assert!((predicted - realized).abs() < 1e-6);
            prop_assert!((tracker.total_cost() - alloc.total_cost()).abs() < 1e-6);
        }
    }

    #[test]
    fn waiting_time_scales_inversely_with_bandwidth(
        (db, k, assignment) in db_k_assignment(),
        b in 0.1f64..1e3,
    ) {
        let alloc = Allocation::from_assignment(&db, k, assignment).unwrap();
        let w1 = average_waiting_time(&db, &alloc, b).unwrap().total();
        let w2 = average_waiting_time(&db, &alloc, 2.0 * b).unwrap().total();
        prop_assert!((w1 / w2 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn program_covers_every_item_once((db, k, assignment) in db_k_assignment()) {
        let alloc = Allocation::from_assignment(&db, k, assignment).unwrap();
        let program = BroadcastProgram::new(&db, &alloc, 10.0).unwrap();
        let slot_count: usize = program.channels().iter().map(|c| c.slots().len()).sum();
        prop_assert_eq!(slot_count, db.len());
        for d in db.iter() {
            prop_assert_eq!(program.locate_all(d.id()).len(), 1);
            let response = program.response_time(d.id(), 0.123).unwrap();
            prop_assert!(response >= d.size() / 10.0 - 1e-9);
        }
    }

    #[test]
    fn serde_roundtrips_preserve_everything((db, k, assignment) in db_k_assignment()) {
        let alloc = Allocation::from_assignment(&db, k, assignment).unwrap();
        let db2: Database =
            serde_json::from_str(&serde_json::to_string(&db).unwrap()).unwrap();
        let alloc2: Allocation =
            serde_json::from_str(&serde_json::to_string(&alloc).unwrap()).unwrap();
        prop_assert_eq!(db, db2);
        prop_assert_eq!(alloc, alloc2);
    }
}
