//! The `SeriesStore`: every metric in an obs registry snapshot gets a
//! bounded [`Series`] (counters and gauges) or a bucket-delta history
//! ([`HistSeries`], for windowed quantiles). Appends are cheap — one
//! `BTreeMap` walk under a mutex per scrape, no allocation in steady
//! state — and the memory held is fixed by [`ScopeConfig`] no matter
//! how long the process runs.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use dbcast_obs::metrics::HistogramSnapshot;
use dbcast_obs::metrics::{bucket_index, bucket_lower_bound, bucket_upper_bound, BUCKETS};
use dbcast_obs::snapshot::Snapshot;

use crate::json::{HistEntry, SeriesDoc, SeriesEntry};
use crate::ring::Ring;
use crate::series::{Sample, Series, SeriesKind};

/// Capacity and naming knobs for a [`SeriesStore`].
#[derive(Debug, Clone)]
pub struct ScopeConfig {
    /// Raw samples retained per series.
    pub raw_capacity: usize,
    /// Bins retained per decimated tier.
    pub tier_capacity: usize,
    /// Histogram bucket snapshots retained per histogram.
    pub hist_capacity: usize,
    /// Raw samples included per series in the `/series` export (the
    /// ring may hold more; the export trims to the newest).
    pub render_raw: usize,
    /// Counter whose scraped value stamps each sample's virtual tick.
    pub tick_counter: String,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        ScopeConfig {
            raw_capacity: 240,
            tier_capacity: 240,
            hist_capacity: 128,
            render_raw: 120,
            tick_counter: "serve.ticks".to_string(),
        }
    }
}

/// Windows (in scrape samples) over which histogram quantiles are
/// computed for the export.
pub const QUANTILE_WINDOWS: [usize; 2] = [16, 64];

/// One histogram scrape: the full (dense) bucket array, so deltas
/// between any two snapshots are a subtraction away.
#[derive(Debug, Clone, Copy)]
pub struct HistSnap {
    /// Virtual tick at scrape time.
    pub tick: u64,
    /// Milliseconds since the store was created.
    pub wall_ms: u64,
    /// Cumulative observation count at scrape time.
    pub count: u64,
    /// Cumulative observation sum at scrape time.
    pub sum: u64,
    /// Dense per-bucket cumulative counts.
    pub buckets: [u64; BUCKETS],
}

impl HistSnap {
    /// Densifies an obs snapshot's sparse `(upper_bound, count)` pairs.
    pub fn from_snapshot(hs: &HistogramSnapshot, tick: u64, wall_ms: u64) -> HistSnap {
        let mut buckets = [0u64; BUCKETS];
        for &(upper, count) in &hs.buckets {
            buckets[bucket_index(upper)] = count;
        }
        HistSnap { tick, wall_ms, count: hs.count, sum: hs.sum, buckets }
    }

    /// Reads a live histogram directly — no intermediate snapshot.
    pub fn from_histogram(
        h: &dbcast_obs::metrics::Histogram,
        tick: u64,
        wall_ms: u64,
    ) -> HistSnap {
        // Buckets before count: a racing record bumps the bucket
        // first, so this order (plus the clamp) keeps the invariant
        // sum(buckets) <= count that the exporters rely on.
        let buckets = h.bucket_counts();
        let total: u64 = buckets.iter().sum();
        HistSnap { tick, wall_ms, count: h.count().max(total), sum: h.sum(), buckets }
    }
}

/// Quantiles over the observations that arrived within a scrape
/// window, estimated from bucket-count deltas (bucket midpoints, like
/// the obs snapshot percentiles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowQuantiles {
    /// Requested window length (scrape samples).
    pub window: u64,
    /// Samples actually spanned (shorter when the ring is young).
    pub spanned: u64,
    /// Observations that arrived within the window.
    pub count: u64,
    /// Bucket-midpoint quantile estimates (0 when `count` is 0).
    pub p50: f64,
    /// See `p50`.
    pub p90: f64,
    /// See `p50`.
    pub p99: f64,
}

/// A histogram's retained scrape history.
#[derive(Debug, Clone)]
pub struct HistSeries {
    ring: Ring<HistSnap>,
}

impl HistSeries {
    fn new(capacity: usize) -> Self {
        HistSeries { ring: Ring::new(capacity) }
    }

    fn push(&mut self, snap: HistSnap) {
        self.ring.push(snap);
    }

    /// The newest scrape.
    pub fn latest(&self) -> Option<HistSnap> {
        self.ring.latest()
    }

    /// Quantiles of the observations recorded during the last
    /// `window` scrapes (clamped to the retained history). `None`
    /// before the first scrape. A cumulative-count dip (source reset)
    /// falls back to the newest snapshot's full contents.
    pub fn window_quantiles(&self, window: usize) -> Option<WindowQuantiles> {
        let newest = self.ring.latest()?;
        let len = self.ring.len();
        let (delta, spanned) = if window >= len {
            // The window reaches past retained history: the oldest
            // snapshot's cumulative content has no earlier baseline to
            // subtract, so the whole cumulative histogram is in scope.
            (newest.buckets, len.saturating_sub(1))
        } else {
            let base = self.ring.back_or_oldest(window)?;
            if newest.count < base.count {
                (newest.buckets, 0) // Reset: everything in `newest` is fresh.
            } else {
                let mut d = [0u64; BUCKETS];
                for (i, slot) in d.iter_mut().enumerate() {
                    *slot = newest.buckets[i].saturating_sub(base.buckets[i]);
                }
                (d, window)
            }
        };
        let count: u64 = delta.iter().sum();
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let target = ((q / 100.0) * count as f64).ceil().max(1.0) as u64;
            let mut cumulative = 0u64;
            for (i, &c) in delta.iter().enumerate() {
                cumulative += c;
                if cumulative >= target {
                    let lo = bucket_lower_bound(i);
                    let hi = bucket_upper_bound(i);
                    return (lo + (hi - lo) / 2) as f64;
                }
            }
            bucket_upper_bound(BUCKETS - 1) as f64
        };
        Some(WindowQuantiles {
            window: window as u64,
            spanned: spanned as u64,
            count,
            p50: quantile(50.0),
            p90: quantile(90.0),
            p99: quantile(99.0),
        })
    }
}

#[derive(Debug, Default)]
struct Inner {
    series: BTreeMap<String, Series>,
    hists: BTreeMap<String, HistSeries>,
}

/// Appends to an existing series by `&str` lookup, allocating the
/// owned key only on first sight of a metric.
fn push_sample(
    map: &mut BTreeMap<String, Series>,
    name: &str,
    kind: SeriesKind,
    raw_cap: usize,
    tier_cap: usize,
    sample: Sample,
) {
    if let Some(s) = map.get_mut(name) {
        s.push(sample);
    } else {
        let mut s = Series::new(kind, raw_cap, tier_cap);
        s.push(sample);
        map.insert(name.to_string(), s);
    }
}

/// Bounded windowed history over every metric the registry exposes.
#[derive(Debug)]
pub struct SeriesStore {
    config: ScopeConfig,
    start: Instant,
    inner: Mutex<Inner>,
}

impl Default for SeriesStore {
    fn default() -> Self {
        SeriesStore::new(ScopeConfig::default())
    }
}

impl SeriesStore {
    /// An empty store; the wall clock starts now.
    pub fn new(config: ScopeConfig) -> Self {
        SeriesStore { config, start: Instant::now(), inner: Mutex::new(Inner::default()) }
    }

    /// The store's configuration.
    pub fn config(&self) -> &ScopeConfig {
        &self.config
    }

    /// Milliseconds since the store was created.
    pub fn wall_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Scrapes the global registry and appends one sample per metric.
    /// Returns the `(tick, wall_ms)` stamp used.
    ///
    /// This is the sampler's hot path: it visits the registry in
    /// place instead of cloning a [`Snapshot`], so a steady-state
    /// scrape performs no name allocations at all — the cost the
    /// `scope_sampler` benchmark pins against the serve loop.
    pub fn append_global(&self) -> (u64, u64) {
        let r = dbcast_obs::registry();
        let wall_ms = self.wall_ms();
        let tick = r.counter_value(&self.config.tick_counter).unwrap_or(0);
        let (raw_cap, tier_cap) = (self.config.raw_capacity, self.config.tier_capacity);
        let mut inner = self.inner.lock().expect("series store poisoned");
        r.for_each_counter(|name, value| {
            push_sample(
                &mut inner.series,
                name,
                SeriesKind::Counter,
                raw_cap,
                tier_cap,
                Sample { tick, wall_ms, value: value as f64 },
            );
        });
        r.for_each_gauge(|name, value| {
            if value.is_finite() {
                push_sample(
                    &mut inner.series,
                    name,
                    SeriesKind::Gauge,
                    raw_cap,
                    tier_cap,
                    Sample { tick, wall_ms, value },
                );
            }
        });
        let hist_cap = self.config.hist_capacity;
        r.for_each_histogram(|name, h| {
            let snap = HistSnap::from_histogram(h, tick, wall_ms);
            if let Some(series) = inner.hists.get_mut(name) {
                series.push(snap);
            } else {
                let mut series = HistSeries::new(hist_cap);
                series.push(snap);
                inner.hists.insert(name.to_string(), series);
            }
        });
        (tick, wall_ms)
    }

    /// Appends one sample per metric in `snap`, stamped `wall_ms`.
    /// The virtual tick is read from the configured tick counter
    /// inside the snapshot itself (0 when absent). Returns the tick.
    pub fn append_snapshot(&self, snap: &Snapshot, wall_ms: u64) -> u64 {
        let tick = snap.counter(&self.config.tick_counter).unwrap_or(0);
        let mut inner = self.inner.lock().expect("series store poisoned");
        for (name, value) in &snap.counters {
            let s = inner.series.entry(name.clone()).or_insert_with(|| {
                Series::new(
                    SeriesKind::Counter,
                    self.config.raw_capacity,
                    self.config.tier_capacity,
                )
            });
            s.push(Sample { tick, wall_ms, value: *value as f64 });
        }
        for (name, value) in &snap.gauges {
            if !value.is_finite() {
                continue; // A NaN/inf gauge would poison min/max folds.
            }
            let s = inner.series.entry(name.clone()).or_insert_with(|| {
                Series::new(
                    SeriesKind::Gauge,
                    self.config.raw_capacity,
                    self.config.tier_capacity,
                )
            });
            s.push(Sample { tick, wall_ms, value: *value });
        }
        for (name, hs) in &snap.histograms {
            let h = inner
                .hists
                .entry(name.clone())
                .or_insert_with(|| HistSeries::new(self.config.hist_capacity));
            h.push(HistSnap::from_snapshot(hs, tick, wall_ms));
        }
        tick
    }

    /// The newest sample of `name`, if any series holds it.
    pub fn latest(&self, name: &str) -> Option<Sample> {
        let inner = self.inner.lock().expect("series store poisoned");
        inner.series.get(name).and_then(|s| s.latest())
    }

    /// The newest per-second rate of counter `name`.
    pub fn latest_rate(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().expect("series store poisoned");
        inner.series.get(name).and_then(|s| s.latest_rate())
    }

    /// The newest tick stamp seen across all series (0 when empty).
    pub fn latest_tick(&self) -> u64 {
        let inner = self.inner.lock().expect("series store poisoned");
        inner.series.values().filter_map(|s| s.latest()).map(|s| s.tick).max().unwrap_or(0)
    }

    /// Number of scalar series held.
    pub fn series_count(&self) -> usize {
        self.inner.lock().expect("series store poisoned").series.len()
    }

    /// Freezes the store into the `/series` document (plain data; see
    /// [`crate::json::render`] for the wire form). Raw windows are
    /// trimmed to the newest `render_raw` samples.
    pub fn export(&self) -> SeriesDoc {
        let inner = self.inner.lock().expect("series store poisoned");
        let series = inner
            .series
            .iter()
            .map(|(name, s)| {
                let mut raw = s.raw();
                if raw.len() > self.config.render_raw {
                    raw.drain(..raw.len() - self.config.render_raw);
                }
                SeriesEntry {
                    name: name.clone(),
                    kind: s.kind(),
                    raw,
                    mid: s.mid(),
                    coarse: s.coarse(),
                    rate: s.rates(),
                }
            })
            .collect();
        let histograms = inner
            .hists
            .iter()
            .filter_map(|(name, h)| {
                let latest = h.latest()?;
                let windows = QUANTILE_WINDOWS
                    .iter()
                    .filter_map(|&w| h.window_quantiles(w))
                    .collect();
                Some(HistEntry {
                    name: name.clone(),
                    count: latest.count,
                    sum: latest.sum,
                    windows,
                })
            })
            .collect();
        let tick = inner
            .series
            .values()
            .filter_map(|s| s.latest())
            .map(|s| s.tick)
            .max()
            .unwrap_or(0);
        SeriesDoc { schema: 1, tick, wall_ms: self.wall_ms(), series, histograms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(counters: Vec<(&str, u64)>, gauges: Vec<(&str, f64)>) -> Snapshot {
        Snapshot {
            counters: counters.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
            gauges: gauges.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
            histograms: Vec::new(),
            traces: Vec::new(),
        }
    }

    #[test]
    fn append_snapshot_builds_series_and_stamps_ticks() {
        let store = SeriesStore::default();
        for i in 0..5u64 {
            let snap = snap_with(
                vec![("serve.ticks", i * 10), ("serve.requests", i * 100)],
                vec![("serve.drift_distance", i as f64 / 10.0)],
            );
            store.append_snapshot(&snap, i * 250);
        }
        assert_eq!(store.series_count(), 3);
        assert_eq!(store.latest_tick(), 40);
        let drift = store.latest("serve.drift_distance").unwrap();
        assert_eq!(drift.tick, 40);
        assert_eq!(drift.value, 0.4);
        // 100 requests per 250 ms = 400/s.
        let rate = store.latest_rate("serve.requests").unwrap();
        assert!((rate - 400.0).abs() < 1e-9, "rate {rate}");
        // Gauges have no rate.
        assert_eq!(store.latest_rate("serve.drift_distance"), None);
    }

    #[test]
    fn non_finite_gauges_are_dropped() {
        let store = SeriesStore::default();
        let snap = snap_with(vec![], vec![("bad", f64::NAN), ("good", 1.0)]);
        store.append_snapshot(&snap, 0);
        assert!(store.latest("bad").is_none());
        assert_eq!(store.latest("good").unwrap().value, 1.0);
    }

    #[test]
    fn window_quantiles_track_bucket_deltas() {
        let mut h = HistSeries::new(16);
        // First scrape: 100 observations in bucket [64, 127].
        let mut b0 = [0u64; BUCKETS];
        b0[bucket_index(100)] = 100;
        h.push(HistSnap { tick: 0, wall_ms: 0, count: 100, sum: 10_000, buckets: b0 });
        // Second scrape: 100 more arrived, all in bucket [1024, 2047].
        let mut b1 = b0;
        b1[bucket_index(2000)] = 100;
        h.push(HistSnap { tick: 1, wall_ms: 250, count: 200, sum: 210_000, buckets: b1 });

        let w = h.window_quantiles(1).unwrap();
        assert_eq!(w.count, 100);
        assert_eq!(w.spanned, 1);
        // Every delta observation sits in [1024, 2047]; the cumulative
        // window (back to the oldest) still sees both buckets.
        assert_eq!(w.p50, (1024 + (2047 - 1024) / 2) as f64);
        let all = h.window_quantiles(64).unwrap();
        assert_eq!(all.count, 200);
        assert_eq!(all.spanned, 1);
        assert!(all.p50 < w.p50);
    }

    #[test]
    fn window_quantiles_survive_counter_reset() {
        let mut h = HistSeries::new(16);
        let mut b0 = [0u64; BUCKETS];
        b0[bucket_index(100)] = 500;
        h.push(HistSnap { tick: 0, wall_ms: 0, count: 500, sum: 0, buckets: b0 });
        // Reset: cumulative count dips.
        let mut b1 = [0u64; BUCKETS];
        b1[bucket_index(10)] = 3;
        h.push(HistSnap { tick: 1, wall_ms: 250, count: 3, sum: 30, buckets: b1 });
        let w = h.window_quantiles(4).unwrap();
        assert_eq!(w.count, 3);
        assert_eq!(w.p50, (8 + (15 - 8) / 2) as f64);
    }

    #[test]
    fn export_trims_raw_to_render_window() {
        let config = ScopeConfig { render_raw: 5, ..ScopeConfig::default() };
        let store = SeriesStore::new(config);
        for i in 0..20u64 {
            store.append_snapshot(&snap_with(vec![("c", i)], vec![]), i * 100);
        }
        let doc = store.export();
        assert_eq!(doc.schema, 1);
        assert_eq!(doc.series.len(), 1);
        assert_eq!(doc.series[0].raw.len(), 5);
        assert_eq!(doc.series[0].raw.last().unwrap().value, 19.0);
        // Rates still cover the full retained window.
        assert_eq!(doc.series[0].rate.len(), 19);
    }
}
