//! Watchdog rules over the series store: threshold and stall
//! predicates that must hold for a sustained window before firing.
//! A firing is latched (once per rule per process), emits a
//! [`dbcast_flight`] `watchdog` event, fires a postmortem incident
//! dump when one is armed, and bumps `scope.watchdog.firings` — the
//! CLI turns any firing into a non-zero exit for CI drills.
//!
//! Rule specs are parsed from compact operator strings:
//!
//! ```text
//! serve.slo.burn_rate > 1 for 5s            value threshold, wall window
//! rate(serve.requests) < 10 for 2s          derived-rate threshold
//! serve.drift_distance > 0.3 for 40 ticks   virtual-tick window
//! stall(serve.swaps) while serve.drift_detected > 0 for 50 ticks
//! ```
//!
//! The `stall` form watches a *progress counter* under a guard: if the
//! guard predicate holds continuously for the window and the counter
//! never advances, the rule fires — "drift detected but no repair
//! dispatched within N ticks".

use std::fmt;

use dbcast_flight::{postmortem, recorder, EventKind, FlightEvent};

use crate::store::SeriesStore;

/// What a rule reads from the store each check.
#[derive(Debug, Clone, PartialEq)]
pub enum Signal {
    /// The newest raw value of a series (counter or gauge).
    Value(String),
    /// The newest derived per-second rate of a counter.
    Rate(String),
}

impl Signal {
    fn resolve(&self, store: &SeriesStore) -> Option<f64> {
        match self {
            Signal::Value(name) => store.latest(name).map(|s| s.value),
            Signal::Rate(name) => store.latest_rate(name),
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signal::Value(n) => write!(f, "{n}"),
            Signal::Rate(n) => write!(f, "rate({n})"),
        }
    }
}

/// Comparison against the rule threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// Signal strictly above the threshold.
    Above(f64),
    /// Signal strictly below the threshold.
    Below(f64),
}

impl Predicate {
    fn holds(&self, v: f64) -> bool {
        match *self {
            Predicate::Above(t) => v > t,
            Predicate::Below(t) => v < t,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Above(t) => write!(f, "> {t}"),
            Predicate::Below(t) => write!(f, "< {t}"),
        }
    }
}

/// How long a condition must hold before the rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// Wall-clock milliseconds.
    WallMs(u64),
    /// Serving-loop virtual ticks.
    Ticks(u64),
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Window::WallMs(ms) => write!(f, "{ms}ms"),
            Window::Ticks(t) => write!(f, "{t} ticks"),
        }
    }
}

/// One watchdog rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Rule {
    /// `signal predicate` must hold continuously for `window`.
    Threshold { signal: Signal, predicate: Predicate, window: Window },
    /// While `guard_signal guard_predicate` holds, the `watched`
    /// counter must advance within `window`, else the rule fires.
    Stall {
        watched: String,
        guard_signal: Signal,
        guard_predicate: Predicate,
        window: Window,
    },
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::Threshold { signal, predicate, window } => {
                write!(f, "{signal} {predicate} for {window}")
            }
            Rule::Stall { watched, guard_signal, guard_predicate, window } => {
                write!(
                    f,
                    "stall({watched}) while {guard_signal} {guard_predicate} for {window}"
                )
            }
        }
    }
}

/// A rule spec that failed to parse, with the reason.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogParseError {
    /// The offending spec.
    pub spec: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for WatchdogParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad watchdog rule {:?}: {}", self.spec, self.reason)
    }
}

impl std::error::Error for WatchdogParseError {}

fn parse_err(spec: &str, reason: impl Into<String>) -> WatchdogParseError {
    WatchdogParseError { spec: spec.to_string(), reason: reason.into() }
}

fn parse_signal(token: &str) -> Option<Signal> {
    if let Some(inner) = token.strip_prefix("rate(").and_then(|t| t.strip_suffix(')')) {
        (!inner.is_empty()).then(|| Signal::Rate(inner.to_string()))
    } else {
        (!token.is_empty() && !token.contains('('))
            .then(|| Signal::Value(token.to_string()))
    }
}

fn parse_window(tokens: &[&str], spec: &str) -> Result<Window, WatchdogParseError> {
    match tokens {
        [dur] => {
            if let Some(ms) = dur.strip_suffix("ms") {
                ms.parse::<u64>()
                    .map(Window::WallMs)
                    .map_err(|_| parse_err(spec, format!("bad millisecond window {dur:?}")))
            } else if let Some(s) = dur.strip_suffix('s') {
                s.parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .map(|v| Window::WallMs((v * 1000.0).round() as u64))
                    .ok_or_else(|| parse_err(spec, format!("bad second window {dur:?}")))
            } else {
                Err(parse_err(spec, format!("window {dur:?} needs an ms/s/ticks unit")))
            }
        }
        [n, unit] if *unit == "ticks" || *unit == "tick" => n
            .parse::<u64>()
            .map(Window::Ticks)
            .map_err(|_| parse_err(spec, format!("bad tick window {n:?}"))),
        _ => Err(parse_err(spec, "expected `for <duration>`".to_string())),
    }
}

/// Parses one rule spec (see the module docs for the grammar).
///
/// # Errors
///
/// Returns [`WatchdogParseError`] describing the malformed spec.
pub fn parse_rule(spec: &str) -> Result<Rule, WatchdogParseError> {
    let tokens: Vec<&str> = spec.split_whitespace().collect();
    let (stall_target, rest) = match tokens.as_slice() {
        [first, "while", rest @ ..] => {
            let watched = first
                .strip_prefix("stall(")
                .and_then(|t| t.strip_suffix(')'))
                .filter(|t| !t.is_empty())
                .ok_or_else(|| parse_err(spec, "expected `stall(<counter>) while …`"))?;
            (Some(watched.to_string()), rest)
        }
        rest => (None, rest),
    };
    match rest {
        [signal, op, threshold, "for", window @ ..] => {
            let signal = parse_signal(signal)
                .ok_or_else(|| parse_err(spec, format!("bad signal {signal:?}")))?;
            let value: f64 = threshold
                .parse()
                .map_err(|_| parse_err(spec, format!("bad threshold {threshold:?}")))?;
            let predicate = match *op {
                ">" => Predicate::Above(value),
                "<" => Predicate::Below(value),
                other => return Err(parse_err(spec, format!("bad operator {other:?}"))),
            };
            let window = parse_window(window, spec)?;
            Ok(match stall_target {
                Some(watched) => Rule::Stall {
                    watched,
                    guard_signal: signal,
                    guard_predicate: predicate,
                    window,
                },
                None => Rule::Threshold { signal, predicate, window },
            })
        }
        _ => Err(parse_err(spec, "expected `<signal> <op> <threshold> for <window>`")),
    }
}

/// Parses a `;`-separated rule list (empty segments are skipped, so a
/// trailing separator is harmless).
///
/// # Errors
///
/// Returns the first [`WatchdogParseError`] encountered.
pub fn parse_rules(specs: &str) -> Result<Vec<Rule>, WatchdogParseError> {
    specs.split(';').map(str::trim).filter(|s| !s.is_empty()).map(parse_rule).collect()
}

/// One latched rule firing.
#[derive(Debug, Clone, PartialEq)]
pub struct Firing {
    /// The rule, rendered back to its spec form.
    pub rule: String,
    /// The signal value observed when the rule fired.
    pub observed: f64,
    /// Virtual tick at firing time.
    pub tick: u64,
    /// Store wall clock at firing time (ms).
    pub wall_ms: u64,
    /// Path of the postmortem dump, when one was armed and written.
    pub postmortem: Option<std::path::PathBuf>,
}

/// The hold state a condition accumulates across checks.
#[derive(Debug, Clone, Copy)]
struct Hold {
    since_wall_ms: u64,
    since_tick: u64,
    /// Stall rules: the watched counter's value when the guard armed.
    base: f64,
}

#[derive(Debug, Clone)]
struct RuleState {
    rule: Rule,
    hold: Option<Hold>,
    fired: bool,
}

/// Evaluates a rule set against the store; call [`check`](Self::check)
/// once per scrape.
#[derive(Debug, Clone, Default)]
pub struct Watchdog {
    rules: Vec<RuleState>,
    firings: Vec<Firing>,
}

impl Watchdog {
    /// A watchdog over `rules`.
    pub fn new(rules: Vec<Rule>) -> Self {
        Watchdog {
            rules: rules
                .into_iter()
                .map(|rule| RuleState { rule, hold: None, fired: false })
                .collect(),
            firings: Vec::new(),
        }
    }

    /// Number of configured rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// All latched firings so far.
    pub fn firings(&self) -> &[Firing] {
        &self.firings
    }

    /// Evaluates every rule at the store's current clock; returns the
    /// rules that newly fired during this check.
    pub fn check(&mut self, store: &SeriesStore) -> Vec<Firing> {
        self.check_at(store, store.latest_tick(), store.wall_ms())
    }

    /// [`check`](Self::check) with an explicit `(tick, wall_ms)` stamp
    /// — what the sampler uses, and what deterministic tests drive.
    pub fn check_at(
        &mut self,
        store: &SeriesStore,
        tick: u64,
        wall_ms: u64,
    ) -> Vec<Firing> {
        let mut new = Vec::new();
        for (index, state) in self.rules.iter_mut().enumerate() {
            if state.fired {
                continue;
            }
            let fired_value = match &state.rule {
                Rule::Threshold { signal, predicate, window } => {
                    let value = signal.resolve(store);
                    match value {
                        Some(v) if predicate.holds(v) => {
                            let hold = state.hold.get_or_insert(Hold {
                                since_wall_ms: wall_ms,
                                since_tick: tick,
                                base: 0.0,
                            });
                            window_elapsed(*window, hold, tick, wall_ms).then_some(v)
                        }
                        _ => {
                            state.hold = None;
                            None
                        }
                    }
                }
                Rule::Stall { watched, guard_signal, guard_predicate, window } => {
                    let guard = guard_signal.resolve(store);
                    let progress = store.latest(watched).map(|s| s.value);
                    match (guard, progress) {
                        (Some(g), Some(p)) if guard_predicate.holds(g) => {
                            let hold = state.hold.get_or_insert(Hold {
                                since_wall_ms: wall_ms,
                                since_tick: tick,
                                base: p,
                            });
                            if p > hold.base {
                                // Progress: restart the window from here.
                                *hold = Hold {
                                    since_wall_ms: wall_ms,
                                    since_tick: tick,
                                    base: p,
                                };
                                None
                            } else {
                                window_elapsed(*window, hold, tick, wall_ms).then_some(g)
                            }
                        }
                        _ => {
                            state.hold = None;
                            None
                        }
                    }
                }
            };
            if let Some(observed) = fired_value {
                state.fired = true;
                let firing = emit(&state.rule, index, observed, tick, wall_ms, store);
                new.push(firing.clone());
                self.firings.push(firing);
            }
        }
        new
    }
}

fn window_elapsed(window: Window, hold: &Hold, tick: u64, wall_ms: u64) -> bool {
    match window {
        Window::WallMs(ms) => wall_ms.saturating_sub(hold.since_wall_ms) >= ms,
        Window::Ticks(t) => tick.saturating_sub(hold.since_tick) >= t,
    }
}

fn emit(
    rule: &Rule,
    index: usize,
    observed: f64,
    tick: u64,
    wall_ms: u64,
    store: &SeriesStore,
) -> Firing {
    let spec = rule.to_string();
    let generation =
        store.latest("serve.generation").map(|s| s.value.max(0.0) as u64).unwrap_or(0);
    recorder().record(
        FlightEvent::new(EventKind::Watchdog, tick, generation, wall_ms as f64 / 1000.0)
            .value(observed)
            .extra(index as u64),
    );
    dbcast_obs::counter!("scope.watchdog.firings").inc();
    dbcast_obs::log::log(
        dbcast_obs::log::Level::Warn,
        format_args!("scope watchdog fired: {spec} (observed {observed})"),
    );
    let postmortem = postmortem::incident(&format!("watchdog: {spec}"));
    Firing { rule: spec, observed, tick, wall_ms, postmortem }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SeriesStore;
    use dbcast_obs::snapshot::Snapshot;

    fn feed(
        store: &SeriesStore,
        wall_ms: u64,
        tick: u64,
        gauges: Vec<(&str, f64)>,
        counters: Vec<(&str, u64)>,
    ) {
        let mut counters: Vec<(String, u64)> =
            counters.into_iter().map(|(n, v)| (n.to_string(), v)).collect();
        counters.push(("serve.ticks".to_string(), tick));
        counters.sort();
        let snap = Snapshot {
            counters,
            gauges: gauges.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
            histograms: Vec::new(),
            traces: Vec::new(),
        };
        store.append_snapshot(&snap, wall_ms);
    }

    #[test]
    fn grammar_round_trips() {
        for spec in [
            "serve.slo.burn_rate > 1 for 5s",
            "rate(serve.requests) < 10 for 1500ms",
            "serve.drift_distance > 0.3 for 40 ticks",
            "stall(serve.swaps) while serve.drift_distance > 0.25 for 50 ticks",
        ] {
            let rule = parse_rule(spec).expect(spec);
            let rendered = rule.to_string();
            assert_eq!(parse_rule(&rendered).unwrap(), rule, "{spec} → {rendered}");
        }
        assert_eq!(parse_rules("a > 1 for 1s; b < 2 for 2s;").unwrap().len(), 2);
        for bad in [
            "serve.x >= 1 for 5s",
            "serve.x > nope for 5s",
            "serve.x > 1 for 5 parsecs",
            "stall() while x > 1 for 5s",
            "for 5s",
        ] {
            assert!(parse_rule(bad).is_err(), "{bad} parsed");
        }
    }

    #[test]
    fn threshold_rule_needs_a_sustained_hold() {
        let store = SeriesStore::default();
        let mut dog =
            Watchdog::new(vec![parse_rule("t.test.burn > 1 for 1000ms").unwrap()]);

        feed(&store, 0, 0, vec![("t.test.burn", 2.0)], vec![]);
        assert!(dog.check_at(&store, 0, 0).is_empty(), "fired instantly");
        feed(&store, 500, 5, vec![("t.test.burn", 0.5)], vec![]);
        assert!(dog.check_at(&store, 5, 500).is_empty());
        // Dip reset the hold: 900 ms above threshold is not enough…
        feed(&store, 600, 6, vec![("t.test.burn", 3.0)], vec![]);
        assert!(dog.check_at(&store, 6, 600).is_empty());
        feed(&store, 1500, 15, vec![("t.test.burn", 3.0)], vec![]);
        assert!(dog.check_at(&store, 15, 1500).is_empty());
        // …but 1000 ms is.
        feed(&store, 1600, 16, vec![("t.test.burn", 4.0)], vec![]);
        let fired = dog.check_at(&store, 16, 1600);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].observed, 4.0);
        assert_eq!(fired[0].tick, 16);
        // Latched: never fires again.
        feed(&store, 3000, 30, vec![("t.test.burn", 9.0)], vec![]);
        assert!(dog.check_at(&store, 30, 3000).is_empty());
        assert_eq!(dog.firings().len(), 1);
    }

    #[test]
    fn tick_windows_count_virtual_ticks() {
        let store = SeriesStore::default();
        let mut dog =
            Watchdog::new(vec![parse_rule("t.test.drift > 0.25 for 10 ticks").unwrap()]);
        feed(&store, 0, 100, vec![("t.test.drift", 0.5)], vec![]);
        assert!(dog.check_at(&store, 100, 0).is_empty());
        feed(&store, 1, 105, vec![("t.test.drift", 0.5)], vec![]);
        assert!(dog.check_at(&store, 105, 1).is_empty());
        feed(&store, 2, 110, vec![("t.test.drift", 0.5)], vec![]);
        assert_eq!(dog.check_at(&store, 110, 2).len(), 1);
    }

    #[test]
    fn stall_rule_fires_only_without_progress() {
        let store = SeriesStore::default();
        let spec = "stall(t.test.repairs) while t.test.drift > 0.25 for 20 ticks";
        let mut dog = Watchdog::new(vec![parse_rule(spec).unwrap()]);

        // Guard up, repairs advancing: window keeps restarting.
        feed(&store, 0, 0, vec![("t.test.drift", 0.5)], vec![("t.test.repairs", 0)]);
        dog.check_at(&store, 0, 0);
        feed(&store, 100, 15, vec![("t.test.drift", 0.5)], vec![("t.test.repairs", 1)]);
        assert!(dog.check_at(&store, 15, 100).is_empty());
        feed(&store, 200, 30, vec![("t.test.drift", 0.5)], vec![("t.test.repairs", 2)]);
        assert!(dog.check_at(&store, 30, 200).is_empty());
        // Repairs stop while the guard stays up: fires after 20 ticks.
        feed(&store, 300, 45, vec![("t.test.drift", 0.5)], vec![("t.test.repairs", 2)]);
        assert!(dog.check_at(&store, 45, 300).is_empty(), "window restarted at 30");
        feed(&store, 400, 55, vec![("t.test.drift", 0.5)], vec![("t.test.repairs", 2)]);
        let fired = dog.check_at(&store, 55, 400);
        assert_eq!(fired.len(), 1, "25 ticks without progress under guard");
        assert!(fired[0].rule.contains("stall(t.test.repairs)"));
    }

    #[test]
    fn stall_rule_resets_when_guard_drops() {
        let store = SeriesStore::default();
        let spec = "stall(t.test.repairs) while t.test.drift > 0.25 for 10 ticks";
        let mut dog = Watchdog::new(vec![parse_rule(spec).unwrap()]);
        feed(&store, 0, 0, vec![("t.test.drift", 0.5)], vec![("t.test.repairs", 0)]);
        dog.check_at(&store, 0, 0);
        feed(&store, 100, 8, vec![("t.test.drift", 0.1)], vec![("t.test.repairs", 0)]);
        assert!(dog.check_at(&store, 8, 100).is_empty());
        // Guard re-arms at tick 9; tick 12 is only 3 ticks in.
        feed(&store, 200, 9, vec![("t.test.drift", 0.5)], vec![("t.test.repairs", 0)]);
        dog.check_at(&store, 9, 200);
        feed(&store, 300, 12, vec![("t.test.drift", 0.5)], vec![("t.test.repairs", 0)]);
        assert!(dog.check_at(&store, 12, 300).is_empty());
    }

    #[test]
    fn missing_signals_never_fire() {
        let store = SeriesStore::default();
        let mut dog = Watchdog::new(parse_rules("no.such.metric > 0 for 0s").unwrap());
        assert!(dog.check_at(&store, 0, 0).is_empty());
        assert!(dog.check_at(&store, 100, 10_000).is_empty());
    }
}
