//! `dbcast-scope`: windowed time-series telemetry over the obs
//! registry, and the operator surface built on top of it.
//!
//! The paper's objective is time-varying — Eq. 2's expected wait under
//! a drifting access profile — but counters and gauges only show the
//! *current* point. This crate adds the time axis, in-process and
//! allocation-bounded:
//!
//! * [`store::SeriesStore`] — fixed-capacity per-metric rings of
//!   `(virtual_tick, wall_ms, value)` samples with multi-resolution
//!   downsampling (raw → 10-sample → 100-sample bins, each keeping
//!   min/max/mean/last so spikes survive decimation), counter → rate
//!   derivation and windowed histogram quantiles from bucket deltas;
//! * [`sampler::Sampler`] — a background thread scraping the registry
//!   on a fixed cadence (cost pinned in the BENCH contract);
//! * [`json`] — the schema-versioned `/series` wire format plus its
//!   strict validator (the `/metrics` OpenMetrics posture, applied to
//!   history);
//! * [`watchdog`] — threshold/stall rules with sustained windows
//!   ("burn_rate > 1 for 5s", "drift but no repair within N ticks")
//!   that latch, emit flight events, fire postmortem dumps and drive
//!   non-zero CI exits;
//! * [`console`] — the `dbcast top` sparkline/table renderer.

#![forbid(unsafe_code)]

pub mod console;
pub mod json;
pub mod ring;
pub mod sampler;
pub mod series;
pub mod store;
pub mod watchdog;

pub use console::{render_top, sparkline, TopOptions};
pub use json::{render_store, validate, SeriesDoc, SeriesError};
pub use ring::Ring;
pub use sampler::{sample_once, Sampler};
pub use series::{Bin, Sample, Series, SeriesKind};
pub use store::{ScopeConfig, SeriesStore, WindowQuantiles};
pub use watchdog::{parse_rule, parse_rules, Firing, Rule, Watchdog};
