//! The `/series` wire format: a schema-versioned JSON document
//! rendered by a self-contained writer (like the obs snapshot and
//! flight-event exporters) and re-parsed by a strict validator — the
//! same posture `/metrics` takes with the OpenMetrics parser, so a
//! malformed export fails in CI rather than in an operator's console.
//!
//! Schema v1:
//!
//! ```text
//! { "schema": 1, "tick": T, "wall_ms": W,
//!   "series": [ { "name", "kind": "counter"|"gauge",
//!                 "raw":  [[tick, wall_ms, value], …],
//!                 "mid":  [[start_tick, end_tick, start_wall_ms, end_wall_ms,
//!                           count, min, max, mean, last], …],
//!                 "coarse": [same shape as mid],
//!                 "rate": [[tick, wall_ms, per_second], …] }, … ],
//!   "histograms": [ { "name", "count", "sum",
//!                     "windows": [{ "window", "spanned", "count",
//!                                   "p50", "p90", "p99" }, …] }, … ] }
//! ```
//!
//! Raw/rate entries are positional triples and bins positional
//! 9-tuples to keep a 100-series payload compact; the validator is
//! the schema's executable definition.

use std::fmt;

use crate::series::{Bin, Sample, SeriesKind};
use crate::store::{SeriesStore, WindowQuantiles};

/// The current `/series` schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// The parsed (and validated) `/series` document.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesDoc {
    /// Schema version (always [`SCHEMA_VERSION`] after validation).
    pub schema: u64,
    /// Newest virtual tick across all series.
    pub tick: u64,
    /// Exporting store's age in milliseconds.
    pub wall_ms: u64,
    /// Scalar series, sorted by name.
    pub series: Vec<SeriesEntry>,
    /// Histogram series, sorted by name.
    pub histograms: Vec<HistEntry>,
}

impl SeriesDoc {
    /// The entry named `name`.
    pub fn series(&self, name: &str) -> Option<&SeriesEntry> {
        self.series.iter().find(|s| s.name == name)
    }

    /// The histogram entry named `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistEntry> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Entries whose name starts with `prefix` (indexed families like
    /// `serve.channel.expected_wait.<i>`).
    pub fn series_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = &'a SeriesEntry> {
        self.series.iter().filter(move |s| s.name.starts_with(prefix))
    }
}

/// One scalar series in the document.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesEntry {
    /// Registry metric name.
    pub name: String,
    /// Counter or gauge.
    pub kind: SeriesKind,
    /// Newest raw samples, oldest → newest.
    pub raw: Vec<Sample>,
    /// Mid-tier bins (10 raw samples each), oldest → newest.
    pub mid: Vec<Bin>,
    /// Coarse-tier bins (100 raw samples each), oldest → newest.
    pub coarse: Vec<Bin>,
    /// Per-second rates (counters only), oldest → newest.
    pub rate: Vec<Sample>,
}

impl SeriesEntry {
    /// The newest raw value.
    pub fn last(&self) -> Option<f64> {
        self.raw.last().map(|s| s.value)
    }

    /// The newest derived rate.
    pub fn last_rate(&self) -> Option<f64> {
        self.rate.last().map(|s| s.value)
    }
}

/// One histogram in the document.
#[derive(Debug, Clone, PartialEq)]
pub struct HistEntry {
    /// Registry metric name.
    pub name: String,
    /// Cumulative observation count at the newest scrape.
    pub count: u64,
    /// Cumulative observation sum at the newest scrape.
    pub sum: u64,
    /// Windowed quantiles, one per configured window.
    pub windows: Vec<WindowQuantiles>,
}

/// Why a `/series` payload failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesError {
    /// The text is not well-formed JSON.
    Parse(String),
    /// The JSON does not satisfy schema v1; the string names the
    /// offending element.
    Schema(String),
}

impl fmt::Display for SeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeriesError::Parse(e) => write!(f, "/series payload is not JSON: {e}"),
            SeriesError::Schema(e) => write!(f, "/series payload violates schema: {e}"),
        }
    }
}

impl std::error::Error for SeriesError {}

fn json_f64(v: f64) -> String {
    // The store never admits non-finite values, so this is belt and
    // braces for a hand-built document.
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn push_samples(out: &mut String, samples: &[Sample]) {
    out.push('[');
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{},{},{}]", s.tick, s.wall_ms, json_f64(s.value)));
    }
    out.push(']');
}

fn push_bins(out: &mut String, bins: &[Bin]) {
    out.push('[');
    for (i, b) in bins.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "[{},{},{},{},{},{},{},{},{}]",
            b.start_tick,
            b.end_tick,
            b.start_wall_ms,
            b.end_wall_ms,
            b.count,
            json_f64(b.min),
            json_f64(b.max),
            json_f64(b.mean()),
            json_f64(b.last)
        ));
    }
    out.push(']');
}

/// Renders a document to the schema-v1 wire form.
pub fn render(doc: &SeriesDoc) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "{{\"schema\": {}, \"tick\": {}, \"wall_ms\": {},\n\"series\": [",
        doc.schema, doc.tick, doc.wall_ms
    ));
    for (i, s) in doc.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n {{\"name\": \"{}\", \"kind\": \"{}\", \"raw\": ",
            s.name,
            s.kind.name()
        ));
        push_samples(&mut out, &s.raw);
        out.push_str(", \"mid\": ");
        push_bins(&mut out, &s.mid);
        out.push_str(", \"coarse\": ");
        push_bins(&mut out, &s.coarse);
        out.push_str(", \"rate\": ");
        push_samples(&mut out, &s.rate);
        out.push('}');
    }
    out.push_str("],\n\"histograms\": [");
    for (i, h) in doc.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"windows\": [",
            h.name, h.count, h.sum
        ));
        for (j, w) in h.windows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"window\": {}, \"spanned\": {}, \"count\": {}, \"p50\": {}, \
                 \"p90\": {}, \"p99\": {}}}",
                w.window,
                w.spanned,
                w.count,
                json_f64(w.p50),
                json_f64(w.p90),
                json_f64(w.p99)
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Renders the store's current contents to the wire form.
pub fn render_store(store: &SeriesStore) -> String {
    render(&store.export())
}

fn schema_err<T>(msg: impl Into<String>) -> Result<T, SeriesError> {
    Err(SeriesError::Schema(msg.into()))
}

fn req_u64(v: &serde_json::Value, what: &str) -> Result<u64, SeriesError> {
    v.as_u64().ok_or_else(|| SeriesError::Schema(format!("{what} is not a u64")))
}

fn req_finite(v: &serde_json::Value, what: &str) -> Result<f64, SeriesError> {
    match v.as_f64() {
        Some(x) if x.is_finite() => Ok(x),
        _ => schema_err(format!("{what} is not a finite number")),
    }
}

fn parse_samples(v: &serde_json::Value, what: &str) -> Result<Vec<Sample>, SeriesError> {
    let seq = v
        .as_seq()
        .ok_or_else(|| SeriesError::Schema(format!("{what} is not a sequence")))?;
    let mut out = Vec::with_capacity(seq.len());
    let mut prev_wall = 0u64;
    for (i, entry) in seq.iter().enumerate() {
        let triple = entry
            .as_seq()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| SeriesError::Schema(format!("{what}[{i}] is not a triple")))?;
        let tick = req_u64(&triple[0], &format!("{what}[{i}].tick"))?;
        let wall_ms = req_u64(&triple[1], &format!("{what}[{i}].wall_ms"))?;
        let value = req_finite(&triple[2], &format!("{what}[{i}].value"))?;
        if wall_ms < prev_wall {
            return schema_err(format!("{what}[{i}] wall_ms goes backwards"));
        }
        prev_wall = wall_ms;
        out.push(Sample { tick, wall_ms, value });
    }
    Ok(out)
}

fn parse_bins(v: &serde_json::Value, what: &str) -> Result<Vec<Bin>, SeriesError> {
    let seq = v
        .as_seq()
        .ok_or_else(|| SeriesError::Schema(format!("{what} is not a sequence")))?;
    let mut out = Vec::with_capacity(seq.len());
    for (i, entry) in seq.iter().enumerate() {
        let t = entry
            .as_seq()
            .filter(|t| t.len() == 9)
            .ok_or_else(|| SeriesError::Schema(format!("{what}[{i}] is not a 9-tuple")))?;
        let count = req_u64(&t[4], &format!("{what}[{i}].count"))?;
        if count == 0 {
            return schema_err(format!("{what}[{i}] has count 0"));
        }
        let min = req_finite(&t[5], &format!("{what}[{i}].min"))?;
        let max = req_finite(&t[6], &format!("{what}[{i}].max"))?;
        let mean = req_finite(&t[7], &format!("{what}[{i}].mean"))?;
        let last = req_finite(&t[8], &format!("{what}[{i}].last"))?;
        let tol = 1e-9 * min.abs().max(max.abs()).max(1.0);
        if min > max || mean < min - tol || mean > max + tol {
            return schema_err(format!(
                "{what}[{i}] violates min <= mean <= max: {min} / {mean} / {max}"
            ));
        }
        out.push(Bin {
            start_tick: req_u64(&t[0], &format!("{what}[{i}].start_tick"))?,
            end_tick: req_u64(&t[1], &format!("{what}[{i}].end_tick"))?,
            start_wall_ms: req_u64(&t[2], &format!("{what}[{i}].start_wall_ms"))?,
            end_wall_ms: req_u64(&t[3], &format!("{what}[{i}].end_wall_ms"))?,
            count,
            min,
            max,
            sum: mean * count as f64,
            last,
        });
    }
    Ok(out)
}

/// Parses and strictly validates a `/series` payload.
///
/// # Errors
///
/// [`SeriesError::Parse`] for malformed JSON; [`SeriesError::Schema`]
/// when any schema-v1 invariant fails (wrong version, unsorted or
/// duplicate names, malformed triples/bins, negative rates, bins
/// whose mean escapes `[min, max]`, unordered quantiles, …).
pub fn validate(text: &str) -> Result<SeriesDoc, SeriesError> {
    let root: serde_json::Value =
        serde_json::from_str(text).map_err(|e| SeriesError::Parse(e.to_string()))?;
    let schema = req_u64(
        root.get("schema").ok_or(SeriesError::Schema("missing schema".into()))?,
        "schema",
    )?;
    if schema != SCHEMA_VERSION {
        return schema_err(format!("unsupported schema version {schema}"));
    }
    let tick = req_u64(
        root.get("tick").ok_or(SeriesError::Schema("missing tick".into()))?,
        "tick",
    )?;
    let wall_ms = req_u64(
        root.get("wall_ms").ok_or(SeriesError::Schema("missing wall_ms".into()))?,
        "wall_ms",
    )?;

    let series_val = root
        .get("series")
        .and_then(|v| v.as_seq())
        .ok_or(SeriesError::Schema("missing series array".into()))?;
    let mut series = Vec::with_capacity(series_val.len());
    let mut prev_name: Option<String> = None;
    for (i, entry) in series_val.iter().enumerate() {
        let name = entry
            .get("name")
            .and_then(|v| v.as_str())
            .filter(|n| !n.is_empty())
            .ok_or_else(|| SeriesError::Schema(format!("series[{i}] has no name")))?
            .to_string();
        if prev_name.as_deref() >= Some(name.as_str()) {
            return schema_err(format!("series names not strictly sorted at {name:?}"));
        }
        let kind = entry
            .get("kind")
            .and_then(|v| v.as_str())
            .and_then(SeriesKind::from_name)
            .ok_or_else(|| SeriesError::Schema(format!("series {name:?} bad kind")))?;
        let raw = parse_samples(
            entry.get("raw").unwrap_or(&serde_json::Value::Null),
            &format!("series {name:?} raw"),
        )?;
        let mid = parse_bins(
            entry.get("mid").unwrap_or(&serde_json::Value::Null),
            &format!("series {name:?} mid"),
        )?;
        let coarse = parse_bins(
            entry.get("coarse").unwrap_or(&serde_json::Value::Null),
            &format!("series {name:?} coarse"),
        )?;
        let rate = parse_samples(
            entry.get("rate").unwrap_or(&serde_json::Value::Null),
            &format!("series {name:?} rate"),
        )?;
        match kind {
            SeriesKind::Counter => {
                if raw.iter().any(|s| s.value < 0.0) {
                    return schema_err(format!("counter {name:?} has a negative value"));
                }
                if rate.iter().any(|s| s.value < 0.0) {
                    return schema_err(format!("counter {name:?} has a negative rate"));
                }
            }
            SeriesKind::Gauge => {
                if !rate.is_empty() {
                    return schema_err(format!("gauge {name:?} carries rates"));
                }
            }
        }
        prev_name = Some(name.clone());
        series.push(SeriesEntry { name, kind, raw, mid, coarse, rate });
    }

    let hist_val = root
        .get("histograms")
        .and_then(|v| v.as_seq())
        .ok_or(SeriesError::Schema("missing histograms array".into()))?;
    let mut histograms = Vec::with_capacity(hist_val.len());
    let mut prev_name: Option<String> = None;
    for (i, entry) in hist_val.iter().enumerate() {
        let name = entry
            .get("name")
            .and_then(|v| v.as_str())
            .filter(|n| !n.is_empty())
            .ok_or_else(|| SeriesError::Schema(format!("histograms[{i}] has no name")))?
            .to_string();
        if prev_name.as_deref() >= Some(name.as_str()) {
            return schema_err(format!("histogram names not strictly sorted at {name:?}"));
        }
        let count = req_u64(
            entry.get("count").unwrap_or(&serde_json::Value::Null),
            &format!("histogram {name:?} count"),
        )?;
        let sum = req_u64(
            entry.get("sum").unwrap_or(&serde_json::Value::Null),
            &format!("histogram {name:?} sum"),
        )?;
        let windows_val = entry
            .get("windows")
            .and_then(|v| v.as_seq())
            .ok_or_else(|| SeriesError::Schema(format!("histogram {name:?} windows")))?;
        let mut windows = Vec::with_capacity(windows_val.len());
        for (j, w) in windows_val.iter().enumerate() {
            let what = format!("histogram {name:?} windows[{j}]");
            let q = WindowQuantiles {
                window: req_u64(
                    w.get("window").unwrap_or(&serde_json::Value::Null),
                    &format!("{what}.window"),
                )?,
                spanned: req_u64(
                    w.get("spanned").unwrap_or(&serde_json::Value::Null),
                    &format!("{what}.spanned"),
                )?,
                count: req_u64(
                    w.get("count").unwrap_or(&serde_json::Value::Null),
                    &format!("{what}.count"),
                )?,
                p50: req_finite(
                    w.get("p50").unwrap_or(&serde_json::Value::Null),
                    &format!("{what}.p50"),
                )?,
                p90: req_finite(
                    w.get("p90").unwrap_or(&serde_json::Value::Null),
                    &format!("{what}.p90"),
                )?,
                p99: req_finite(
                    w.get("p99").unwrap_or(&serde_json::Value::Null),
                    &format!("{what}.p99"),
                )?,
            };
            if q.p50 < 0.0 || q.p50 > q.p90 || q.p90 > q.p99 {
                return schema_err(format!("{what} quantiles unordered"));
            }
            windows.push(q);
        }
        prev_name = Some(name.clone());
        histograms.push(HistEntry { name, count, sum, windows });
    }

    Ok(SeriesDoc { schema, tick, wall_ms, series, histograms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ScopeConfig, SeriesStore};

    fn populated_store() -> SeriesStore {
        let store = SeriesStore::new(ScopeConfig::default());
        let reg = dbcast_obs::registry();
        for i in 0..25u64 {
            let mut snap = reg.snapshot();
            snap.counters =
                vec![("json.test.requests".into(), i * 7), ("serve.ticks".into(), i)];
            snap.gauges = vec![("json.test.drift".into(), (i as f64 / 10.0).sin())];
            snap.histograms.clear();
            store.append_snapshot(&snap, i * 100);
        }
        store
    }

    #[test]
    fn rendered_store_round_trips_the_validator() {
        let store = populated_store();
        let text = render_store(&store);
        let doc = validate(&text).expect("rendered payload validates");
        assert_eq!(doc.schema, SCHEMA_VERSION);
        assert_eq!(doc.tick, 24);
        let req = doc.series("json.test.requests").expect("requests series");
        assert_eq!(req.kind, SeriesKind::Counter);
        assert_eq!(req.last(), Some(168.0));
        // 7 per 100 ms = 70/s.
        assert!((req.last_rate().unwrap() - 70.0).abs() < 1e-9);
        let drift = doc.series("json.test.drift").expect("drift series");
        assert_eq!(drift.kind, SeriesKind::Gauge);
        assert!(drift.rate.is_empty());
        assert_eq!(drift.mid.len(), 2);
    }

    #[test]
    fn tampered_payloads_are_rejected() {
        let text = render_store(&populated_store());
        for (needle, replacement, why) in [
            ("\"schema\": 1", "\"schema\": 2", "wrong version"),
            ("\"kind\": \"counter\"", "\"kind\": \"delta\"", "unknown kind"),
            ("\"wall_ms\":", "\"wall\":", "missing wall_ms"),
        ] {
            let bad = text.replacen(needle, replacement, 1);
            assert!(
                matches!(validate(&bad), Err(SeriesError::Schema(_))),
                "{why} accepted"
            );
        }
        assert!(matches!(validate("{nope"), Err(SeriesError::Parse(_))));
    }

    #[test]
    fn negative_counter_rates_are_rejected() {
        let good = "{\"schema\": 1, \"tick\": 0, \"wall_ms\": 5, \"series\": [\
                    {\"name\": \"c\", \"kind\": \"counter\", \"raw\": [[0,1,2.0]], \
                    \"mid\": [], \"coarse\": [], \"rate\": [[0,1,-4.0]]}], \
                    \"histograms\": []}";
        assert!(matches!(validate(good), Err(SeriesError::Schema(_))));
    }

    #[test]
    fn bin_mean_outside_min_max_is_rejected() {
        let bad = "{\"schema\": 1, \"tick\": 0, \"wall_ms\": 5, \"series\": [\
                   {\"name\": \"g\", \"kind\": \"gauge\", \"raw\": [], \
                   \"mid\": [[0,9,0,90,10,1.0,2.0,5.0,1.5]], \"coarse\": [], \
                   \"rate\": []}], \"histograms\": []}";
        assert!(matches!(validate(bad), Err(SeriesError::Schema(_))));
    }

    #[test]
    fn unsorted_series_names_are_rejected() {
        let bad = "{\"schema\": 1, \"tick\": 0, \"wall_ms\": 5, \"series\": [\
                   {\"name\": \"b\", \"kind\": \"gauge\", \"raw\": [], \"mid\": [], \
                   \"coarse\": [], \"rate\": []},\
                   {\"name\": \"a\", \"kind\": \"gauge\", \"raw\": [], \"mid\": [], \
                   \"coarse\": [], \"rate\": []}], \"histograms\": []}";
        assert!(matches!(validate(bad), Err(SeriesError::Schema(_))));
    }
}
