//! One metric's windowed history: a raw sample ring plus two
//! decimated tiers. Each tier bin keeps min/max/mean/last so spikes
//! survive decimation — a drift excursion that lasted three samples is
//! still visible in the coarse tier's `max` long after the raw window
//! has rotated past it.

use crate::ring::Ring;

/// Raw samples folded into one mid-tier bin.
pub const TIER_MID_FACTOR: usize = 10;
/// Raw samples folded into one coarse-tier bin.
pub const TIER_COARSE_FACTOR: usize = 100;

/// How a series' values evolve, which decides what derived views make
/// sense (rates only exist for counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Last-write-wins level (drift distance, burn rate, `W_i`, …).
    Gauge,
    /// Monotone cumulative count; dips mean the source reset.
    Counter,
}

impl SeriesKind {
    /// Stable lowercase name used in the `/series` JSON schema.
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::Gauge => "gauge",
            SeriesKind::Counter => "counter",
        }
    }

    /// Parses the JSON schema name.
    pub fn from_name(s: &str) -> Option<SeriesKind> {
        match s {
            "gauge" => Some(SeriesKind::Gauge),
            "counter" => Some(SeriesKind::Counter),
            _ => None,
        }
    }
}

/// One scraped observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Serving-loop virtual tick at scrape time (0 before serving).
    pub tick: u64,
    /// Milliseconds since the store was created.
    pub wall_ms: u64,
    /// The metric's value at scrape time.
    pub value: f64,
}

/// A decimated bin: the aggregate of `count` consecutive raw samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// Tick of the first folded sample.
    pub start_tick: u64,
    /// Tick of the last folded sample.
    pub end_tick: u64,
    /// Wall clock of the first folded sample (ms since store start).
    pub start_wall_ms: u64,
    /// Wall clock of the last folded sample.
    pub end_wall_ms: u64,
    /// Raw samples folded in.
    pub count: u64,
    /// Smallest folded value.
    pub min: f64,
    /// Largest folded value.
    pub max: f64,
    /// Sum of folded values (`mean()` divides by `count`).
    pub sum: f64,
    /// Most recent folded value.
    pub last: f64,
}

impl Bin {
    fn seed(s: Sample) -> Bin {
        Bin {
            start_tick: s.tick,
            end_tick: s.tick,
            start_wall_ms: s.wall_ms,
            end_wall_ms: s.wall_ms,
            count: 1,
            min: s.value,
            max: s.value,
            sum: s.value,
            last: s.value,
        }
    }

    fn fold(&mut self, s: Sample) {
        self.end_tick = s.tick;
        self.end_wall_ms = s.wall_ms;
        self.count += 1;
        self.min = self.min.min(s.value);
        self.max = self.max.max(s.value);
        self.sum += s.value;
        self.last = s.value;
    }

    /// Mean of the folded samples.
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

/// Accumulates raw samples into bins of a fixed decimation factor.
#[derive(Debug, Clone)]
struct TierAcc {
    factor: usize,
    pending: Option<Bin>,
}

impl TierAcc {
    fn new(factor: usize) -> Self {
        TierAcc { factor, pending: None }
    }

    /// Folds one sample; returns the completed bin when the factor is
    /// reached.
    fn push(&mut self, s: Sample) -> Option<Bin> {
        match &mut self.pending {
            None => {
                self.pending = Some(Bin::seed(s));
            }
            Some(bin) => bin.fold(s),
        }
        if self.pending.as_ref().is_some_and(|b| b.count as usize >= self.factor) {
            self.pending.take()
        } else {
            None
        }
    }
}

/// One metric's bounded multi-resolution history.
#[derive(Debug, Clone)]
pub struct Series {
    kind: SeriesKind,
    raw: Ring<Sample>,
    mid: Ring<Bin>,
    coarse: Ring<Bin>,
    mid_acc: TierAcc,
    coarse_acc: TierAcc,
}

impl Series {
    /// An empty series. `raw_capacity` bounds the raw ring;
    /// `tier_capacity` bounds each decimated tier.
    pub fn new(kind: SeriesKind, raw_capacity: usize, tier_capacity: usize) -> Self {
        Series {
            kind,
            raw: Ring::new(raw_capacity),
            mid: Ring::new(tier_capacity),
            coarse: Ring::new(tier_capacity),
            mid_acc: TierAcc::new(TIER_MID_FACTOR),
            coarse_acc: TierAcc::new(TIER_COARSE_FACTOR),
        }
    }

    /// The series' kind.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// Appends one sample, flushing completed tier bins.
    pub fn push(&mut self, s: Sample) {
        self.raw.push(s);
        if let Some(bin) = self.mid_acc.push(s) {
            self.mid.push(bin);
        }
        if let Some(bin) = self.coarse_acc.push(s) {
            self.coarse.push(bin);
        }
    }

    /// The newest sample.
    pub fn latest(&self) -> Option<Sample> {
        self.raw.latest()
    }

    /// Raw samples oldest → newest.
    pub fn raw(&self) -> Vec<Sample> {
        self.raw.to_vec()
    }

    /// Completed mid-tier bins oldest → newest (the in-progress
    /// accumulator is not included).
    pub fn mid(&self) -> Vec<Bin> {
        self.mid.to_vec()
    }

    /// Completed coarse-tier bins oldest → newest.
    pub fn coarse(&self) -> Vec<Bin> {
        self.coarse.to_vec()
    }

    /// Counter → per-second rate over the retained raw window. Gauges
    /// return an empty vec. See [`derive_rates`] for semantics.
    pub fn rates(&self) -> Vec<Sample> {
        match self.kind {
            SeriesKind::Gauge => Vec::new(),
            SeriesKind::Counter => derive_rates(&self.raw.to_vec()),
        }
    }

    /// The newest per-second rate, when derivable.
    pub fn latest_rate(&self) -> Option<f64> {
        self.rates().last().map(|s| s.value)
    }
}

/// Derives per-second rates from consecutive cumulative samples.
///
/// * `rate = Δvalue / Δwall_s`, stamped at the later sample;
/// * pairs with `Δwall_ms == 0` are skipped (no meaningful rate);
/// * a negative delta means the source counter reset — the later
///   sample's absolute value is taken as the delta (everything counted
///   since the reset happened within the interval), so rates are
///   always non-negative.
pub fn derive_rates(raw: &[Sample]) -> Vec<Sample> {
    let mut out = Vec::with_capacity(raw.len().saturating_sub(1));
    for pair in raw.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let dt_ms = b.wall_ms.saturating_sub(a.wall_ms);
        if dt_ms == 0 {
            continue;
        }
        let delta = if b.value >= a.value { b.value - a.value } else { b.value.max(0.0) };
        let rate = delta / (dt_ms as f64 / 1000.0);
        out.push(Sample { tick: b.tick, wall_ms: b.wall_ms, value: rate });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(tick: u64, wall_ms: u64, value: f64) -> Sample {
        Sample { tick, wall_ms, value }
    }

    #[test]
    fn tiers_flush_at_their_factors() {
        let mut series = Series::new(SeriesKind::Gauge, 1000, 100);
        for i in 0..250u64 {
            series.push(s(i, i * 10, i as f64));
        }
        assert_eq!(series.raw().len(), 250);
        assert_eq!(series.mid().len(), 25);
        assert_eq!(series.coarse().len(), 2);

        let first_mid = series.mid()[0];
        assert_eq!(first_mid.count, 10);
        assert_eq!(first_mid.min, 0.0);
        assert_eq!(first_mid.max, 9.0);
        assert_eq!(first_mid.last, 9.0);
        assert!((first_mid.mean() - 4.5).abs() < 1e-12);
        assert_eq!(first_mid.start_tick, 0);
        assert_eq!(first_mid.end_tick, 9);

        let first_coarse = series.coarse()[0];
        assert_eq!(first_coarse.count, 100);
        assert_eq!(first_coarse.min, 0.0);
        assert_eq!(first_coarse.max, 99.0);
        assert!((first_coarse.mean() - 49.5).abs() < 1e-12);
    }

    #[test]
    fn spikes_survive_decimation() {
        let mut series = Series::new(SeriesKind::Gauge, 10, 100);
        for i in 0..200u64 {
            let v = if i == 42 { 1000.0 } else { 1.0 };
            series.push(s(i, i, v));
        }
        // The raw ring (capacity 10) rotated past the spike long ago…
        assert!(series.raw().iter().all(|x| x.value == 1.0));
        // …but both tiers still carry it in `max`.
        assert!(series.mid().iter().any(|b| b.max == 1000.0));
        assert!(series.coarse().iter().any(|b| b.max == 1000.0));
    }

    #[test]
    fn rates_are_per_second_and_reset_tolerant() {
        let raw = vec![
            s(0, 0, 0.0),
            s(1, 1000, 50.0), // 50/s
            s(2, 1500, 75.0), // 25 over 0.5s = 50/s
            s(3, 1500, 80.0), // dt 0 → skipped
            s(4, 2500, 10.0), // reset: 10 counted since, over 1s
            s(5, 3500, 10.0), // idle
        ];
        let rates = derive_rates(&raw);
        let values: Vec<f64> = rates.iter().map(|r| r.value).collect();
        assert_eq!(values, vec![50.0, 50.0, 10.0, 0.0]);
        assert!(rates.iter().all(|r| r.value >= 0.0));
        assert_eq!(rates[0].wall_ms, 1000);
    }

    #[test]
    fn gauge_series_has_no_rates() {
        let mut series = Series::new(SeriesKind::Gauge, 10, 10);
        series.push(s(0, 0, 1.0));
        series.push(s(1, 100, 2.0));
        assert!(series.rates().is_empty());
        assert_eq!(series.latest_rate(), None);
    }
}
