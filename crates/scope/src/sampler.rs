//! The background sampler: a thread that scrapes the global obs
//! registry into a [`SeriesStore`] on a fixed cadence and runs the
//! watchdog after every scrape. One scrape is a registry snapshot
//! plus one bounded append per metric — its cost is pinned by the
//! `scope_sampler` benchmark in the BENCH contract (≤2% of the
//! serve-loop median), so leaving the sampler on in production is the
//! expected configuration, not a tax.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::store::SeriesStore;
use crate::watchdog::Watchdog;

/// How often the sampler wakes to honour a stop request while
/// sleeping out a long cadence.
const STOP_POLL: Duration = Duration::from_millis(25);

/// One scrape: snapshot the registry, append every metric, run the
/// watchdog at the scrape's `(tick, wall_ms)` stamp. Public so tests
/// and the benchmark suite can drive scrapes deterministically.
pub fn sample_once(store: &SeriesStore, watchdog: &Mutex<Watchdog>) {
    let _span = dbcast_obs::span!("scope.sampler.scrape");
    dbcast_obs::counter!("scope.sampler.scrapes").inc();
    let (tick, wall_ms) = store.append_global();
    watchdog.lock().expect("watchdog poisoned").check_at(store, tick, wall_ms);
}

/// A running background sampler. Dropping it (or calling
/// [`stop`](Self::stop)) joins the thread.
pub struct Sampler {
    store: Arc<SeriesStore>,
    watchdog: Arc<Mutex<Watchdog>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler").field("running", &self.handle.is_some()).finish()
    }
}

impl Sampler {
    /// Starts scraping into `store` every `cadence`, evaluating
    /// `watchdog` after each scrape. An initial scrape runs
    /// immediately so the store is never empty while the sampler is
    /// alive.
    pub fn start(
        store: Arc<SeriesStore>,
        watchdog: Watchdog,
        cadence: Duration,
    ) -> std::io::Result<Sampler> {
        let watchdog = Arc::new(Mutex::new(watchdog));
        let stop = Arc::new(AtomicBool::new(false));
        let (t_store, t_dog, t_stop) =
            (Arc::clone(&store), Arc::clone(&watchdog), Arc::clone(&stop));
        let handle = std::thread::Builder::new()
            .name("dbcast-scope-sampler".into())
            .spawn(move || {
                while !t_stop.load(Ordering::Acquire) {
                    sample_once(&t_store, &t_dog);
                    let mut slept = Duration::ZERO;
                    while slept < cadence && !t_stop.load(Ordering::Acquire) {
                        let chunk = STOP_POLL.min(cadence - slept);
                        std::thread::sleep(chunk);
                        slept += chunk;
                    }
                }
            })?;
        Ok(Sampler { store, watchdog, stop, handle: Some(handle) })
    }

    /// The store being scraped into.
    pub fn store(&self) -> &Arc<SeriesStore> {
        &self.store
    }

    /// Latched watchdog firings so far (callable while running).
    pub fn firings(&self) -> Vec<crate::watchdog::Firing> {
        self.watchdog.lock().expect("watchdog poisoned").firings().to_vec()
    }

    /// Stops the thread, takes one final scrape (so short runs always
    /// end with fresh data and a final watchdog pass), and returns the
    /// latched firings.
    pub fn stop(mut self) -> Vec<crate::watchdog::Firing> {
        self.join();
        sample_once(&self.store, &self.watchdog);
        self.firings()
    }

    fn join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ScopeConfig;
    use crate::watchdog::parse_rules;

    #[test]
    fn sampler_scrapes_on_cadence_and_stops_cleanly() {
        // Registry contents persist across tests in this binary; use a
        // dedicated store and just assert it fills up.
        dbcast_obs::registry().counter("scope.test.sampler_ticks").force_add(3);
        let store = Arc::new(SeriesStore::new(ScopeConfig {
            tick_counter: "scope.test.sampler_ticks".to_string(),
            ..ScopeConfig::default()
        }));
        let sampler = Sampler::start(
            Arc::clone(&store),
            Watchdog::new(parse_rules("").unwrap()),
            Duration::from_millis(5),
        )
        .expect("sampler starts");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while store.series_count() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let firings = sampler.stop();
        assert!(firings.is_empty());
        assert!(store.series_count() > 0, "sampler never scraped");
        assert_eq!(store.latest_tick(), 3);
    }
}
