//! The `dbcast top` renderer: a zero-dependency ANSI view over a
//! validated [`SeriesDoc`] — req/s, drift L1, SLO burn rate, swap and
//! generation history, windowed wait quantiles and the per-channel
//! Eq. 2 `W_i` table. The renderer is a pure function of the document
//! (plus display options) so CI can assert on the exact text with
//! `--once` while the live console just re-renders per frame.

use crate::json::{SeriesDoc, SeriesEntry};

/// Sparkline glyphs, shortest to tallest.
const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

const RESET: &str = "\x1b[0m";
const BOLD: &str = "\x1b[1m";
const DIM: &str = "\x1b[2m";
const RED: &str = "\x1b[31m";
const GREEN: &str = "\x1b[32m";
const YELLOW: &str = "\x1b[33m";
const CYAN: &str = "\x1b[36m";

/// Display options for [`render_top`].
#[derive(Debug, Clone)]
pub struct TopOptions {
    /// Emit ANSI colour codes (off for `--once`/non-TTY output).
    pub color: bool,
    /// Sparkline width: at most this many newest values are drawn.
    pub width: usize,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions { color: false, width: 40 }
    }
}

/// Renders `values` as a sparkline, newest `width` values, scaled to
/// the drawn window's min/max. Constant (or single-sample) windows
/// draw at mid height — a sparkline is never empty when data exists.
pub fn sparkline(values: &[f64], width: usize) -> String {
    let window = &values[values.len().saturating_sub(width)..];
    if window.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in window {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = hi - lo;
    window
        .iter()
        .map(|&v| {
            if span <= 0.0 {
                GLYPHS[3]
            } else {
                let t = ((v - lo) / span * (GLYPHS.len() - 1) as f64).round() as usize;
                GLYPHS[t.min(GLYPHS.len() - 1)]
            }
        })
        .collect()
}

fn raw_values(entry: &SeriesEntry) -> Vec<f64> {
    entry.raw.iter().map(|s| s.value).collect()
}

fn rate_values(entry: &SeriesEntry) -> Vec<f64> {
    entry.rate.iter().map(|s| s.value).collect()
}

fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

struct Painter {
    color: bool,
}

impl Painter {
    fn paint(&self, code: &str, text: &str) -> String {
        if self.color {
            format!("{code}{text}{RESET}")
        } else {
            text.to_string()
        }
    }
}

/// Renders the full `dbcast top` frame. Sections whose metrics are
/// absent from the document are skipped, so the console degrades
/// gracefully against feature-off or non-serve processes.
pub fn render_top(doc: &SeriesDoc, opts: &TopOptions) -> String {
    let p = Painter { color: opts.color };
    let mut out = String::with_capacity(2048);

    let swaps =
        doc.series("serve.swaps").and_then(|s| s.last()).map(|v| v as u64).unwrap_or(0);
    let header = format!(
        "dbcast top — tick {} · swaps {} · up {:.1}s · {} series",
        doc.tick,
        swaps,
        doc.wall_ms as f64 / 1000.0,
        doc.series.len()
    );
    out.push_str(&p.paint(BOLD, &header));
    out.push('\n');

    let mut row = |label: &str, value: String, spark: String, note: String| {
        out.push_str(&format!(
            " {label:<12} {value:>10}  {}  {}\n",
            spark,
            p.paint(DIM, &note)
        ));
    };

    if let Some(req) = doc.series("serve.requests") {
        let rates = rate_values(req);
        if !rates.is_empty() {
            row(
                "req/s",
                fmt_value(*rates.last().unwrap()),
                sparkline(&rates, opts.width),
                format!("({} served)", req.last().unwrap_or(0.0) as u64),
            );
        }
    }
    if let Some(drift) = doc.series("serve.drift_distance") {
        let values = raw_values(drift);
        if !values.is_empty() {
            let dispatched = doc
                .series("serve.drift_events")
                .and_then(|s| s.last())
                .map(|v| format!("({} repairs dispatched)", v as u64))
                .unwrap_or_default();
            row(
                "drift L1",
                fmt_value(*values.last().unwrap()),
                sparkline(&values, opts.width),
                dispatched,
            );
        }
    }
    if let Some(burn) = doc.series("serve.slo.burn_rate") {
        let values = raw_values(burn);
        if let Some(&last) = values.last() {
            let target = doc.series("serve.slo.target_wait").and_then(|s| s.last());
            let status =
                if last > 1.0 { p.paint(RED, "BURNING") } else { p.paint(GREEN, "ok") };
            let note = match target {
                Some(t) => format!("(target W_b {}s, {status})", fmt_value(t)),
                None => format!("({status})"),
            };
            row("SLO burn", fmt_value(last), sparkline(&values, opts.width), note);
        }
    }
    if let Some(generation) = doc.series("serve.generation") {
        let values = raw_values(generation);
        if let Some(&last) = values.last() {
            row(
                "generation",
                (last as u64).to_string(),
                sparkline(&values, opts.width),
                "(swap history)".to_string(),
            );
        }
    }
    if let Some(wait) = doc.histogram("serve.wait") {
        for w in &wait.windows {
            out.push_str(&format!(
                " {:<12} p50 {} / p90 {} / p99 {} µs  {}\n",
                format!("wait w{}", w.window),
                fmt_value(w.p50),
                fmt_value(w.p90),
                fmt_value(w.p99),
                p.paint(DIM, &format!("({} obs over {} scrapes)", w.count, w.spanned))
            ));
        }
    }

    // Per-channel Eq. 2 table: `serve.channel.expected_wait.<i>` is
    // channel i's contribution to the analytical wait (F_i·Z_i / 2b),
    // `serve.channel.load.<i>` its share of the access probability and
    // `serve.audit.residual.<i>` the audit tracer's observed-minus-
    // predicted mean wait ("-" until the tracer has observations).
    let waits: Vec<&SeriesEntry> =
        doc.series_with_prefix("serve.channel.expected_wait.").collect();
    if !waits.is_empty() {
        out.push_str(&p.paint(CYAN, "channels (Eq. 2 W_i seconds vs load F_i):\n"));
        for entry in waits {
            let index = entry.name.rsplit('.').next().unwrap_or("?");
            let load = doc
                .series(&format!("serve.channel.load.{index}"))
                .and_then(|s| s.last())
                .unwrap_or(0.0);
            let residual = doc
                .series(&format!("serve.audit.residual.{index}"))
                .and_then(|s| s.last())
                .map_or_else(|| "-".to_string(), |r| format!("{r:+.4}"));
            let values = raw_values(entry);
            let last = values.last().copied().unwrap_or(0.0);
            out.push_str(&format!(
                "  ch{index:<3} load {:>7}  W {:>8}  resid {:>8}  {}\n",
                fmt_value(load),
                fmt_value(last),
                residual,
                sparkline(&values, opts.width)
            ));
        }
    }

    // Fleet panel: populated when the process runs a telemetry uplink
    // (`serve --listen-uplink`). Shows the connected-client census, the
    // stragglers trailing the published generation, digest throughput
    // and the live observed-vs-Eq. 2 access-time gap per generation.
    if let Some(clients) = doc.series("fleet.clients").and_then(|s| s.last()) {
        let stragglers = doc
            .series("fleet.stragglers")
            .and_then(|s| s.last())
            .map(|v| v as u64)
            .unwrap_or(0);
        let digests = doc
            .series("fleet.uplink.digests")
            .and_then(|s| s.last())
            .map(|v| v as u64)
            .unwrap_or(0);
        out.push_str(&p.paint(CYAN, "fleet (telemetry uplink):\n"));
        let lag = if stragglers > 0 {
            p.paint(RED, &format!("{stragglers} straggling"))
        } else {
            p.paint(GREEN, "0 straggling")
        };
        out.push_str(&format!(
            "  clients {:>4}  {lag}  digests {digests}\n",
            clients as u64
        ));
        for entry in doc.series_with_prefix("fleet.generation.gap.") {
            let index = entry.name.rsplit('.').next().unwrap_or("?");
            let observed = doc
                .series(&format!("fleet.generation.access.{index}"))
                .and_then(|s| s.last())
                .unwrap_or(0.0);
            let predicted = doc
                .series(&format!("fleet.generation.predicted.{index}"))
                .and_then(|s| s.last())
                .unwrap_or(0.0);
            let values = raw_values(entry);
            let last = values.last().copied().unwrap_or(0.0);
            out.push_str(&format!(
                "  gen{index:<3} obs {:>8}s  Eq.2 {:>8}s  gap {:>7}  {}\n",
                fmt_value(observed),
                fmt_value(predicted),
                format!("{:.1}%", last * 100.0),
                sparkline(&values, opts.width)
            ));
        }
    }

    if let Some(firings) = doc.series("scope.watchdog.firings").and_then(|s| s.last()) {
        if firings > 0.0 {
            out.push_str(
                &p.paint(YELLOW, &format!(" watchdog: {} rule(s) fired\n", firings as u64)),
            );
        }
    }
    out
}

/// Clears the screen and homes the cursor (live mode only).
pub fn clear_screen() -> &'static str {
    "\x1b[2J\x1b[H"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::series::{Sample, SeriesKind};

    #[test]
    fn sparkline_scales_and_never_empties() {
        let s = sparkline(&[0.0, 0.5, 1.0], 40);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
        assert_eq!(sparkline(&[5.0; 4], 40), "▄▄▄▄");
        assert_eq!(sparkline(&[], 40), "");
        // Width trims to the newest values.
        let long: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(sparkline(&long, 10).chars().count(), 10);
    }

    fn entry(name: &str, kind: SeriesKind, values: &[f64]) -> json::SeriesEntry {
        json::SeriesEntry {
            name: name.to_string(),
            kind,
            raw: values
                .iter()
                .enumerate()
                .map(|(i, &v)| Sample { tick: i as u64, wall_ms: i as u64 * 100, value: v })
                .collect(),
            mid: Vec::new(),
            coarse: Vec::new(),
            rate: match kind {
                SeriesKind::Counter => values
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| Sample {
                        tick: i as u64,
                        wall_ms: i as u64 * 100,
                        value: v,
                    })
                    .collect(),
                SeriesKind::Gauge => Vec::new(),
            },
        }
    }

    #[test]
    fn top_renders_all_sections_from_a_doc() {
        let doc = json::SeriesDoc {
            schema: 1,
            tick: 42,
            wall_ms: 12_400,
            series: vec![
                entry("serve.channel.expected_wait.0", SeriesKind::Gauge, &[0.2, 0.21]),
                entry("serve.channel.expected_wait.1", SeriesKind::Gauge, &[0.1, 0.09]),
                entry("serve.channel.load.0", SeriesKind::Gauge, &[0.6, 0.6]),
                entry("serve.channel.load.1", SeriesKind::Gauge, &[0.4, 0.4]),
                entry("serve.audit.residual.0", SeriesKind::Gauge, &[0.01, 0.0153]),
                entry("serve.drift_distance", SeriesKind::Gauge, &[0.01, 0.3, 0.02]),
                entry("serve.generation", SeriesKind::Gauge, &[0.0, 1.0]),
                entry("serve.requests", SeriesKind::Counter, &[100.0, 250.0]),
                entry("serve.slo.burn_rate", SeriesKind::Gauge, &[0.2, 1.4]),
                entry("serve.slo.target_wait", SeriesKind::Gauge, &[0.41]),
                entry("serve.swaps", SeriesKind::Counter, &[0.0, 1.0]),
            ],
            histograms: Vec::new(),
        };
        let text = render_top(&doc, &TopOptions::default());
        assert!(text.contains("dbcast top — tick 42 · swaps 1"), "{text}");
        for needle in ["req/s", "drift L1", "SLO burn", "generation", "ch0", "ch1"] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
        // Channel 0 has an audit residual series, channel 1 does not.
        assert!(text.contains("resid  +0.0153"), "residual column:\n{text}");
        assert!(text.contains("resid        -"), "missing residual dash:\n{text}");
        assert!(text.contains('▁') || text.contains('▄'), "no sparkline:\n{text}");
        // Plain mode carries no ANSI escapes.
        assert!(!text.contains('\x1b'), "escapes in plain render:\n{text}");

        let colored = render_top(&doc, &TopOptions { color: true, width: 40 });
        assert!(colored.contains("\x1b[31m"), "burn rate 1.4 should paint red");
    }

    #[test]
    fn top_renders_the_fleet_panel_when_uplink_series_exist() {
        let doc = json::SeriesDoc {
            schema: 1,
            tick: 3,
            wall_ms: 900,
            series: vec![
                entry("fleet.clients", SeriesKind::Gauge, &[8.0]),
                entry("fleet.stragglers", SeriesKind::Gauge, &[1.0]),
                entry("fleet.uplink.digests", SeriesKind::Counter, &[24.0]),
                entry("fleet.generation.access.0", SeriesKind::Gauge, &[0.42]),
                entry("fleet.generation.predicted.0", SeriesKind::Gauge, &[0.40]),
                entry("fleet.generation.gap.0", SeriesKind::Gauge, &[0.05]),
            ],
            histograms: Vec::new(),
        };
        let text = render_top(&doc, &TopOptions::default());
        assert!(text.contains("fleet (telemetry uplink):"), "{text}");
        assert!(text.contains("clients    8"), "{text}");
        assert!(text.contains("1 straggling"), "{text}");
        assert!(text.contains("digests 24"), "{text}");
        assert!(text.contains("gen0"), "{text}");
        assert!(text.contains("gap    5.0%"), "{text}");

        // No fleet series → no fleet panel.
        let bare = json::SeriesDoc {
            schema: 1,
            tick: 0,
            wall_ms: 0,
            series: Vec::new(),
            histograms: Vec::new(),
        };
        assert!(!render_top(&bare, &TopOptions::default()).contains("fleet"));
    }

    #[test]
    fn empty_doc_renders_just_the_header() {
        let doc = json::SeriesDoc {
            schema: 1,
            tick: 0,
            wall_ms: 0,
            series: Vec::new(),
            histograms: Vec::new(),
        };
        let text = render_top(&doc, &TopOptions::default());
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("dbcast top"));
    }
}
