//! A fixed-capacity overwrite-oldest ring. All series storage in this
//! crate sits on top of it, so the memory held per metric is bounded
//! at construction time and the steady-state append path never
//! allocates (the backing `Vec` is grown once, up to capacity, and
//! then reused in place).

/// Fixed-capacity ring over `Copy` elements; pushing beyond capacity
/// overwrites the oldest element.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: Vec<T>,
    /// Index the next push writes to once the buffer has wrapped.
    head: usize,
    capacity: usize,
}

impl<T: Copy> Ring<T> {
    /// An empty ring holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a zero-capacity ring can never
    /// hold a sample and indicates a misconfigured store.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring { buf: Vec::with_capacity(capacity), head: 0, capacity }
    }

    /// Appends `value`, evicting the oldest element when full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Elements currently held (saturates at capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The most recently pushed element.
    pub fn latest(&self) -> Option<T> {
        if self.buf.is_empty() {
            None
        } else if self.buf.len() < self.capacity {
            self.buf.last().copied()
        } else {
            let i = (self.head + self.capacity - 1) % self.capacity;
            Some(self.buf[i])
        }
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        let (wrapped, fresh) = self.buf.split_at(self.head);
        fresh.iter().chain(wrapped.iter()).copied()
    }

    /// Copies the contents oldest → newest.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().collect()
    }

    /// The element `back` positions before the newest (`back == 0` is
    /// the newest), or the oldest held element when `back` reaches
    /// past the start of the window.
    pub fn back_or_oldest(&self, back: usize) -> Option<T> {
        if self.buf.is_empty() {
            return None;
        }
        let idx = self.buf.len().saturating_sub(1).saturating_sub(back);
        self.iter().nth(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut r = Ring::new(3);
        assert!(r.is_empty());
        assert_eq!(r.latest(), None);
        for v in 0..5 {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.to_vec(), vec![2, 3, 4]);
        assert_eq!(r.latest(), Some(4));
    }

    #[test]
    fn iteration_is_oldest_to_newest_before_and_after_wrap() {
        let mut r = Ring::new(4);
        r.push(10);
        r.push(11);
        assert_eq!(r.to_vec(), vec![10, 11]);
        for v in 12..18 {
            r.push(v);
        }
        assert_eq!(r.to_vec(), vec![14, 15, 16, 17]);
    }

    #[test]
    fn back_or_oldest_clamps_to_window_start() {
        let mut r = Ring::new(3);
        for v in 0..3 {
            r.push(v);
        }
        assert_eq!(r.back_or_oldest(0), Some(2));
        assert_eq!(r.back_or_oldest(1), Some(1));
        assert_eq!(r.back_or_oldest(2), Some(0));
        assert_eq!(r.back_or_oldest(99), Some(0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Ring::<u64>::new(0);
    }
}
