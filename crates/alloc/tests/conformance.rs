//! This crate's allocators (DRP, DRP+CDS, and the CDS refinement
//! contract) under the shared conformance harness.

use dbcast_alloc::{Drp, DrpCds};
use dbcast_conformance::{Harness, HarnessConfig, Subject};

fn subjects() -> Vec<Subject> {
    vec![
        Subject {
            allocator: Box::new(Drp::new()),
            requires_k_le_n: true,
            permutation_invariant: true,
            k_monotone: true,
            stride: 1,
        },
        Subject {
            allocator: Box::new(DrpCds::new()),
            requires_k_le_n: true,
            // CDS tie-breaks equal-Δc moves by item id, so relabeling
            // can land in a different local optimum (see the registry).
            permutation_invariant: false,
            k_monotone: true,
            stride: 1,
        },
    ]
}

#[test]
fn drp_and_drp_cds_conform() {
    // The harness also runs the CDS refinement invariants (never
    // worsens, step accounting, genuine local optimum) on every case.
    let report = Harness::with_subjects(
        HarnessConfig { seed: 0xA110C, cases: 120, sim_stride: 0, ..Default::default() },
        subjects(),
    )
    .run();
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.oracle_cases > 0, "no case exercised the exact oracle");
}

#[test]
fn corpus_replays_clean_for_this_crate() {
    let corpus =
        dbcast_conformance::load_corpus(&dbcast_conformance::corpus::default_dir())
            .expect("corpus directory must parse");
    let harness = Harness::with_subjects(
        HarnessConfig { shrink: false, ..Default::default() },
        subjects(),
    );
    let (regressions, _) = harness.replay(&corpus);
    assert!(regressions.is_empty(), "{regressions:?}");
}
