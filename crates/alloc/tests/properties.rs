//! Property-based tests pinning the incremental CDS engine's three
//! load-bearing invariants on arbitrary instances:
//!
//! 1. **No staleness** — after any prefix of applied moves, the cached
//!    global best equals an exhaustive from-scratch scan, bit-for-bit.
//!    (A lazy-invalidation bug shows up here as a skipped fresh
//!    candidate or a surfaced stale one.)
//! 2. **Aggregate integrity** — the maintained per-channel `(F, Z)`
//!    columns match a from-scratch recomputation after the full
//!    descent.
//! 3. **Engine/reference identity** — `Cds` (engine-backed) reproduces
//!    `ReferenceCds` (exhaustive scan) step-for-step on any database
//!    and any start, down to the reduction bits.

use dbcast_alloc::{BestMoveEngine, Cds, ReferenceCds};
use dbcast_model::{Allocation, Database, ItemSpec};
use proptest::prelude::*;

/// Raw engine columns: positive features and a valid dense assignment.
fn columns() -> impl Strategy<Value = (usize, Vec<f64>, Vec<f64>, Vec<u32>)> {
    (1usize..7).prop_flat_map(|k| {
        prop::collection::vec((0.001f64..10.0, 0.01f64..100.0, 0..k as u32), 1..48)
            .prop_map(move |rows| {
                let f = rows.iter().map(|r| r.0).collect();
                let z = rows.iter().map(|r| r.1).collect();
                let assign = rows.iter().map(|r| r.2).collect();
                (k, f, z, assign)
            })
    })
}

fn aggregates(k: usize, f: &[f64], z: &[f64], assign: &[u32]) -> (Vec<f64>, Vec<f64>) {
    let mut freq = vec![0.0; k];
    let mut size = vec![0.0; k];
    for (x, &c) in assign.iter().enumerate() {
        freq[c as usize] += f[x];
        size[c as usize] += z[x];
    }
    (freq, size)
}

/// The paper-literal scan: items ascending, destinations ascending,
/// strict `>` seeded at the threshold.
fn exhaustive_best(
    k: usize,
    threshold: f64,
    f: &[f64],
    z: &[f64],
    assign: &[u32],
    freq: &[f64],
    size: &[f64],
) -> Option<(usize, usize, f64)> {
    let mut best = None;
    let mut best_r = threshold;
    for (x, &p) in assign.iter().enumerate() {
        let p = p as usize;
        for q in 0..k {
            if q == p {
                continue;
            }
            let r =
                f[x] * (size[p] - size[q]) + z[x] * (freq[p] - freq[q]) - 2.0 * f[x] * z[x];
            if r > best_r {
                best_r = r;
                best = Some((x, q, r));
            }
        }
    }
    best
}

fn engine_from(k: usize, f: &[f64], z: &[f64], assign: &[u32]) -> BestMoveEngine {
    let (freq, size) = aggregates(k, f, z, assign);
    BestMoveEngine::new(k, 1e-9, f.to_vec(), z.to_vec(), assign.to_vec(), freq, size)
}

proptest! {
    #[test]
    fn engine_best_is_never_stale((k, f, z, assign) in columns()) {
        let mut engine = engine_from(k, &f, &z, &assign);
        // Strictly decreasing cost with a strict 1e-9 threshold bounds
        // the descent; the cap only guards against a livelock bug.
        for _ in 0..20_000usize {
            let brute = exhaustive_best(
                k,
                1e-9,
                &f,
                &z,
                engine.assignment(),
                engine.channel_freq(),
                engine.channel_size(),
            );
            let got = engine.best().map(|m| (m.item, m.to, m.reduction.to_bits()));
            prop_assert_eq!(got, brute.map(|(x, q, r)| (x, q, r.to_bits())));
            if engine.apply_best().is_none() {
                break;
            }
        }
        prop_assert!(engine.best().is_none(), "descent failed to terminate");
    }

    #[test]
    fn engine_aggregates_survive_full_descent((k, f, z, assign) in columns()) {
        let mut engine = engine_from(k, &f, &z, &assign);
        let mut moves = 0usize;
        while engine.apply_best().is_some() {
            moves += 1;
            prop_assert!(moves < 20_000, "descent failed to terminate");
        }
        let (freq, size) = aggregates(k, &f, &z, engine.assignment());
        for c in 0..k {
            prop_assert!(
                (engine.channel_freq()[c] - freq[c]).abs() < 1e-9,
                "channel {} frequency drifted: {} vs {}",
                c, engine.channel_freq()[c], freq[c]
            );
            prop_assert!(
                (engine.channel_size()[c] - size[c]).abs() < 1e-9,
                "channel {} size drifted: {} vs {}",
                c, engine.channel_size()[c], size[c]
            );
        }
    }

    #[test]
    fn engine_respects_an_arbitrary_threshold(
        (k, f, z, assign) in columns(),
        threshold in 0.0f64..0.5,
    ) {
        let (freq, size) = aggregates(k, &f, &z, &assign);
        let engine = BestMoveEngine::new(
            k, threshold, f.clone(), z.clone(), assign.clone(), freq, size,
        );
        if let Some(m) = engine.best() {
            prop_assert!(m.reduction > threshold);
            prop_assert_ne!(m.from, m.to);
        }
    }

    #[test]
    fn cds_matches_reference_bit_for_bit((k, f, z, assign) in columns()) {
        let specs: Vec<ItemSpec> =
            f.iter().zip(&z).map(|(&fx, &zx)| ItemSpec::new(fx, zx)).collect();
        let db = Database::try_from_specs(specs).unwrap();
        let start = Allocation::from_assignment(
            &db, k, assign.iter().map(|&c| c as usize).collect(),
        )
        .unwrap();
        let oracle = ReferenceCds::new().refine(&db, start.clone()).unwrap();
        let fast = Cds::new().refine(&db, start).unwrap();
        prop_assert_eq!(oracle.steps.len(), fast.steps.len());
        for (a, b) in oracle.steps.iter().zip(&fast.steps) {
            prop_assert_eq!(a.mv, b.mv);
            prop_assert_eq!(a.reduction.to_bits(), b.reduction.to_bits());
            prop_assert_eq!(a.cost_after.to_bits(), b.cost_after.to_bits());
        }
        prop_assert_eq!(oracle.converged, fast.converged);
        prop_assert_eq!(
            oracle.allocation.assignment(),
            fast.allocation.assignment()
        );
        prop_assert_eq!(
            oracle.allocation.total_cost().to_bits(),
            fast.allocation.total_cost().to_bits()
        );
    }

    #[cfg(feature = "par")]
    #[test]
    fn par_descent_is_bit_identical_to_serial((k, f, z, assign) in columns()) {
        let (freq, size) = aggregates(k, &f, &z, &assign);
        let mut serial = BestMoveEngine::new(
            k, 1e-9, f.clone(), z.clone(), assign.clone(),
            freq.clone(), size.clone(),
        );
        serial.set_par_min(usize::MAX);
        let mut par = BestMoveEngine::new(k, 1e-9, f, z, assign, freq, size);
        par.set_par_min(0);
        for _ in 0..20_000usize {
            let a = serial.apply_best();
            let b = par.apply_best();
            prop_assert_eq!(
                a.map(|m| (m.item, m.from, m.to, m.reduction.to_bits())),
                b.map(|m| (m.item, m.from, m.to, m.reduction.to_bits()))
            );
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(serial.assignment(), par.assignment());
    }
}
