//! Mechanism **CDS — Cost-Diminishing Selection** (paper §3.2).
//!
//! CDS refines an existing allocation by steepest-descent over
//! single-item moves: each iteration applies the best strictly-improving
//! move (Eq. 4 reduction, ties to the smallest item id then the
//! smallest destination channel) and stops at a local optimum.
//!
//! Two interchangeable implementations share that contract:
//!
//! * [`ReferenceCds`] — the paper-literal exhaustive scan, `O(KN)` per
//!   iteration. It is the oracle: simple enough to audit by eye.
//! * [`Cds`] — the production engine, backed by
//!   [`BestMoveEngine`](crate::engine::BestMoveEngine): maintained
//!   per-group `(F, Z)` aggregates plus a lazily-invalidated per-item
//!   best-move cache, `O(N)` amortized per iteration. Its step sequence
//!   is **bit-for-bit identical** to the reference's — the conformance
//!   crate's differential battery replays both on every generated and
//!   regression instance and fails on the first diverging step.

use dbcast_model::{Allocation, ChannelId, ItemId, ModelError, Move};
use serde::{Deserialize, Serialize};

use crate::engine::BestMoveEngine;

/// One applied CDS move, mirroring a row of the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdsStep {
    /// The applied relocation.
    pub mv: Move,
    /// The predicted-and-realized cost reduction `Δc_max`.
    pub reduction: f64,
    /// Total cost after applying the move.
    pub cost_after: f64,
}

/// The result of a CDS refinement run.
#[derive(Debug, Clone, PartialEq)]
pub struct CdsOutcome {
    /// The refined (locally optimal, unless capped) allocation.
    pub allocation: Allocation,
    /// Total cost before any move.
    pub initial_cost: f64,
    /// Every applied move, in order.
    pub steps: Vec<CdsStep>,
    /// `true` when CDS stopped because no improving move exists (a
    /// genuine local optimum); `false` when the iteration cap fired.
    pub converged: bool,
}

impl CdsOutcome {
    /// Total cost after the last applied move.
    pub fn final_cost(&self) -> f64 {
        self.steps.last().map_or(self.initial_cost, |s| s.cost_after)
    }
}

/// The exhaustive best-move scan both CDS implementations agree on:
/// items in id order, destinations ascending, strict `>` keeps the
/// first of tied candidates, seeded at `min_reduction`.
fn scan_best_move(alloc: &Allocation, min_reduction: f64) -> Option<(Move, f64)> {
    let _scan = dbcast_obs::span!("alloc.cds.best_move");
    let k = alloc.channels();
    let mut best: Option<(Move, f64)> = None;
    let mut best_reduction = min_reduction;
    for (item, &p) in alloc.assignment().iter().enumerate() {
        for q in 0..k {
            if q == p {
                continue;
            }
            let mv = Move {
                item: ItemId::new(item),
                from: ChannelId::new(p),
                to: ChannelId::new(q),
            };
            let reduction =
                alloc.move_reduction(mv).expect("scan only proposes consistent moves");
            if reduction > best_reduction {
                best_reduction = reduction;
                best = Some((mv, reduction));
            }
        }
    }
    best
}

/// Shared refinement driver: `next` yields the best move for the
/// current allocation (both implementations plug their scan in here, so
/// step accounting, tracing and the capped-run convergence re-check
/// stay literally the same code).
fn refine_with(
    db: &dbcast_model::Database,
    mut alloc: Allocation,
    max_iterations: usize,
    mut next: impl FnMut(&Allocation) -> Option<(Move, f64)>,
) -> Result<CdsOutcome, ModelError> {
    if alloc.items() != db.len() {
        return Err(ModelError::AssignmentLength {
            expected: db.len(),
            actual: alloc.items(),
        });
    }
    let _refine_span = dbcast_obs::span!("alloc.cds.refine");
    let initial_cost = alloc.total_cost();
    let mut steps = Vec::new();
    let mut converged = false;
    let mut obs_trace = dbcast_obs::trace::ConvergenceTrace::new("alloc.cds");
    while steps.len() < max_iterations {
        match next(&alloc) {
            Some((mv, reduction)) => {
                alloc.apply_move(mv)?;
                let cost_after = alloc.total_cost();
                steps.push(CdsStep { mv, reduction, cost_after });
                dbcast_obs::counter!("alloc.cds.iterations").inc();
                if dbcast_obs::enabled() {
                    obs_trace.push(dbcast_obs::trace::TraceEvent::CdsIteration {
                        iteration: steps.len(),
                        item: mv.item.index(),
                        from: mv.from.index(),
                        to: mv.to.index(),
                        reduction,
                        cost_after,
                    });
                }
            }
            None => {
                converged = true;
                break;
            }
        }
    }
    obs_trace.record();
    // A capped run that would find no further move is still converged.
    if !converged && next(&alloc).is_none() {
        converged = true;
    }
    Ok(CdsOutcome { allocation: alloc, initial_cost, steps, converged })
}

/// The paper-literal CDS refiner: a full `O(KN)` candidate scan per
/// iteration, kept as the differential oracle for [`Cds`].
///
/// # Example
///
/// ```
/// use dbcast_alloc::{Cds, Drp, ReferenceCds};
/// use dbcast_model::ChannelAllocator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = dbcast_workload::paper::table2_profile();
/// let rough = Drp::new().allocate(&db, 5)?;
/// let oracle = ReferenceCds::new().refine(&db, rough.clone())?;
/// let fast = Cds::new().refine(&db, rough)?;
/// assert_eq!(oracle.steps, fast.steps); // bit-for-bit
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceCds {
    min_reduction: f64,
    max_iterations: usize,
}

impl Default for ReferenceCds {
    fn default() -> Self {
        ReferenceCds { min_reduction: 1e-9, max_iterations: 1_000_000 }
    }
}

impl ReferenceCds {
    /// Creates the oracle with default threshold (`1e-9`) and iteration
    /// cap (`1_000_000`).
    pub fn new() -> Self {
        ReferenceCds::default()
    }

    /// Sets the minimum strict improvement a move must deliver.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or not finite.
    pub fn min_reduction(mut self, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "min_reduction must be finite and >= 0"
        );
        self.min_reduction = threshold;
        self
    }

    /// Caps the number of applied moves.
    pub fn max_iterations(mut self, cap: usize) -> Self {
        self.max_iterations = cap;
        self
    }

    /// Finds the best single-item move via the exhaustive scan, if any
    /// clears the threshold.
    pub fn best_move(&self, alloc: &Allocation) -> Option<(Move, f64)> {
        scan_best_move(alloc, self.min_reduction)
    }

    /// Refines `alloc` to a local optimum over `db`'s cost surface
    /// using the exhaustive per-iteration scan.
    ///
    /// # Errors
    ///
    /// [`ModelError::AssignmentLength`] if `alloc` was not built over
    /// `db` (defensive; the refinement itself cannot fail).
    pub fn refine(
        &self,
        db: &dbcast_model::Database,
        alloc: Allocation,
    ) -> Result<CdsOutcome, ModelError> {
        refine_with(db, alloc, self.max_iterations, |a| {
            scan_best_move(a, self.min_reduction)
        })
    }
}

/// The production CDS refiner, backed by the incremental
/// [`BestMoveEngine`](crate::engine::BestMoveEngine).
///
/// The improvement threshold rejects moves whose Eq. 4 reduction is not
/// strictly above `min_reduction` (default `1e-9`); together with the
/// iteration cap this guarantees termination in the presence of
/// floating-point noise. The step sequence is bit-for-bit identical to
/// [`ReferenceCds`]'s on every input.
///
/// # Example
///
/// ```
/// use dbcast_alloc::{Cds, Drp};
/// use dbcast_model::ChannelAllocator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = dbcast_workload::paper::table2_profile();
/// let rough = Drp::new().allocate(&db, 5)?;
/// let refined = Cds::new().refine(&db, rough)?;
/// assert!(refined.converged);
/// assert!(refined.final_cost() <= refined.initial_cost);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cds {
    min_reduction: f64,
    max_iterations: usize,
}

impl Default for Cds {
    fn default() -> Self {
        Cds { min_reduction: 1e-9, max_iterations: 1_000_000 }
    }
}

impl Cds {
    /// Creates a refiner with default threshold (`1e-9`) and iteration
    /// cap (`1_000_000`).
    pub fn new() -> Self {
        Cds::default()
    }

    /// Sets the minimum strict improvement a move must deliver.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or not finite.
    pub fn min_reduction(mut self, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "min_reduction must be finite and >= 0"
        );
        self.min_reduction = threshold;
        self
    }

    /// Caps the number of applied moves (safety valve at paper scale, a
    /// deliberate refinement budget at production scale).
    pub fn max_iterations(mut self, cap: usize) -> Self {
        self.max_iterations = cap;
        self
    }

    /// Finds the best single-item move, if any clears the threshold.
    ///
    /// One-shot queries use the exhaustive scan (building the engine
    /// would do the same work); `refine` amortizes via the engine.
    #[cfg(test)]
    fn best_move(&self, alloc: &Allocation) -> Option<(Move, f64)> {
        scan_best_move(alloc, self.min_reduction)
    }

    /// Builds the incremental engine from the current allocation state,
    /// handing over the *evolved* aggregates so every cached reduction
    /// is bit-identical to what the exhaustive scan would compute.
    pub(crate) fn engine(
        &self,
        db: &dbcast_model::Database,
        alloc: &Allocation,
    ) -> BestMoveEngine {
        let f: Vec<f64> = db.iter().map(|d| d.frequency()).collect();
        let z: Vec<f64> = db.iter().map(|d| d.size()).collect();
        let assign: Vec<u32> = alloc.assignment().iter().map(|&c| c as u32).collect();
        let stats = alloc.all_channel_stats();
        let freq: Vec<f64> = stats.iter().map(|s| s.frequency).collect();
        let size: Vec<f64> = stats.iter().map(|s| s.size).collect();
        BestMoveEngine::new(alloc.channels(), self.min_reduction, f, z, assign, freq, size)
    }

    /// Refines `alloc` to a local optimum over `db`'s cost surface.
    ///
    /// # Errors
    ///
    /// [`ModelError::AssignmentLength`] if `alloc` was not built over
    /// `db` (defensive; the refinement itself cannot fail).
    pub fn refine(
        &self,
        db: &dbcast_model::Database,
        alloc: Allocation,
    ) -> Result<CdsOutcome, ModelError> {
        if alloc.items() != db.len() {
            return Err(ModelError::AssignmentLength {
                expected: db.len(),
                actual: alloc.items(),
            });
        }
        let mut engine = self.engine(db, &alloc);
        refine_with(db, alloc, self.max_iterations, move |a| {
            let em = engine.best()?;
            debug_assert_eq!(em.from, a.assignment()[em.item]);
            engine.apply_best();
            Some((
                Move {
                    item: ItemId::new(em.item),
                    from: ChannelId::new(em.from),
                    to: ChannelId::new(em.to),
                },
                em.reduction,
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_model::{Allocation, ChannelAllocator, Database, ItemSpec};

    fn paper_drp_allocation(db: &Database) -> Allocation {
        crate::Drp::new().allocate_traced(db, 5).unwrap().allocation
    }

    #[test]
    fn refine_rejects_mismatched_allocation() {
        let db = dbcast_workload::paper::table2_profile();
        let other = Database::try_from_specs(vec![ItemSpec::new(1.0, 1.0)]).unwrap();
        let alloc = Allocation::from_assignment(&other, 1, vec![0]).unwrap();
        assert!(Cds::new().refine(&db, alloc.clone()).is_err());
        assert!(ReferenceCds::new().refine(&db, alloc).is_err());
    }

    #[test]
    fn local_optimum_has_no_improving_move() {
        let db = dbcast_workload::paper::table2_profile();
        let out = Cds::new().refine(&db, paper_drp_allocation(&db)).unwrap();
        assert!(out.converged);
        assert!(Cds::new().best_move(&out.allocation).is_none());
    }

    #[test]
    fn cost_strictly_decreases_along_steps() {
        let db = dbcast_workload::WorkloadBuilder::new(100).seed(4).build().unwrap();
        let rough = crate::Drp::new().allocate(&db, 6).unwrap();
        let out = Cds::new().refine(&db, rough).unwrap();
        let mut prev = out.initial_cost;
        for s in &out.steps {
            assert!(s.cost_after < prev);
            assert!((prev - s.cost_after - s.reduction).abs() < 1e-6);
            prev = s.cost_after;
        }
    }

    #[test]
    fn reproduces_paper_table4() {
        // Table 4: initial cost 24.09; first move d10: group4 -> group2
        // with Δc = 0.95; second move d12: group3 -> group2 with
        // Δc = 0.45; local optimum at cost 22.29.
        let db = dbcast_workload::paper::table2_profile();
        let out = Cds::new().refine(&db, paper_drp_allocation(&db)).unwrap();
        assert!((out.initial_cost - 24.09).abs() < 0.01, "{}", out.initial_cost);
        assert!(out.steps.len() >= 2);
        let s0 = &out.steps[0];
        assert_eq!(s0.mv.item.index() + 1, 10); // paper's d10
        assert!((s0.reduction - 0.95).abs() < 0.01, "{}", s0.reduction);
        let s1 = &out.steps[1];
        assert_eq!(s1.mv.item.index() + 1, 12); // paper's d12
        assert!((s1.reduction - 0.45).abs() < 0.01, "{}", s1.reduction);
        assert!((out.final_cost() - 22.29).abs() < 0.01, "{}", out.final_cost());
    }

    #[test]
    fn incremental_matches_reference_bit_for_bit() {
        for (n, k, seed) in [(40usize, 4usize, 11u64), (100, 6, 4), (120, 8, 1), (75, 5, 9)]
        {
            let db = dbcast_workload::WorkloadBuilder::new(n).seed(seed).build().unwrap();
            let rough = crate::Drp::new().allocate(&db, k).unwrap();
            let oracle = ReferenceCds::new().refine(&db, rough.clone()).unwrap();
            let fast = Cds::new().refine(&db, rough).unwrap();
            assert_eq!(oracle.steps.len(), fast.steps.len(), "n={n} k={k} seed={seed}");
            for (i, (a, b)) in oracle.steps.iter().zip(&fast.steps).enumerate() {
                assert_eq!(a.mv, b.mv, "step {i} move (n={n} k={k} seed={seed})");
                assert_eq!(
                    a.reduction.to_bits(),
                    b.reduction.to_bits(),
                    "step {i} reduction (n={n} k={k} seed={seed})"
                );
                assert_eq!(
                    a.cost_after.to_bits(),
                    b.cost_after.to_bits(),
                    "step {i} cost (n={n} k={k} seed={seed})"
                );
            }
            assert_eq!(oracle.allocation, fast.allocation);
            assert_eq!(oracle.converged, fast.converged);
        }
    }

    #[test]
    fn incremental_matches_reference_under_caps_and_thresholds() {
        let db = dbcast_workload::WorkloadBuilder::new(90).seed(13).build().unwrap();
        let rough = crate::Drp::new().allocate(&db, 6).unwrap();
        for cap in [0usize, 1, 3, 1000] {
            for threshold in [0.0, 1e-9, 1e-3] {
                let oracle = ReferenceCds::new()
                    .min_reduction(threshold)
                    .max_iterations(cap)
                    .refine(&db, rough.clone())
                    .unwrap();
                let fast = Cds::new()
                    .min_reduction(threshold)
                    .max_iterations(cap)
                    .refine(&db, rough.clone())
                    .unwrap();
                assert_eq!(oracle.steps, fast.steps, "cap={cap} threshold={threshold}");
                assert_eq!(oracle.converged, fast.converged);
                assert_eq!(oracle.allocation, fast.allocation);
            }
        }
    }

    #[test]
    fn convergence_trace_from_steps_is_monotone_non_increasing() {
        // The shared obs trace type, fed from a CDS outcome, must show a
        // non-increasing cost series — CDS only applies improving moves.
        use dbcast_obs::trace::{ConvergenceTrace, TraceEvent};
        let db = dbcast_workload::WorkloadBuilder::new(100).seed(4).build().unwrap();
        let rough = crate::Drp::new().allocate(&db, 6).unwrap();
        let out = Cds::new().refine(&db, rough).unwrap();
        let mut trace = ConvergenceTrace::new("alloc.cds");
        for (i, s) in out.steps.iter().enumerate() {
            trace.push(TraceEvent::CdsIteration {
                iteration: i + 1,
                item: s.mv.item.index(),
                from: s.mv.from.index(),
                to: s.mv.to.index(),
                reduction: s.reduction,
                cost_after: s.cost_after,
            });
        }
        assert!(!trace.is_empty(), "this workload admits improving moves");
        assert!(trace.is_monotone_non_increasing(1e-9));
        assert_eq!(trace.final_cost(), Some(out.final_cost()));
    }

    #[test]
    fn iteration_cap_limits_moves() {
        let db = dbcast_workload::WorkloadBuilder::new(120).seed(1).build().unwrap();
        let rough = crate::Drp::new().allocate(&db, 8).unwrap();
        let capped = Cds::new().max_iterations(1).refine(&db, rough.clone()).unwrap();
        assert!(capped.steps.len() <= 1);
        let full = Cds::new().refine(&db, rough).unwrap();
        assert!(full.final_cost() <= capped.final_cost() + 1e-12);
    }

    #[test]
    fn already_optimal_allocation_is_untouched() {
        // Two identical items on two channels is a local optimum.
        let db = Database::try_from_specs(vec![
            ItemSpec::new(0.5, 1.0),
            ItemSpec::new(0.5, 1.0),
        ])
        .unwrap();
        let alloc = Allocation::from_assignment(&db, 2, vec![0, 1]).unwrap();
        let out = Cds::new().refine(&db, alloc.clone()).unwrap();
        assert!(out.steps.is_empty());
        assert!(out.converged);
        assert_eq!(out.allocation, alloc);
    }

    #[test]
    fn cds_can_empty_a_channel() {
        // The paper's own example empties group 3 (Table 4(c)): CDS may
        // leave channels empty when that lowers cost.
        let db = dbcast_workload::paper::table2_profile();
        let out = Cds::new().refine(&db, paper_drp_allocation(&db)).unwrap();
        // After step 2, group 3 = {d1} only — and the run is still valid.
        out.allocation.validate(&db).unwrap();
    }

    #[test]
    #[should_panic(expected = "min_reduction")]
    fn negative_threshold_panics() {
        let _ = Cds::new().min_reduction(-1.0);
    }

    #[test]
    #[should_panic(expected = "min_reduction")]
    fn reference_negative_threshold_panics() {
        let _ = ReferenceCds::new().min_reduction(-1.0);
    }

    #[test]
    fn threshold_suppresses_tiny_improvements() {
        let db = dbcast_workload::WorkloadBuilder::new(40).seed(6).build().unwrap();
        let rough = crate::Drp::new().allocate(&db, 4).unwrap();
        let strict = Cds::new().min_reduction(1e3).refine(&db, rough).unwrap();
        // No move can beat a huge threshold, so nothing is applied.
        assert!(strict.steps.is_empty());
        assert!(strict.converged);
    }
}
