//! Mechanism **CDS — Cost-Diminishing Selection** (paper §3.2).
//!
//! CDS refines an existing allocation by steepest-descent over
//! single-item moves. Each iteration scans all `O(K²N)` candidate moves,
//! evaluates the closed-form cost reduction of Eq. 4 in O(1) per
//! candidate, applies the best strictly-improving move, and stops at a
//! local optimum.

use dbcast_model::{Allocation, ChannelId, ItemId, ModelError, Move};
use serde::{Deserialize, Serialize};

/// One applied CDS move, mirroring a row of the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdsStep {
    /// The applied relocation.
    pub mv: Move,
    /// The predicted-and-realized cost reduction `Δc_max`.
    pub reduction: f64,
    /// Total cost after applying the move.
    pub cost_after: f64,
}

/// The result of a CDS refinement run.
#[derive(Debug, Clone, PartialEq)]
pub struct CdsOutcome {
    /// The refined (locally optimal, unless capped) allocation.
    pub allocation: Allocation,
    /// Total cost before any move.
    pub initial_cost: f64,
    /// Every applied move, in order.
    pub steps: Vec<CdsStep>,
    /// `true` when CDS stopped because no improving move exists (a
    /// genuine local optimum); `false` when the iteration cap fired.
    pub converged: bool,
}

impl CdsOutcome {
    /// Total cost after the last applied move.
    pub fn final_cost(&self) -> f64 {
        self.steps.last().map_or(self.initial_cost, |s| s.cost_after)
    }
}

/// The CDS refiner.
///
/// The improvement threshold rejects moves whose Eq. 4 reduction is not
/// strictly above `min_reduction` (default `1e-9`); together with the
/// iteration cap this guarantees termination in the presence of
/// floating-point noise.
///
/// # Example
///
/// ```
/// use dbcast_alloc::{Cds, Drp};
/// use dbcast_model::ChannelAllocator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = dbcast_workload::paper::table2_profile();
/// let rough = Drp::new().allocate(&db, 5)?;
/// let refined = Cds::new().refine(&db, rough)?;
/// assert!(refined.converged);
/// assert!(refined.final_cost() <= refined.initial_cost);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cds {
    min_reduction: f64,
    max_iterations: usize,
}

impl Default for Cds {
    fn default() -> Self {
        Cds { min_reduction: 1e-9, max_iterations: 1_000_000 }
    }
}

impl Cds {
    /// Creates a refiner with default threshold (`1e-9`) and iteration
    /// cap (`1_000_000`).
    pub fn new() -> Self {
        Cds::default()
    }

    /// Sets the minimum strict improvement a move must deliver.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or not finite.
    pub fn min_reduction(mut self, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "min_reduction must be finite and >= 0"
        );
        self.min_reduction = threshold;
        self
    }

    /// Caps the number of applied moves (safety valve; the default is
    /// far beyond anything the paper's instances need).
    pub fn max_iterations(mut self, cap: usize) -> Self {
        self.max_iterations = cap;
        self
    }

    /// Finds the best single-item move, if any clears the threshold.
    ///
    /// The scan follows the paper's loop order: origin channel `p`
    /// ascending, items within `p` in id order, destination `q`
    /// ascending; strict `>` keeps the first of tied candidates.
    fn best_move(&self, alloc: &Allocation) -> Option<(Move, f64)> {
        let _scan = dbcast_obs::span!("alloc.cds.best_move");
        let k = alloc.channels();
        let mut best: Option<(Move, f64)> = None;
        let mut best_reduction = self.min_reduction;
        for (item, &p) in alloc.assignment().iter().enumerate() {
            for q in 0..k {
                if q == p {
                    continue;
                }
                let mv = Move {
                    item: ItemId::new(item),
                    from: ChannelId::new(p),
                    to: ChannelId::new(q),
                };
                let reduction =
                    alloc.move_reduction(mv).expect("scan only proposes consistent moves");
                if reduction > best_reduction {
                    best_reduction = reduction;
                    best = Some((mv, reduction));
                }
            }
        }
        best
    }

    /// Refines `alloc` to a local optimum over `db`'s cost surface.
    ///
    /// # Errors
    ///
    /// [`ModelError::AssignmentLength`] if `alloc` was not built over
    /// `db` (defensive; the refinement itself cannot fail).
    pub fn refine(
        &self,
        db: &dbcast_model::Database,
        mut alloc: Allocation,
    ) -> Result<CdsOutcome, ModelError> {
        if alloc.items() != db.len() {
            return Err(ModelError::AssignmentLength {
                expected: db.len(),
                actual: alloc.items(),
            });
        }
        let _refine_span = dbcast_obs::span!("alloc.cds.refine");
        let initial_cost = alloc.total_cost();
        let mut steps = Vec::new();
        let mut converged = false;
        let mut obs_trace = dbcast_obs::trace::ConvergenceTrace::new("alloc.cds");
        while steps.len() < self.max_iterations {
            match self.best_move(&alloc) {
                Some((mv, reduction)) => {
                    alloc.apply_move(mv)?;
                    let cost_after = alloc.total_cost();
                    steps.push(CdsStep { mv, reduction, cost_after });
                    dbcast_obs::counter!("alloc.cds.iterations").inc();
                    if dbcast_obs::enabled() {
                        obs_trace.push(dbcast_obs::trace::TraceEvent::CdsIteration {
                            iteration: steps.len(),
                            item: mv.item.index(),
                            from: mv.from.index(),
                            to: mv.to.index(),
                            reduction,
                            cost_after,
                        });
                    }
                }
                None => {
                    converged = true;
                    break;
                }
            }
        }
        obs_trace.record();
        // A capped run that would find no further move is still converged.
        if !converged && self.best_move(&alloc).is_none() {
            converged = true;
        }
        Ok(CdsOutcome { allocation: alloc, initial_cost, steps, converged })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_model::{Allocation, ChannelAllocator, Database, ItemSpec};

    fn paper_drp_allocation(db: &Database) -> Allocation {
        crate::Drp::new().allocate_traced(db, 5).unwrap().allocation
    }

    #[test]
    fn refine_rejects_mismatched_allocation() {
        let db = dbcast_workload::paper::table2_profile();
        let other = Database::try_from_specs(vec![ItemSpec::new(1.0, 1.0)]).unwrap();
        let alloc = Allocation::from_assignment(&other, 1, vec![0]).unwrap();
        assert!(Cds::new().refine(&db, alloc).is_err());
    }

    #[test]
    fn local_optimum_has_no_improving_move() {
        let db = dbcast_workload::paper::table2_profile();
        let out = Cds::new().refine(&db, paper_drp_allocation(&db)).unwrap();
        assert!(out.converged);
        assert!(Cds::new().best_move(&out.allocation).is_none());
    }

    #[test]
    fn cost_strictly_decreases_along_steps() {
        let db = dbcast_workload::WorkloadBuilder::new(100).seed(4).build().unwrap();
        let rough = crate::Drp::new().allocate(&db, 6).unwrap();
        let out = Cds::new().refine(&db, rough).unwrap();
        let mut prev = out.initial_cost;
        for s in &out.steps {
            assert!(s.cost_after < prev);
            assert!((prev - s.cost_after - s.reduction).abs() < 1e-6);
            prev = s.cost_after;
        }
    }

    #[test]
    fn reproduces_paper_table4() {
        // Table 4: initial cost 24.09; first move d10: group4 -> group2
        // with Δc = 0.95; second move d12: group3 -> group2 with
        // Δc = 0.45; local optimum at cost 22.29.
        let db = dbcast_workload::paper::table2_profile();
        let out = Cds::new().refine(&db, paper_drp_allocation(&db)).unwrap();
        assert!((out.initial_cost - 24.09).abs() < 0.01, "{}", out.initial_cost);
        assert!(out.steps.len() >= 2);
        let s0 = &out.steps[0];
        assert_eq!(s0.mv.item.index() + 1, 10); // paper's d10
        assert!((s0.reduction - 0.95).abs() < 0.01, "{}", s0.reduction);
        let s1 = &out.steps[1];
        assert_eq!(s1.mv.item.index() + 1, 12); // paper's d12
        assert!((s1.reduction - 0.45).abs() < 0.01, "{}", s1.reduction);
        assert!((out.final_cost() - 22.29).abs() < 0.01, "{}", out.final_cost());
    }

    #[test]
    fn convergence_trace_from_steps_is_monotone_non_increasing() {
        // The shared obs trace type, fed from a CDS outcome, must show a
        // non-increasing cost series — CDS only applies improving moves.
        use dbcast_obs::trace::{ConvergenceTrace, TraceEvent};
        let db = dbcast_workload::WorkloadBuilder::new(100).seed(4).build().unwrap();
        let rough = crate::Drp::new().allocate(&db, 6).unwrap();
        let out = Cds::new().refine(&db, rough).unwrap();
        let mut trace = ConvergenceTrace::new("alloc.cds");
        for (i, s) in out.steps.iter().enumerate() {
            trace.push(TraceEvent::CdsIteration {
                iteration: i + 1,
                item: s.mv.item.index(),
                from: s.mv.from.index(),
                to: s.mv.to.index(),
                reduction: s.reduction,
                cost_after: s.cost_after,
            });
        }
        assert!(!trace.is_empty(), "this workload admits improving moves");
        assert!(trace.is_monotone_non_increasing(1e-9));
        assert_eq!(trace.final_cost(), Some(out.final_cost()));
    }

    #[test]
    fn iteration_cap_limits_moves() {
        let db = dbcast_workload::WorkloadBuilder::new(120).seed(1).build().unwrap();
        let rough = crate::Drp::new().allocate(&db, 8).unwrap();
        let capped = Cds::new().max_iterations(1).refine(&db, rough.clone()).unwrap();
        assert!(capped.steps.len() <= 1);
        let full = Cds::new().refine(&db, rough).unwrap();
        assert!(full.final_cost() <= capped.final_cost() + 1e-12);
    }

    #[test]
    fn already_optimal_allocation_is_untouched() {
        // Two identical items on two channels is a local optimum.
        let db = Database::try_from_specs(vec![
            ItemSpec::new(0.5, 1.0),
            ItemSpec::new(0.5, 1.0),
        ])
        .unwrap();
        let alloc = Allocation::from_assignment(&db, 2, vec![0, 1]).unwrap();
        let out = Cds::new().refine(&db, alloc.clone()).unwrap();
        assert!(out.steps.is_empty());
        assert!(out.converged);
        assert_eq!(out.allocation, alloc);
    }

    #[test]
    fn cds_can_empty_a_channel() {
        // The paper's own example empties group 3 (Table 4(c)): CDS may
        // leave channels empty when that lowers cost.
        let db = dbcast_workload::paper::table2_profile();
        let out = Cds::new().refine(&db, paper_drp_allocation(&db)).unwrap();
        // After step 2, group 3 = {d1} only — and the run is still valid.
        out.allocation.validate(&db).unwrap();
    }

    #[test]
    #[should_panic(expected = "min_reduction")]
    fn negative_threshold_panics() {
        let _ = Cds::new().min_reduction(-1.0);
    }

    #[test]
    fn threshold_suppresses_tiny_improvements() {
        let db = dbcast_workload::WorkloadBuilder::new(40).seed(6).build().unwrap();
        let rough = crate::Drp::new().allocate(&db, 4).unwrap();
        let strict = Cds::new().min_reduction(1e3).refine(&db, rough).unwrap();
        // No move can beat a huge threshold, so nothing is applied.
        assert!(strict.steps.is_empty());
        assert!(strict.converged);
    }
}
