//! Online maintenance of a broadcast program: insertions, removals and
//! popularity updates with *localized* CDS repair.
//!
//! The paper generates programs offline from a static database. A
//! production server faces a drifting catalogue: items appear (breaking
//! news), disappear (expired content) and change popularity. Recomputing
//! DRP-CDS from scratch on every change is cheap but unnecessary —
//! single-item changes disturb the cost surface locally, and a bounded
//! number of steepest-descent moves restores a local optimum.
//!
//! [`DynamicBroadcast`] owns a mutable catalogue of `(weight, size)`
//! items (weights are raw popularity counts — the cost function is
//! scale-invariant in the sense that scaling all weights scales every
//! candidate allocation's cost equally, so normalization can wait until
//! a snapshot is taken) plus a channel assignment, and keeps per-channel
//! aggregates incrementally.

use std::collections::BTreeMap;

use dbcast_model::{
    AllocError, Allocation, ChannelAllocator, Database, ItemSpec, ModelError,
};
use serde::{Deserialize, Serialize};

/// A handle to an item in a [`DynamicBroadcast`] catalogue.
///
/// Handles are never reused; removing an item invalidates its handle
/// permanently.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ItemHandle(u64);

impl std::fmt::Display for ItemHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Statistics of one maintenance operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct RepairStats {
    /// Steepest-descent moves applied during repair.
    pub moves: usize,
    /// Total cost reduction the repair achieved.
    pub reduction: f64,
}

/// The typed result of one bounded repair pass.
///
/// A repair either *converges* (no single-item move improves the cost —
/// the assignment is a CDS local optimum) or *exhausts its budget* with
/// improving moves still on the table. Callers that previously assumed
/// "repair ran" meant "local optimum reached" can now tell the two
/// apart; a budget-exhausted repair leaves cost on the floor that a
/// follow-up pass (or a full re-optimization) could still claim.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepairOutcome {
    /// The repair reached a local optimum within its budget.
    Converged(RepairStats),
    /// The move budget ran out with at least one improving move left.
    BudgetExhausted {
        /// What the truncated repair still achieved.
        stats: RepairStats,
        /// The cost reduction of the best single move still available —
        /// a lower bound on the further gain a continued repair would
        /// realize (the true remaining gain can only be larger, since
        /// steepest descent compounds).
        remaining_gain_bound: f64,
    },
}

impl RepairOutcome {
    /// The stats of the moves that were applied, whichever way the
    /// repair ended.
    pub fn stats(&self) -> RepairStats {
        match *self {
            RepairOutcome::Converged(stats) => stats,
            RepairOutcome::BudgetExhausted { stats, .. } => stats,
        }
    }

    /// Whether the repair reached a local optimum.
    pub fn converged(&self) -> bool {
        matches!(self, RepairOutcome::Converged(_))
    }
}

/// Errors from dynamic maintenance.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DynamicError {
    /// The handle does not (or no longer does) name an item.
    UnknownHandle(ItemHandle),
    /// A weight or size is not finite and strictly positive.
    InvalidFeature {
        /// `"weight"` or `"size"`.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The catalogue is empty (snapshot/allocation impossible).
    Empty,
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::UnknownHandle(h) => write!(f, "unknown item handle {h}"),
            DynamicError::InvalidFeature { what, value } => {
                write!(f, "invalid {what} {value}; must be finite and > 0")
            }
            DynamicError::Empty => write!(f, "dynamic catalogue is empty"),
        }
    }
}

impl std::error::Error for DynamicError {}

/// A mutable broadcast catalogue with an incrementally maintained
/// channel assignment.
///
/// # Example
///
/// ```
/// use dbcast_alloc::DynamicBroadcast;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut live = DynamicBroadcast::new(3);
/// let hot = live.insert(100.0, 2.0)?;   // popular, small
/// let _cold = live.insert(5.0, 40.0)?;  // niche, bulky
/// live.update_weight(hot, 250.0)?;      // popularity spike
/// live.remove(hot)?;
/// assert_eq!(live.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicBroadcast {
    channels: usize,
    next_handle: u64,
    /// Catalogue: handle -> (weight, size, channel).
    items: BTreeMap<ItemHandle, (f64, f64, usize)>,
    /// Per-channel aggregates (Σ weight, Σ size).
    freq: Vec<f64>,
    size: Vec<f64>,
    /// Repair budget per operation (max moves).
    repair_budget: usize,
}

impl DynamicBroadcast {
    /// Creates an empty catalogue over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "at least one channel required");
        DynamicBroadcast {
            channels,
            next_handle: 0,
            items: BTreeMap::new(),
            freq: vec![0.0; channels],
            size: vec![0.0; channels],
            repair_budget: 8,
        }
    }

    /// Seeds a dynamic catalogue from an existing database and
    /// allocation (e.g. an offline DRP-CDS result), returning the
    /// handles in database id order.
    ///
    /// # Errors
    ///
    /// [`ModelError::AssignmentLength`] if the allocation does not
    /// cover the database.
    pub fn from_allocation(
        db: &Database,
        alloc: &Allocation,
    ) -> Result<(Self, Vec<ItemHandle>), ModelError> {
        if alloc.items() != db.len() {
            return Err(ModelError::AssignmentLength {
                expected: db.len(),
                actual: alloc.items(),
            });
        }
        let mut live = DynamicBroadcast::new(alloc.channels());
        let mut handles = Vec::with_capacity(db.len());
        for (item, &ch) in alloc.assignment().iter().enumerate() {
            let d = &db.items()[item];
            let h = live.insert_on(d.frequency(), d.size(), ch);
            handles.push(h);
        }
        Ok((live, handles))
    }

    /// Sets the per-operation repair budget (steepest-descent moves).
    pub fn with_repair_budget(mut self, moves: usize) -> Self {
        self.repair_budget = moves;
        self
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Current cost `Σ F_i Z_i` over raw weights.
    pub fn cost(&self) -> f64 {
        self.freq.iter().zip(&self.size).map(|(f, z)| f * z).sum()
    }

    /// The channel currently carrying `handle`.
    ///
    /// # Errors
    ///
    /// [`DynamicError::UnknownHandle`].
    pub fn channel_of(&self, handle: ItemHandle) -> Result<usize, DynamicError> {
        self.items
            .get(&handle)
            .map(|&(_, _, ch)| ch)
            .ok_or(DynamicError::UnknownHandle(handle))
    }

    fn validate_feature(what: &'static str, value: f64) -> Result<(), DynamicError> {
        if !value.is_finite() || value <= 0.0 {
            return Err(DynamicError::InvalidFeature { what, value });
        }
        Ok(())
    }

    fn insert_on(&mut self, weight: f64, size: f64, channel: usize) -> ItemHandle {
        let handle = ItemHandle(self.next_handle);
        self.next_handle += 1;
        self.items.insert(handle, (weight, size, channel));
        self.freq[channel] += weight;
        self.size[channel] += size;
        handle
    }

    /// Inserts an item, placing it greedily on the channel where it
    /// increases cost least, then runs a localized repair.
    ///
    /// # Errors
    ///
    /// [`DynamicError::InvalidFeature`] for bad weight/size.
    pub fn insert(&mut self, weight: f64, size: f64) -> Result<ItemHandle, DynamicError> {
        Self::validate_feature("weight", weight)?;
        Self::validate_feature("size", size)?;
        // Greedy placement: Δcost = F·z + Z·w + w·z.
        let best = (0..self.channels)
            .min_by(|&a, &b| {
                let da = self.freq[a] * size + self.size[a] * weight;
                let db = self.freq[b] * size + self.size[b] * weight;
                da.total_cmp(&db)
            })
            .expect("channels > 0");
        let handle = self.insert_on(weight, size, best);
        dbcast_obs::counter!("alloc.dynamic.inserts").inc();
        self.repair();
        Ok(handle)
    }

    /// Removes an item and repairs.
    ///
    /// # Errors
    ///
    /// [`DynamicError::UnknownHandle`].
    pub fn remove(&mut self, handle: ItemHandle) -> Result<RepairOutcome, DynamicError> {
        let (w, z, ch) =
            self.items.remove(&handle).ok_or(DynamicError::UnknownHandle(handle))?;
        self.freq[ch] -= w;
        self.size[ch] -= z;
        dbcast_obs::counter!("alloc.dynamic.removes").inc();
        Ok(self.repair())
    }

    /// Updates an item's popularity weight and repairs.
    ///
    /// # Errors
    ///
    /// [`DynamicError::UnknownHandle`] / [`DynamicError::InvalidFeature`].
    pub fn update_weight(
        &mut self,
        handle: ItemHandle,
        weight: f64,
    ) -> Result<RepairOutcome, DynamicError> {
        Self::validate_feature("weight", weight)?;
        let entry =
            self.items.get_mut(&handle).ok_or(DynamicError::UnknownHandle(handle))?;
        let (old_w, _z, ch) = *entry;
        entry.0 = weight;
        self.freq[ch] += weight - old_w;
        dbcast_obs::counter!("alloc.dynamic.weight_updates").inc();
        Ok(self.repair())
    }

    /// Builds an incremental best-move engine over the live catalogue
    /// (dense index = handle rank, i.e. `BTreeMap` iteration order —
    /// exactly the order the old exhaustive scan visited). The engine
    /// takes over the *evolved* per-channel aggregates so every cached
    /// reduction is bit-identical to what a direct scan would compute.
    fn engine(&self) -> crate::engine::BestMoveEngine {
        let w: Vec<f64> = self.items.values().map(|&(w, _, _)| w).collect();
        let z: Vec<f64> = self.items.values().map(|&(_, z, _)| z).collect();
        let assign: Vec<u32> = self.items.values().map(|&(_, _, ch)| ch as u32).collect();
        crate::engine::BestMoveEngine::new(
            self.channels,
            1e-12,
            w,
            z,
            assign,
            self.freq.clone(),
            self.size.clone(),
        )
    }

    /// Runs bounded steepest-descent repair (at most the configured
    /// budget of moves); says whether it converged or ran out of budget
    /// with improving moves still available.
    ///
    /// Repair is driven by the incremental
    /// [`BestMoveEngine`](crate::engine::BestMoveEngine): one `O(NK)`
    /// scan to seed the move cache, then `O(N)` amortized per applied
    /// move instead of a fresh full scan each step. The move sequence is
    /// bit-for-bit what the exhaustive rescan-per-step descent picks.
    pub fn repair(&mut self) -> RepairOutcome {
        let _span = dbcast_obs::span!("alloc.dynamic.repair");
        let mut stats = RepairStats::default();
        let mut engine = self.engine();
        let outcome = loop {
            match engine.best() {
                None => break RepairOutcome::Converged(stats),
                Some(em) if stats.moves >= self.repair_budget => {
                    break RepairOutcome::BudgetExhausted {
                        stats,
                        remaining_gain_bound: em.reduction,
                    };
                }
                Some(em) => {
                    engine.apply_best();
                    stats.moves += 1;
                    stats.reduction += em.reduction;
                }
            }
        };
        if stats.moves > 0 {
            // Write the engine's state back: assignments in handle-rank
            // order, aggregates copied verbatim (the engine evolved them
            // with the exact ops the in-place descent used to apply).
            for (entry, &a) in self.items.values_mut().zip(engine.assignment()) {
                entry.2 = a as usize;
            }
            self.freq.copy_from_slice(engine.channel_freq());
            self.size.copy_from_slice(engine.channel_size());
        }
        dbcast_obs::counter!("alloc.dynamic.repair_moves").add(stats.moves as u64);
        if !outcome.converged() {
            dbcast_obs::counter!("alloc.dynamic.budget_exhausted").inc();
        }
        outcome
    }

    /// Materializes the current state as a normalized [`Database`] plus
    /// [`Allocation`] (handles map to database ids in handle order).
    ///
    /// # Errors
    ///
    /// [`DynamicError::Empty`] when no items are live.
    pub fn snapshot(&self) -> Result<(Database, Allocation), DynamicError> {
        if self.items.is_empty() {
            return Err(DynamicError::Empty);
        }
        let specs: Vec<ItemSpec> =
            self.items.values().map(|&(w, z, _)| ItemSpec::new(w, z)).collect();
        let assignment: Vec<usize> = self.items.values().map(|&(_, _, ch)| ch).collect();
        let db = Database::try_from_specs(specs).expect("live features are validated");
        let alloc = Allocation::from_assignment(&db, self.channels, assignment)
            .expect("assignment tracks the catalogue");
        Ok((db, alloc))
    }

    /// Full re-optimization: rebuilds the assignment with DRP-CDS from
    /// scratch (the offline path), keeping handles stable. Returns the
    /// cost improvement over the maintained assignment.
    ///
    /// # Errors
    ///
    /// [`DynamicError::Empty`] when no items are live. `K > N` keeps
    /// the maintained assignment (DRP requires non-empty channels) and
    /// reports zero improvement.
    pub fn reoptimize(&mut self) -> Result<f64, DynamicError> {
        let (db, _) = self.snapshot()?;
        let before = self.cost();
        let fresh = match crate::DrpCds::new().allocate(&db, self.channels) {
            Ok(a) => a,
            Err(AllocError::Infeasible { .. }) => return Ok(0.0),
            Err(_) => return Ok(0.0),
        };
        // Handles iterate in the same order snapshot() used.
        let handles: Vec<ItemHandle> = self.items.keys().copied().collect();
        for (pos, h) in handles.iter().enumerate() {
            let target = fresh.assignment()[pos];
            let entry = self.items.get_mut(h).expect("live handle");
            let (w, z, cur) = *entry;
            if cur != target {
                entry.2 = target;
                self.freq[cur] -= w;
                self.size[cur] -= z;
                self.freq[target] += w;
                self.size[target] += z;
            }
        }
        Ok(before - self.cost())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_workload::WorkloadBuilder;

    #[test]
    fn insert_remove_roundtrip_preserves_aggregates() {
        let mut live = DynamicBroadcast::new(2);
        let a = live.insert(10.0, 2.0).unwrap();
        let b = live.insert(5.0, 8.0).unwrap();
        assert_eq!(live.len(), 2);
        live.remove(a).unwrap();
        live.remove(b).unwrap();
        assert!(live.is_empty());
        assert!(live.cost().abs() < 1e-12);
        assert!(live.freq.iter().all(|f| f.abs() < 1e-12));
        assert!(live.size.iter().all(|z| z.abs() < 1e-12));
    }

    #[test]
    fn handles_are_never_reused() {
        let mut live = DynamicBroadcast::new(2);
        let a = live.insert(1.0, 1.0).unwrap();
        live.remove(a).unwrap();
        let b = live.insert(1.0, 1.0).unwrap();
        assert_ne!(a, b);
        assert!(matches!(live.remove(a), Err(DynamicError::UnknownHandle(_))));
    }

    #[test]
    fn validation_rejects_bad_features() {
        let mut live = DynamicBroadcast::new(2);
        assert!(live.insert(0.0, 1.0).is_err());
        assert!(live.insert(1.0, f64::NAN).is_err());
        let h = live.insert(1.0, 1.0).unwrap();
        assert!(live.update_weight(h, -3.0).is_err());
    }

    #[test]
    fn repair_reaches_cds_quality_incrementally() {
        // Feed a workload item by item; the maintained cost should land
        // within a few percent of offline DRP-CDS on the same snapshot.
        use dbcast_model::ChannelAllocator;
        let db = WorkloadBuilder::new(60).seed(17).build().unwrap();
        let mut live = DynamicBroadcast::new(5).with_repair_budget(16);
        for d in db.iter() {
            live.insert(d.frequency(), d.size()).unwrap();
        }
        let (snap_db, snap_alloc) = live.snapshot().unwrap();
        let offline = crate::DrpCds::new().allocate(&snap_db, 5).unwrap();
        let online_cost = snap_alloc.total_cost();
        let offline_cost = offline.total_cost();
        assert!(
            online_cost <= offline_cost * 1.10,
            "online {online_cost} should be within 10% of offline {offline_cost}"
        );
    }

    #[test]
    fn weight_spike_triggers_migration() {
        let mut live = DynamicBroadcast::new(2).with_repair_budget(32);
        // A crowd of medium items and one that will spike.
        let mut handles = Vec::new();
        for i in 0..20 {
            handles.push(live.insert(1.0, 1.0 + (i % 5) as f64).unwrap());
        }
        let spiker = handles[7];
        let before_cost = live.cost();
        live.update_weight(spiker, 200.0).unwrap();
        // Repair ran; the maintained state should be a local optimum:
        let outcome = live.repair();
        assert!(outcome.converged());
        assert_eq!(outcome.stats().moves, 0, "second repair should find nothing");
        assert!(live.cost() > before_cost); // spike raises cost overall
    }

    #[test]
    fn exhausted_budget_is_reported_with_a_gain_bound() {
        // Budget 0: any improving move at all must surface as
        // BudgetExhausted with a positive remaining-gain bound.
        let mut live = DynamicBroadcast::new(2).with_repair_budget(0);
        // Two heavy items forced onto the same channel leave an obvious
        // improving move (shift one to the empty channel).
        live.insert_on(100.0, 10.0, 0);
        live.insert_on(100.0, 10.0, 0);
        let outcome = live.repair();
        match outcome {
            RepairOutcome::BudgetExhausted { stats, remaining_gain_bound } => {
                assert_eq!(stats.moves, 0);
                assert!(remaining_gain_bound > 0.0);
            }
            RepairOutcome::Converged(_) => panic!("expected budget exhaustion"),
        }
        // A generous budget on the same state converges and realizes at
        // least the bound that was promised.
        let before = live.cost();
        let mut live = live.with_repair_budget(16);
        let finished = live.repair();
        assert!(finished.converged());
        assert!(finished.stats().reduction >= 0.0);
        assert!(live.cost() <= before);
    }

    /// The pre-engine repair loop, verbatim: full exhaustive scan per
    /// step over handles in `BTreeMap` order, threshold `1e-12`, strict
    /// `>` keeping the first of ties. The engine-backed [`repair`] must
    /// reproduce this descent bit-for-bit.
    fn reference_repair(live: &mut DynamicBroadcast) -> RepairOutcome {
        fn scan(live: &DynamicBroadcast) -> Option<(ItemHandle, usize, f64)> {
            let mut best: Option<(ItemHandle, usize, f64)> = None;
            for (&h, &(w, z, p)) in &live.items {
                for q in 0..live.channels {
                    if q == p {
                        continue;
                    }
                    let delta = w * (live.size[p] - live.size[q])
                        + z * (live.freq[p] - live.freq[q])
                        - 2.0 * w * z;
                    if delta > 1e-12 && best.is_none_or(|(_, _, d)| delta > d) {
                        best = Some((h, q, delta));
                    }
                }
            }
            best
        }
        let mut stats = RepairStats::default();
        loop {
            match scan(live) {
                None => break RepairOutcome::Converged(stats),
                Some((_, _, delta)) if stats.moves >= live.repair_budget => {
                    break RepairOutcome::BudgetExhausted {
                        stats,
                        remaining_gain_bound: delta,
                    };
                }
                Some((h, q, delta)) => {
                    let entry = live.items.get_mut(&h).expect("handle from scan");
                    let (w, z, p) = *entry;
                    entry.2 = q;
                    live.freq[p] -= w;
                    live.size[p] -= z;
                    live.freq[q] += w;
                    live.size[q] += z;
                    stats.moves += 1;
                    stats.reduction += delta;
                }
            }
        }
    }

    #[test]
    fn engine_repair_matches_reference_descent_bit_for_bit() {
        for (n, k, budget, seed) in
            [(40usize, 4usize, 64usize, 21u64), (70, 6, 3, 22), (25, 3, 0, 23)]
        {
            let db = WorkloadBuilder::new(n).seed(seed).build().unwrap();
            // Deliberately bad start: everything piled on channel 0.
            let mut fast = DynamicBroadcast::new(k).with_repair_budget(budget);
            for d in db.iter() {
                fast.insert_on(d.frequency(), d.size(), 0);
            }
            let mut oracle = fast.clone();
            let got = fast.repair();
            let want = reference_repair(&mut oracle);
            match (got, want) {
                (RepairOutcome::Converged(a), RepairOutcome::Converged(b)) => {
                    assert_eq!(a.moves, b.moves);
                    assert_eq!(a.reduction.to_bits(), b.reduction.to_bits());
                }
                (
                    RepairOutcome::BudgetExhausted { stats: a, remaining_gain_bound: ga },
                    RepairOutcome::BudgetExhausted { stats: b, remaining_gain_bound: gb },
                ) => {
                    assert_eq!(a.moves, b.moves);
                    assert_eq!(a.reduction.to_bits(), b.reduction.to_bits());
                    assert_eq!(ga.to_bits(), gb.to_bits());
                }
                (got, want) => panic!("outcome mismatch: {got:?} vs {want:?}"),
            }
            assert_eq!(fast.items, oracle.items, "n={n} k={k} budget={budget}");
            for ch in 0..k {
                assert_eq!(fast.freq[ch].to_bits(), oracle.freq[ch].to_bits());
                assert_eq!(fast.size[ch].to_bits(), oracle.size[ch].to_bits());
            }
        }
    }

    #[test]
    fn snapshot_matches_internal_aggregates() {
        let db = WorkloadBuilder::new(30).seed(18).build().unwrap();
        let offline = {
            use dbcast_model::ChannelAllocator;
            crate::DrpCds::new().allocate(&db, 4).unwrap()
        };
        let (live, handles) = DynamicBroadcast::from_allocation(&db, &offline).unwrap();
        assert_eq!(handles.len(), 30);
        let (snap_db, snap_alloc) = live.snapshot().unwrap();
        assert_eq!(snap_db.len(), 30);
        assert!((snap_alloc.total_cost() - live.cost()).abs() < 1e-9);
        snap_alloc.validate(&snap_db).unwrap();
    }

    #[test]
    fn reoptimize_never_increases_cost() {
        let mut live = DynamicBroadcast::new(4).with_repair_budget(2);
        let mut state = 5u64;
        for _ in 0..50 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let w = ((state >> 33) % 100 + 1) as f64;
            let z = ((state >> 17) % 50 + 1) as f64;
            live.insert(w, z).unwrap();
        }
        let before = live.cost();
        let gain = live.reoptimize().unwrap();
        assert!(gain >= -1e-6);
        assert!((before - live.cost() - gain).abs() < 1e-6);
    }

    #[test]
    fn empty_snapshot_errors() {
        let live = DynamicBroadcast::new(2);
        assert!(matches!(live.snapshot(), Err(DynamicError::Empty)));
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let _ = DynamicBroadcast::new(0);
    }
}
