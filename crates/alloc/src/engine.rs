//! The incremental best-move engine behind [`Cds`](crate::Cds) and
//! [`DynamicBroadcast`](crate::DynamicBroadcast) repair.
//!
//! The exhaustive CDS scan re-evaluates all `O(KN)` candidate moves per
//! iteration even though Eq. 4's reduction
//! `Δc = f_x(Z_p − Z_q) + z_x(F_p − F_q) − 2 f_x z_x`
//! only reads the two touched groups' aggregates. [`BestMoveEngine`]
//! instead maintains, per item, the best and second-best destination
//! under the reference scan's exact ordering (larger reduction first,
//! ties to the smaller channel id), and a global running best (ties to
//! the smaller item id). After applying the move `(x*: p → q*)` only
//! candidates touching `p` or `q*` can change, so one `O(N)` pass
//! repairs the caches:
//!
//! * items on `p` or `q*` (and `x*` itself) rescan all `K` destinations
//!   — their source aggregates changed, which shifts *every* candidate;
//! * destination `p` improved for everyone else (both aggregates
//!   strictly shrank), so it is merged against the cached top-2 in O(1);
//! * destination `q*` worsened; a cached entry pointing at it is
//!   re-evaluated and, when it falls behind candidates we can no longer
//!   bound, the second-best slot is *invalidated* rather than repaired.
//!   A later demotion with an invalid runner-up triggers the full
//!   rescan lazily.
//!
//! Every cached reduction is produced by the same canonical expression
//! the exhaustive scan uses, over aggregate values maintained by the
//! same update operations, so the engine's move sequence is
//! **bit-for-bit identical** to the reference scan's — the differential
//! battery in `dbcast-conformance` pins that equivalence.
//!
//! With the `par` feature the init scan and the per-move pass split
//! across `std::thread::scope` threads in fixed item chunks; chunk
//! results merge in ascending item order, so the outcome is identical
//! to the serial pass (there is no rayon in this workspace's vendored
//! dependency set).

/// Sentinel channel id: an empty candidate slot. In the second-best
/// slot it means "unknown" — either fewer than two destinations exist
/// or lazy invalidation discarded the runner-up.
const NONE_CH: u32 = u32::MAX;

/// Item count below which the `par` feature stays serial (thread spawn
/// would dominate). Tunable via [`BestMoveEngine::set_par_min`].
const PAR_MIN_ITEMS: usize = 16_384;

/// One move selected (and possibly applied) by the engine, in dense
/// item-index coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineMove {
    /// The item to relocate.
    pub item: usize,
    /// Its current channel.
    pub from: usize,
    /// The destination channel.
    pub to: usize,
    /// The Eq. 4 reduction, bit-identical to the exhaustive scan's.
    pub reduction: f64,
}

/// Read-only column view shared by the scan kernels (and across
/// threads under the `par` feature).
struct Cols<'a> {
    channels: usize,
    f: &'a [f64],
    z: &'a [f64],
    t2fz: &'a [f64],
    assign: &'a [u32],
    freq: &'a [f64],
    size: &'a [f64],
}

/// Canonical Eq. 4 evaluation — the exact expression shape
/// `f·(Z_p − Z_q) + z·(F_p − F_q) − 2fz` the exhaustive scan computes
/// (`2fz` is precomputed once per item; IEEE multiplication is
/// deterministic, so the bits match).
#[inline]
fn eval(c: &Cols<'_>, x: usize, q: usize) -> f64 {
    let p = c.assign[x] as usize;
    c.f[x] * (c.size[p] - c.size[q]) + c.z[x] * (c.freq[p] - c.freq[q]) - c.t2fz[x]
}

/// The reference scan's candidate order: larger reduction wins, equal
/// reductions go to the smaller channel id (ascending `q` with strict
/// `>` keeps the first).
#[inline]
fn lex_gt(r: f64, q: u32, best_r: f64, best_q: u32) -> bool {
    r > best_r || (r == best_r && q < best_q)
}

/// Exact top-2 destinations for item `x` over all `K` channels.
#[inline]
fn rescan(c: &Cols<'_>, x: usize) -> (u32, f64, u32, f64) {
    let p = c.assign[x] as usize;
    let (fx, zx, t) = (c.f[x], c.z[x], c.t2fz[x]);
    let (fp, zp) = (c.freq[p], c.size[p]);
    let mut b1q = NONE_CH;
    let mut b1r = f64::NEG_INFINITY;
    let mut b2q = NONE_CH;
    let mut b2r = f64::NEG_INFINITY;
    for q in 0..c.channels {
        if q == p {
            continue;
        }
        let r = fx * (zp - c.size[q]) + zx * (fp - c.freq[q]) - t;
        if lex_gt(r, q as u32, b1r, b1q) {
            b2q = b1q;
            b2r = b1r;
            b1q = q as u32;
            b1r = r;
        } else if lex_gt(r, q as u32, b2r, b2q) {
            b2q = q as u32;
            b2r = r;
        }
    }
    (b1q, b1r, b2q, b2r)
}

/// Initial scan over items `lo..lo + b1q.len()`: fills the candidate
/// chunks and returns `(local_best_item, local_best_r)` with
/// `local_best_r` seeded at `threshold` (strict `>`, so the earliest
/// item wins ties, matching the reference's item-ascending scan).
fn init_range(
    c: &Cols<'_>,
    lo: usize,
    b1q: &mut [u32],
    b1r: &mut [f64],
    b2q: &mut [u32],
    b2r: &mut [f64],
    threshold: f64,
) -> (usize, f64) {
    let mut gi = usize::MAX;
    let mut gr = threshold;
    for j in 0..b1q.len() {
        let x = lo + j;
        let (q1, r1, q2, r2) = rescan(c, x);
        b1q[j] = q1;
        b1r[j] = r1;
        b2q[j] = q2;
        b2r[j] = r2;
        if q1 != NONE_CH && r1 > gr {
            gr = r1;
            gi = x;
        }
    }
    (gi, gr)
}

/// Post-move cache repair over items `lo..lo + b1q.len()` after
/// applying `(moved: p → qs)` (aggregates already updated). Returns
/// `(local_best_item, local_best_r, rescans)`.
#[allow(clippy::too_many_arguments)]
fn update_range(
    c: &Cols<'_>,
    lo: usize,
    b1q: &mut [u32],
    b1r: &mut [f64],
    b2q: &mut [u32],
    b2r: &mut [f64],
    moved: usize,
    p: u32,
    qs: u32,
    threshold: f64,
) -> (usize, f64, u64) {
    let mut gi = usize::MAX;
    let mut gr = threshold;
    let mut rescans = 0u64;
    let pi = p as usize;
    for j in 0..b1q.len() {
        let x = lo + j;
        let cx = c.assign[x];
        let q1 = b1q[j];
        let q2 = b2q[j];
        if x == moved || cx == p || cx == qs || (q1 == qs && q2 == NONE_CH) {
            // Source aggregates changed (every candidate shifted), or
            // the cached best worsened with no exact runner-up left to
            // bound the untouched candidates: recompute exactly.
            let (a1, v1, a2, v2) = rescan(c, x);
            b1q[j] = a1;
            b1r[j] = v1;
            b2q[j] = a2;
            b2r[j] = v2;
            rescans += 1;
        } else if q1 != NONE_CH {
            let touched = q1 == p || q1 == qs || (q2 != NONE_CH && (q2 == p || q2 == qs));
            if !touched {
                // Fast path (the overwhelmingly common case): the
                // cached pair kept its exact values, and `p` — the only
                // destination that improved — is the sole candidate
                // that can break into the top-2. One evaluation decides.
                let rp = eval(c, x, pi);
                if q2 != NONE_CH {
                    if lex_gt(rp, p, b2r[j], q2) {
                        if lex_gt(rp, p, b1r[j], q1) {
                            b2q[j] = q1;
                            b2r[j] = b1r[j];
                            b1q[j] = p;
                            b1r[j] = rp;
                        } else {
                            b2q[j] = p;
                            b2r[j] = rp;
                        }
                    }
                } else if lex_gt(rp, p, b1r[j], q1) {
                    // The dethroned best was strictly lex-above every
                    // other destination and none of them moved, so the
                    // promotion recovers an exact runner-up.
                    b2q[j] = q1;
                    b2r[j] = b1r[j];
                    b1q[j] = p;
                    b1r[j] = rp;
                }
            } else {
                // General merge: revalue the cached entries that point
                // at a touched channel (aggregate changes are monotone
                // per destination, so re-evaluation is exact), add `p`,
                // and rank. The pre-move runner-up entry is a strict
                // lex upper bound on every untouched third candidate —
                // the merged top is therefore exact, and the merged
                // second is kept only when it clears that bound.
                let (bq_pre, br_pre) = (q2, b2r[j]);
                let mut eq = [NONE_CH; 3];
                let mut er = [f64::NEG_INFINITY; 3];
                eq[0] = q1;
                er[0] = if q1 == p || q1 == qs { eval(c, x, q1 as usize) } else { b1r[j] };
                let mut m = 1;
                if q2 != NONE_CH {
                    eq[1] = q2;
                    er[1] =
                        if q2 == p || q2 == qs { eval(c, x, q2 as usize) } else { b2r[j] };
                    m = 2;
                }
                if q1 != p && q2 != p {
                    eq[m] = p;
                    er[m] = eval(c, x, pi);
                    m += 1;
                }
                let mut ti = 0;
                for i in 1..m {
                    if lex_gt(er[i], eq[i], er[ti], eq[ti]) {
                        ti = i;
                    }
                }
                let mut si = usize::MAX;
                for i in 0..m {
                    if i != ti && (si == usize::MAX || lex_gt(er[i], eq[i], er[si], eq[si]))
                    {
                        si = i;
                    }
                }
                b1q[j] = eq[ti];
                b1r[j] = er[ti];
                let keep = si != usize::MAX
                    && bq_pre != NONE_CH
                    && (er[si] > br_pre || (er[si] == br_pre && eq[si] <= bq_pre));
                if keep {
                    b2q[j] = eq[si];
                    b2r[j] = er[si];
                } else {
                    b2q[j] = NONE_CH;
                    b2r[j] = f64::NEG_INFINITY;
                }
            }
        }
        if b1q[j] != NONE_CH && b1r[j] > gr {
            gr = b1r[j];
            gi = x;
        }
    }
    (gi, gr, rescans)
}

/// Incrementally maintained best-move state over raw `(f, z)` columns,
/// a dense `item → channel` assignment and per-channel `(F, Z)`
/// aggregates.
///
/// The engine is deliberately representation-agnostic: CDS feeds it
/// normalized frequencies from an [`Allocation`](dbcast_model::Allocation),
/// dynamic repair feeds it raw popularity weights — both get the exact
/// move sequence their exhaustive scan would have produced, because the
/// caller hands over the *evolved* aggregate values rather than letting
/// the engine recompute them.
pub struct BestMoveEngine {
    channels: usize,
    threshold: f64,
    f: Vec<f64>,
    z: Vec<f64>,
    t2fz: Vec<f64>,
    assign: Vec<u32>,
    freq: Vec<f64>,
    size: Vec<f64>,
    b1q: Vec<u32>,
    b1r: Vec<f64>,
    b2q: Vec<u32>,
    b2r: Vec<f64>,
    best_item: usize,
    rescans: u64,
    par_min: usize,
}

impl std::fmt::Debug for BestMoveEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BestMoveEngine")
            .field("items", &self.assign.len())
            .field("channels", &self.channels)
            .field("threshold", &self.threshold)
            .field("rescans", &self.rescans)
            .finish_non_exhaustive()
    }
}

impl Clone for BestMoveEngine {
    fn clone(&self) -> Self {
        BestMoveEngine {
            channels: self.channels,
            threshold: self.threshold,
            f: self.f.clone(),
            z: self.z.clone(),
            t2fz: self.t2fz.clone(),
            assign: self.assign.clone(),
            freq: self.freq.clone(),
            size: self.size.clone(),
            b1q: self.b1q.clone(),
            b1r: self.b1r.clone(),
            b2q: self.b2q.clone(),
            b2r: self.b2r.clone(),
            best_item: self.best_item,
            rescans: self.rescans,
            par_min: self.par_min,
        }
    }
}

impl BestMoveEngine {
    /// Builds the engine and runs the initial `O(NK)` scan.
    ///
    /// `freq`/`size` are the *current* per-channel aggregates the
    /// caller maintains; the engine takes them over verbatim (it does
    /// **not** re-accumulate) so its reductions match the caller's
    /// exhaustive scan bit-for-bit. `threshold` seeds the global best
    /// (strict `>`), mirroring the scan's `min_reduction`.
    ///
    /// # Panics
    ///
    /// Panics on column length mismatches or `channels == 0`.
    pub fn new(
        channels: usize,
        threshold: f64,
        f: Vec<f64>,
        z: Vec<f64>,
        assign: Vec<u32>,
        freq: Vec<f64>,
        size: Vec<f64>,
    ) -> Self {
        assert!(channels > 0, "at least one channel required");
        assert!(channels <= NONE_CH as usize, "channel count exceeds engine range");
        let n = assign.len();
        assert_eq!(f.len(), n, "frequency column length mismatch");
        assert_eq!(z.len(), n, "size column length mismatch");
        assert_eq!(freq.len(), channels, "aggregate frequency length mismatch");
        assert_eq!(size.len(), channels, "aggregate size length mismatch");
        debug_assert!(assign.iter().all(|&c| (c as usize) < channels));
        let t2fz: Vec<f64> = f.iter().zip(&z).map(|(&fx, &zx)| 2.0 * fx * zx).collect();
        let mut engine = BestMoveEngine {
            channels,
            threshold,
            f,
            z,
            t2fz,
            assign,
            freq,
            size,
            b1q: vec![NONE_CH; n],
            b1r: vec![f64::NEG_INFINITY; n],
            b2q: vec![NONE_CH; n],
            b2r: vec![f64::NEG_INFINITY; n],
            best_item: usize::MAX,
            rescans: 0,
            par_min: PAR_MIN_ITEMS,
        };
        engine.init_scan();
        engine
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// Whether the engine tracks no items.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The current `item → channel` assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.assign
    }

    /// The maintained per-channel aggregate frequencies `F_i`.
    pub fn channel_freq(&self) -> &[f64] {
        &self.freq
    }

    /// The maintained per-channel aggregate sizes `Z_i`.
    pub fn channel_size(&self) -> &[f64] {
        &self.size
    }

    /// Full `O(K)` rescans performed so far (the lazy-invalidation
    /// slow path; everything else is O(1) per item per move).
    pub fn rescans(&self) -> u64 {
        self.rescans
    }

    /// Sets the item count below which the `par` feature stays serial.
    /// No effect without the feature; exposed for tests and tuning.
    pub fn set_par_min(&mut self, n: usize) {
        self.par_min = n;
    }

    /// The best strictly-improving move above the threshold, if any —
    /// the same `(item, to, Δc)` the exhaustive reference scan returns,
    /// bit-for-bit.
    pub fn best(&self) -> Option<EngineMove> {
        if self.best_item == usize::MAX {
            return None;
        }
        let x = self.best_item;
        Some(EngineMove {
            item: x,
            from: self.assign[x] as usize,
            to: self.b1q[x] as usize,
            reduction: self.b1r[x],
        })
    }

    /// Applies the current best move (if any), updates the aggregates
    /// with the same operations an exhaustive caller would use, and
    /// repairs the candidate caches in one `O(N)` pass.
    pub fn apply_best(&mut self) -> Option<EngineMove> {
        let mv = self.best()?;
        let (x, p, q) = (mv.item, mv.from, mv.to);
        self.freq[p] -= self.f[x];
        self.size[p] -= self.z[x];
        self.freq[q] += self.f[x];
        self.size[q] += self.z[x];
        self.assign[x] = q as u32;
        self.update_pass(x, p as u32, q as u32);
        Some(mv)
    }

    fn init_scan(&mut self) {
        let BestMoveEngine {
            channels,
            threshold,
            ref f,
            ref z,
            ref t2fz,
            ref assign,
            ref freq,
            ref size,
            ref mut b1q,
            ref mut b1r,
            ref mut b2q,
            ref mut b2r,
            ..
        } = *self;
        let cols = Cols { channels, f, z, t2fz, assign, freq, size };
        #[cfg(feature = "par")]
        if assign.len() >= self.par_min {
            let merged =
                par_chunks(&cols, b1q, b1r, b2q, b2r, |cols, lo, c1q, c1r, c2q, c2r| {
                    let (gi, gr) = init_range(cols, lo, c1q, c1r, c2q, c2r, threshold);
                    (gi, gr, 0)
                });
            self.best_item = merged.0;
            return;
        }
        let (gi, _gr) = init_range(&cols, 0, b1q, b1r, b2q, b2r, threshold);
        self.best_item = gi;
    }

    fn update_pass(&mut self, moved: usize, p: u32, qs: u32) {
        let BestMoveEngine {
            channels,
            threshold,
            ref f,
            ref z,
            ref t2fz,
            ref assign,
            ref freq,
            ref size,
            ref mut b1q,
            ref mut b1r,
            ref mut b2q,
            ref mut b2r,
            ..
        } = *self;
        let cols = Cols { channels, f, z, t2fz, assign, freq, size };
        #[cfg(feature = "par")]
        if assign.len() >= self.par_min {
            let (gi, _gr, rs) =
                par_chunks(&cols, b1q, b1r, b2q, b2r, |cols, lo, c1q, c1r, c2q, c2r| {
                    update_range(cols, lo, c1q, c1r, c2q, c2r, moved, p, qs, threshold)
                });
            self.best_item = gi;
            self.rescans += rs;
            return;
        }
        let (gi, _gr, rs) =
            update_range(&cols, 0, b1q, b1r, b2q, b2r, moved, p, qs, threshold);
        self.best_item = gi;
        self.rescans += rs;
    }
}

/// Splits the candidate columns into per-thread chunks, runs `kernel`
/// on each under `std::thread::scope`, and merges the local bests in
/// ascending chunk order (strict `>`, so the earliest item still wins
/// ties — identical to the serial pass).
#[cfg(feature = "par")]
fn par_chunks<F>(
    cols: &Cols<'_>,
    b1q: &mut [u32],
    b1r: &mut [f64],
    b2q: &mut [u32],
    b2r: &mut [f64],
    kernel: F,
) -> (usize, f64, u64)
where
    F: Fn(
            &Cols<'_>,
            usize,
            &mut [u32],
            &mut [f64],
            &mut [u32],
            &mut [f64],
        ) -> (usize, f64, u64)
        + Sync,
{
    let n = b1q.len();
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get()).min(8);
    if threads < 2 || n == 0 {
        return kernel(cols, 0, b1q, b1r, b2q, b2r);
    }
    let chunk = n.div_ceil(threads);
    let mut locals: Vec<(usize, f64, u64)> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let iter = b1q
            .chunks_mut(chunk)
            .zip(b1r.chunks_mut(chunk))
            .zip(b2q.chunks_mut(chunk))
            .zip(b2r.chunks_mut(chunk));
        for (ci, (((c1q, c1r), c2q), c2r)) in iter.enumerate() {
            let kernel = &kernel;
            handles.push(s.spawn(move || kernel(cols, ci * chunk, c1q, c1r, c2q, c2r)));
        }
        for h in handles {
            locals.push(h.join().expect("scan worker panicked"));
        }
    });
    let mut gi = usize::MAX;
    let mut gr = f64::NEG_INFINITY;
    let mut rescans = 0u64;
    for (li, lr, lrs) in locals {
        rescans += lrs;
        // Each local best already cleared the threshold; ascending
        // chunk order plus strict `>` reproduces the serial tie-break.
        if li != usize::MAX && (gi == usize::MAX || lr > gr) {
            gi = li;
            gr = lr;
        }
    }
    (gi, gr, rescans)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift features for self-contained tests.
    fn features(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let f: Vec<f64> = (0..n).map(|_| next() + 1e-3).collect();
        let z: Vec<f64> = (0..n).map(|_| 1.0 + 9.0 * next()).collect();
        (f, z)
    }

    fn aggregates(k: usize, f: &[f64], z: &[f64], assign: &[u32]) -> (Vec<f64>, Vec<f64>) {
        let mut freq = vec![0.0; k];
        let mut size = vec![0.0; k];
        for (x, &c) in assign.iter().enumerate() {
            freq[c as usize] += f[x];
            size[c as usize] += z[x];
        }
        (freq, size)
    }

    /// The exhaustive scan the engine must reproduce bit-for-bit.
    fn brute_best(
        k: usize,
        threshold: f64,
        f: &[f64],
        z: &[f64],
        assign: &[u32],
        freq: &[f64],
        size: &[f64],
    ) -> Option<(usize, usize, f64)> {
        let mut best = None;
        let mut best_r = threshold;
        for (x, &p) in assign.iter().enumerate() {
            let p = p as usize;
            for q in 0..k {
                if q == p {
                    continue;
                }
                let r = f[x] * (size[p] - size[q]) + z[x] * (freq[p] - freq[q])
                    - 2.0 * f[x] * z[x];
                if r > best_r {
                    best_r = r;
                    best = Some((x, q, r));
                }
            }
        }
        best
    }

    fn engine_for(n: usize, k: usize, seed: u64) -> BestMoveEngine {
        let (f, z) = features(n, seed);
        let assign: Vec<u32> = (0..n).map(|x| (x % k) as u32).collect();
        let (freq, size) = aggregates(k, &f, &z, &assign);
        BestMoveEngine::new(k, 1e-9, f, z, assign, freq, size)
    }

    #[test]
    fn matches_brute_force_along_full_descent() {
        for seed in [3u64, 17, 99] {
            let mut engine = engine_for(60, 5, seed);
            for step in 0..10_000 {
                let brute = brute_best(
                    engine.channels,
                    engine.threshold,
                    &engine.f,
                    &engine.z,
                    &engine.assign,
                    &engine.freq,
                    &engine.size,
                );
                let got = engine.best().map(|m| (m.item, m.to, m.reduction));
                assert_eq!(
                    got.map(|(x, q, r)| (x, q, r.to_bits())),
                    brute.map(|(x, q, r)| (x, q, r.to_bits())),
                    "seed {seed} step {step}"
                );
                if engine.apply_best().is_none() {
                    break;
                }
            }
            assert!(engine.best().is_none(), "descent must terminate");
        }
    }

    #[test]
    fn cached_top2_is_exact_where_known() {
        let mut engine = engine_for(40, 6, 8);
        for _ in 0..25 {
            for x in 0..engine.len() {
                let cols = Cols {
                    channels: engine.channels,
                    f: &engine.f,
                    z: &engine.z,
                    t2fz: &engine.t2fz,
                    assign: &engine.assign,
                    freq: &engine.freq,
                    size: &engine.size,
                };
                let (q1, r1, q2, r2) = rescan(&cols, x);
                assert_eq!(engine.b1q[x], q1, "item {x} best destination");
                assert_eq!(engine.b1r[x].to_bits(), r1.to_bits(), "item {x} best value");
                if engine.b2q[x] != NONE_CH {
                    assert_eq!(engine.b2q[x], q2, "item {x} runner-up destination");
                    assert_eq!(
                        engine.b2r[x].to_bits(),
                        r2.to_bits(),
                        "item {x} runner-up value"
                    );
                }
            }
            if engine.apply_best().is_none() {
                break;
            }
        }
    }

    #[test]
    fn aggregates_match_recompute_after_descent() {
        let mut engine = engine_for(50, 4, 21);
        while engine.apply_best().is_some() {}
        let (freq, size) =
            aggregates(engine.channels, &engine.f, &engine.z, &engine.assign);
        for c in 0..engine.channels {
            assert!((engine.freq[c] - freq[c]).abs() < 1e-9, "channel {c} frequency");
            assert!((engine.size[c] - size[c]).abs() < 1e-9, "channel {c} size");
        }
    }

    #[test]
    fn single_channel_has_no_moves() {
        let engine = engine_for(10, 1, 5);
        assert!(engine.best().is_none());
    }

    #[test]
    fn empty_engine_has_no_moves() {
        let engine = BestMoveEngine::new(
            3,
            1e-9,
            Vec::new(),
            Vec::new(),
            Vec::new(),
            vec![0.0; 3],
            vec![0.0; 3],
        );
        assert!(engine.best().is_none());
    }

    #[test]
    fn threshold_suppresses_small_reductions() {
        let engine = {
            let (f, z) = features(30, 7);
            let assign: Vec<u32> = (0..30).map(|x| (x % 3) as u32).collect();
            let (freq, size) = aggregates(3, &f, &z, &assign);
            BestMoveEngine::new(3, 1e12, f, z, assign, freq, size)
        };
        assert!(engine.best().is_none(), "no move beats an enormous threshold");
    }

    #[test]
    fn two_channels_keep_exactness_through_source_rescans() {
        // K = 2 exercises the all-items-touched path on every move.
        let mut engine = engine_for(32, 2, 13);
        for _ in 0..5_000 {
            let brute = brute_best(
                engine.channels,
                engine.threshold,
                &engine.f,
                &engine.z,
                &engine.assign,
                &engine.freq,
                &engine.size,
            );
            let got = engine.best().map(|m| (m.item, m.to, m.reduction.to_bits()));
            assert_eq!(got, brute.map(|(x, q, r)| (x, q, r.to_bits())));
            if engine.apply_best().is_none() {
                break;
            }
        }
    }

    #[cfg(feature = "par")]
    #[test]
    fn par_pass_matches_serial_pass() {
        let (f, z) = features(300, 31);
        let assign: Vec<u32> = (0..300).map(|x| (x % 7) as u32).collect();
        let (freq, size) = aggregates(7, &f, &z, &assign);
        let mut serial = BestMoveEngine::new(
            7,
            1e-9,
            f.clone(),
            z.clone(),
            assign.clone(),
            freq.clone(),
            size.clone(),
        );
        serial.set_par_min(usize::MAX);
        let mut par = BestMoveEngine::new(7, 1e-9, f, z, assign, freq, size);
        par.set_par_min(0);
        // Rebuild caches through the par init path too.
        par.init_scan();
        loop {
            let a = serial.apply_best();
            let b = par.apply_best();
            assert_eq!(
                a.map(|m| (m.item, m.from, m.to, m.reduction.to_bits())),
                b.map(|m| (m.item, m.from, m.to, m.reduction.to_bits()))
            );
            if a.is_none() {
                break;
            }
        }
        assert_eq!(serial.assignment(), par.assignment());
    }
}
