//! The `Partition(D_x)` procedure of DRP: the optimal two-way split of a
//! contiguous, benefit-ratio-sorted item sequence.
//!
//! Given prefix sums of frequency and size, every candidate split point
//! is evaluated in O(1), so the whole scan is O(n) — this is what makes
//! DRP's "dimension reduction" cheap.

use serde::{Deserialize, Serialize};

/// The result of an optimal two-way split of `range` (a half-open index
/// range into the benefit-ratio-sorted order).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitPoint {
    /// The split index `p`: left part is `range.start..p`, right part is
    /// `p..range.end`. Always strictly inside the range.
    pub at: usize,
    /// Cost `(Σf)(Σz)` of the left part.
    pub left_cost: f64,
    /// Cost `(Σf)(Σz)` of the right part.
    pub right_cost: f64,
}

impl SplitPoint {
    /// Combined cost of the two parts.
    pub fn total_cost(&self) -> f64 {
        self.left_cost + self.right_cost
    }
}

/// Finds the split index `p ∈ (start, end)` minimizing
/// `cost(start..p) + cost(p..end)` over prefix sums.
///
/// `prefix_f[i]` / `prefix_z[i]` must hold the sums of the first `i`
/// items in the sorted order (so `prefix_f.len() == n + 1`).
///
/// Returns `None` when the range has fewer than two items (nothing to
/// split). Ties prefer the smallest `p`, which keeps the algorithm
/// deterministic.
///
/// # Panics
///
/// Panics if the range is out of bounds for the prefix arrays or the
/// two arrays have different lengths.
///
/// # Example
///
/// ```
/// use dbcast_alloc::best_split;
/// // Two items: (f=0.9, z=1) and (f=0.1, z=9).
/// let prefix_f = [0.0, 0.9, 1.0];
/// let prefix_z = [0.0, 1.0, 10.0];
/// let split = best_split(&prefix_f, &prefix_z, 0..2).unwrap();
/// assert_eq!(split.at, 1);
/// assert!((split.total_cost() - (0.9 * 1.0 + 0.1 * 9.0)).abs() < 1e-12);
/// ```
pub fn best_split(
    prefix_f: &[f64],
    prefix_z: &[f64],
    range: std::ops::Range<usize>,
) -> Option<SplitPoint> {
    assert_eq!(prefix_f.len(), prefix_z.len(), "prefix arrays must match");
    assert!(range.end < prefix_f.len(), "range out of bounds");
    let (start, end) = (range.start, range.end);
    if end.saturating_sub(start) < 2 {
        return None;
    }
    let f_total = prefix_f[end] - prefix_f[start];
    let z_total = prefix_z[end] - prefix_z[start];
    let mut best: Option<SplitPoint> = None;
    for p in start + 1..end {
        let f_left = prefix_f[p] - prefix_f[start];
        let z_left = prefix_z[p] - prefix_z[start];
        let left_cost = f_left * z_left;
        let right_cost = (f_total - f_left) * (z_total - z_left);
        let total = left_cost + right_cost;
        if best.is_none_or(|b| total < b.total_cost()) {
            best = Some(SplitPoint { at: p, left_cost, right_cost });
        }
    }
    best
}

/// Builds prefix-sum arrays for `(f, z)` pairs in a given order.
///
/// Returned vectors have length `items.len() + 1` with index 0 = 0.0.
pub(crate) fn prefix_sums(items: &[(f64, f64)]) -> (Vec<f64>, Vec<f64>) {
    let mut pf = Vec::with_capacity(items.len() + 1);
    let mut pz = Vec::with_capacity(items.len() + 1);
    pf.push(0.0);
    pz.push(0.0);
    let (mut af, mut az) = (0.0, 0.0);
    for &(f, z) in items {
        af += f;
        az += z;
        pf.push(af);
        pz.push(az);
    }
    (pf, pz)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: try every split, recomputing sums.
    fn brute_force(
        items: &[(f64, f64)],
        range: std::ops::Range<usize>,
    ) -> Option<SplitPoint> {
        if range.len() < 2 {
            return None;
        }
        let cost = |r: std::ops::Range<usize>| {
            let f: f64 = items[r.clone()].iter().map(|i| i.0).sum();
            let z: f64 = items[r].iter().map(|i| i.1).sum();
            f * z
        };
        (range.start + 1..range.end)
            .map(|p| SplitPoint {
                at: p,
                left_cost: cost(range.start..p),
                right_cost: cost(p..range.end),
            })
            .min_by(|a, b| a.total_cost().total_cmp(&b.total_cost()))
    }

    #[test]
    fn singleton_and_empty_ranges_are_unsplittable() {
        let (pf, pz) = prefix_sums(&[(0.5, 1.0), (0.5, 2.0)]);
        assert!(best_split(&pf, &pz, 0..0).is_none());
        assert!(best_split(&pf, &pz, 0..1).is_none());
        assert!(best_split(&pf, &pz, 1..2).is_none());
    }

    #[test]
    fn two_items_split_between_them() {
        let (pf, pz) = prefix_sums(&[(0.7, 3.0), (0.3, 5.0)]);
        let s = best_split(&pf, &pz, 0..2).unwrap();
        assert_eq!(s.at, 1);
        assert!((s.left_cost - 2.1).abs() < 1e-12);
        assert!((s.right_cost - 1.5).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_many_instances() {
        // Deterministic LCG over a batch of random instances.
        let mut state = 42u64;
        let mut next = move || {
            state =
                state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0) + 0.01
        };
        for n in [2usize, 3, 5, 8, 13, 21, 40] {
            let items: Vec<(f64, f64)> = (0..n).map(|_| (next(), next() * 10.0)).collect();
            let (pf, pz) = prefix_sums(&items);
            let fast = best_split(&pf, &pz, 0..n).unwrap();
            let slow = brute_force(&items, 0..n).unwrap();
            assert_eq!(fast.at, slow.at, "n = {n}");
            assert!((fast.total_cost() - slow.total_cost()).abs() < 1e-9);
        }
    }

    #[test]
    fn subrange_splits_use_only_their_items() {
        let items = [(0.2, 1.0), (0.3, 2.0), (0.4, 8.0), (0.1, 1.0)];
        let (pf, pz) = prefix_sums(&items);
        let s = best_split(&pf, &pz, 1..4).unwrap();
        let reference = brute_force(&items, 1..4).unwrap();
        assert_eq!(s.at, reference.at);
        assert!((s.total_cost() - reference.total_cost()).abs() < 1e-12);
    }

    #[test]
    fn split_always_improves_or_equals_group_cost() {
        // Splitting can never increase total cost:
        // (F1+F2)(Z1+Z2) >= F1 Z1 + F2 Z2 for non-negative parts.
        let items = [(0.4, 10.0), (0.3, 1.0), (0.2, 5.0), (0.1, 0.5)];
        let (pf, pz) = prefix_sums(&items);
        let whole = (pf[4] - pf[0]) * (pz[4] - pz[0]);
        let s = best_split(&pf, &pz, 0..4).unwrap();
        assert!(s.total_cost() <= whole + 1e-12);
    }

    #[test]
    fn ties_prefer_smallest_index() {
        // Four identical items: splits at 1, 2, 3 — p = 2 is optimal
        // (balanced), unique. Use 2 identical items for a real tie check:
        // any split of identical halves... with n = 2 only p = 1 exists.
        // Construct a symmetric 3-item instance where p = 1 and p = 2 tie.
        let items = [(0.5, 1.0), (0.0001, 0.0001), (0.5, 1.0)];
        let (pf, pz) = prefix_sums(&items);
        let s = best_split(&pf, &pz, 0..3).unwrap();
        let c1 = {
            let l = pf[1] * pz[1];
            let r = (pf[3] - pf[1]) * (pz[3] - pz[1]);
            l + r
        };
        if (s.total_cost() - c1).abs() < 1e-15 {
            assert_eq!(s.at, 1);
        }
    }

    #[test]
    #[should_panic(expected = "range out of bounds")]
    fn out_of_bounds_panics() {
        let (pf, pz) = prefix_sums(&[(0.5, 1.0)]);
        let _ = best_split(&pf, &pz, 0..5);
    }

    #[test]
    fn prefix_sums_shape() {
        let (pf, pz) = prefix_sums(&[(0.25, 2.0), (0.75, 6.0)]);
        assert_eq!(pf, vec![0.0, 0.25, 1.0]);
        assert_eq!(pz, vec![0.0, 2.0, 8.0]);
    }
}
