//! The primary contribution of Hung & Chen (ICDCS 2005): channel
//! allocation for **diverse data broadcasting** via
//!
//! * **DRP** — *Dimension Reduction Partitioning*, a top-down
//!   group-splitting heuristic over the benefit-ratio order
//!   ([`Drp`]), and
//! * **CDS** — *Cost-Diminishing Selection*, a steepest-descent
//!   single-item-move refinement to a local optimum ([`Cds`]),
//!
//! combined as the paper's two-step scheme **DRP-CDS** ([`DrpCds`]).
//!
//! All three implement
//! [`ChannelAllocator`](dbcast_model::ChannelAllocator), so they drop
//! into the same harnesses as the baselines in `dbcast-baselines`.
//!
//! # Example
//!
//! ```
//! use dbcast_alloc::DrpCds;
//! use dbcast_model::{ChannelAllocator, Database, ItemSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let db = Database::try_from_specs(vec![
//!     ItemSpec::new(0.55, 1.0),
//!     ItemSpec::new(0.25, 8.0),
//!     ItemSpec::new(0.12, 2.0),
//!     ItemSpec::new(0.08, 16.0),
//! ])?;
//! let alloc = DrpCds::default().allocate(&db, 2)?;
//! assert_eq!(alloc.channels(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cds;
mod drp;
mod dynamic;
pub mod engine;
mod partition;
mod pipeline;

pub use cds::{Cds, CdsOutcome, CdsStep, ReferenceCds};
pub use drp::{Drp, DrpIteration, DrpOutcome, GroupSnapshot, SplitPriority};
pub use dynamic::{DynamicBroadcast, DynamicError, ItemHandle, RepairOutcome, RepairStats};
pub use engine::{BestMoveEngine, EngineMove};
pub use partition::{best_split, SplitPoint};
pub use pipeline::{DrpCds, DrpCdsOutcome};
