//! Algorithm **DRP — Dimension Reduction Partitioning** (paper §3.1).
//!
//! DRP sorts the database by benefit ratio `br = f/z` descending and
//! repeatedly splits one group at its optimal split point, until `K`
//! groups exist. Because groups are contiguous ranges of the sorted
//! order, each split is a single O(n) scan over prefix sums (see
//! [`best_split`](crate::best_split)).
//!
//! # Which group gets split?
//!
//! The paper's pseudocode pops the **max-cost** group from the priority
//! queue. Its worked example, however, is only consistent with popping
//! the group whose split yields the **largest cost reduction**: in the
//! fourth iteration of Table 3 the example splits the group with cost
//! 7.02 (gain 3.36) even though a group with cost 7.26 (gain 3.23)
//! exists — reaching the Table 3(d)/Table 4 state with total cost 24.09,
//! where the strict max-cost rule yields 24.22. Both rules are
//! implemented as [`SplitPriority`]; the default is
//! [`SplitPriority::Gain`], which reproduces the paper's tables
//! end-to-end.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dbcast_model::{AllocError, Allocation, ChannelAllocator, Database, ItemId};
use serde::{Deserialize, Serialize};

use crate::partition::{best_split, prefix_sums, SplitPoint};

/// How DRP picks the next group to split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SplitPriority {
    /// Split the group with the largest cost — the paper's pseudocode.
    Cost,
    /// Split the group whose optimal split reduces total cost the most —
    /// the rule consistent with the paper's worked example (default).
    #[default]
    Gain,
}

/// A contiguous segment of the benefit-ratio-sorted order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Segment {
    start: usize,
    end: usize,
    cost: f64,
    /// Optimal split, absent for singletons.
    split: Option<SplitPoint>,
    /// Heap key under the configured [`SplitPriority`].
    priority: f64,
}

impl Eq for Segment {}

impl PartialOrd for Segment {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Segment {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by priority; break ties by range for determinism.
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.start.cmp(&self.start))
            .then_with(|| other.end.cmp(&self.end))
    }
}

/// One group in a recorded DRP iteration: its members (in benefit-ratio
/// order) and its cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSnapshot {
    /// Item ids in benefit-ratio order.
    pub members: Vec<ItemId>,
    /// Group cost `(Σf)(Σz)`.
    pub cost: f64,
}

/// The state after one DRP iteration (one split), mirroring the rows of
/// the paper's Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrpIteration {
    /// Groups in benefit-ratio order of their first member.
    pub groups: Vec<GroupSnapshot>,
}

impl DrpIteration {
    /// Total cost across groups after this iteration.
    pub fn total_cost(&self) -> f64 {
        self.groups.iter().map(|g| g.cost).sum()
    }
}

/// The full result of a DRP run: the allocation plus the per-iteration
/// trace used to reproduce Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct DrpOutcome {
    /// The final allocation (channel `i` = `i`-th segment in
    /// benefit-ratio order).
    pub allocation: Allocation,
    /// State after every iteration, starting with the initial
    /// single-group state (so there are `K` entries in total).
    pub iterations: Vec<DrpIteration>,
}

/// The DRP allocator (paper §3.1).
///
/// Stateless and deterministic; construct once and reuse freely.
///
/// # Example
///
/// ```
/// use dbcast_alloc::Drp;
/// use dbcast_model::ChannelAllocator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = dbcast_workload::paper::table2_profile();
/// let alloc = Drp::new().allocate(&db, 5)?;
/// assert_eq!(alloc.channels(), 5);
/// assert_eq!(alloc.empty_channels(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Drp {
    priority: SplitPriority,
}

impl Drp {
    /// Creates a DRP allocator with the default
    /// ([`SplitPriority::Gain`]) selection rule.
    pub fn new() -> Self {
        Drp::default()
    }

    /// Selects the group-selection rule.
    pub fn with_priority(mut self, priority: SplitPriority) -> Self {
        self.priority = priority;
        self
    }

    fn make_segment(&self, pf: &[f64], pz: &[f64], start: usize, end: usize) -> Segment {
        let cost = (pf[end] - pf[start]) * (pz[end] - pz[start]);
        let split = best_split(pf, pz, start..end);
        let priority = match self.priority {
            SplitPriority::Cost => {
                // Singletons must never outrank splittable groups.
                if split.is_some() {
                    cost
                } else {
                    f64::NEG_INFINITY
                }
            }
            SplitPriority::Gain => {
                split.map_or(f64::NEG_INFINITY, |s| cost - s.total_cost())
            }
        };
        Segment { start, end, cost, split, priority }
    }

    /// Runs DRP and returns both the allocation and the iteration trace.
    ///
    /// # Errors
    ///
    /// * [`AllocError::Model`] for `channels == 0`.
    /// * [`AllocError::Infeasible`] when `channels > N` (DRP groups are
    ///   non-empty by construction).
    pub fn allocate_traced(
        &self,
        db: &Database,
        channels: usize,
    ) -> Result<DrpOutcome, AllocError> {
        if channels == 0 {
            return Err(dbcast_model::ModelError::ZeroChannels.into());
        }
        if channels > db.len() {
            return Err(AllocError::Infeasible {
                reason: format!(
                    "DRP needs at least one item per channel: {} channels > {} items",
                    channels,
                    db.len()
                ),
            });
        }

        // Root span for the whole run; the per-split scans below nest
        // under it in the span tree.
        let _run = dbcast_obs::span!("alloc.drp.run");
        let order = db.ids_by_benefit_ratio_desc();
        let features: Vec<(f64, f64)> = order
            .iter()
            .map(|id| {
                let d = &db.items()[id.index()];
                (d.frequency(), d.size())
            })
            .collect();
        let (pf, pz) = prefix_sums(&features);

        let mut heap: BinaryHeap<Segment> = BinaryHeap::new();
        heap.push(self.make_segment(&pf, &pz, 0, db.len()));

        let snapshot = |heap: &BinaryHeap<Segment>| {
            let mut segs: Vec<Segment> = heap.iter().copied().collect();
            segs.sort_by_key(|s| s.start);
            DrpIteration {
                groups: segs
                    .into_iter()
                    .map(|s| GroupSnapshot {
                        members: order[s.start..s.end].to_vec(),
                        cost: s.cost,
                    })
                    .collect(),
            }
        };

        let mut iterations = vec![snapshot(&heap)];
        let mut obs_trace = dbcast_obs::trace::ConvergenceTrace::new("alloc.drp");
        // Segments that can no longer be split (len 1) keep NEG_INFINITY
        // priority and sink to the bottom of the heap; if one surfaces,
        // every group is a singleton and K > N would have been required
        // — already rejected above.
        while heap.len() < channels {
            let _scan = dbcast_obs::span!("alloc.drp.split_scan");
            let seg = heap.pop().expect("heap holds at least one segment");
            let split =
                seg.split.expect("channels <= N guarantees a splittable segment surfaces");
            let prefix = self.make_segment(&pf, &pz, seg.start, split.at);
            let suffix = self.make_segment(&pf, &pz, split.at, seg.end);
            dbcast_obs::counter!("alloc.drp.splits").inc();
            if dbcast_obs::enabled() {
                obs_trace.push(dbcast_obs::trace::TraceEvent::DrpSplit {
                    split: obs_trace.len() + 1,
                    chosen_index: split.at,
                    prefix_cost: prefix.cost,
                    suffix_cost: suffix.cost,
                });
            }
            heap.push(prefix);
            heap.push(suffix);
            iterations.push(snapshot(&heap));
        }
        obs_trace.record();

        let mut segs: Vec<Segment> = heap.into_iter().collect();
        segs.sort_by_key(|s| s.start);
        let mut assignment = vec![0usize; db.len()];
        for (ch, seg) in segs.iter().enumerate() {
            for &id in &order[seg.start..seg.end] {
                assignment[id.index()] = ch;
            }
        }
        let allocation = Allocation::from_assignment(db, channels, assignment)?;
        Ok(DrpOutcome { allocation, iterations })
    }
}

impl ChannelAllocator for Drp {
    fn name(&self) -> &str {
        match self.priority {
            SplitPriority::Gain => "DRP",
            SplitPriority::Cost => "DRP(max-cost)",
        }
    }

    fn allocate(&self, db: &Database, channels: usize) -> Result<Allocation, AllocError> {
        Ok(self.allocate_traced(db, channels)?.allocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_model::{Database, ItemSpec};

    fn uniform_db(n: usize) -> Database {
        Database::try_from_specs((0..n).map(|_| ItemSpec::new(1.0, 1.0))).unwrap()
    }

    #[test]
    fn rejects_zero_and_too_many_channels() {
        let db = uniform_db(4);
        assert!(Drp::new().allocate(&db, 0).is_err());
        assert!(matches!(Drp::new().allocate(&db, 5), Err(AllocError::Infeasible { .. })));
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let db = uniform_db(6);
        for priority in [SplitPriority::Cost, SplitPriority::Gain] {
            let alloc = Drp::new().with_priority(priority).allocate(&db, 6).unwrap();
            assert_eq!(alloc.empty_channels(), 0);
            for s in alloc.all_channel_stats() {
                assert_eq!(s.items, 1);
            }
        }
    }

    #[test]
    fn k_one_is_the_whole_database() {
        let db = uniform_db(5);
        let out = Drp::new().allocate_traced(&db, 1).unwrap();
        assert_eq!(out.iterations.len(), 1);
        assert_eq!(out.allocation.all_channel_stats()[0].items, 5);
    }

    #[test]
    fn groups_are_contiguous_in_br_order() {
        let db = dbcast_workload::WorkloadBuilder::new(60)
            .skewness(1.0)
            .seed(3)
            .build()
            .unwrap();
        let alloc = Drp::new().allocate(&db, 7).unwrap();
        let order = db.ids_by_benefit_ratio_desc();
        // Walking the br order, the channel index may change only at
        // segment boundaries and each channel appears exactly once.
        let mut seen = Vec::new();
        let mut last = usize::MAX;
        for id in order {
            let ch = alloc.channel_of(id).unwrap().index();
            if ch != last {
                assert!(!seen.contains(&ch), "channel {ch} appears twice");
                seen.push(ch);
                last = ch;
            }
        }
        assert_eq!(seen.len(), 7);
    }

    #[test]
    fn every_iteration_reduces_total_cost() {
        let db = dbcast_workload::WorkloadBuilder::new(80).seed(9).build().unwrap();
        for priority in [SplitPriority::Cost, SplitPriority::Gain] {
            let out = Drp::new().with_priority(priority).allocate_traced(&db, 8).unwrap();
            for w in out.iterations.windows(2) {
                assert!(w[1].total_cost() <= w[0].total_cost() + 1e-9);
            }
            let final_cost = out.iterations.last().unwrap().total_cost();
            assert!((final_cost - out.allocation.total_cost()).abs() < 1e-9);
        }
    }

    #[test]
    fn max_cost_priority_splits_costliest_group() {
        let db = dbcast_workload::paper::table2_profile();
        let out =
            Drp::new().with_priority(SplitPriority::Cost).allocate_traced(&db, 3).unwrap();
        // Iteration 1 has two groups; iteration 2 must have split the
        // costlier one, so its cost no longer appears.
        let it1 = &out.iterations[1];
        let max_cost = it1.groups.iter().map(|g| g.cost).fold(f64::MIN, f64::max);
        let it2 = &out.iterations[2];
        assert!(it2.groups.iter().all(|g| (g.cost - max_cost).abs() > 1e-9));
    }

    #[test]
    fn trace_matches_paper_table3_first_split() {
        // Table 3(b): first split yields costs 29.04 and 28.62 — both
        // priority rules agree here.
        let db = dbcast_workload::paper::table2_profile();
        for priority in [SplitPriority::Cost, SplitPriority::Gain] {
            let out = Drp::new().with_priority(priority).allocate_traced(&db, 5).unwrap();
            let it1 = &out.iterations[1];
            assert_eq!(it1.groups.len(), 2);
            assert!((it1.groups[0].cost - 29.04).abs() < 0.01, "{}", it1.groups[0].cost);
            assert!((it1.groups[1].cost - 28.62).abs() < 0.01, "{}", it1.groups[1].cost);
            let labels: Vec<usize> =
                it1.groups[0].members.iter().map(|i| i.index() + 1).collect();
            assert_eq!(labels, vec![9, 2, 3, 6, 5, 15, 1, 12]);
        }
    }

    #[test]
    fn gain_priority_reproduces_paper_table3d() {
        // Table 3(d): groups {d9 d2 d3} {d6 d5 d15} {d1 d12}
        // {d10 d13 d4 d8} {d14 d7 d11} with costs
        // 2.59, 1.07, 6.82, 7.26, 6.35 (total 24.09).
        let db = dbcast_workload::paper::table2_profile();
        let out = Drp::new().allocate_traced(&db, 5).unwrap();
        let final_groups: Vec<(Vec<usize>, f64)> = out
            .iterations
            .last()
            .unwrap()
            .groups
            .iter()
            .map(|g| (g.members.iter().map(|i| i.index() + 1).collect(), g.cost))
            .collect();
        let expected: Vec<(Vec<usize>, f64)> = vec![
            (vec![9, 2, 3], 2.59),
            (vec![6, 5, 15], 1.07),
            (vec![1, 12], 6.82),
            (vec![10, 13, 4, 8], 7.26),
            (vec![14, 7, 11], 6.35),
        ];
        for ((got_members, got_cost), (want_members, want_cost)) in
            final_groups.iter().zip(&expected)
        {
            assert_eq!(got_members, want_members);
            assert!((got_cost - want_cost).abs() < 0.01, "{got_cost} vs {want_cost}");
        }
        assert!((out.allocation.total_cost() - 24.09).abs() < 0.01);
    }

    #[test]
    fn equal_sized_equal_frequency_items_split_evenly_at_powers_of_two() {
        let db = uniform_db(16);
        let alloc = Drp::new().allocate(&db, 4).unwrap();
        for s in alloc.all_channel_stats() {
            assert_eq!(s.items, 4);
        }
    }

    #[test]
    fn allocation_validates_against_database() {
        let db = dbcast_workload::WorkloadBuilder::new(50).seed(2).build().unwrap();
        let alloc = Drp::new().allocate(&db, 5).unwrap();
        alloc.validate(&db).unwrap();
    }

    #[test]
    fn priority_rules_differ_only_modestly_in_cost() {
        // Both rules are valid DRP variants; their final costs should be
        // in the same ballpark on random workloads.
        for seed in 0..5 {
            let db = dbcast_workload::WorkloadBuilder::new(90).seed(seed).build().unwrap();
            let gain = Drp::new().allocate(&db, 6).unwrap().total_cost();
            let cost = Drp::new()
                .with_priority(SplitPriority::Cost)
                .allocate(&db, 6)
                .unwrap()
                .total_cost();
            let ratio = gain.max(cost) / gain.min(cost);
            assert!(ratio < 1.5, "seed {seed}: gain {gain} vs cost {cost}");
        }
    }
}
