//! **DRP-CDS** — the paper's two-step allocation scheme: DRP provides
//! the rough allocation, CDS refines it to a local optimum.

use dbcast_model::{AllocError, Allocation, ChannelAllocator, Database};

use crate::cds::{Cds, CdsOutcome};
use crate::drp::{Drp, DrpOutcome};

/// The combined outcome of a traced DRP-CDS run.
#[derive(Debug, Clone, PartialEq)]
pub struct DrpCdsOutcome {
    /// The DRP phase (rough allocation + Table 3-style trace).
    pub drp: DrpOutcome,
    /// The CDS phase (refined allocation + Table 4-style trace).
    pub cds: CdsOutcome,
}

impl DrpCdsOutcome {
    /// The final, refined allocation.
    pub fn allocation(&self) -> &Allocation {
        &self.cds.allocation
    }
}

/// The two-step DRP-CDS allocator (paper §3).
///
/// # Example
///
/// ```
/// use dbcast_alloc::DrpCds;
/// use dbcast_model::ChannelAllocator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = dbcast_workload::paper::table2_profile();
/// let outcome = DrpCds::default().allocate_traced(&db, 5)?;
/// // CDS never worsens DRP's result.
/// assert!(outcome.cds.final_cost() <= outcome.drp.allocation.total_cost() + 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DrpCds {
    drp: Drp,
    cds: Cds,
}

impl DrpCds {
    /// Creates the allocator with default CDS settings.
    pub fn new() -> Self {
        DrpCds::default()
    }

    /// Replaces the CDS configuration (threshold / iteration cap).
    pub fn with_cds(mut self, cds: Cds) -> Self {
        self.cds = cds;
        self
    }

    /// Runs both phases and returns the full trace.
    ///
    /// # Errors
    ///
    /// Propagates DRP errors ([`AllocError::Infeasible`] for `K > N`,
    /// [`AllocError::Model`] for `K == 0`); the CDS phase cannot fail on
    /// a DRP result.
    pub fn allocate_traced(
        &self,
        db: &Database,
        channels: usize,
    ) -> Result<DrpCdsOutcome, AllocError> {
        let drp = {
            let _phase = dbcast_obs::span!("alloc.pipeline.drp");
            self.drp.allocate_traced(db, channels)?
        };
        let cds = {
            let _phase = dbcast_obs::span!("alloc.pipeline.cds");
            self.cds.refine(db, drp.allocation.clone())?
        };
        dbcast_obs::counter!("alloc.pipeline.runs").inc();
        Ok(DrpCdsOutcome { drp, cds })
    }
}

impl ChannelAllocator for DrpCds {
    fn name(&self) -> &str {
        "DRP-CDS"
    }

    fn allocate(&self, db: &Database, channels: usize) -> Result<Allocation, AllocError> {
        Ok(self.allocate_traced(db, channels)?.cds.allocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_workload::WorkloadBuilder;

    #[test]
    fn never_worse_than_drp_alone() {
        for seed in 0..10 {
            let db = WorkloadBuilder::new(80).seed(seed).build().unwrap();
            let drp_cost = Drp::new().allocate(&db, 6).unwrap().total_cost();
            let combined = DrpCds::new().allocate(&db, 6).unwrap().total_cost();
            assert!(combined <= drp_cost + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn propagates_infeasible() {
        let db = WorkloadBuilder::new(3).build().unwrap();
        assert!(matches!(
            DrpCds::new().allocate(&db, 4),
            Err(AllocError::Infeasible { .. })
        ));
    }

    #[test]
    fn trace_contains_both_phases() {
        let db = dbcast_workload::paper::table2_profile();
        let out = DrpCds::new().allocate_traced(&db, 5).unwrap();
        assert_eq!(out.drp.iterations.len(), 5);
        assert!(out.cds.converged);
        assert_eq!(out.allocation(), &out.cds.allocation);
    }

    #[test]
    fn custom_cds_configuration_is_used() {
        let db = WorkloadBuilder::new(60).seed(2).build().unwrap();
        let frozen = DrpCds::new().with_cds(Cds::new().max_iterations(0));
        let out = frozen.allocate_traced(&db, 5).unwrap();
        assert!(out.cds.steps.is_empty());
        assert_eq!(out.drp.allocation, out.cds.allocation);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(DrpCds::new().name(), "DRP-CDS");
        assert_eq!(Drp::new().name(), "DRP");
    }
}
