//! The simulated client fleet: N concurrent subscribers, one report.
//!
//! Every fleet member runs the full client pipeline (subscribe → record
//! the air → measure analytically) on its own thread with its own seed,
//! then the fleet joins them in id order and folds the results into a
//! schema-versioned [`FleetReport`]. Because each client's measurement
//! depends only on its seed and the recorded frames — never on thread
//! interleaving — the same seed over the same program yields a
//! bit-identical report.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::client::{
    generate_requests, measure, AirLog, CacheKind, ClientConfig, RequestOutcome,
    WorkloadPattern,
};
use crate::egress::{run_egress, EgressConfig, EgressReport, ProgramSource};
use crate::frame::{TelemetryFrame, TELEMETRY_FLAG_SLICE};
use crate::server::{BroadcastServer, NetConfig};
use crate::uplink::UplinkClient;
use crate::world::WorldView;

/// Where (and how) a fleet pushes its telemetry digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UplinkConfig {
    /// Uplink server address, e.g. `127.0.0.1:9902`.
    pub addr: String,
    /// Milliseconds client 0 sleeps before sending each generation
    /// acknowledgement — the straggler drill: a paced-slow client whose
    /// acked generation trails the published one must trip the
    /// `fleet.stragglers` gauge.
    pub straggle_ms: u64,
}

/// Report schema version; bump on any incompatible layout change.
pub const FLEET_SCHEMA: u32 = 1;

/// Fleet-level workload knobs; per-client configs are derived from this.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Base seed; client `i` runs with `seed + i`.
    pub seed: u64,
    /// Requests per client.
    pub requests: usize,
    /// Mean request rate per client, in requests per virtual second.
    pub rate: f64,
    /// Client cache policy.
    pub cache: CacheKind,
    /// Client cache budget in size units.
    pub cache_budget: f64,
    /// Workload shape.
    pub pattern: WorkloadPattern,
    /// Frequent-pattern pool size.
    pub patterns: usize,
    /// Maximum items per request.
    pub max_size: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            clients: 8,
            seed: 1,
            requests: 100,
            rate: 1.0,
            cache: CacheKind::None,
            cache_budget: 0.0,
            pattern: WorkloadPattern::Single,
            patterns: 8,
            max_size: 4,
        }
    }
}

impl FleetConfig {
    /// The derived per-client configuration.
    pub fn client(&self, id: usize) -> ClientConfig {
        ClientConfig {
            id,
            seed: self.seed.wrapping_add(id as u64),
            requests: self.requests,
            rate: self.rate,
            cache: self.cache,
            cache_budget: self.cache_budget,
            pattern: self.pattern,
            patterns: self.patterns,
            max_size: self.max_size,
        }
    }
}

/// Order statistics of one measured series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatSummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl StatSummary {
    /// Summarises `values` (order-independent; empty series are zero).
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return StatSummary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = sorted.len();
        let pick = |q: f64| sorted[((q * (n - 1) as f64).round() as usize).min(n - 1)];
        StatSummary {
            count: n as u64,
            mean: sorted.iter().sum::<f64>() / n as f64,
            min: sorted[0],
            max: sorted[n - 1],
            p50: pick(0.50),
            p95: pick(0.95),
        }
    }

    fn finite(&self) -> bool {
        self.mean.is_finite()
            && self.min.is_finite()
            && self.max.is_finite()
            && self.p50.is_finite()
            && self.p95.is_finite()
    }
}

/// One generation as experienced by one client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationSlice {
    /// Generation counter from the directory.
    pub generation: u64,
    /// Virtual origin of the generation's phase 0.
    pub origin: f64,
    /// Requests served entirely inside this generation.
    pub requests: u64,
    /// Mean measured access time of those requests (0 when none).
    pub mean_access: f64,
    /// Mean measured tuning time of those requests (0 when none).
    pub mean_tuning: f64,
    /// The Eq. 2 expectation for the requests counted in this slice:
    /// the mean per-request expectation conditioned on the items the
    /// client actually drew, so sampling the workload does not show up
    /// as prediction error. Falls back to the population
    /// frequency-weighted expectation when the slice has no
    /// single-item samples.
    pub predicted_access: f64,
}

/// One fleet member's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientReport {
    /// Client id within the fleet.
    pub id: usize,
    /// The client's RNG seed.
    pub seed: u64,
    /// Requests issued.
    pub requests: u64,
    /// Requests fully answered before the stream horizon.
    pub completed: u64,
    /// Cache hits across all requests.
    pub cache_hits: u64,
    /// Multi-item retrieval conflicts (occurrences missed while busy).
    pub conflicts: u64,
    /// Swap-boundary retunes.
    pub retunes: u64,
    /// Planned downloads the recorded air could not corroborate.
    pub torn_frames: u64,
    /// Wire decode errors while draining the subscription.
    pub decode_errors: u64,
    /// Access times of completed requests (virtual seconds).
    pub access: StatSummary,
    /// Tuning times of completed requests (virtual seconds).
    pub tuning: StatSummary,
    /// Per-generation breakdown, in announcement order.
    pub generations: Vec<GenerationSlice>,
}

/// Fleet-wide sums.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetTotals {
    /// Requests across all clients.
    pub requests: u64,
    /// Completed requests across all clients.
    pub completed: u64,
    /// Cache hits across all clients.
    pub cache_hits: u64,
    /// Retrieval conflicts across all clients.
    pub conflicts: u64,
    /// Retunes across all clients.
    pub retunes: u64,
    /// Torn frames across all clients.
    pub torn_frames: u64,
    /// Decode errors across all clients.
    pub decode_errors: u64,
    /// Frames dropped by the server's slow-client policy, when the
    /// server ran in-process (absent for `--connect` fleets).
    pub dropped_frames: Option<u64>,
}

/// The schema-versioned fleet run artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Schema version, [`FLEET_SCHEMA`].
    pub schema: u32,
    /// The configuration the fleet ran with.
    pub config: FleetConfig,
    /// Whether the stream carried (1,m) index frames.
    pub indexed: bool,
    /// Per-client results, in client id order.
    pub clients: Vec<ClientReport>,
    /// Fleet-wide sums.
    pub totals: FleetTotals,
}

impl FleetReport {
    /// Structural validation: schema, finite stats, tuning never above
    /// access, zero torn frames / decode errors, and generation
    /// consistency (every client saw the same generation sequence).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a message.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != FLEET_SCHEMA {
            return Err(format!(
                "schema {} does not match supported {FLEET_SCHEMA}",
                self.schema
            ));
        }
        if self.clients.len() != self.config.clients {
            return Err(format!(
                "{} client reports for {} configured clients",
                self.clients.len(),
                self.config.clients
            ));
        }
        let reference: Vec<(u64, u64)> = self
            .clients
            .first()
            .map(|c| {
                c.generations.iter().map(|g| (g.generation, g.origin.to_bits())).collect()
            })
            .unwrap_or_default();
        for (i, client) in self.clients.iter().enumerate() {
            if client.id != i {
                return Err(format!("client {i} reported id {}", client.id));
            }
            if !client.access.finite() || !client.tuning.finite() {
                return Err(format!("client {i} has non-finite access/tuning stats"));
            }
            if client.tuning.mean > client.access.mean + 1e-9 {
                return Err(format!(
                    "client {i} mean tuning {} exceeds mean access {}",
                    client.tuning.mean, client.access.mean
                ));
            }
            if client.torn_frames != 0 {
                return Err(format!("client {i} saw {} torn frames", client.torn_frames));
            }
            if client.decode_errors != 0 {
                return Err(format!(
                    "client {i} saw {} decode errors",
                    client.decode_errors
                ));
            }
            let seen: Vec<(u64, u64)> = client
                .generations
                .iter()
                .map(|g| (g.generation, g.origin.to_bits()))
                .collect();
            if seen != reference {
                return Err(format!(
                    "client {i} saw generation sequence {:?}, client 0 saw {:?}",
                    client.generations.iter().map(|g| g.generation).collect::<Vec<_>>(),
                    reference.iter().map(|(g, _)| *g).collect::<Vec<_>>()
                ));
            }
            for g in &client.generations {
                if !g.predicted_access.is_finite()
                    || !g.mean_access.is_finite()
                    || !g.mean_tuning.is_finite()
                {
                    return Err(format!(
                        "client {i} generation {} has non-finite stats",
                        g.generation
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The paper's Eq. 2 expectation for the world's program: the
/// frequency-weighted mean access time over a request instant uniform
/// in phase. Replicated items use the independent-phase earliest-probe
/// approximation; indexed single-carrier items use the exact (1,m)
/// grid expectation.
pub fn predicted_access(world: &WorldView) -> f64 {
    let dir = &world.directory;
    let mut weighted = 0.0;
    let mut mass = 0.0;
    for (idx, &f) in dir.frequencies.iter().enumerate() {
        let item = dbcast_model::ItemId::new(idx);
        let Some(access) = world.expected_access(item) else {
            continue;
        };
        weighted += f * access;
        mass += f;
    }
    if mass > 0.0 {
        weighted / mass
    } else {
        f64::NAN
    }
}

/// Resolved `fleet.*` metric handles.
struct FleetMetrics {
    requests: &'static dbcast_obs::metrics::Counter,
    cache_hits: &'static dbcast_obs::metrics::Counter,
    conflicts: &'static dbcast_obs::metrics::Counter,
    retunes: &'static dbcast_obs::metrics::Counter,
    torn: &'static dbcast_obs::metrics::Counter,
    access: &'static dbcast_obs::metrics::Histogram,
    tuning: &'static dbcast_obs::metrics::Histogram,
}

impl FleetMetrics {
    fn resolve() -> Self {
        let r = dbcast_obs::registry();
        FleetMetrics {
            requests: r.counter("fleet.requests"),
            cache_hits: r.counter("fleet.cache_hits"),
            conflicts: r.counter("fleet.conflicts"),
            retunes: r.counter("fleet.retunes"),
            torn: r.counter("fleet.torn_frames"),
            access: r.histogram("fleet.access"),
            tuning: r.histogram("fleet.tuning"),
        }
    }
}

fn summarize(
    config: &ClientConfig,
    log: &AirLog,
    outcomes: &[RequestOutcome],
) -> ClientReport {
    let metrics = FleetMetrics::resolve();
    let mut access = Vec::new();
    let mut tuning = Vec::new();
    let mut cache_hits = 0;
    let mut conflicts = 0;
    let mut retunes = 0;
    let mut torn = 0;
    let mut completed = 0;
    for o in outcomes {
        cache_hits += o.cache_hits;
        conflicts += o.conflicts;
        retunes += o.retunes;
        torn += o.torn;
        metrics.requests.inc();
        if !o.incomplete {
            completed += 1;
            access.push(o.access);
            tuning.push(o.tuning);
            metrics.access.record((o.access * 1e6) as u64);
            metrics.tuning.record((o.tuning * 1e6) as u64);
        }
    }
    metrics.cache_hits.add(cache_hits);
    metrics.conflicts.add(conflicts);
    metrics.retunes.add(retunes);
    metrics.torn.add(torn);
    let generations = log
        .worlds
        .iter()
        .map(|world| {
            let generation = world.directory.generation;
            // Only requests that arrived early enough that they could
            // not possibly straddle the generation's end contribute to
            // the per-generation means: straddlers are retuned and
            // excluding them any other way would censor the longest
            // waits and bias the mean below the Eq. 2 expectation.
            let end = world.valid_until.min(log.horizon);
            let unbiased_until = end - world.worst_case_access();
            let mut a = Vec::new();
            let mut t = Vec::new();
            let mut p = Vec::new();
            for o in outcomes {
                if o.generation == Some(generation)
                    && !o.incomplete
                    && o.torn == 0
                    && o.arrival <= unbiased_until
                {
                    a.push(o.access);
                    t.push(o.tuning);
                    if let Some(expected) = o.expected_access {
                        p.push(expected);
                    }
                }
            }
            let mean = |v: &[f64]| {
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            };
            GenerationSlice {
                generation,
                origin: world.directory.origin,
                requests: a.len() as u64,
                mean_access: mean(&a),
                mean_tuning: mean(&t),
                // Conditioned on the realized workload when possible:
                // the sampled request mix differs from the population
                // frequencies, and access is heavy-tailed across items,
                // so the unconditioned mean is a noisy yardstick.
                predicted_access: if p.is_empty() {
                    predicted_access(world)
                } else {
                    mean(&p)
                },
            }
        })
        .collect();
    ClientReport {
        id: config.id,
        seed: config.seed,
        requests: outcomes.len() as u64,
        completed,
        cache_hits,
        conflicts,
        retunes,
        torn_frames: torn,
        decode_errors: log.decode_errors,
        access: StatSummary::from_values(&access),
        tuning: StatSummary::from_values(&tuning),
        generations,
    }
}

/// Builds the per-generation telemetry slice digests one client sends
/// after measuring: the exact [`GenerationSlice`] values (bit-exact, so
/// the serve-side aggregates reconcile with the post-hoc report), plus
/// delta counters attributed to the generation on the air at each
/// request's arrival (a total-preserving attribution: every outcome
/// lands in exactly one slice), microsecond log2 histogram cells of the
/// completed outcomes, and the recorded per-channel frame coverage.
fn build_slices(
    config: &ClientConfig,
    log: &AirLog,
    outcomes: &[RequestOutcome],
    report: &ClientReport,
) -> Vec<TelemetryFrame> {
    let last_generation =
        log.worlds.last().map(|w| w.directory.generation).unwrap_or_default();
    let spans: Vec<(f64, f64)> = log
        .worlds
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let end = log
                .worlds
                .get(i + 1)
                .map(|next| next.directory.origin)
                .unwrap_or(f64::INFINITY);
            (w.directory.origin, end)
        })
        .collect();
    log.worlds
        .iter()
        .zip(&report.generations)
        .zip(&spans)
        .map(|((world, slice), &(start, end))| {
            let mut t = TelemetryFrame::empty();
            t.client = config.id as u32;
            t.flags = TELEMETRY_FLAG_SLICE;
            t.last_generation = last_generation;
            t.generation = slice.generation;
            t.origin = slice.origin;
            t.samples = slice.requests;
            t.mean_access = slice.mean_access;
            t.mean_tuning = slice.mean_tuning;
            t.predicted_access = slice.predicted_access;
            for o in outcomes {
                // Same arrival-epsilon as `AirLog::world_at`, so the
                // attribution agrees with the measurement loop.
                if o.arrival + 1e-12 < start || o.arrival + 1e-12 >= end {
                    continue;
                }
                t.requests += 1;
                t.cache_hits += o.cache_hits;
                t.conflicts += o.conflicts;
                t.retunes += o.retunes;
                t.torn += o.torn;
                if !o.incomplete {
                    t.completed += 1;
                    t.access.record((o.access * 1e6) as u64);
                    t.tuning.record((o.tuning * 1e6) as u64);
                }
            }
            let generation = world.directory.generation;
            let mut coverage: std::collections::BTreeMap<u32, u64> =
                std::collections::BTreeMap::new();
            for (g, channel) in log
                .frames
                .iter()
                .map(|f| (f.generation, f.channel))
                .chain(log.index_frames.iter().map(|f| (f.generation, f.channel)))
            {
                if g == generation {
                    *coverage.entry(channel).or_insert(0) += 1;
                }
            }
            t.coverage = coverage.into_iter().collect();
            t
        })
        .collect()
}

/// Runs one client end to end over an established TCP stream,
/// optionally pushing telemetry over `uplink`: a live acknowledgement
/// per directory while recording, then one measurement slice per
/// generation.
fn run_client_with(
    config: ClientConfig,
    stream: TcpStream,
    uplink: Option<(SocketAddr, Duration)>,
) -> Result<ClientReport, String> {
    let id = config.id as u32;
    let mut up = match uplink {
        Some((addr, straggle)) => {
            let client = UplinkClient::connect(addr)
                .map_err(|e| format!("client {id} uplink connect failed: {e}"))?;
            Some((client, straggle))
        }
        None => None,
    };
    let log = match &mut up {
        Some((client, straggle)) => AirLog::record_with(stream, |dir| {
            if !straggle.is_zero() {
                std::thread::sleep(*straggle);
            }
            let _ = client.send_ack(id, dir.generation);
        })?,
        None => AirLog::record(stream)?,
    };
    let first = &log.worlds[0].directory;
    let requests = generate_requests(&config, first, log.coverage_start());
    let outcomes = measure(&config, &log, &requests)?;
    let report = summarize(&config, &log, &outcomes);
    if let Some((client, _)) = &mut up {
        for mut frame in build_slices(&config, &log, &outcomes, &report) {
            client
                .send(&mut frame)
                .map_err(|e| format!("client {id} uplink send failed: {e}"))?;
        }
    }
    Ok(report)
}

/// Resolves the uplink target and the per-client straggle pacing.
fn resolve_uplink(
    uplink: Option<&UplinkConfig>,
    id: usize,
) -> Result<Option<(SocketAddr, Duration)>, String> {
    let Some(config) = uplink else {
        return Ok(None);
    };
    let addr: SocketAddr = config
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("bad uplink address: {e}"))?
        .next()
        .ok_or("uplink address resolved to nothing")?;
    let straggle =
        if id == 0 { Duration::from_millis(config.straggle_ms) } else { Duration::ZERO };
    Ok(Some((addr, straggle)))
}

fn fold_report(
    config: &FleetConfig,
    indexed: bool,
    clients: Vec<ClientReport>,
    dropped_frames: Option<u64>,
) -> FleetReport {
    let mut totals = FleetTotals { dropped_frames, ..FleetTotals::default() };
    for c in &clients {
        totals.requests += c.requests;
        totals.completed += c.completed;
        totals.cache_hits += c.cache_hits;
        totals.conflicts += c.conflicts;
        totals.retunes += c.retunes;
        totals.torn_frames += c.torn_frames;
        totals.decode_errors += c.decode_errors;
    }
    FleetReport { schema: FLEET_SCHEMA, config: *config, indexed, clients, totals }
}

/// Connects a fleet to an already-running broadcast server and runs
/// every client to completion (the server must eventually send the
/// end-of-stream frame, e.g. `dbcast serve --listen-bcast` finishing
/// its request trace).
///
/// # Errors
///
/// Propagates connection failures and client pipeline errors.
pub fn run_fleet(
    addr: impl ToSocketAddrs,
    config: &FleetConfig,
) -> Result<FleetReport, String> {
    run_fleet_with(addr, config, None)
}

/// [`run_fleet`] with an optional telemetry uplink: every client pushes
/// live generation acks and post-measurement slices to
/// `uplink.addr` (see [`UplinkConfig`]).
///
/// # Errors
///
/// Propagates connection failures and client pipeline errors.
pub fn run_fleet_with(
    addr: impl ToSocketAddrs,
    config: &FleetConfig,
    uplink: Option<&UplinkConfig>,
) -> Result<FleetReport, String> {
    let addr: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address: {e}"))?
        .next()
        .ok_or("address resolved to nothing")?;
    let mut handles = Vec::with_capacity(config.clients);
    for id in 0..config.clients {
        let client = config.client(id);
        let up = resolve_uplink(uplink, id)?;
        let stream = TcpStream::connect(addr)
            .map_err(|e| format!("client {id} connect failed: {e}"))?;
        handles.push(
            std::thread::Builder::new()
                .name(format!("dbcast-fleet-{id}"))
                .spawn(move || run_client_with(client, stream, up))
                .map_err(|e| format!("spawn failed: {e}"))?,
        );
    }
    let mut clients = Vec::with_capacity(handles.len());
    for handle in handles {
        let report = handle.join().map_err(|_| "client thread panicked")??;
        clients.push(report);
    }
    // A connecting fleet does not see the server's egress config, so
    // infer index frames from tuning strictly below access.
    let indexed =
        clients.iter().any(|c| c.completed > 0 && c.tuning.mean < c.access.mean - 1e-9);
    Ok(fold_report(config, indexed, clients, None))
}

/// Runs a complete in-process scenario: bind a loopback server, connect
/// the fleet, then drive `source` through the egress until
/// `max_windows` windows have aired. Deterministic for scripted
/// sources; used by the e2e test, the perf benchmark, and the CLI's
/// inline mode.
///
/// # Errors
///
/// Propagates bind, egress, and client pipeline errors.
pub fn run_fleet_inline(
    source: &dyn ProgramSource,
    egress: &EgressConfig,
    net: NetConfig,
    config: &FleetConfig,
) -> Result<(FleetReport, EgressReport), String> {
    run_fleet_inline_with(source, egress, net, config, None)
}

/// [`run_fleet_inline`] with an optional telemetry uplink (see
/// [`UplinkConfig`]); an [`crate::uplink::UplinkServer`] must already
/// be listening at `uplink.addr`.
///
/// # Errors
///
/// Propagates bind, egress, and client pipeline errors.
pub fn run_fleet_inline_with(
    source: &dyn ProgramSource,
    egress: &EgressConfig,
    net: NetConfig,
    config: &FleetConfig,
    uplink: Option<&UplinkConfig>,
) -> Result<(FleetReport, EgressReport), String> {
    let server = BroadcastServer::bind("127.0.0.1:0", net)
        .map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();
    let mut handles = Vec::with_capacity(config.clients);
    for id in 0..config.clients {
        let client = config.client(id);
        let up = resolve_uplink(uplink, id)?;
        let stream = TcpStream::connect(addr)
            .map_err(|e| format!("client {id} connect failed: {e}"))?;
        handles.push(
            std::thread::Builder::new()
                .name(format!("dbcast-fleet-{id}"))
                .spawn(move || run_client_with(client, stream, up))
                .map_err(|e| format!("spawn failed: {e}"))?,
        );
    }
    // Every subscriber must be registered before the first frame airs,
    // otherwise late joiners would miss the head of the stream.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.subscriber_count() < config.clients {
        if Instant::now() > deadline {
            server.shutdown();
            return Err("fleet clients did not all subscribe in time".into());
        }
        std::thread::yield_now();
    }
    let stop = AtomicBool::new(false);
    let egress_report = run_egress(&server, source, egress, &stop)?;
    let mut clients = Vec::with_capacity(handles.len());
    for handle in handles {
        let report = handle.join().map_err(|_| "client thread panicked")??;
        clients.push(report);
    }
    let dropped = server.dropped_frames();
    server.shutdown();
    let indexed = egress.index.is_some();
    Ok((fold_report(config, indexed, clients, Some(dropped)), egress_report))
}
