//! Frame egress: turns the live program generation into wire frames.
//!
//! Virtual time advances in **windows** of one cycle of the fastest
//! non-empty channel. Within a window `[t0, t1)` the egress emits, in
//! global `(start, channel)` order, every frame that *finishes* by `t1`;
//! a frame straddling the boundary stays pending and is emitted in a
//! later window — unless a hot swap lands on the boundary first, in
//! which case the straddler is **dropped**: it never fully aired, so a
//! correct client must not count on it. The new generation starts its
//! phase 0 exactly at the boundary, and the swap is announced on the
//! wire by a fresh [`Directory`](crate::Directory) frame. Clients mirror
//! the same rule (a planned fetch only counts if it completes before the
//! directory's `valid_until`), which is what makes hot swaps visible but
//! never *torn* on the wire.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use dbcast_index::{optimal_segments, IndexedChannel, LayoutEntry};
use dbcast_model::BroadcastProgram;
use dbcast_serve::{EpochCell, ProgramGeneration};

use crate::frame::{encode_frame_into, DataFrame, Frame, IndexEntry, IndexFrame};
use crate::world::{Directory, IndexParams};
use crate::BroadcastServer;

/// A self-contained description of one generation to put on the air.
#[derive(Debug, Clone)]
pub struct SourceGeneration {
    /// Monotone generation counter.
    pub generation: u64,
    /// The cyclic program to stream.
    pub program: BroadcastProgram,
    /// Per-item access frequencies (by item index).
    pub frequencies: Vec<f64>,
}

/// Where the egress learns about generations and swaps.
///
/// `poll(window)` is called once before the first window and once at
/// every window boundary; it returns `Some` exactly when the generation
/// changed since the previous call (including the initial generation on
/// the first call).
pub trait ProgramSource: Send + Sync {
    /// Polls for a (new) generation at the given window boundary.
    fn poll(&self, window: u64) -> Option<SourceGeneration>;
}

/// [`ProgramSource`] following a live [`EpochCell`] published by the
/// serving runtime — hot swaps appear on the wire at the next boundary.
#[derive(Debug)]
pub struct EpochSource {
    cell: Arc<EpochCell<ProgramGeneration>>,
    last_seen: Mutex<Option<u64>>,
}

impl EpochSource {
    /// Wraps the serve runtime's epoch cell.
    pub fn new(cell: Arc<EpochCell<ProgramGeneration>>) -> Self {
        EpochSource { cell, last_seen: Mutex::new(None) }
    }
}

impl ProgramSource for EpochSource {
    fn poll(&self, _window: u64) -> Option<SourceGeneration> {
        let current = self.cell.current();
        let mut last = self.last_seen.lock().expect("source poisoned");
        if *last == Some(current.generation) {
            return None;
        }
        *last = Some(current.generation);
        Some(SourceGeneration {
            generation: current.generation,
            program: current.value.program.clone(),
            frequencies: current.value.frequencies.clone(),
        })
    }
}

/// Deterministic [`ProgramSource`]: a scripted sequence of generations,
/// each activating at a fixed window boundary. Used by tests and the
/// inline fleet server to make mid-run swaps reproducible.
#[derive(Debug)]
pub struct ScriptedSource {
    stages: Vec<(u64, SourceGeneration)>,
    next: Mutex<usize>,
}

impl ScriptedSource {
    /// Creates a scripted source. `stages` are `(activate_at_window,
    /// generation)` pairs in ascending activation order; the first must
    /// activate at window 0.
    pub fn new(stages: Vec<(u64, SourceGeneration)>) -> Self {
        assert!(!stages.is_empty(), "scripted source needs one stage");
        assert_eq!(stages[0].0, 0, "first stage must activate at window 0");
        ScriptedSource { stages, next: Mutex::new(0) }
    }
}

impl ProgramSource for ScriptedSource {
    fn poll(&self, window: u64) -> Option<SourceGeneration> {
        let mut next = self.next.lock().expect("source poisoned");
        if *next < self.stages.len() && self.stages[*next].0 <= window {
            let gen = self.stages[*next].1.clone();
            *next += 1;
            Some(gen)
        } else {
            None
        }
    }
}

/// Egress tuning knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct EgressConfig {
    /// Air-index parameters; `Some` interleaves (1,m) index frames.
    pub index: Option<IndexParams>,
    /// Stop after this many windows (`None` = run until `stop`).
    pub max_windows: Option<u64>,
    /// Wall-clock pacing per window; `None` streams at full speed.
    pub pace: Option<std::time::Duration>,
}

/// What one egress run put on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EgressReport {
    /// Windows (virtual broadcast slices) emitted.
    pub windows: u64,
    /// Data + index frames broadcast.
    pub frames: u64,
    /// Directory frames broadcast (= generations aired).
    pub generations: u64,
    /// Straddling frames dropped at swap boundaries.
    pub truncated: u64,
}

/// One channel's emission cursor over an endless cyclic layout.
struct ChannelCursor {
    channel: u32,
    /// `(entry, offset_size_units, size)` of one cycle, in air order.
    layout: Vec<(LayoutEntry, f64, f64)>,
    cycle_size: f64,
    cycle: u64,
    pos: usize,
}

impl ChannelCursor {
    /// Virtual `(start, end)` of the next frame, given origin/bandwidth.
    fn peek(&self, origin: f64, bandwidth: f64) -> (f64, f64) {
        let (_, offset, size) = self.layout[self.pos];
        let start = origin + (self.cycle as f64 * self.cycle_size + offset) / bandwidth;
        (start, start + size / bandwidth)
    }

    fn advance(&mut self) {
        self.pos += 1;
        if self.pos == self.layout.len() {
            self.pos = 0;
            self.cycle += 1;
        }
    }
}

/// The streaming state for one generation.
struct OnAir {
    source: SourceGeneration,
    directory: Directory,
    /// Virtual time of the generation's phase 0.
    origin: f64,
    /// Window length: one cycle of the fastest non-empty channel.
    window: f64,
    cursors: Vec<ChannelCursor>,
    /// Per-channel indexed models (index mode only), for index entries.
    indexed: Vec<Option<IndexedChannel>>,
}

fn derive_sizes(program: &BroadcastProgram, items: usize) -> Vec<f64> {
    let mut sizes = vec![0.0; items];
    for schedule in program.channels() {
        for slot in schedule.slots() {
            let idx = slot.item.index();
            if idx < sizes.len() {
                sizes[idx] = slot.size;
            }
        }
    }
    sizes
}

fn build_on_air(
    source: SourceGeneration,
    origin: f64,
    index: Option<IndexParams>,
) -> Result<OnAir, String> {
    let program = &source.program;
    let bandwidth = program.bandwidth();
    let mut cursors = Vec::new();
    let mut indexed = Vec::with_capacity(program.channels().len());
    let mut fastest = f64::INFINITY;
    for schedule in program.channels() {
        if schedule.is_empty() {
            indexed.push(None);
            continue;
        }
        let (layout, cycle_size, ic) = match index {
            Some(params) => {
                let m = optimal_segments(schedule.cycle_size(), params.index_size);
                let ic =
                    IndexedChannel::new(schedule, m, params.index_size, params.header_size)
                        .map_err(|e| format!("index build failed: {e}"))?;
                (ic.layout().collect::<Vec<_>>(), ic.cycle_size(), Some(ic))
            }
            None => (
                schedule
                    .slots()
                    .iter()
                    .map(|s| (LayoutEntry::Item { item: s.item }, s.offset, s.size))
                    .collect::<Vec<_>>(),
                schedule.cycle_size(),
                None,
            ),
        };
        fastest = fastest.min(cycle_size / bandwidth);
        cursors.push(ChannelCursor {
            channel: schedule.channel().index() as u32,
            layout,
            cycle_size,
            cycle: 0,
            pos: 0,
        });
        indexed.push(ic);
    }
    if cursors.is_empty() {
        return Err("program has no non-empty channel".into());
    }
    let items = source.frequencies.len();
    let directory = Directory {
        generation: source.generation,
        origin,
        bandwidth,
        frequencies: source.frequencies.clone(),
        sizes: derive_sizes(program, items),
        index,
        program: program.clone(),
    };
    Ok(OnAir { source, directory, origin, window: fastest, cursors, indexed })
}

impl OnAir {
    /// Emits every frame finishing by `window_end` into `frames`.
    /// Frames straddling `window_end` stay pending in their cursor.
    fn emit_until(&mut self, window_end: f64, frames: &mut Vec<Frame>) {
        let bandwidth = self.directory.bandwidth;
        let generation = self.source.generation;
        let mark = frames.len();
        for cursor in &mut self.cursors {
            loop {
                let (start, end) = cursor.peek(self.origin, bandwidth);
                if end > window_end + 1e-12 {
                    break;
                }
                let (entry, _, size) = cursor.layout[cursor.pos];
                match entry {
                    LayoutEntry::Item { item } => frames.push(Frame::Data(DataFrame {
                        channel: cursor.channel,
                        item: item.index() as u32,
                        generation,
                        start,
                        duration: size / bandwidth,
                    })),
                    LayoutEntry::Index { copy } => {
                        let ic = self.indexed[cursor.channel as usize]
                            .as_ref()
                            .expect("index layout implies indexed channel");
                        let local_end = end - self.origin;
                        let mut entries: Vec<IndexEntry> = self.source.program.channels()
                            [cursor.channel as usize]
                            .slots()
                            .iter()
                            .map(|slot| IndexEntry {
                                item: slot.item.index() as u32,
                                next_start: ic
                                    .next_item_start(slot.item, local_end, bandwidth)
                                    .expect("slot item is carried")
                                    + self.origin,
                            })
                            .collect();
                        entries.sort_by_key(|e| e.item);
                        frames.push(Frame::Index(IndexFrame {
                            channel: cursor.channel,
                            copy: copy as u32,
                            generation,
                            start,
                            duration: size / bandwidth,
                            entries,
                        }));
                    }
                }
                cursor.advance();
            }
        }
        // Deterministic on-air order across channels.
        frames[mark..].sort_by(|a, b| {
            let (sa, ca) = frame_order_key(a);
            let (sb, cb) = frame_order_key(b);
            sa.partial_cmp(&sb).expect("finite starts").then(ca.cmp(&cb))
        });
    }

    /// Counts frames already started before `boundary` but unfinished:
    /// exactly the straddlers a swap at `boundary` truncates.
    fn pending_straddlers(&self, boundary: f64) -> u64 {
        let bandwidth = self.directory.bandwidth;
        self.cursors
            .iter()
            .filter(|c| {
                let (start, end) = c.peek(self.origin, bandwidth);
                start < boundary - 1e-12 && end > boundary + 1e-12
            })
            .count() as u64
    }
}

fn frame_order_key(frame: &Frame) -> (f64, u32) {
    match frame {
        Frame::Data(d) => (d.start, d.channel),
        Frame::Index(ix) => (ix.start, ix.channel),
        Frame::Directory(_) => (f64::NEG_INFINITY, 0),
        Frame::End { horizon } => (*horizon, u32::MAX),
        // Telemetry never travels the downlink; sort it last if it did.
        Frame::Telemetry(_) => (f64::INFINITY, u32::MAX),
    }
}

/// Runs the egress loop until `stop` is raised or `max_windows` elapse,
/// then broadcasts an [`Frame::End`] carrying the covered horizon.
///
/// # Errors
///
/// Returns a message when a generation cannot be put on the air (empty
/// program or inconsistent index parameters).
pub fn run_egress(
    server: &BroadcastServer,
    source: &dyn ProgramSource,
    config: &EgressConfig,
    stop: &AtomicBool,
) -> Result<EgressReport, String> {
    let mut report = EgressReport::default();
    let initial = source
        .poll(0)
        .ok_or_else(|| "program source yielded no initial generation".to_string())?;
    let mut on_air = build_on_air(initial, 0.0, config.index)?;
    let mut now = 0.0f64;
    publish_directory(server, &on_air, &mut report);

    let mut frames: Vec<Frame> = Vec::new();
    let mut wire = Vec::with_capacity(4096);
    let mut window_index: u64 = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if let Some(max) = config.max_windows {
            if window_index >= max {
                break;
            }
        }
        let window_end = now + on_air.window;
        frames.clear();
        on_air.emit_until(window_end, &mut frames);
        for frame in &frames {
            wire.clear();
            encode_frame_into(&mut wire, frame);
            server.broadcast(Arc::new(wire.clone()));
            report.frames += 1;
        }
        now = window_end;
        window_index += 1;
        if let Some(pace) = config.pace {
            std::thread::sleep(pace);
        }
        if let Some(next) = source.poll(window_index) {
            // Swap at the boundary: straddlers are truncated, the new
            // generation starts its phase 0 exactly here.
            report.truncated += on_air.pending_straddlers(now);
            on_air = build_on_air(next, now, config.index)?;
            publish_directory(server, &on_air, &mut report);
        }
    }
    let mut end = Vec::new();
    encode_frame_into(&mut end, &Frame::End { horizon: now });
    server.broadcast(Arc::new(end));
    report.windows = window_index;
    Ok(report)
}

fn publish_directory(server: &BroadcastServer, on_air: &OnAir, report: &mut EgressReport) {
    let json = serde_json::to_string(&on_air.directory)
        .expect("directory serializes")
        .into_bytes();
    let mut wire = Vec::with_capacity(json.len() + 32);
    encode_frame_into(&mut wire, &Frame::Directory(json));
    server.set_directory(Arc::new(wire));
    report.generations += 1;
}
