//! Framed TCP broadcast transport and simulated client fleet.
//!
//! The paper's cost model (Eq. 2/3) predicts *expected* access time;
//! this crate closes the loop by putting the live cyclic program on a
//! real wire and measuring what clients actually experience:
//!
//! * [`frame`] — the versioned, checksummed wire format. Frames carry
//!   **virtual broadcast time**, so the TCP stream runs at pipe speed
//!   while timing stays deterministic and Eq. 2-comparable.
//! * [`server`] — [`BroadcastServer`]: a fan-out server with a bounded
//!   per-subscriber queue and a drop-and-count slow-client policy, so
//!   one stalled client never back-pressures the serve loop.
//! * [`egress`] — turns program generations (live from a serve
//!   runtime's epoch cell, or scripted for determinism) into data,
//!   index, and directory frames; hot swaps truncate straddling frames
//!   at the boundary and are announced by a fresh directory.
//! * [`world`] — the client's analytic picture: a [`Directory`] plus
//!   derived (1,m) index models, planning fetches exactly the way the
//!   `index`/`replication` crates model them.
//! * [`client`] — record-then-measure clients composing the `index`,
//!   `cache`, `query`, and `replication` crates over the recorded air.
//! * [`fleet`] — N concurrent clients folded into a schema-versioned,
//!   bit-reproducible [`FleetReport`].
//! * [`uplink`] — the reverse path: clients push generation-stamped
//!   telemetry digests over a second TCP connection, decoded with the
//!   same envelope discipline and folded into the serve-side
//!   [`FleetAggregator`](dbcast_serve::FleetAggregator) for live
//!   fleet-wide Eq. 2 tracking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod egress;
pub mod fleet;
pub mod frame;
pub mod server;
pub mod uplink;
pub mod world;

pub use client::{
    directory_database, generate_requests, measure, AirLog, CacheKind, ClientConfig,
    GeneratedRequest, RequestOutcome, WorkloadPattern,
};
pub use egress::{
    run_egress, EgressConfig, EgressReport, EpochSource, ProgramSource, ScriptedSource,
    SourceGeneration,
};
pub use fleet::{
    predicted_access, run_fleet, run_fleet_inline, run_fleet_inline_with, run_fleet_with,
    ClientReport, FleetConfig, FleetReport, FleetTotals, GenerationSlice, StatSummary,
    UplinkConfig, FLEET_SCHEMA,
};
pub use frame::{
    decode_telemetry_payload, encode_data_frame_into, encode_frame, encode_frame_into,
    encode_telemetry_frame_into, DataFrame, DecodeError, Frame, FrameDecoder, IndexEntry,
    IndexFrame, TelemetryFrame, HEADER_LEN, MAGIC, MAX_PAYLOAD, TELEMETRY_FLAG_SLICE,
    TRAILER_LEN, VERSION,
};
pub use server::{BroadcastServer, NetConfig, OverflowPolicy};
pub use uplink::{digest_from_frame, DigestSink, UplinkClient, UplinkServer};
pub use world::{Directory, FetchPlan, IndexParams, WorldView};
