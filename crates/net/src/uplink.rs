//! The telemetry uplink: the reverse path of the broadcast.
//!
//! Downlink subscribers are mute — the server fans frames out and never
//! hears back. The uplink closes the loop: each client opens a second
//! TCP connection and pushes compact [`TelemetryFrame`] digests (live
//! generation acknowledgements while recording, per-generation
//! measurement slices after), framed with the same DBN1 envelope,
//! checksum and resync discipline as the downlink. The
//! [`UplinkServer`] decodes them on per-connection reader threads and
//! hands every digest to a [`DigestSink`] — in production the serve
//! process's [`FleetAggregator`].

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dbcast_obs::metrics::{Counter, Gauge};
use dbcast_serve::{FleetAggregator, FleetDigest};

use crate::frame::{
    encode_telemetry_frame_into, Frame, FrameDecoder, TelemetryFrame, TELEMETRY_FLAG_SLICE,
};

/// Receives every decoded telemetry digest, in per-client arrival
/// order. Implementations must tolerate concurrent calls from
/// different connection reader threads.
pub trait DigestSink: Send + Sync {
    /// One digest, freshly decoded off an uplink connection.
    fn on_digest(&self, frame: &TelemetryFrame);
}

/// The production sink: fold digests straight into the serve-side
/// fleet aggregates.
impl DigestSink for FleetAggregator {
    fn on_digest(&self, frame: &TelemetryFrame) {
        self.ingest(&digest_from_frame(frame));
    }
}

/// Converts a wire telemetry frame into the transport-agnostic digest
/// the serve-side aggregator folds.
pub fn digest_from_frame(t: &TelemetryFrame) -> FleetDigest {
    FleetDigest {
        client: t.client,
        seq: t.seq,
        slice: t.is_slice(),
        last_generation: t.last_generation,
        generation: t.generation,
        origin: t.origin,
        samples: t.samples,
        mean_access: t.mean_access,
        mean_tuning: t.mean_tuning,
        predicted_access: t.predicted_access,
        requests: t.requests,
        completed: t.completed,
        cache_hits: t.cache_hits,
        conflicts: t.conflicts,
        retunes: t.retunes,
        torn: t.torn,
        access: t.access.clone(),
        tuning: t.tuning.clone(),
        coverage: t.coverage.clone(),
    }
}

/// Resolved `net.uplink.*` metric handles.
#[derive(Debug)]
struct UplinkMetrics {
    frames: &'static Counter,
    bytes: &'static Counter,
    decode_errors: &'static Counter,
    clients: &'static Gauge,
}

impl UplinkMetrics {
    fn resolve() -> Self {
        let r = dbcast_obs::registry();
        UplinkMetrics {
            frames: r.counter("net.uplink.frames"),
            bytes: r.counter("net.uplink.bytes"),
            decode_errors: r.counter("net.uplink.decode_errors"),
            clients: r.gauge("net.uplink.clients"),
        }
    }
}

struct UplinkShared {
    sink: Arc<dyn DigestSink>,
    stop: AtomicBool,
    metrics: UplinkMetrics,
    // Local mirrors so behaviour is assertable with obs compiled out.
    frames: AtomicU64,
    bytes: AtomicU64,
    decode_errors: AtomicU64,
    clients: AtomicU64,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

/// A telemetry ingest server on a TCP listener.
///
/// Dropping the server shuts it down: the accept loop stops and every
/// connection reader thread is joined.
pub struct UplinkServer {
    shared: Arc<UplinkShared>,
    addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for UplinkServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UplinkServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

/// Reader-side poll interval: blocking reads time out this often so a
/// reader can notice shutdown even on an idle connection.
const READ_POLL: Duration = Duration::from_millis(100);

impl UplinkServer {
    /// Binds `addr` and starts accepting uplink connections, handing
    /// every decoded digest to `sink`.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        sink: Arc<dyn DigestSink>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(UplinkShared {
            sink,
            stop: AtomicBool::new(false),
            metrics: UplinkMetrics::resolve(),
            frames: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            clients: AtomicU64::new(0),
            readers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("dbcast-uplink-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let reader_shared = Arc::clone(&accept_shared);
                    let reader = std::thread::Builder::new()
                        .name("dbcast-uplink-reader".into())
                        .spawn(move || reader_loop(stream, &reader_shared));
                    if let Ok(handle) = reader {
                        accept_shared
                            .readers
                            .lock()
                            .expect("readers poisoned")
                            .push(handle);
                    }
                }
            })?;
        Ok(UplinkServer { shared, addr, accept: Mutex::new(Some(accept)) })
    }

    /// The bound socket address (useful after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Telemetry frames decoded since startup.
    pub fn frames(&self) -> u64 {
        self.shared.frames.load(Ordering::SeqCst)
    }

    /// Uplink bytes read since startup.
    pub fn bytes(&self) -> u64 {
        self.shared.bytes.load(Ordering::SeqCst)
    }

    /// Envelope/payload decode errors since startup.
    pub fn decode_errors(&self) -> u64 {
        self.shared.decode_errors.load(Ordering::SeqCst)
    }

    /// Stops accepting, interrupts every reader at its next poll, and
    /// joins all threads. Idempotent.
    pub fn shutdown(&self) {
        if !self.shared.stop.swap(true, Ordering::SeqCst) {
            // Unblock the accept loop with one throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(handle) = self.accept.lock().expect("accept poisoned").take() {
            let _ = handle.join();
        }
        let readers =
            std::mem::take(&mut *self.shared.readers.lock().expect("readers poisoned"));
        for handle in readers {
            let _ = handle.join();
        }
        self.shared.metrics.clients.set(0.0);
    }
}

impl Drop for UplinkServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn reader_loop(mut stream: TcpStream, shared: &UplinkShared) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let clients = shared.clients.fetch_add(1, Ordering::SeqCst) + 1;
    shared.metrics.clients.set(clients as f64);
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 8192];
    'conn: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        shared.bytes.fetch_add(n as u64, Ordering::SeqCst);
        shared.metrics.bytes.add(n as u64);
        decoder.push(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some(Frame::Telemetry(t))) => {
                    shared.frames.fetch_add(1, Ordering::SeqCst);
                    shared.metrics.frames.inc();
                    shared.sink.on_digest(&t);
                }
                // The uplink carries telemetry only; anything else that
                // frames correctly is counted and skipped.
                Ok(Some(_)) => {
                    shared.decode_errors.fetch_add(1, Ordering::SeqCst);
                    shared.metrics.decode_errors.inc();
                }
                Ok(None) => break,
                Err(_) => {
                    shared.decode_errors.fetch_add(1, Ordering::SeqCst);
                    shared.metrics.decode_errors.inc();
                }
            }
            if shared.stop.load(Ordering::SeqCst) {
                break 'conn;
            }
        }
    }
    let clients = shared.clients.fetch_sub(1, Ordering::SeqCst) - 1;
    shared.metrics.clients.set(clients as f64);
}

/// The client half: a connected uplink that assigns sequence numbers
/// and encodes digests with a reused buffer (allocation-free in the
/// steady state).
#[derive(Debug)]
pub struct UplinkClient {
    stream: TcpStream,
    scratch: Vec<u8>,
    seq: u32,
}

impl UplinkClient {
    /// Connects to an uplink server.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<UplinkClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(UplinkClient { stream, scratch: Vec::with_capacity(1024), seq: 0 })
    }

    /// Stamps `frame` with the next sequence number, encodes and sends
    /// it. The sent wire bytes are a pure function of the digests
    /// pushed, so same-seed runs produce bit-identical uplink streams.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send(&mut self, frame: &mut TelemetryFrame) -> std::io::Result<()> {
        frame.seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        self.scratch.clear();
        encode_telemetry_frame_into(&mut self.scratch, frame);
        self.stream.write_all(&self.scratch)?;
        self.stream.flush()
    }

    /// Sends a live acknowledgement that this client has seen the
    /// directory for `generation`.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_ack(&mut self, client: u32, generation: u64) -> std::io::Result<()> {
        let mut frame = TelemetryFrame::empty();
        frame.client = client;
        frame.last_generation = generation;
        self.send(&mut frame)
    }
}

/// Marks `frame` as a measurement slice (sets the flag bit).
pub fn mark_slice(frame: &mut TelemetryFrame) {
    frame.flags |= TELEMETRY_FLAG_SLICE;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn wait_until(deadline_ms: u64, mut done: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_millis(deadline_ms);
        while !done() {
            assert!(Instant::now() < deadline, "uplink wait timed out");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn slice_frame(client: u32, generation: u64) -> TelemetryFrame {
        let mut t = TelemetryFrame::empty();
        t.client = client;
        mark_slice(&mut t);
        t.last_generation = generation;
        t.generation = generation;
        t.origin = 3.0 * generation as f64;
        t.samples = 2;
        t.mean_access = 1.5;
        t.mean_tuning = 0.5;
        t.predicted_access = 1.4;
        t.requests = 2;
        t.completed = 2;
        t.access.record(1_400_000);
        t.access.record(1_600_000);
        t.tuning.record(500_000);
        t.tuning.record(500_000);
        t.coverage = vec![(0, 10), (1, 4)];
        t
    }

    #[test]
    fn digests_flow_from_client_to_aggregator() {
        let agg = Arc::new(FleetAggregator::new());
        agg.set_published(1);
        let server =
            UplinkServer::bind("127.0.0.1:0", Arc::clone(&agg) as _).expect("bind uplink");
        let mut a = UplinkClient::connect(server.addr()).expect("connect a");
        let mut b = UplinkClient::connect(server.addr()).expect("connect b");
        a.send_ack(0, 1).expect("ack");
        b.send_ack(1, 0).expect("ack");
        a.send(&mut slice_frame(0, 1)).expect("slice");
        wait_until(5000, || server.frames() == 3);
        let doc = agg.doc();
        assert_eq!(doc.clients, 2);
        assert_eq!(doc.lagging, vec![1]);
        assert_eq!(doc.generations.len(), 1);
        let g = &doc.generations[0];
        assert_eq!((g.generation, g.samples, g.requests), (1, 2, 2));
        assert!((g.mean_access - 1.5).abs() < 1e-12);
        server.shutdown();
        assert_eq!(server.decode_errors(), 0);
        assert!(server.bytes() > 0);
    }

    #[test]
    fn garbage_on_the_uplink_is_counted_and_resynced_past() {
        let agg = Arc::new(FleetAggregator::new());
        let server =
            UplinkServer::bind("127.0.0.1:0", Arc::clone(&agg) as _).expect("bind uplink");
        let mut raw = TcpStream::connect(server.addr()).expect("connect");
        raw.write_all(b"this is not a DBN1 frame at all").expect("garbage");
        let mut good = Vec::new();
        encode_telemetry_frame_into(&mut good, &slice_frame(3, 2));
        raw.write_all(&good).expect("good frame");
        raw.flush().expect("flush");
        wait_until(5000, || server.frames() == 1);
        assert!(server.decode_errors() > 0, "garbage must be counted");
        assert_eq!(agg.doc().clients, 1);
        server.shutdown();
    }
}
