//! Client-side picture of the serving program.
//!
//! A [`Directory`] frame is the wire's self-description: the complete
//! [`BroadcastProgram`] plus the virtual-time origin of the generation's
//! phase zero and the optional (1,m) air-index parameters. From it a
//! client rebuilds a [`WorldView`] — the exact same structures the
//! server schedules from — and plans fetches analytically: the plan is
//! then *verified* against the frames that actually aired, so a wrong
//! world view shows up as a torn frame, never as a silent bias.

use dbcast_index::{optimal_segments, IndexedChannel};
use dbcast_model::{BroadcastProgram, ChannelId, ItemId};
use dbcast_replication::expected_min_probe;
use serde::{Deserialize, Serialize};

/// (1,m) air-index parameters shared by server and clients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexParams {
    /// Size of one index segment copy (same units as item sizes).
    pub index_size: f64,
    /// Size of the per-frame header a dozing client must read before it
    /// learns when the next index copy starts.
    pub header_size: f64,
}

/// Self-description of one program generation, carried in a
/// [`Frame::Directory`](crate::Frame::Directory) payload as JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Directory {
    /// Generation counter from the server's epoch cell.
    pub generation: u64,
    /// Virtual time at which this generation's cycles start (phase 0).
    pub origin: f64,
    /// Per-channel bandwidth in size units per second.
    pub bandwidth: f64,
    /// Access frequency of every database item, by item index.
    pub frequencies: Vec<f64>,
    /// Size of every database item, by item index.
    pub sizes: Vec<f64>,
    /// Air-index parameters; `None` means pure data broadcast.
    pub index: Option<IndexParams>,
    /// The full cyclic program being broadcast.
    pub program: BroadcastProgram,
}

/// A planned single-item fetch: where to tune and what it costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchPlan {
    /// Channel to tune to.
    pub channel: ChannelId,
    /// Virtual start of the chosen occurrence.
    pub start: f64,
    /// Virtual time the download completes.
    pub completion: f64,
    /// Access time: completion minus request instant.
    pub access: f64,
    /// Tuning time: virtual seconds of radio-active listening.
    pub tuning: f64,
}

/// A decoded directory plus the derived per-channel air indexes.
#[derive(Debug)]
pub struct WorldView {
    /// The directory this view was built from.
    pub directory: Directory,
    /// Per-channel (1,m) index models, present iff the stream carries
    /// index frames. `None` entries are empty channels.
    pub indexed: Option<Vec<Option<IndexedChannel>>>,
    /// Virtual instant this generation stops being on the air.
    /// `f64::INFINITY` until a successor directory arrives.
    pub valid_until: f64,
}

impl WorldView {
    /// Builds a world view from a decoded directory.
    ///
    /// # Errors
    ///
    /// Returns a description of the inconsistency when the directory's
    /// index parameters cannot model one of its own channels.
    pub fn from_directory(directory: Directory) -> Result<Self, String> {
        let indexed = match directory.index {
            None => None,
            Some(params) => {
                let mut per_channel =
                    Vec::with_capacity(directory.program.channels().len());
                for schedule in directory.program.channels() {
                    if schedule.is_empty() {
                        per_channel.push(None);
                        continue;
                    }
                    let m = optimal_segments(schedule.cycle_size(), params.index_size);
                    let ic = IndexedChannel::new(
                        schedule,
                        m,
                        params.index_size,
                        params.header_size,
                    )
                    .map_err(|e| format!("directory index params invalid: {e}"))?;
                    per_channel.push(Some(ic));
                }
                Some(per_channel)
            }
        };
        Ok(WorldView { directory, indexed, valid_until: f64::INFINITY })
    }

    /// Size of an item per the directory, if in range.
    pub fn item_size(&self, item: ItemId) -> Option<f64> {
        self.directory.sizes.get(item.index()).copied()
    }

    /// Upper bound on the access time of any single-item request under
    /// this generation: a request arriving more than this long before
    /// the generation's end can never straddle the swap. Used to carve
    /// out the censoring-free sample window for Eq. 2 comparisons.
    pub fn worst_case_access(&self) -> f64 {
        let bandwidth = self.directory.bandwidth;
        let mut worst = 0.0f64;
        for idx in 0..self.directory.frequencies.len() {
            let item = ItemId::new(idx);
            let carriers = self.directory.program.locate_all(item);
            if carriers.is_empty() {
                continue;
            }
            // The client can always fall back to the fastest-cycle
            // carrier, so its wait-to-start is bounded by that cycle.
            let best_cycle =
                carriers.iter().map(|(s, _)| s.cycle_size()).fold(f64::INFINITY, f64::min);
            let size = carriers[0].1.size;
            let bound = match self.directory.index {
                // Indexed: wait for an index copy (≤ one cycle), read
                // it, then doze to the item (≤ one more cycle).
                Some(params) => (2.0 * best_cycle + params.index_size + size) / bandwidth,
                None => (best_cycle + size) / bandwidth,
            };
            worst = worst.max(bound);
        }
        worst
    }

    /// The Eq. 2 expectation for a single-item request for `item`
    /// arriving uniformly in phase: probe to the next occurrence plus
    /// the download itself. Replicated items use the independent-phase
    /// earliest-probe approximation; indexed single-carrier items use
    /// the exact (1,m) grid expectation.
    ///
    /// Returns `None` when the program does not carry the item.
    pub fn expected_access(&self, item: ItemId) -> Option<f64> {
        let bandwidth = self.directory.bandwidth;
        let carriers = self.directory.program.locate_all(item);
        if carriers.is_empty() {
            return None;
        }
        let size = carriers[0].1.size;
        match &self.indexed {
            Some(per_channel) if carriers.len() == 1 => {
                let schedule = carriers[0].0;
                per_channel
                    .get(schedule.channel().index())
                    .and_then(|c| c.as_ref())
                    .and_then(|ic| ic.expected_metrics(item, bandwidth, 512))
                    .map(|(access, _)| access)
            }
            _ => {
                let cycles: Vec<f64> =
                    carriers.iter().map(|(s, _)| s.cycle_size() / bandwidth).collect();
                Some(expected_min_probe(&cycles) + size / bandwidth)
            }
        }
    }

    /// Plans the cheapest fetch of `item` for a request issued at the
    /// virtual instant `now`, considering every channel that carries a
    /// replica (earliest completion wins; ties break on channel index).
    ///
    /// Without an air index the client must listen continuously from
    /// `now` until the download ends, so tuning equals access. With the
    /// (1,m) index it reads at most a frame header, dozes to the next
    /// index copy, then dozes again until its item airs.
    ///
    /// Returns `None` when the program does not carry the item.
    pub fn plan_fetch(&self, item: ItemId, now: f64) -> Option<FetchPlan> {
        let origin = self.directory.origin;
        let bandwidth = self.directory.bandwidth;
        let local = now - origin;
        let mut best: Option<FetchPlan> = None;
        for (schedule, slot) in self.directory.program.locate_all(item) {
            let candidate = match &self.indexed {
                Some(per_channel) => {
                    let ic = per_channel
                        .get(schedule.channel().index())
                        .and_then(|c| c.as_ref())?;
                    let (access, tuning) = ic.request_metrics(item, local, bandwidth)?;
                    let completion = now + access;
                    FetchPlan {
                        channel: schedule.channel(),
                        start: completion - slot.size / bandwidth,
                        completion,
                        access,
                        tuning,
                    }
                }
                None => {
                    let start = schedule.next_start(item, local, bandwidth)? + origin;
                    let completion = start + slot.size / bandwidth;
                    FetchPlan {
                        channel: schedule.channel(),
                        start,
                        completion,
                        access: completion - now,
                        tuning: completion - now,
                    }
                }
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    candidate.completion < b.completion - 1e-12
                        || (candidate.completion <= b.completion + 1e-12
                            && candidate.channel.index() < b.channel.index())
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcast_model::{Allocation, Database, ItemSpec};

    fn demo_directory(index: Option<IndexParams>) -> Directory {
        let db = Database::try_from_specs(vec![
            ItemSpec::new(0.5, 1.0),
            ItemSpec::new(0.3, 2.0),
            ItemSpec::new(0.2, 1.0),
        ])
        .unwrap();
        let alloc = Allocation::from_assignment(&db, 2, vec![0, 1, 1]).unwrap();
        let program = BroadcastProgram::new(&db, &alloc, 1.0).unwrap();
        Directory {
            generation: 0,
            origin: 0.0,
            bandwidth: 1.0,
            frequencies: db.items().iter().map(|i| i.frequency()).collect(),
            sizes: db.items().iter().map(|i| i.size()).collect(),
            index,
            program,
        }
    }

    #[test]
    fn plain_plan_matches_model_response_time() {
        let dir = demo_directory(None);
        let world = WorldView::from_directory(dir).unwrap();
        for idx in 0..3 {
            let item = ItemId::new(idx);
            for k in 0..8 {
                let now = k as f64 * 0.37;
                let plan = world.plan_fetch(item, now).expect("carried item");
                let expect = world.directory.program.response_time(item, now).unwrap();
                assert!(
                    (plan.access - expect).abs() < 1e-9,
                    "item {idx} at {now}: plan {} vs model {expect}",
                    plan.access
                );
                assert!((plan.tuning - plan.access).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn indexed_plan_tunes_less_than_it_waits() {
        let dir = demo_directory(Some(IndexParams { index_size: 0.25, header_size: 0.05 }));
        let world = WorldView::from_directory(dir).unwrap();
        let plan = world.plan_fetch(ItemId::new(1), 0.1).expect("carried");
        assert!(plan.tuning < plan.access + 1e-12);
        assert!(plan.tuning > 0.0);
    }

    #[test]
    fn origin_shift_translates_plans() {
        let mut dir = demo_directory(None);
        dir.origin = 10.0;
        let shifted = WorldView::from_directory(dir).unwrap();
        let base = WorldView::from_directory(demo_directory(None)).unwrap();
        let a = base.plan_fetch(ItemId::new(2), 0.4).unwrap();
        let b = shifted.plan_fetch(ItemId::new(2), 10.4).unwrap();
        assert!((b.access - a.access).abs() < 1e-9);
        assert!((b.start - (a.start + 10.0)).abs() < 1e-9);
    }
}
